//! # flowplace — adaptable ACL rule placement for SDNs
//!
//! A faithful, self-contained reproduction of *"An Adaptable Rule
//! Placement for Software-Defined Networks"* (Zhang, Ivančić, Lumezanu,
//! Yuan, Gupta, Malik — DSN 2014): an ILP/pseudo-Boolean optimizer that
//! compiles per-ingress firewall policies of a "Big Switch" network
//! specification down to per-switch TCAM tables, respecting rule
//! priorities, per-path coverage, and switch capacities while minimizing
//! the total number of installed rules.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`acl`] — ternary match algebra, prioritized policies, redundancy
//!   removal;
//! * [`topo`] — topology model and fat-tree generator;
//! * [`routing`] — shortest-path routing module with per-route flow sets;
//! * [`classbench`] — ClassBench-style synthetic policy generation;
//! * [`milp`] — the 0/1 ILP solver (bounded simplex + branch & bound);
//! * [`pbsat`] — the CDCL pseudo-Boolean SAT solver;
//! * [`core`] — the placement optimizer itself (dependency graphs,
//!   encodings, merging, incremental deployment, verification);
//! * [`ctrl`] — the event-driven controller runtime (batched updates,
//!   greedy→restricted→full escalation, transactional TCAM dataplane);
//! * [`obs`] — deterministic observability: hierarchical spans on a
//!   virtual clock plus a typed metrics registry, dumped as canonical
//!   `flowplace.obs.v1` JSON;
//! * [`rng`] — seedable, registry-free pseudo-random number generation;
//! * [`traffic`] — deterministic Zipf-skewed flow-arrival generation
//!   driving the TCAM rule-caching tier.
//!
//! The most common entry points are re-exported at the root:
//! [`Instance`], [`RulePlacer`], [`PlacementOptions`], [`Objective`].
//!
//! ```
//! use flowplace::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut topo = Topology::linear(2);
//! topo.set_uniform_capacity(8);
//! let mut routes = RouteSet::new();
//! routes.push(Route::new(
//!     EntryPortId(0),
//!     EntryPortId(1),
//!     vec![SwitchId(0), SwitchId(1)],
//! ));
//! let policy = Policy::from_ordered(vec![
//!     (Ternary::parse("01**")?, Action::Permit),
//!     (Ternary::parse("0***")?, Action::Drop),
//! ])?;
//! let instance = Instance::new(topo, routes, vec![(EntryPortId(0), policy)])?;
//! let outcome =
//!     RulePlacer::new(PlacementOptions::default()).place(&instance, Objective::TotalRules)?;
//! assert!(outcome.placement.is_some());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use flowplace_acl as acl;
pub use flowplace_classbench as classbench;
pub use flowplace_core as core;
pub use flowplace_ctrl as ctrl;
pub use flowplace_milp as milp;
pub use flowplace_obs as obs;
pub use flowplace_pbsat as pbsat;
pub use flowplace_rng as rng;
pub use flowplace_routing as routing;
pub use flowplace_topo as topo;
pub use flowplace_traffic as traffic;

pub use flowplace_core::{
    DependencyEncoding, Instance, Objective, Placement, PlacementOptions, PlacementOutcome,
    PlacerEngine, RulePlacer, SolveStatus,
};

/// Convenient glob-import of the types most programs need.
pub mod prelude {
    pub use flowplace_acl::{Action, Packet, Policy, Rule, RuleId, Ternary};
    pub use flowplace_core::{
        DependencyEncoding, Instance, Objective, ParOutcome, ParallelConfig, Placement,
        PlacementOptions, PlacementOutcome, PlacerEngine, Provenance, RulePlacer, SolveStatus,
        StageTimes,
    };
    pub use flowplace_ctrl::{Controller, CtrlOptions, CtrlStats, Event, Tier};
    pub use flowplace_obs::Obs;
    pub use flowplace_routing::{Route, RouteId, RouteSet};
    pub use flowplace_topo::{EntryPortId, SwitchId, Topology, TopologyBuilder};
}

//! `flowplace` — command-line front end for the rule-placement optimizer.
//!
//! ```text
//! flowplace gen-policy --rules 20 --seed 7 > tenant.txt
//! flowplace audit tenant.txt --dot deps.dot
//! flowplace place --topo fat-tree:4 --capacity 40 --ingresses 8 \
//!                 --rules 12 --merging --verify --tables
//! ```
//!
//! Run `flowplace help` for the full flag reference.

use std::collections::BTreeMap;
use std::process::ExitCode;

use flowplace::acl::{redundancy, textfmt, Policy};
use flowplace::classbench::{Generator, Profile};
use flowplace::core::{depgraph::DependencyGraph, tables, verify};
use flowplace::milp::MipOptions;
use flowplace::prelude::*;
use flowplace::routing::shortest;

const HELP: &str = "\
flowplace — ACL rule placement for software-defined networks

USAGE:
  flowplace place [FLAGS]        solve a placement instance
  flowplace audit FILE [FLAGS]   analyze a policy file (redundancy, deps)
  flowplace gen-policy [FLAGS]   generate a synthetic policy to stdout
  flowplace ctrl replay FILE [FLAGS]   drive the controller from an event trace
  flowplace traffic gen [OUT] [FLAGS]  generate a replayable Zipf flow trace
  flowplace obs summarize FILE...      render obs trace/metrics dumps as tables
  flowplace help                 show this text

place flags:
  --topo SPEC          fat-tree:K | leaf-spine:S,L,H | linear:N  [fat-tree:4]
  --capacity N         TCAM slots per switch                     [40]
  --ingresses N        number of tenant policies                 [4]
  --paths N            shortest paths per ingress                [2]
  --rules N            generated rules per policy                [10]
  --policy-file FILE   use this policy text for every ingress (overrides --rules)
  --seed N             RNG seed for routing + generation         [7]
  --merging            enable cross-policy rule merging
  --engine ilp|sat     optimizing ILP or feasibility-only PB-SAT [ilp]
  --objective rules|distance   minimize total rules or push drops upstream
  --time-limit SECS    branch-and-bound budget                   [60]
  --threads N          pipeline worker threads (0 = auto-detect) [1]
  --portfolio          race ILP against PB-SAT, first verdict wins
  --sat-restart luby|glucose   CDCL restart schedule for the PB-SAT
                       engine (glucose = adaptive + blocking)     [glucose]
  --verify             golden-model check of the deployment
  --tables             print the emitted per-switch tables
  --export-lp FILE     also write the ILP in CPLEX LP format
  --trace-out FILE     write the solver span trace (flowplace.obs.v1 JSON)
  --metrics-out FILE   write the metrics registry dump (flowplace.obs.v1 JSON)

audit flags:
  --dot FILE           write the dependency graph in Graphviz DOT
  --metrics-out FILE   write the metrics dump (incl. arena.* gauges)

gen-policy flags:
  --rules N            rule count                                [20]
  --width N            match width in bits                       [16]
  --seed N             RNG seed                                  [1]
  --profile firewall|acl|ipchain                                 [firewall]

ctrl replay flags:
  --topo SPEC          fat-tree:K | leaf-spine:S,L,H | linear:N  [linear:4]
  --capacity N         TCAM slots per switch                     [16]
  --batch N            events coalesced per epoch                [8]
  --threads N          pipeline worker threads (0 = auto-detect) [1]
  --portfolio          race ILP against PB-SAT on full solves
  --sat-restart luby|glucose   CDCL restart schedule for PB-SAT
                       solves (incl. warm sessions)               [glucose]
  --verbose            print every event outcome, not just epochs
  --faults FILE        scripted fault schedule (grammar below)
  --fault-seed N       seed for probabilistic fault draws        [0]
  --reject-rate P      per-install rejection probability (0..1)  [0]
  --crash-rate P       per-switch, per-epoch crash probability   [0]
  --recover-rate P     per-crashed-switch recovery probability   [0]
  --retries N          install attempts per op, first included   [4]
  --quarantine-after N consecutive failures before quarantine    [3]
  --warm on|off        incremental warm-path caches (fingerprint
                       reuse + epoch placement memo)             [on]
  --trace-out FILE     write the epoch/event/commit span trace
                       (flowplace.obs.v1 JSON, byte-identical per seed)
  --metrics-out FILE   write the metrics registry dump (flowplace.obs.v1)
  --cache SPEC         enable the TCAM-as-cache tier: N | lru:N | depfreq:N
                       (per-switch resident entries; dependency-safe eviction)
  --shards SPEC        shard the controller by tenant: N | N:l0=2,l7=0
                       (stable hash partition over N shards, with explicit
                       per-ingress overrides); placements, stats, and dumps
                       stay byte-identical to the unsharded run, and a shard
                       summary is appended after the standard output
  --delegation on|off  the flow-delegation rung: detour saturated
                       ingresses through a neighbor with spare TCAM
                       before falling back to drop-all             [on]
  --traffic FILE       after the replay, run this flow trace (see
                       `traffic gen`) through the cache tier; exits non-zero
                       if the dependency-safety audit detects a violating
                       eviction

traffic gen flags (writes to OUT, or stdout without OUT):
  --seed N             RNG seed                                  [7]
  --rate N             flow events per simulated second          [1000]
  --duration MS        stream length in virtual milliseconds     [1000]
  --zipf S             Zipf exponent (0 = uniform)               [1.1]
  --ingresses N        entry ports flows arrive on (l0..)        [4]
  --width N            header width in bits                      [16]
  --flows N            distinct flow headers per ingress         [64]
  --flowlet N          mean packets per flowlet                  [4]
  --burst P:A:M        every P ms, boost the rate xM for A ms

Trace files hold one event per line (# comments, blank lines ignored):
  install-policy l0 via l2:s0-s1-s2 rules 10**:drop:2,****:permit:1
  add-rule l0 01** drop 3 | modify-rule l0 r1 11** permit 4
  remove-rule l0 r0 | reroute l0 via l2:s0-s2 | capacity s1 4
  solve | checkpoint | rollback | switch-fail s1 | switch-recover s1

Fault schedules hold one fault per line (optional @EPOCH prefix, default 1):
  @2 fault install-reject s1 3 | @4 fault crash s1
  @6 fault recover s1 | @8 fault capacity s2 4

With any fault source active the replay exits 0 iff the fail-closed audit
passes; degraded event rejections are expected and do not fail the run.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("place") => place(&args[1..]),
        Some("audit") => audit(&args[1..]),
        Some("gen-policy") => gen_policy(&args[1..]),
        Some("ctrl") => ctrl(&args[1..]),
        Some("traffic") => traffic_cmd(&args[1..]),
        Some("obs") => obs_cmd(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{HELP}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command {other:?}; try `flowplace help`");
            ExitCode::from(2)
        }
    }
}

/// Builds the CDCL options from `--sat-restart luby|glucose` (the
/// learnt-DB-reduction default rides along with the strategy's default).
fn parse_sat_options(
    flags: &BTreeMap<String, String>,
) -> Result<flowplace::pbsat::SolverOptions, String> {
    let mut sat = flowplace::pbsat::SolverOptions::default();
    if let Some(spec) = flags.get("sat-restart") {
        sat.restart = spec.parse().map_err(|e| format!("--sat-restart: {e}"))?;
    }
    Ok(sat)
}

/// Splits `args` into `--flag value` pairs and bare switches.
fn parse_flags(args: &[String]) -> Result<(BTreeMap<String, String>, Vec<String>), String> {
    const SWITCHES: &[&str] = &[
        "--merging",
        "--verify",
        "--tables",
        "--verbose",
        "--portfolio",
    ];
    let mut flags = BTreeMap::new();
    let mut positional = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            if SWITCHES.contains(&a.as_str()) {
                flags.insert(name.to_string(), "true".to_string());
            } else {
                let v = it.next().ok_or_else(|| format!("flag {a} needs a value"))?;
                flags.insert(name.to_string(), v.clone());
            }
        } else {
            positional.push(a.clone());
        }
    }
    Ok((flags, positional))
}

/// A fresh [`Obs`](flowplace::obs::Obs) context when `--trace-out` or
/// `--metrics-out` was given, `None` otherwise (uninstrumented path).
fn obs_requested(flags: &BTreeMap<String, String>) -> Option<flowplace::obs::Obs> {
    if flags.contains_key("trace-out") || flags.contains_key("metrics-out") {
        Some(flowplace::obs::Obs::new())
    } else {
        None
    }
}

/// Writes the `--trace-out` / `--metrics-out` dumps, validating each
/// against the `flowplace.obs.v1` schema before touching the file.
fn write_obs_outputs(
    flags: &BTreeMap<String, String>,
    obs: Option<&flowplace::obs::Obs>,
) -> Result<(), String> {
    let Some(obs) = obs else { return Ok(()) };
    for (flag, text) in [
        ("trace-out", obs.trace_json()),
        ("metrics-out", obs.metrics_json()),
    ] {
        if let Some(path) = flags.get(flag) {
            flowplace::obs::validate_obs_json(&text)
                .map_err(|e| format!("--{flag}: invalid dump: {e}"))?;
            std::fs::write(path, &text).map_err(|e| format!("cannot write {path}: {e}"))?;
        }
    }
    Ok(())
}

fn get_usize(flags: &BTreeMap<String, String>, key: &str, default: usize) -> Result<usize, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("--{key}: bad number {v:?}")),
    }
}

fn get_f64(flags: &BTreeMap<String, String>, key: &str, default: f64) -> Result<f64, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => match v.parse::<f64>() {
            Ok(p) if (0.0..=1.0).contains(&p) => Ok(p),
            _ => Err(format!("--{key}: bad probability {v:?} (want 0..=1)")),
        },
    }
}

/// Unclamped non-negative float parser (Zipf exponents and other
/// shape parameters; probabilities go through [`get_f64`]).
fn get_shape_f64(flags: &BTreeMap<String, String>, key: &str, default: f64) -> Result<f64, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => match v.parse::<f64>() {
            Ok(s) if s.is_finite() && s >= 0.0 => Ok(s),
            _ => Err(format!(
                "--{key}: bad value {v:?} (want a finite number >= 0)"
            )),
        },
    }
}

fn build_topology(spec: &str) -> Result<Topology, String> {
    let (kind, params) = spec.split_once(':').unwrap_or((spec, ""));
    match kind {
        "fat-tree" => {
            let k: usize = params
                .parse()
                .map_err(|_| format!("bad fat-tree arity {params:?}"))?;
            Ok(Topology::fat_tree(k))
        }
        "leaf-spine" => {
            let ps: Vec<usize> = params
                .split(',')
                .map(|p| {
                    p.parse()
                        .map_err(|_| format!("bad leaf-spine params {params:?}"))
                })
                .collect::<Result<_, _>>()?;
            if ps.len() != 3 {
                return Err("leaf-spine needs S,L,H".into());
            }
            Ok(Topology::leaf_spine(ps[0], ps[1], ps[2]))
        }
        "linear" => {
            let n: usize = params
                .parse()
                .map_err(|_| format!("bad linear length {params:?}"))?;
            Ok(Topology::linear(n))
        }
        other => Err(format!("unknown topology kind {other:?}")),
    }
}

fn place(args: &[String]) -> ExitCode {
    match place_inner(args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

fn place_inner(args: &[String]) -> Result<ExitCode, String> {
    let (flags, positional) = parse_flags(args)?;
    if !positional.is_empty() {
        return Err(format!("unexpected arguments: {positional:?}"));
    }
    let mut topo = build_topology(
        flags
            .get("topo")
            .map(String::as_str)
            .unwrap_or("fat-tree:4"),
    )?;
    let capacity = get_usize(&flags, "capacity", 40)?;
    topo.set_uniform_capacity(capacity);
    let ingresses = get_usize(&flags, "ingresses", 4)?;
    if ingresses > topo.entry_port_count() {
        return Err(format!(
            "{} ingresses exceed the topology's {} entry ports",
            ingresses,
            topo.entry_port_count()
        ));
    }
    let ppi = get_usize(&flags, "paths", 2)?;
    let seed = get_usize(&flags, "seed", 7)? as u64;

    let routes: RouteSet = shortest::routes_per_ingress(&topo, ppi, seed)
        .iter()
        .filter(|r| r.ingress.0 < ingresses)
        .cloned()
        .collect();

    let policies: Vec<(EntryPortId, Policy)> = match flags.get("policy-file") {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let policy = textfmt::parse_policy(&text).map_err(|e| format!("{path}: {e}"))?;
            (0..ingresses)
                .map(|i| (EntryPortId(i), policy.clone()))
                .collect()
        }
        None => {
            let rules = get_usize(&flags, "rules", 10)?;
            let generator = Generator::new(Profile::Firewall, 16).with_seed(seed);
            (0..ingresses)
                .map(|i| (EntryPortId(i), generator.policy(rules, i as u64)))
                .collect()
        }
    };

    let instance =
        Instance::new(topo, routes, policies).map_err(|e| format!("invalid instance: {e}"))?;
    println!("{instance}");

    let engine = match flags.get("engine").map(String::as_str) {
        None | Some("ilp") => PlacerEngine::Ilp,
        Some("sat") => PlacerEngine::Sat,
        Some(other) => return Err(format!("unknown engine {other:?}")),
    };
    let objective = match flags.get("objective").map(String::as_str) {
        None | Some("rules") => Objective::TotalRules,
        Some("distance") => Objective::DistanceWeighted,
        Some(other) => return Err(format!("unknown objective {other:?}")),
    };
    let time_limit = get_usize(&flags, "time-limit", 60)? as u64;
    let parallel = ParallelConfig {
        threads: get_usize(&flags, "threads", 1)?,
        portfolio: flags.contains_key("portfolio"),
    };
    let options = PlacementOptions {
        engine,
        merging: flags.contains_key("merging"),
        greedy_warm_start: true,
        mip: MipOptions {
            time_limit: Some(std::time::Duration::from_secs(time_limit)),
            ..MipOptions::default()
        },
        parallel,
        sat: parse_sat_options(&flags)?,
        ..PlacementOptions::default()
    };

    if let Some(path) = flags.get("export-lp") {
        let enc = flowplace::core::encode_ilp::IlpEncoding::build(
            &instance,
            &objective,
            &flowplace::core::encode_ilp::EncodeOptions {
                merging: options.merging,
                ..Default::default()
            },
        );
        std::fs::write(path, flowplace::milp::to_lp_format(&enc.model))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote LP model to {path}");
    }

    let obs = obs_requested(&flags);
    let placer = RulePlacer::new(options);
    let outcome = if parallel.is_parallel() || obs.is_some() {
        let par = placer.place_observed(&instance, objective, None, obs.as_ref());
        if parallel.is_parallel() {
            println!(
                "pipeline: {} threads, engine {} (stages: deps {:?}, candidates {:?}, solve {:?})",
                parallel.effective_threads(),
                par.provenance,
                par.stages.depgraphs,
                par.stages.candidates,
                par.stages.solve
            );
        }
        par.outcome
    } else {
        placer
            .place(&instance, objective)
            .expect("placement is infallible")
    };
    write_obs_outputs(&flags, obs.as_ref())?;
    println!(
        "status: {} in {:?} ({} vars, {} rows, {} nodes)",
        outcome.status,
        outcome.stats.elapsed,
        outcome.stats.variables,
        outcome.stats.constraints,
        outcome.stats.nodes
    );
    let Some(placement) = outcome.placement else {
        return Ok(ExitCode::from(1));
    };
    println!(
        "installed {} rules (policies hold {}; duplication overhead {:+.1}%)",
        placement.total_rules(),
        instance.total_policy_rules(),
        placement.duplication_overhead(&instance) * 100.0
    );
    if !placement.merge_groups().is_empty() {
        println!("merge groups realized: {}", placement.merge_groups().len());
    }

    if flags.contains_key("tables") {
        let tabs = tables::emit_tables(&instance, &placement).map_err(|e| e.to_string())?;
        for (i, t) in tabs.iter().enumerate() {
            if !t.is_empty() {
                println!(
                    "-- {} ({} entries)",
                    instance.topology().switch(SwitchId(i)).name,
                    t.len()
                );
                print!("{t}");
            }
        }
    }
    if flags.contains_key("verify") {
        verify::verify_placement(&instance, &placement, 128, seed)
            .map_err(|e| format!("verification FAILED: {e}"))?;
        println!("verification passed");
    }
    Ok(ExitCode::SUCCESS)
}

fn audit(args: &[String]) -> ExitCode {
    match audit_inner(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

fn audit_inner(args: &[String]) -> Result<(), String> {
    let (flags, positional) = parse_flags(args)?;
    let [path] = positional.as_slice() else {
        return Err("audit needs exactly one policy file".into());
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let policy = textfmt::parse_policy(&text).map_err(|e| format!("{path}: {e}"))?;
    println!("{path}: {} rules", policy.len());

    let obs = obs_requested(&flags);
    let mut arena = flowplace::acl::CubeArena::new();
    let report = redundancy::remove_redundant_with(&policy, &mut arena);
    println!(
        "redundant rules: {} ({} kept)",
        report.removed_count(),
        report.policy.len()
    );
    for (id, rule, kind) in &report.removed {
        println!("  {id} {rule} ({kind:?})");
    }
    if let Some(obs) = obs.as_ref() {
        flowplace::core::arena_obs::record_arena_gauges(obs, "redundancy", arena.stats());
    }
    write_obs_outputs(&flags, obs.as_ref())?;

    let graph = DependencyGraph::build(&report.policy);
    println!("{graph}");
    if let Some(dot_path) = flags.get("dot") {
        std::fs::write(dot_path, graph.to_dot(&report.policy))
            .map_err(|e| format!("cannot write {dot_path}: {e}"))?;
        println!("wrote dependency graph to {dot_path}");
    }
    Ok(())
}

fn ctrl(args: &[String]) -> ExitCode {
    match args.first().map(String::as_str) {
        Some("replay") => match ctrl_replay_inner(&args[1..]) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(2)
            }
        },
        _ => {
            eprintln!("usage: flowplace ctrl replay FILE [FLAGS]; try `flowplace help`");
            ExitCode::from(2)
        }
    }
}

fn ctrl_replay_inner(args: &[String]) -> Result<ExitCode, String> {
    use flowplace::ctrl::{parse_fault_schedule, Controller, CtrlOptions, FaultPlan, RetryPolicy};

    let (flags, positional) = parse_flags(args)?;
    let [path] = positional.as_slice() else {
        return Err("ctrl replay needs exactly one trace file".into());
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;

    let mut topo = build_topology(flags.get("topo").map(String::as_str).unwrap_or("linear:4"))?;
    topo.set_uniform_capacity(get_usize(&flags, "capacity", 16)?);

    let mut faults = FaultPlan {
        seed: get_usize(&flags, "fault-seed", 0)? as u64,
        install_reject_rate: get_f64(&flags, "reject-rate", 0.0)?,
        crash_rate: get_f64(&flags, "crash-rate", 0.0)?,
        recover_rate: get_f64(&flags, "recover-rate", 0.0)?,
        ..FaultPlan::default()
    };
    if let Some(fpath) = flags.get("faults") {
        let ftext =
            std::fs::read_to_string(fpath).map_err(|e| format!("cannot read {fpath}: {e}"))?;
        faults.schedule = parse_fault_schedule(&ftext).map_err(|e| format!("{fpath}: {e}"))?;
    }
    let faulty = faults.is_active();

    let placement = flowplace::core::PlacementOptions {
        parallel: ParallelConfig {
            threads: get_usize(&flags, "threads", 1)?,
            portfolio: flags.contains_key("portfolio"),
        },
        sat: parse_sat_options(&flags)?,
        ..flowplace::core::PlacementOptions::default()
    };
    let warm = match flags.get("warm").map(String::as_str) {
        None | Some("on") => flowplace::core::WarmConfig::default(),
        Some("off") => flowplace::core::WarmConfig {
            enabled: false,
            ..flowplace::core::WarmConfig::default()
        },
        Some(other) => return Err(format!("--warm: expected on|off, got {other:?}")),
    };
    let cache = match flags.get("cache") {
        None => flowplace::ctrl::CacheConfig::default(),
        Some(spec) => {
            flowplace::ctrl::CacheConfig::parse_spec(spec).map_err(|e| format!("--cache: {e}"))?
        }
    };
    let caching = cache.enabled;
    let delegation = match flags.get("delegation") {
        None => flowplace::ctrl::DelegationConfig::default(),
        Some(spec) => flowplace::ctrl::DelegationConfig::parse_spec(spec)
            .map_err(|e| format!("--delegation: {e}"))?,
    };
    let options = CtrlOptions {
        batch_size: get_usize(&flags, "batch", 8)?,
        placement,
        warm,
        cache,
        delegation,
        faults,
        retry: RetryPolicy {
            max_attempts: get_usize(&flags, "retries", 4)? as u32,
            ..RetryPolicy::default()
        },
        quarantine_after: get_usize(&flags, "quarantine-after", 3)? as u32,
        ..CtrlOptions::default()
    };
    let verbose = flags.contains_key("verbose");
    let shards = match flags.get("shards") {
        None => None,
        Some(spec) => Some(
            flowplace::ctrl::ShardSpec::parse_spec(spec).map_err(|e| format!("--shards: {e}"))?,
        ),
    };

    let mut ctrl = Controller::new(topo, options);
    if let Some(obs) = obs_requested(&flags) {
        ctrl.attach_obs(obs);
    }
    // With --shards, replay through the shard runtime and unwrap the
    // authoritative controller afterwards: every report below reads the
    // same bytes as an unsharded run, and the shard summary is appended
    // at the end.
    let (reports, shard_summary) = match &shards {
        None => (ctrl.replay_trace(&text).map_err(|e| e.to_string())?, None),
        Some(spec) => {
            let mut sharded =
                flowplace::ctrl::ShardedController::from_controller(ctrl, spec.clone());
            let reports = sharded.replay_trace(&text).map_err(|e| e.to_string())?;
            let summary = render_shard_summary(&sharded);
            ctrl = sharded.into_inner();
            (reports, Some(summary))
        }
    };

    for r in &reports {
        print!(
            "epoch {}: {} events, +{} -{} entries (peak {})",
            r.epoch,
            r.outcomes.len(),
            r.installed,
            r.removed,
            r.peak_occupancy
        );
        if r.injected > 0 {
            print!(", {} faults", r.injected);
        }
        if !r.quarantined.is_empty() {
            print!(", out of service {:?}", r.quarantined);
        }
        if !r.delegated.is_empty() {
            print!(", delegated {:?}", r.delegated);
        }
        if !r.safe_mode.is_empty() {
            print!(", safe mode {:?}", r.safe_mode);
        }
        println!();
        if verbose {
            for (event, outcome) in &r.outcomes {
                println!("  {event}  =>  {outcome:?}");
            }
        }
    }
    let mut cache_violation = false;
    if let Some(fpath) = flags.get("traffic") {
        if !caching {
            return Err("--traffic needs --cache (the flow stream drives the cache tier)".into());
        }
        let ftext =
            std::fs::read_to_string(fpath).map_err(|e| format!("cannot read {fpath}: {e}"))?;
        let flows = flowplace::traffic::parse_flows(&ftext).map_err(|e| format!("{fpath}: {e}"))?;
        let fr = ctrl.process_flows(&flows);
        println!(
            "flows: {} processed ({} hit, {} miss, {} unrouted), hit rate {:.1}%",
            fr.flows,
            fr.hit_flows,
            fr.miss_flows,
            fr.unrouted,
            fr.hit_rate() * 100.0
        );
        println!(
            "cache: {} lookups, {} hits, {} misses, {} inserts, {} evictions",
            fr.lookups, fr.hits, fr.misses, fr.inserts, fr.evictions
        );
        println!(
            "controller load: {} re-solves over {} miss batches, {}ms punt latency",
            fr.resolves, fr.miss_batches, fr.miss_latency_ms
        );
    }
    if caching {
        if let Err(e) = ctrl.cache().audit() {
            eprintln!("cache dependency audit FAILED: {e}");
            cache_violation = true;
        }
        if let Err(e) = ctrl.cache_fail_closed_audit() {
            eprintln!("cache fail-closed audit FAILED: {e}");
            cache_violation = true;
        }
        if ctrl.stats().cache_dep_violations > 0 {
            eprintln!(
                "cache dependency violations: {}",
                ctrl.stats().cache_dep_violations
            );
            cache_violation = true;
        }
        if !cache_violation {
            println!("cache audits: ok");
        }
    }
    println!("{}", ctrl.stats());
    print!("{}", ctrl.dataplane().dump());
    if let Some(summary) = &shard_summary {
        print!("{summary}");
    }
    write_obs_outputs(&flags, ctrl.obs())?;

    if cache_violation {
        return Ok(ExitCode::from(1));
    }
    if faulty {
        // Under injected faults, individual events may legitimately be
        // rejected (degraded service); the pass/fail bar is the no-
        // false-negative invariant, checked by the fail-closed audit.
        match ctrl.fail_closed_audit() {
            Ok(()) => println!("fail-closed audit: ok"),
            Err(e) => {
                eprintln!("fail-closed audit FAILED: {e}");
                return Ok(ExitCode::from(1));
            }
        }
        if ctrl.stats().failclosed_violations > 0 {
            return Ok(ExitCode::from(1));
        }
    } else if ctrl.stats().verify_failures > 0 || ctrl.stats().events_failed > 0 {
        return Ok(ExitCode::from(1));
    }
    Ok(ExitCode::SUCCESS)
}

/// The `--shards` summary appended after the standard replay output
/// (so sharded stdout is the unsharded stdout plus this suffix).
fn render_shard_summary(sharded: &flowplace::ctrl::ShardedController) -> String {
    use std::fmt::Write as _;

    let coord = sharded.coord_stats();
    let verify = sharded.verify_counters();
    let mut out = String::new();
    let _ = writeln!(out, "sharding: {} shards", sharded.spec().shards());
    for (shard, routed) in coord.events_routed.iter().enumerate() {
        let granted = sharded
            .last_arbiter()
            .map_or(0, |a| a.granted_to(shard as u32));
        let _ = writeln!(
            out,
            "  shard{shard}: {routed} events routed, {granted} entries granted"
        );
    }
    let _ = writeln!(
        out,
        "  coordinator: {} epochs, {} global events, {} overgrant alarms",
        coord.epochs, coord.global_events, coord.overgrants
    );
    let _ = writeln!(
        out,
        "  cross-shard merge: {} groups saving {} entries",
        coord.cross_shard_groups, coord.cross_shard_entries_saved
    );
    let _ = writeln!(
        out,
        "  scoped verify: {} sweeps, {} slice-epochs clean / {} full, {} routes skipped / {} verified",
        verify.sweeps, verify.slices_clean, verify.slices_full, verify.routes_skipped, verify.routes_full
    );
    out
}

fn traffic_cmd(args: &[String]) -> ExitCode {
    match args.first().map(String::as_str) {
        Some("gen") => match traffic_gen_inner(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(2)
            }
        },
        _ => {
            eprintln!("usage: flowplace traffic gen [OUT] [FLAGS]; try `flowplace help`");
            ExitCode::from(2)
        }
    }
}

fn traffic_gen_inner(args: &[String]) -> Result<(), String> {
    use flowplace::traffic::{format_flows, generate, BurstConfig, TrafficConfig};

    let (flags, positional) = parse_flags(args)?;
    let out = match positional.as_slice() {
        [] => None,
        [path] => Some(path.clone()),
        more => return Err(format!("unexpected arguments: {more:?}")),
    };
    let burst = match flags.get("burst") {
        None => None,
        Some(spec) => {
            let parts: Vec<u64> = spec
                .split(':')
                .map(|p| p.parse().map_err(|_| format!("--burst: bad spec {spec:?}")))
                .collect::<Result<_, _>>()?;
            let [period_ms, active_ms, multiplier] = parts.as_slice() else {
                return Err(format!("--burst: want PERIOD:ACTIVE:MULT, got {spec:?}"));
            };
            if *period_ms == 0 || *active_ms > *period_ms {
                return Err("--burst: need PERIOD > 0 and ACTIVE <= PERIOD".into());
            }
            Some(BurstConfig {
                period_ms: *period_ms,
                active_ms: *active_ms,
                multiplier: *multiplier,
            })
        }
    };
    let config = TrafficConfig {
        seed: get_usize(&flags, "seed", 7)? as u64,
        rate: get_usize(&flags, "rate", 1000)? as u64,
        duration_ms: get_usize(&flags, "duration", 1000)? as u64,
        zipf: get_shape_f64(&flags, "zipf", 1.1)?,
        ingresses: get_usize(&flags, "ingresses", 4)?,
        width: get_usize(&flags, "width", 16)? as u32,
        flows_per_ingress: get_usize(&flags, "flows", 64)?,
        flowlet_len: get_usize(&flags, "flowlet", 4)? as u64,
        burst,
    };
    if config.ingresses == 0 || config.flows_per_ingress == 0 {
        return Err("--ingresses and --flows must be positive".into());
    }
    if config.width == 0 || config.width > 128 {
        return Err("--width must be in 1..=128".into());
    }
    let flows = generate(&config);
    let text = format_flows(&flows);
    match out {
        Some(path) => {
            std::fs::write(&path, &text).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote {} flow events to {path}", flows.len());
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn obs_cmd(args: &[String]) -> ExitCode {
    match args.first().map(String::as_str) {
        Some("summarize") => match obs_summarize_inner(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(2)
            }
        },
        _ => {
            eprintln!("usage: flowplace obs summarize FILE...; try `flowplace help`");
            ExitCode::from(2)
        }
    }
}

fn obs_summarize_inner(args: &[String]) -> Result<(), String> {
    let (_flags, positional) = parse_flags(args)?;
    if positional.is_empty() {
        return Err("obs summarize needs at least one dump file".into());
    }
    for path in &positional {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let doc = flowplace::obs::validate_obs_json(&text).map_err(|e| format!("{path}: {e}"))?;
        println!("== {path} ({}) ==", doc.kind());
        print!("{}", flowplace::obs::summary::summarize(&doc));
    }
    Ok(())
}

fn gen_policy(args: &[String]) -> ExitCode {
    match gen_policy_inner(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

fn gen_policy_inner(args: &[String]) -> Result<(), String> {
    let (flags, positional) = parse_flags(args)?;
    if !positional.is_empty() {
        return Err(format!("unexpected arguments: {positional:?}"));
    }
    let rules = get_usize(&flags, "rules", 20)?;
    let width = get_usize(&flags, "width", 16)? as u32;
    let seed = get_usize(&flags, "seed", 1)? as u64;
    let profile = match flags.get("profile").map(String::as_str) {
        None | Some("firewall") => Profile::Firewall,
        Some("acl") => Profile::Acl,
        Some("ipchain") => Profile::IpChain,
        Some(other) => return Err(format!("unknown profile {other:?}")),
    };
    let policy = Generator::new(profile, width)
        .with_seed(seed)
        .policy(rules, 0);
    print!("{}", textfmt::format_policy(&policy));
    Ok(())
}

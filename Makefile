# Convenience targets mirroring .github/workflows/ci.yml.
# The workspace is dependency-free: everything runs with --offline.

CARGO ?= cargo

.PHONY: all ci fmt fmt-check clippy no-raw-print build test test-all timing-guard bench-json bench-json-smoke bench-incremental bench-incremental-smoke bench-cache bench-cache-smoke bench-delegation bench-delegation-smoke bench-sat bench-sat-smoke bench-micro bench-micro-smoke bench-shard bench-shard-smoke obs-smoke replay-demo chaos clean

all: ci

## ci: everything CI runs — format check, clippy, print hygiene,
## tier-1 build + tests.
ci: fmt-check clippy no-raw-print test

fmt:
	$(CARGO) fmt --all

fmt-check:
	$(CARGO) fmt --all --check

clippy:
	$(CARGO) clippy --offline --workspace --all-targets -- -D warnings

## no-raw-print: library sources must route output through flowplace-obs
## or a Write sink, never raw print macros (binaries are exempt).
no-raw-print:
	./scripts/no_raw_print.sh

build:
	$(CARGO) build --release --offline

## test: the tier-1 gate (root-package tests against the release build).
test: build
	$(CARGO) test -q --offline

## test-all: every crate in the workspace.
test-all:
	$(CARGO) test -q --offline --workspace

## timing-guard: tier-1 tests under the 2x wall-clock budget
## (scripts/test_timing_baseline.txt) — what CI runs.
timing-guard: build
	./scripts/test_timing_guard.sh

## bench-json: machine-readable pipeline benchmark (BENCH_pipeline.json),
## serial vs parallel+portfolio on the 256/1k/4k ClassBench scenarios.
bench-json:
	$(CARGO) run --release --offline -p flowplace-bench --bin pipeline -- --threads 4

## bench-json-smoke: single-sample schema-validation run (CI), plus the
## obs telemetry smoke (the flowplace.obs.v1 validator gates both dumps),
## the cache-tier smoke (the flowplace.bench.cache.v1 validator), the
## delegation smoke (the flowplace.bench.delegation.v1 validator), the
## CDCL solver smoke (the flowplace.bench.sat.v1 validator, which also
## enforces baseline/modern placement identity), the hot-path micro
## smoke (the flowplace.bench.micro.v1 validator), and the sharded
## controller smoke (the flowplace.bench.shard.v1 validator, which
## also enforces sharded-vs-unsharded byte identity and zero
## overgrants).
bench-json-smoke: obs-smoke bench-cache-smoke bench-delegation-smoke bench-sat-smoke bench-micro-smoke bench-shard-smoke
	$(CARGO) run --release --offline -p flowplace-bench --bin pipeline -- --smoke

## obs-smoke: chaos replay emitting span-trace and metrics dumps; the
## CLI validates both against flowplace.obs.v1 before writing, and the
## summarize pass re-validates on read.
obs-smoke:
	$(CARGO) run --release --offline --bin flowplace -- \
		ctrl replay traces/chaos.trace --batch 4 \
		--faults traces/chaos.faults --fault-seed 42 \
		--reject-rate 0.1 --crash-rate 0.02 --recover-rate 0.5 \
		--trace-out OBS_trace.json --metrics-out OBS_metrics.json
	$(CARGO) run --release --offline --bin flowplace -- \
		obs summarize OBS_trace.json OBS_metrics.json

## bench-incremental: cold vs warm controller epoch re-solves
## (BENCH_incremental.json) over checkpoint/rollback update streams;
## asserts warm stays byte-identical to cold after every epoch.
bench-incremental:
	$(CARGO) run --release --offline -p flowplace-bench --bin incremental_bench

## bench-incremental-smoke: short schema-validation run (CI).
bench-incremental-smoke:
	$(CARGO) run --release --offline -p flowplace-bench --bin incremental_bench -- --smoke

## bench-cache: TCAM-as-cache hit rate and controller load vs cache
## size (BENCH_cache.json) under Zipf traffic on the 256/1k/4k
## ClassBench scenarios; aborts on any dependency-violating eviction.
bench-cache:
	$(CARGO) run --release --offline -p flowplace-bench --bin cache_bench

## bench-cache-smoke: short schema-validation run (CI).
bench-cache-smoke:
	$(CARGO) run --release --offline -p flowplace-bench --bin cache_bench -- --smoke

## bench-delegation: drop-all avoidance rate and delegated-rule overhead
## vs capacity-revocation pressure (BENCH_delegation.json) on the
## 256/1k/4k ClassBench scenarios; each cell runs the identical storm
## with the rung on and off and aborts unless both arms audit fail-closed.
bench-delegation:
	$(CARGO) run --release --offline -p flowplace-bench --bin delegation_bench

## bench-delegation-smoke: short schema-validation run (CI).
bench-delegation-smoke:
	$(CARGO) run --release --offline -p flowplace-bench --bin delegation_bench -- --smoke

## bench-sat: modern CDCL (glucose restarts + learnt-DB reduction) vs
## baseline CDCL (Luby, no reduction) on the SAT placement engine
## (BENCH_sat.json) over the 256/1k/4k ClassBench scenarios; the
## validator aborts unless both arms decoded identical placements.
bench-sat:
	$(CARGO) run --release --offline -p flowplace-bench --bin sat_bench

## bench-sat-smoke: short schema-validation run (CI).
bench-sat-smoke:
	$(CARGO) run --release --offline -p flowplace-bench --bin sat_bench -- --smoke

## bench-micro: hot-path micro benchmarks (BENCH_micro.json) — arena
## allocation counts, batch-vs-scalar classification throughput, and
## verify-replay / epoch latency on the 4k ClassBench scenario; fails
## unless the batch kernel holds its 2x throughput contract.
bench-micro:
	$(CARGO) run --release --offline -p flowplace-bench --bin micro_bench

## bench-micro-smoke: short schema-validation run (CI).
bench-micro-smoke:
	$(CARGO) run --release --offline -p flowplace-bench --bin micro_bench -- --smoke

## bench-shard: sharded-controller throughput and p99 epoch latency vs
## shard count (BENCH_shard.json) under tenant-burst churn; every row
## must be byte-identical to the unsharded controller with zero
## arbiter overgrants, and the full run fails unless 4 shards deliver
## >= 2x 1-shard event throughput on the 4k scenario.
bench-shard:
	$(CARGO) run --release --offline -p flowplace-bench --bin shard_bench

## bench-shard-smoke: short schema-validation run (CI).
bench-shard-smoke:
	$(CARGO) run --release --offline -p flowplace-bench --bin shard_bench -- --smoke

## replay-demo: run the controller on the shipped 50+-event trace.
replay-demo:
	$(CARGO) run --release --offline --bin flowplace -- ctrl replay traces/controller_demo.trace

## chaos: replay the committed chaos trace under the pinned fault seed;
## exits non-zero unless the fail-closed audit is green.
chaos:
	$(CARGO) run --release --offline --bin flowplace -- \
		ctrl replay traces/chaos.trace --batch 4 \
		--faults traces/chaos.faults --fault-seed 42 \
		--reject-rate 0.1 --crash-rate 0.02 --recover-rate 0.5

clean:
	$(CARGO) clean

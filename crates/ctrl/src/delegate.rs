//! Flow delegation: the escalation rung between the full re-solve and
//! per-ingress salvage.
//!
//! The solver can only place rules on switches that lie on an ingress's
//! routes (§IV-A candidates are strictly on-route), so once every
//! on-route TCAM is saturated — or shrunk by a `capacity` fault — the
//! ladder used to fall straight through to salvage and the drop-all
//! safe mode. Flow delegation (Bauer & Zitterbart, arXiv 2109.08482)
//! relieves exactly this bottleneck: the controller *detours* the
//! affected ingress's routes through an off-route neighbor with spare
//! TCAM (the **delegate**), inserted directly after an on-route
//! **anchor** adjacent to it, and re-solves just that ingress against
//! the detoured instance. The detour taps capacity the solver could
//! never otherwise reach; the hop back from the delegate to the
//! anchor's successor is implicit in the route model (routes are
//! ordered switch lists, not link walks).
//!
//! Semantics are preserved by construction: the delegated entries sit
//! on a switch every packet of the detoured route traverses, so the
//! post-commit fail-closed audit proves no-false-negative over the
//! detoured routes exactly as it does over the originals. On the
//! anchor itself the controller installs a low-priority match-all
//! PERMIT *redirect stub* — semantically neutral in the pipeline model
//! (a PERMIT forwards, exactly like no-match) — that models the TCAM
//! slot the hardware redirect rule occupies; like the safe-mode fence
//! it lives in the reserved system bank
//! (see [`TcamEntry::is_delegation_stub`](crate::TcamEntry::is_delegation_stub)).
//!
//! Delegated state is first-class in the fault model: the controller
//! tears a delegation down (restoring the original routes) whenever
//! the delegate or an anchor crashes or is quarantined, re-homing the
//! ingress through the ladder — which may pick a new delegate or go
//! fail-closed — and probes opportunistic undelegation on every lift
//! round by re-solving without the detour first.

use std::collections::BTreeSet;

use flowplace_core::Instance;
use flowplace_routing::{Route, RouteSet};
use flowplace_topo::{EntryPortId, SwitchId};

/// Configuration for the delegation rung.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DelegationConfig {
    /// Master switch. Disabled, the ladder behaves exactly as before
    /// the rung existed: restricted → full → salvage → drop-all.
    pub enabled: bool,
}

impl Default for DelegationConfig {
    fn default() -> Self {
        DelegationConfig { enabled: true }
    }
}

impl DelegationConfig {
    /// Parses a `--delegation` CLI value (`on` or `off`).
    ///
    /// # Errors
    ///
    /// A message naming the offending token.
    pub fn parse_spec(spec: &str) -> Result<DelegationConfig, String> {
        match spec {
            "on" => Ok(DelegationConfig { enabled: true }),
            "off" => Ok(DelegationConfig { enabled: false }),
            other => Err(format!("bad delegation mode {other:?} (want on|off)")),
        }
    }
}

/// One active delegation: the keyed ingress's routes are detoured
/// through `delegate`, inserted after the per-route anchor drawn from
/// `anchors` (the first on-route switch adjacent to the delegate).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Delegation {
    /// The off-route neighbor holding the offloaded entries.
    pub delegate: SwitchId,
    /// The on-route switches the detour branches from (one per route);
    /// each carries a redirect stub while the delegation is active.
    pub anchors: BTreeSet<SwitchId>,
}

/// Picks a delegate for `ingress` deterministically: the
/// smallest-id switch that is off every route of the ingress, passes
/// `spare` (manageable, online, TCAM headroom), and is adjacent to a
/// `usable` on-route switch of *every* route (the per-route anchors).
/// Returns `None` when the ingress has no routes or no such neighbor
/// exists (e.g. full-span routes on a linear topology).
pub(crate) fn plan_delegation(
    instance: &Instance,
    ingress: EntryPortId,
    usable: &dyn Fn(SwitchId) -> bool,
    spare: &dyn Fn(SwitchId) -> bool,
) -> Option<Delegation> {
    let routes: Vec<&Route> = instance
        .routes()
        .iter()
        .filter(|r| r.ingress == ingress)
        .collect();
    if routes.is_empty() {
        return None;
    }
    let on_route: BTreeSet<SwitchId> = routes
        .iter()
        .flat_map(|r| r.switches.iter().copied())
        .collect();
    let topology = instance.topology();
    let mut candidates: BTreeSet<SwitchId> = BTreeSet::new();
    for &s in &on_route {
        if !usable(s) {
            continue;
        }
        for &n in topology.neighbors(s) {
            if !on_route.contains(&n) && spare(n) {
                candidates.insert(n);
            }
        }
    }
    for delegate in candidates {
        let mut anchors = BTreeSet::new();
        let reachable = routes.iter().all(|r| {
            match r
                .switches
                .iter()
                .copied()
                .find(|&s| usable(s) && topology.neighbors(s).contains(&delegate))
            {
                Some(anchor) => {
                    anchors.insert(anchor);
                    true
                }
                None => false,
            }
        });
        if reachable {
            return Some(Delegation { delegate, anchors });
        }
    }
    None
}

/// Rebuilds `instance` with `ingress`'s routes detoured through the
/// delegation's delegate (inserted after the first anchor on each
/// route). Routes already visiting the delegate are left alone;
/// `None` if no route changed.
pub(crate) fn detour_instance(
    instance: &Instance,
    ingress: EntryPortId,
    delegation: &Delegation,
) -> Option<Instance> {
    let mut changed = false;
    let routes: Vec<Route> = instance
        .routes()
        .iter()
        .map(|r| {
            if r.ingress != ingress || r.contains(delegation.delegate) {
                return r.clone();
            }
            let Some(pos) = r
                .switches
                .iter()
                .position(|s| delegation.anchors.contains(s))
            else {
                return r.clone();
            };
            let mut detoured = r.clone();
            detoured.switches.insert(pos + 1, delegation.delegate);
            changed = true;
            detoured
        })
        .collect();
    if !changed {
        return None;
    }
    instance.with_routes(RouteSet::from_routes(routes)).ok()
}

/// Rebuilds `instance` with the delegate removed from every route of
/// `ingress` — the teardown / undelegation inverse of
/// [`detour_instance`].
pub(crate) fn restore_instance(
    instance: &Instance,
    ingress: EntryPortId,
    delegate: SwitchId,
) -> Instance {
    let routes: Vec<Route> = instance
        .routes()
        .iter()
        .map(|r| {
            if r.ingress != ingress || !r.contains(delegate) {
                return r.clone();
            }
            let mut restored = r.clone();
            restored.switches.retain(|&s| s != delegate);
            restored
        })
        .collect();
    instance
        .with_routes(RouteSet::from_routes(routes))
        .expect("removing a detour switch keeps the instance valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowplace_acl::{Action, Policy, Rule, Ternary};
    use flowplace_topo::Topology;

    fn star_instance() -> Instance {
        // hub = s0, leaves = s1..=s4; one route l0: s1 -> s0 -> s2.
        let mut topology = Topology::star(4);
        topology.set_uniform_capacity(4);
        let routes = RouteSet::from_routes(vec![Route::new(
            EntryPortId(0),
            EntryPortId(1),
            vec![SwitchId(1), SwitchId(0), SwitchId(2)],
        )]);
        let policy = Policy::from_rules(vec![
            Rule::new(Ternary::parse("10**").unwrap(), Action::Drop, 2),
            Rule::new(Ternary::parse("****").unwrap(), Action::Permit, 1),
        ])
        .unwrap();
        Instance::new(topology, routes, vec![(EntryPortId(0), policy)]).unwrap()
    }

    #[test]
    fn plans_smallest_offroute_neighbor_with_spare_capacity() {
        let instance = star_instance();
        let d = plan_delegation(&instance, EntryPortId(0), &|_| true, &|_| true)
            .expect("the hub has off-route leaf neighbors");
        // s3 and s4 are off-route; smallest id wins, anchored at the hub.
        assert_eq!(d.delegate, SwitchId(3));
        assert_eq!(d.anchors, BTreeSet::from([SwitchId(0)]));
    }

    #[test]
    fn plan_respects_eligibility_filters() {
        let instance = star_instance();
        // s3 has no spare capacity: s4 is picked instead.
        let d = plan_delegation(&instance, EntryPortId(0), &|_| true, &|s| s != SwitchId(3))
            .expect("s4 remains eligible");
        assert_eq!(d.delegate, SwitchId(4));
        // No usable anchor at all: no delegation.
        assert!(
            plan_delegation(&instance, EntryPortId(0), &|s| s != SwitchId(0), &|_| true).is_none()
        );
        // Unknown ingress: no routes, no delegation.
        assert!(plan_delegation(&instance, EntryPortId(7), &|_| true, &|_| true).is_none());
    }

    #[test]
    fn plan_finds_nothing_on_full_span_linear_routes() {
        // Every neighbor of an on-route switch is itself on-route.
        let mut topology = Topology::linear(3);
        topology.set_uniform_capacity(4);
        let routes = RouteSet::from_routes(vec![Route::new(
            EntryPortId(0),
            EntryPortId(1),
            vec![SwitchId(0), SwitchId(1), SwitchId(2)],
        )]);
        let policy = Policy::from_rules(vec![Rule::new(
            Ternary::parse("****").unwrap(),
            Action::Permit,
            1,
        )])
        .unwrap();
        let instance = Instance::new(topology, routes, vec![(EntryPortId(0), policy)]).unwrap();
        assert!(plan_delegation(&instance, EntryPortId(0), &|_| true, &|_| true).is_none());
    }

    #[test]
    fn detour_and_restore_round_trip() {
        let instance = star_instance();
        let d = plan_delegation(&instance, EntryPortId(0), &|_| true, &|_| true).unwrap();
        let detoured = detour_instance(&instance, EntryPortId(0), &d).expect("route changes");
        let route = detoured.routes().iter().next().unwrap();
        assert_eq!(
            route.switches,
            vec![SwitchId(1), SwitchId(0), SwitchId(3), SwitchId(2)],
            "delegate inserted right after its anchor"
        );
        // Detouring again is a no-op (the delegate is already on-route).
        assert!(detour_instance(&detoured, EntryPortId(0), &d).is_none());
        let restored = restore_instance(&detoured, EntryPortId(0), d.delegate);
        assert_eq!(
            restored.routes().iter().next().unwrap().switches,
            instance.routes().iter().next().unwrap().switches
        );
    }

    #[test]
    fn parse_spec_accepts_on_off_and_names_bad_tokens() {
        assert!(DelegationConfig::parse_spec("on").unwrap().enabled);
        assert!(!DelegationConfig::parse_spec("off").unwrap().enabled);
        let err = DelegationConfig::parse_spec("maybe").unwrap_err();
        assert!(err.contains("\"maybe\""), "{err}");
    }
}

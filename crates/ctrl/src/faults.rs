//! Deterministic dataplane fault injection, retry policy, and per-switch
//! circuit breakers.
//!
//! Chaos runs must be exactly reproducible: every fault is drawn either
//! from a *scripted schedule* (parsed from a fault-trace file) or from a
//! seeded [`flowplace_rng::StdRng`], and all backoff happens on a
//! [`VirtualClock`] that only advances when the controller says so.
//! Replaying the same trace with the same [`FaultPlan`] therefore yields
//! byte-identical epoch reports.
//!
//! ## Fault-schedule format
//!
//! One fault per line; blank lines and `#` comments are ignored. An
//! optional leading `@N` arms the fault when epoch `N` begins (default:
//! epoch 1, i.e. armed from the start).
//!
//! ```text
//! # reject the next 3 TCAM installs on s1
//! fault install-reject s1 3
//! # crash s2 when epoch 4 begins (TCAM contents are lost)
//! @4 fault crash s2
//! # bring s2 back (blank TCAM) when epoch 6 begins
//! @6 fault recover s2
//! # TCAM bank failure: s0's usable capacity shrinks to 4 entries;
//! # entries beyond the surviving capacity are lost
//! @5 fault capacity s0 4
//! ```

use std::collections::BTreeMap;
use std::fmt;

use flowplace_rng::{Rng, StdRng};
use flowplace_topo::SwitchId;

use crate::event::TraceError;

/// One scripted dataplane fault.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Reject the next `count` TCAM install operations on `switch`.
    InstallReject {
        /// The switch whose control channel misbehaves.
        switch: SwitchId,
        /// How many consecutive installs to reject.
        count: u64,
    },
    /// The switch crashes: it stops forwarding and its TCAM is lost.
    Crash {
        /// The crashing switch.
        switch: SwitchId,
    },
    /// A crashed or quarantined switch comes back under control (with a
    /// blank TCAM if it crashed).
    Recover {
        /// The recovering switch.
        switch: SwitchId,
    },
    /// TCAM bank failure: the switch's usable capacity shrinks to
    /// `capacity`; entries beyond it are lost.
    CapacityRevoke {
        /// The degraded switch.
        switch: SwitchId,
        /// The surviving capacity in entries.
        capacity: usize,
    },
}

impl FaultKind {
    /// The fault's schedule keyword (the token after `fault` in its
    /// [`fmt::Display`] form), used as the `kind` label on the
    /// `faults.injected` telemetry counter.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::InstallReject { .. } => "install-reject",
            FaultKind::Crash { .. } => "crash",
            FaultKind::Recover { .. } => "recover",
            FaultKind::CapacityRevoke { .. } => "capacity",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::InstallReject { switch, count } => {
                write!(f, "fault install-reject {switch} {count}")
            }
            FaultKind::Crash { switch } => write!(f, "fault crash {switch}"),
            FaultKind::Recover { switch } => write!(f, "fault recover {switch}"),
            FaultKind::CapacityRevoke { switch, capacity } => {
                write!(f, "fault capacity {switch} {capacity}")
            }
        }
    }
}

/// A fault armed at the start of a specific epoch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScheduledFault {
    /// The epoch whose start arms this fault.
    pub epoch: u64,
    /// What happens.
    pub kind: FaultKind,
}

fn err(line: usize, message: impl Into<String>) -> TraceError {
    TraceError {
        line,
        message: message.into(),
    }
}

fn parse_switch(token: &str, line: usize) -> Result<SwitchId, TraceError> {
    let digits = token.strip_prefix('s').unwrap_or(token);
    digits
        .parse::<usize>()
        .map(SwitchId)
        .map_err(|_| err(line, format!("bad switch `{token}`")))
}

/// Parses a fault-schedule file (see the module docs for the format).
///
/// # Errors
///
/// The first malformed line, with its 1-based line number.
pub fn parse_fault_schedule(text: &str) -> Result<Vec<ScheduledFault>, TraceError> {
    let mut faults = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let mut rest = raw.trim();
        if rest.is_empty() || rest.starts_with('#') {
            continue;
        }
        let mut epoch = 1u64;
        if let Some(stripped) = rest.strip_prefix('@') {
            let (num, tail) = stripped
                .split_once(char::is_whitespace)
                .ok_or_else(|| err(line, "`@N` needs a fault after it"))?;
            epoch = num
                .parse::<u64>()
                .map_err(|_| err(line, format!("bad epoch `@{num}`")))?;
            rest = tail.trim();
        }
        let tokens: Vec<&str> = rest.split_whitespace().collect();
        let kind = match tokens.as_slice() {
            ["fault", "install-reject", s, n] => FaultKind::InstallReject {
                switch: parse_switch(s, line)?,
                count: n
                    .parse::<u64>()
                    .map_err(|_| err(line, format!("bad count `{n}`")))?,
            },
            ["fault", "crash", s] => FaultKind::Crash {
                switch: parse_switch(s, line)?,
            },
            ["fault", "recover", s] => FaultKind::Recover {
                switch: parse_switch(s, line)?,
            },
            ["fault", "capacity", s, c] => FaultKind::CapacityRevoke {
                switch: parse_switch(s, line)?,
                capacity: c
                    .parse::<usize>()
                    .map_err(|_| err(line, format!("bad capacity `{c}`")))?,
            },
            _ => return Err(err(line, format!("unknown fault line `{rest}`"))),
        };
        faults.push(ScheduledFault { epoch, kind });
    }
    Ok(faults)
}

/// Renders a schedule back into the fault-trace format
/// ([`parse_fault_schedule`]'s inverse).
pub fn format_fault_schedule(faults: &[ScheduledFault]) -> String {
    let mut out = String::new();
    for f in faults {
        out.push_str(&format!("@{} {}\n", f.epoch, f.kind));
    }
    out
}

/// Everything that can go wrong with the dataplane, and when: a scripted
/// schedule plus seeded probabilistic rates. The default plan is benign
/// (no faults ever fire), so a controller built with default options
/// behaves exactly like a perfect-dataplane controller.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed for the probabilistic draws (and nothing else — scripted
    /// faults fire regardless).
    pub seed: u64,
    /// Per-install probability that the op is rejected.
    pub install_reject_rate: f64,
    /// Per-switch, per-epoch probability of a crash at epoch start.
    pub crash_rate: f64,
    /// Per-crashed-switch, per-epoch probability of recovery at epoch
    /// start.
    pub recover_rate: f64,
    /// Scripted faults, fired when their epoch begins.
    pub schedule: Vec<ScheduledFault>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            install_reject_rate: 0.0,
            crash_rate: 0.0,
            recover_rate: 0.0,
            schedule: Vec::new(),
        }
    }
}

impl FaultPlan {
    /// True when this plan can ever inject a fault.
    pub fn is_active(&self) -> bool {
        self.install_reject_rate > 0.0 || self.crash_rate > 0.0 || !self.schedule.is_empty()
    }
}

/// Bounded exponential backoff for retried dataplane operations. All
/// delays are virtual (see [`VirtualClock`]); attempt `k` (0-based)
/// waits `min(base_delay_ms << k, max_delay_ms)` before retrying.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per operation (first try included).
    pub max_attempts: u32,
    /// Delay before the first retry, in virtual milliseconds.
    pub base_delay_ms: u64,
    /// Ceiling on any single delay, in virtual milliseconds.
    pub max_delay_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay_ms: 10,
            max_delay_ms: 1_000,
        }
    }
}

impl RetryPolicy {
    /// The backoff delay after failed attempt `attempt` (0-based).
    pub fn delay_ms(&self, attempt: u32) -> u64 {
        let shifted = self
            .base_delay_ms
            .saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX));
        shifted.min(self.max_delay_ms)
    }
}

/// A deterministic monotonic clock in milliseconds. Retry backoff
/// "sleeps" by advancing it; nothing ever reads wall time, so replays
/// are bit-identical.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VirtualClock {
    now_ms: u64,
}

impl VirtualClock {
    /// Current virtual time in milliseconds.
    pub fn now_ms(&self) -> u64 {
        self.now_ms
    }

    /// Advances the clock by `ms`.
    pub fn advance(&mut self, ms: u64) {
        self.now_ms = self.now_ms.saturating_add(ms);
    }
}

/// Per-switch circuit breaker: trips to open (quarantine) after a run of
/// consecutive control-plane failures; any success closes it again.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CircuitBreaker {
    consecutive_failures: u32,
}

impl CircuitBreaker {
    /// Records a failed operation; returns `true` if the run length has
    /// reached `threshold` (the switch should be quarantined).
    pub fn record_failure(&mut self, threshold: u32) -> bool {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        self.consecutive_failures >= threshold.max(1)
    }

    /// Records a successful operation, closing the breaker.
    pub fn record_success(&mut self) {
        self.consecutive_failures = 0;
    }

    /// Resets the breaker (e.g. when the switch recovers).
    pub fn reset(&mut self) {
        self.consecutive_failures = 0;
    }

    /// Current run of consecutive failures.
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures
    }
}

/// The stateful injector: owns the plan, the seeded RNG, the armed
/// install-reject counters, and the scripted-schedule cursor.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: StdRng,
    armed_rejects: BTreeMap<SwitchId, u64>,
    fired: usize,
}

impl FaultInjector {
    /// Creates an injector for `plan`. The schedule is sorted by epoch
    /// (stable, so same-epoch faults keep file order).
    pub fn new(mut plan: FaultPlan) -> Self {
        plan.schedule.sort_by_key(|f| f.epoch);
        let rng = StdRng::seed_from_u64(plan.seed);
        FaultInjector {
            plan,
            rng,
            armed_rejects: BTreeMap::new(),
            fired: 0,
        }
    }

    /// Read access to the plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Pulls every fault due at the start of `epoch`: scripted faults
    /// whose arm-epoch has arrived (install-rejects are armed internally
    /// and not returned), then probabilistic crash/recover draws — one
    /// per switch, in switch order, so the RNG stream is deterministic.
    /// `is_down(s)` reports whether the controller currently considers
    /// `s` out of service (crashed or quarantined).
    pub fn due_at_epoch(
        &mut self,
        epoch: u64,
        switch_count: usize,
        mut is_down: impl FnMut(SwitchId) -> bool,
    ) -> Vec<FaultKind> {
        let mut out = Vec::new();
        while self.fired < self.plan.schedule.len() && self.plan.schedule[self.fired].epoch <= epoch
        {
            let fault = self.plan.schedule[self.fired].kind.clone();
            self.fired += 1;
            match fault {
                FaultKind::InstallReject { switch, count } => {
                    *self.armed_rejects.entry(switch).or_insert(0) += count;
                }
                other => out.push(other),
            }
        }
        if self.plan.crash_rate > 0.0 || self.plan.recover_rate > 0.0 {
            for i in 0..switch_count {
                let s = SwitchId(i);
                // Draw for every switch regardless of state so the
                // stream does not depend on controller decisions.
                let crash = self.plan.crash_rate > 0.0 && self.rng.gen_bool(self.plan.crash_rate);
                let recover =
                    self.plan.recover_rate > 0.0 && self.rng.gen_bool(self.plan.recover_rate);
                if is_down(s) {
                    if recover {
                        out.push(FaultKind::Recover { switch: s });
                    }
                } else if crash {
                    out.push(FaultKind::Crash { switch: s });
                }
            }
        }
        out
    }

    /// Decides one TCAM install on `switch`: `true` = the op goes
    /// through, `false` = the dataplane rejects it. Armed scripted
    /// rejects are consumed first; then the probabilistic rate draws.
    pub fn install_allowed(&mut self, switch: SwitchId) -> bool {
        if let Some(n) = self.armed_rejects.get_mut(&switch) {
            if *n > 0 {
                *n -= 1;
                return false;
            }
        }
        if self.plan.install_reject_rate > 0.0 {
            return !self.rng.gen_bool(self.plan.install_reject_rate);
        }
        true
    }

    /// Scripted install-rejects still armed on `switch`.
    pub fn armed_rejects(&self, switch: SwitchId) -> u64 {
        self.armed_rejects.get(&switch).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_round_trips() {
        let text = "\
# comment

fault install-reject s1 3
@4 fault crash s2
@6 fault recover s2
@5 fault capacity s0 4
";
        let faults = parse_fault_schedule(text).expect("schedule parses");
        assert_eq!(faults.len(), 4);
        assert_eq!(faults[0].epoch, 1);
        assert_eq!(
            faults[0].kind,
            FaultKind::InstallReject {
                switch: SwitchId(1),
                count: 3
            }
        );
        assert_eq!(faults[1].epoch, 4);
        let rendered = format_fault_schedule(&faults);
        let again = parse_fault_schedule(&rendered).expect("round trip parses");
        assert_eq!(faults, again);
    }

    #[test]
    fn schedule_rejects_malformed_lines() {
        assert!(parse_fault_schedule("fault crash").is_err());
        assert!(parse_fault_schedule("fault install-reject s1").is_err());
        assert!(parse_fault_schedule("@x fault crash s1").is_err());
        assert!(parse_fault_schedule("@3").is_err());
        assert!(parse_fault_schedule("fault capacity s0 lots").is_err());
        assert!(parse_fault_schedule("mystery s0").is_err());
        let e = parse_fault_schedule("fault crash s1\nbogus\n").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn scripted_rejects_arm_and_drain() {
        let plan = FaultPlan {
            schedule: parse_fault_schedule("fault install-reject s0 2").unwrap(),
            ..FaultPlan::default()
        };
        let mut inj = FaultInjector::new(plan);
        let due = inj.due_at_epoch(1, 2, |_| false);
        assert!(due.is_empty(), "rejects arm internally: {due:?}");
        assert_eq!(inj.armed_rejects(SwitchId(0)), 2);
        assert!(!inj.install_allowed(SwitchId(0)));
        assert!(!inj.install_allowed(SwitchId(0)));
        assert!(inj.install_allowed(SwitchId(0)), "rejects exhausted");
        assert!(inj.install_allowed(SwitchId(1)), "other switch untouched");
    }

    #[test]
    fn scheduled_faults_fire_at_their_epoch_in_order() {
        let plan = FaultPlan {
            schedule: parse_fault_schedule("@3 fault crash s1\n@2 fault capacity s0 4\n").unwrap(),
            ..FaultPlan::default()
        };
        let mut inj = FaultInjector::new(plan);
        assert!(inj.due_at_epoch(1, 2, |_| false).is_empty());
        assert_eq!(
            inj.due_at_epoch(2, 2, |_| false),
            vec![FaultKind::CapacityRevoke {
                switch: SwitchId(0),
                capacity: 4
            }]
        );
        assert_eq!(
            inj.due_at_epoch(3, 2, |_| false),
            vec![FaultKind::Crash {
                switch: SwitchId(1)
            }]
        );
        assert!(inj.due_at_epoch(4, 2, |_| false).is_empty());
    }

    #[test]
    fn probabilistic_draws_are_deterministic_in_seed() {
        let plan = FaultPlan {
            seed: 99,
            install_reject_rate: 0.5,
            crash_rate: 0.3,
            recover_rate: 0.5,
            ..FaultPlan::default()
        };
        let run = || {
            let mut inj = FaultInjector::new(plan.clone());
            let mut log = Vec::new();
            for epoch in 1..=8 {
                log.push(inj.due_at_epoch(epoch, 3, |s| s.0 == 2));
                log.push(
                    (0..4)
                        .map(|_| {
                            if inj.install_allowed(SwitchId(0)) {
                                FaultKind::Recover {
                                    switch: SwitchId(0),
                                }
                            } else {
                                FaultKind::Crash {
                                    switch: SwitchId(0),
                                }
                            }
                        })
                        .collect(),
                );
            }
            log
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn backoff_is_bounded_exponential() {
        let retry = RetryPolicy {
            max_attempts: 6,
            base_delay_ms: 10,
            max_delay_ms: 70,
        };
        let delays: Vec<u64> = (0..6).map(|a| retry.delay_ms(a)).collect();
        assert_eq!(delays, vec![10, 20, 40, 70, 70, 70]);
        // Huge attempt numbers saturate instead of overflowing.
        assert_eq!(retry.delay_ms(200), 70);
    }

    #[test]
    fn breaker_trips_on_consecutive_failures_only() {
        let mut b = CircuitBreaker::default();
        assert!(!b.record_failure(3));
        assert!(!b.record_failure(3));
        b.record_success();
        assert!(!b.record_failure(3), "success resets the run");
        assert!(!b.record_failure(3));
        assert!(b.record_failure(3), "third consecutive failure trips");
        b.reset();
        assert_eq!(b.consecutive_failures(), 0);
    }

    #[test]
    fn virtual_clock_advances_monotonically() {
        let mut c = VirtualClock::default();
        c.advance(10);
        c.advance(25);
        assert_eq!(c.now_ms(), 35);
        c.advance(u64::MAX);
        assert_eq!(c.now_ms(), u64::MAX, "saturates");
    }
}

//! # flowplace-ctrl — the placement controller runtime
//!
//! The solver crates answer one-shot questions; this crate runs
//! placement as a long-lived controller. A [`Controller`] owns the
//! deployed [`Instance`] + [`Placement`] pair and a simulated
//! [`DataPlane`], consumes a bounded queue of typed [`Event`]s, and
//! commits them in batched *epochs*.
//!
//! ## Escalation ladder
//!
//! Every mutating event is dispatched through up to three tiers,
//! stopping at the first that succeeds:
//!
//! 1. **Greedy** — the §IV-E incremental operations from
//!    [`flowplace_core::incremental`] (constant-ish work, no solver).
//! 2. **Restricted** — re-solve only the affected ingress's policy
//!    against the spare capacity left by every frozen placement.
//! 3. **Full** — re-solve the entire instance from scratch.
//!
//! ## Transactional commits
//!
//! At the end of each epoch the controller emits the target tables for
//! the new placement, verifies them against the golden model
//! ([`flowplace_core::verify`]), and applies the table diff to the
//! dataplane with make-before-break semantics — installs land before
//! deletes, so the §IV-A no-false-negative guarantee holds during the
//! transition. A failed verification discards the whole epoch: the
//! deployed state never changes.

#![warn(missing_docs)]

pub mod dataplane;
pub mod epoch;
pub mod event;
pub mod stats;

use std::collections::VecDeque;
use std::fmt;

use flowplace_acl::Policy;
use flowplace_core::tables::emit_tables;
use flowplace_core::{
    incremental, verify, Instance, Objective, Placement, PlacementOptions, RulePlacer,
};
use flowplace_routing::{Route, RouteSet};
use flowplace_topo::{EntryPortId, Topology};

pub use dataplane::{ApplyReport, DataPlane, DataPlaneError, RuleDiff, SwitchTcam, TcamEntry};
pub use epoch::{EpochLog, Snapshot};
pub use event::{format_trace, parse_trace, Event, TraceError};
pub use stats::CtrlStats;

/// Which rung of the escalation ladder settled an event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tier {
    /// Greedy incremental deployment (§IV-E), no solver run.
    Greedy,
    /// Restricted sub-problem re-solve against spare capacity.
    Restricted,
    /// Full re-solve of the whole instance.
    Full,
}

impl fmt::Display for Tier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tier::Greedy => write!(f, "greedy"),
            Tier::Restricted => write!(f, "restricted"),
            Tier::Full => write!(f, "full"),
        }
    }
}

/// What happened to one event inside an epoch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventOutcome {
    /// The event was applied at the given tier.
    Applied(Tier),
    /// A checkpoint was taken.
    Checkpoint,
    /// The working state was rolled back to the snapshot taken at the
    /// given epoch.
    RolledBack {
        /// Epoch counter of the restored snapshot.
        to_epoch: u64,
    },
    /// The event could not be applied; the working state is unchanged.
    Rejected {
        /// Human-readable reason.
        reason: String,
    },
}

/// The result of committing one epoch.
#[derive(Clone, Debug)]
pub struct EpochReport {
    /// The committed epoch number.
    pub epoch: u64,
    /// Each processed event with its outcome, in order.
    pub outcomes: Vec<(Event, EventOutcome)>,
    /// TCAM entries installed by this epoch's diff.
    pub installed: usize,
    /// TCAM entries removed by this epoch's diff.
    pub removed: usize,
    /// Peak per-switch occupancy during the transition.
    pub peak_occupancy: usize,
}

impl EpochReport {
    /// Tiers of the applied events, in order.
    pub fn tiers(&self) -> Vec<Tier> {
        self.outcomes
            .iter()
            .filter_map(|(_, o)| match o {
                EventOutcome::Applied(t) => Some(*t),
                _ => None,
            })
            .collect()
    }
}

/// Controller configuration.
#[derive(Clone, Debug)]
pub struct CtrlOptions {
    /// Maximum events coalesced into one epoch.
    pub batch_size: usize,
    /// Bounded queue size; submissions past it are rejected
    /// (backpressure).
    pub queue_capacity: usize,
    /// Snapshots retained for rollback.
    pub checkpoint_depth: usize,
    /// Random packets per route in the commit-time verification, on top
    /// of the deterministic rule-corner packets.
    pub verify_packets: usize,
    /// Solver configuration for restricted and full tiers.
    pub placement: PlacementOptions,
    /// Objective for restricted and full tiers.
    pub objective: Objective,
}

impl Default for CtrlOptions {
    fn default() -> Self {
        CtrlOptions {
            batch_size: 8,
            queue_capacity: 1024,
            checkpoint_depth: 8,
            verify_packets: 8,
            placement: PlacementOptions::default(),
            objective: Objective::default(),
        }
    }
}

/// Controller-level error. Event-level failures (an infeasible add, a
/// bad rule id) do *not* surface here — they are recorded per event in
/// the [`EpochReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CtrlError {
    /// The event queue is full; the event was not accepted.
    QueueFull {
        /// The configured queue capacity.
        capacity: usize,
    },
    /// A trace file failed to parse.
    Trace(TraceError),
    /// Commit-time verification failed; the epoch was discarded.
    VerifyFailed {
        /// The epoch that was discarded.
        epoch: u64,
        /// The verifier's report.
        detail: String,
    },
    /// Table emission failed for the new placement.
    Table(String),
    /// The dataplane refused the diff.
    DataPlane(DataPlaneError),
}

impl fmt::Display for CtrlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtrlError::QueueFull { capacity } => {
                write!(f, "event queue full (capacity {capacity})")
            }
            CtrlError::Trace(e) => write!(f, "{e}"),
            CtrlError::VerifyFailed { epoch, detail } => {
                write!(f, "epoch {epoch} failed verification: {detail}")
            }
            CtrlError::Table(e) => write!(f, "table emission failed: {e}"),
            CtrlError::DataPlane(e) => write!(f, "dataplane: {e}"),
        }
    }
}

impl std::error::Error for CtrlError {}

impl From<TraceError> for CtrlError {
    fn from(e: TraceError) -> Self {
        CtrlError::Trace(e)
    }
}

impl From<DataPlaneError> for CtrlError {
    fn from(e: DataPlaneError) -> Self {
        CtrlError::DataPlane(e)
    }
}

/// The single-threaded, deterministic placement controller.
#[derive(Clone, Debug)]
pub struct Controller {
    instance: Instance,
    placement: Placement,
    dataplane: DataPlane,
    epochs: EpochLog,
    queue: VecDeque<Event>,
    options: CtrlOptions,
    stats: CtrlStats,
}

impl Controller {
    /// Creates a controller managing a bare topology: no routes, no
    /// policies, an empty dataplane. Policies arrive later via
    /// [`Event::InstallPolicy`].
    pub fn new(topology: Topology, options: CtrlOptions) -> Controller {
        let capacities = topology.capacities();
        let instance = Instance::new(topology, RouteSet::new(), Vec::new())
            .expect("an instance with no routes or policies is always valid");
        Controller {
            instance,
            placement: Placement::default(),
            dataplane: DataPlane::new(capacities),
            epochs: EpochLog::new(options.checkpoint_depth),
            queue: VecDeque::new(),
            options,
            stats: CtrlStats::default(),
        }
    }

    /// Creates a controller around an existing instance, solving and
    /// deploying it as epoch 1.
    ///
    /// # Errors
    ///
    /// [`CtrlError::VerifyFailed`] / [`CtrlError::DataPlane`] if the
    /// initial deployment cannot be established (including an
    /// infeasible instance, surfaced as a verify-free dataplane
    /// mismatch via [`CtrlError::Table`]).
    pub fn with_instance(
        instance: Instance,
        options: CtrlOptions,
    ) -> Result<Controller, CtrlError> {
        let mut ctrl = Controller::new(instance.topology().clone(), options);
        ctrl.instance = instance;
        ctrl.submit(Event::Solve)
            .expect("fresh queue accepts one event");
        ctrl.run_to_idle()?;
        Ok(ctrl)
    }

    /// The deployed instance.
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// The deployed placement.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// The simulated dataplane.
    pub fn dataplane(&self) -> &DataPlane {
        &self.dataplane
    }

    /// Cumulative counters.
    pub fn stats(&self) -> &CtrlStats {
        &self.stats
    }

    /// The last committed epoch.
    pub fn epoch(&self) -> u64 {
        self.epochs.current()
    }

    /// Events waiting in the queue.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Enqueues an event.
    ///
    /// # Errors
    ///
    /// [`CtrlError::QueueFull`] when the bounded queue is at capacity;
    /// the rejection is counted in [`CtrlStats::events_rejected`].
    pub fn submit(&mut self, event: Event) -> Result<(), CtrlError> {
        if self.queue.len() >= self.options.queue_capacity {
            self.stats.events_rejected += 1;
            return Err(CtrlError::QueueFull {
                capacity: self.options.queue_capacity,
            });
        }
        self.queue.push_back(event);
        self.stats.events_in += 1;
        self.stats.max_queue_depth = self.stats.max_queue_depth.max(self.queue.len());
        Ok(())
    }

    /// Processes one batch of queued events (up to `batch_size`) as a
    /// single epoch: dispatch each event through the escalation ladder,
    /// verify the resulting placement, and commit the coalesced diff to
    /// the dataplane transactionally.
    ///
    /// Returns `Ok(None)` when the queue is empty. Event-level failures
    /// are recorded in the report; an `Err` means the whole epoch was
    /// discarded (deployed state unchanged).
    ///
    /// # Errors
    ///
    /// See [`CtrlError`].
    pub fn run_epoch(&mut self) -> Result<Option<EpochReport>, CtrlError> {
        if self.queue.is_empty() {
            return Ok(None);
        }
        let epoch = self.epochs.next();
        let take = self.options.batch_size.max(1).min(self.queue.len());
        let batch: Vec<Event> = self.queue.drain(..take).collect();

        // Working copy: events mutate this; the deployed pair is only
        // replaced if the commit below succeeds.
        let mut instance = self.instance.clone();
        let mut placement = self.placement.clone();
        let mut outcomes = Vec::with_capacity(batch.len());

        for event in batch {
            let outcome = match &event {
                Event::Checkpoint => {
                    self.epochs.checkpoint(instance.clone(), placement.clone());
                    self.stats.checkpoints += 1;
                    EventOutcome::Checkpoint
                }
                Event::Rollback => match self.epochs.rollback() {
                    Some(snap) => {
                        instance = snap.instance;
                        placement = snap.placement;
                        self.stats.rollbacks += 1;
                        EventOutcome::RolledBack {
                            to_epoch: snap.epoch,
                        }
                    }
                    None => {
                        self.stats.events_failed += 1;
                        EventOutcome::Rejected {
                            reason: "nothing to roll back".into(),
                        }
                    }
                },
                _ => match self.dispatch(&instance, &placement, &event) {
                    Ok((ni, np, tier)) => {
                        instance = ni;
                        placement = np;
                        match tier {
                            Tier::Greedy => self.stats.greedy_ok += 1,
                            Tier::Restricted => self.stats.restricted_ok += 1,
                            Tier::Full => self.stats.full_ok += 1,
                        }
                        EventOutcome::Applied(tier)
                    }
                    Err(reason) => {
                        self.stats.events_failed += 1;
                        EventOutcome::Rejected { reason }
                    }
                },
            };
            outcomes.push((event, outcome));
        }

        // Commit: verify, then diff + transactional apply.
        let tables =
            emit_tables(&instance, &placement).map_err(|e| CtrlError::Table(e.to_string()))?;
        if let Err(e) =
            verify::verify_placement(&instance, &placement, self.options.verify_packets, epoch)
        {
            self.stats.verify_failures += 1;
            return Err(CtrlError::VerifyFailed {
                epoch,
                detail: e.to_string(),
            });
        }
        let target = DataPlane::target_from_tables(&tables);
        self.dataplane
            .set_capacities(&instance.topology().capacities());
        let diff = self.dataplane.diff_to(&target)?;
        let report = self.dataplane.apply(&diff)?;

        self.instance = instance;
        self.placement = placement;
        self.epochs.advance();
        self.stats.epochs += 1;
        if !diff.is_empty() {
            self.stats.diffs_applied += 1;
        }
        self.stats.entries_installed += report.installed as u64;
        self.stats.entries_removed += report.removed as u64;
        self.stats.peak_tcam_occupancy = self.stats.peak_tcam_occupancy.max(report.peak_occupancy);

        Ok(Some(EpochReport {
            epoch,
            outcomes,
            installed: report.installed,
            removed: report.removed,
            peak_occupancy: report.peak_occupancy,
        }))
    }

    /// Runs epochs until the queue drains.
    ///
    /// # Errors
    ///
    /// See [`run_epoch`](Controller::run_epoch).
    pub fn run_to_idle(&mut self) -> Result<Vec<EpochReport>, CtrlError> {
        let mut reports = Vec::new();
        while let Some(report) = self.run_epoch()? {
            reports.push(report);
        }
        Ok(reports)
    }

    /// Feeds a stream of events through the controller, draining the
    /// queue whenever backpressure would reject a submission.
    ///
    /// # Errors
    ///
    /// See [`run_epoch`](Controller::run_epoch).
    pub fn replay(
        &mut self,
        events: impl IntoIterator<Item = Event>,
    ) -> Result<Vec<EpochReport>, CtrlError> {
        let mut reports = Vec::new();
        for event in events {
            if self.queue.len() >= self.options.queue_capacity {
                reports.extend(self.run_to_idle()?);
            }
            self.submit(event)?;
        }
        reports.extend(self.run_to_idle()?);
        Ok(reports)
    }

    /// Parses a text trace (see [`event`]) and replays it.
    ///
    /// # Errors
    ///
    /// [`CtrlError::Trace`] on parse failure, otherwise as
    /// [`replay`](Controller::replay).
    pub fn replay_trace(&mut self, text: &str) -> Result<Vec<EpochReport>, CtrlError> {
        let events = parse_trace(text)?;
        self.replay(events)
    }

    /// Dispatches one mutating event through the escalation ladder.
    /// Returns the updated working state and the tier that settled it,
    /// or a rejection reason (working state untouched).
    fn dispatch(
        &self,
        instance: &Instance,
        placement: &Placement,
        event: &Event,
    ) -> Result<(Instance, Placement, Tier), String> {
        match event {
            Event::AddRule { ingress, rule } => {
                match incremental::add_rule_greedy(instance, placement, *ingress, *rule) {
                    Ok(out) => {
                        if let Some(p) = out.placement {
                            return Ok((out.instance, p, Tier::Greedy));
                        }
                    }
                    Err(e) => return Err(e.to_string()),
                }
                let policy = instance
                    .policy(*ingress)
                    .expect("greedy tier validated the ingress");
                let updated = policy.with_rule(*rule).map_err(|e| e.to_string())?;
                self.replace_policy_laddered(instance, placement, *ingress, updated)
            }
            Event::RemoveRule { ingress, rule } => {
                match incremental::remove_rule(instance, placement, *ingress, *rule) {
                    Ok(out) => {
                        let p = out.placement.ok_or_else(|| {
                            "removal unexpectedly produced no placement".to_string()
                        })?;
                        Ok((out.instance, p, Tier::Greedy))
                    }
                    Err(e) => Err(e.to_string()),
                }
            }
            Event::ModifyRule {
                ingress,
                rule,
                replacement,
            } => {
                match incremental::modify_rule(instance, placement, *ingress, *rule, *replacement) {
                    Ok(out) => {
                        if let Some(p) = out.placement {
                            return Ok((out.instance, p, Tier::Greedy));
                        }
                    }
                    Err(e) => return Err(e.to_string()),
                }
                let policy = instance
                    .policy(*ingress)
                    .expect("greedy tier validated the ingress");
                let updated = policy
                    .without_rule(*rule)
                    .with_rule(*replacement)
                    .map_err(|e| e.to_string())?;
                self.replace_policy_laddered(instance, placement, *ingress, updated)
            }
            Event::InstallPolicy {
                ingress,
                policy,
                routes,
            } => {
                match incremental::install_policies(
                    instance,
                    placement,
                    vec![(*ingress, policy.clone(), routes.clone())],
                    &self.options.placement,
                    self.options.objective.clone(),
                ) {
                    Ok(out) => {
                        if let Some(p) = out.placement {
                            return Ok((out.instance, p, Tier::Restricted));
                        }
                    }
                    Err(e) => return Err(e.to_string()),
                }
                // Full: rebuild the instance with the policy and routes
                // included, re-solve everything.
                let mut policies: Vec<(EntryPortId, Policy)> =
                    instance.policies().map(|(l, q)| (l, q.clone())).collect();
                policies.push((*ingress, policy.clone()));
                let all_routes: RouteSet = instance
                    .routes()
                    .iter()
                    .chain(routes.iter())
                    .cloned()
                    .collect();
                let updated = Instance::new(instance.topology().clone(), all_routes, policies)
                    .map_err(|e| e.to_string())?;
                let solved = self.full_solve(&updated)?;
                Ok((updated, solved, Tier::Full))
            }
            Event::Reroute { ingress, routes } => {
                match incremental::reroute_policy(
                    instance,
                    placement,
                    *ingress,
                    routes.clone(),
                    &self.options.placement,
                    self.options.objective.clone(),
                ) {
                    Ok(out) => {
                        if let Some(p) = out.placement {
                            return Ok((out.instance, p, Tier::Restricted));
                        }
                    }
                    Err(e) => return Err(e.to_string()),
                }
                let all_routes: RouteSet = instance
                    .routes()
                    .iter()
                    .filter(|r| r.ingress != *ingress)
                    .chain(routes.iter())
                    .cloned()
                    .collect();
                let updated = instance
                    .with_routes(all_routes)
                    .map_err(|e| e.to_string())?;
                let solved = self.full_solve(&updated)?;
                Ok((updated, solved, Tier::Full))
            }
            Event::CapacityChange { switch, capacity } => {
                if switch.0 >= instance.topology().switch_count() {
                    return Err(format!("unknown switch {switch}"));
                }
                let mut topology = instance.topology().clone();
                topology.set_capacity(*switch, *capacity);
                let policies: Vec<(EntryPortId, Policy)> =
                    instance.policies().map(|(l, q)| (l, q.clone())).collect();
                let updated = Instance::new(topology, instance.routes().clone(), policies)
                    .map_err(|e| e.to_string())?;
                let load = placement.per_switch_load(instance);
                if load.get(switch.0).copied().unwrap_or(0) <= *capacity {
                    // The deployed placement still fits: no solver run.
                    return Ok((updated, placement.clone(), Tier::Greedy));
                }
                let solved = self.full_solve(&updated)?;
                Ok((updated, solved, Tier::Full))
            }
            Event::Solve => {
                let solved = self.full_solve(instance)?;
                Ok((instance.clone(), solved, Tier::Full))
            }
            Event::Checkpoint | Event::Rollback => {
                unreachable!("handled in run_epoch")
            }
        }
    }

    /// Restricted → full ladder shared by `AddRule` and `ModifyRule`
    /// once the greedy tier came up empty: re-place only this ingress's
    /// (already updated) policy over its existing routes against the
    /// spare capacity of the frozen rest, then fall back to a global
    /// re-solve.
    fn replace_policy_laddered(
        &self,
        instance: &Instance,
        placement: &Placement,
        ingress: EntryPortId,
        updated_policy: Policy,
    ) -> Result<(Instance, Placement, Tier), String> {
        let mut policies: Vec<(EntryPortId, Policy)> =
            instance.policies().map(|(l, q)| (l, q.clone())).collect();
        match policies.iter_mut().find(|(l, _)| *l == ingress) {
            Some(slot) => slot.1 = updated_policy,
            None => return Err(format!("ingress {ingress} has no policy")),
        }
        let updated = Instance::new(
            instance.topology().clone(),
            instance.routes().clone(),
            policies,
        )
        .map_err(|e| e.to_string())?;
        let routes: Vec<Route> = updated
            .routes()
            .iter()
            .filter(|r| r.ingress == ingress)
            .cloned()
            .collect();
        match incremental::reroute_policy(
            &updated,
            placement,
            ingress,
            routes,
            &self.options.placement,
            self.options.objective.clone(),
        ) {
            Ok(out) => {
                if let Some(p) = out.placement {
                    return Ok((out.instance, p, Tier::Restricted));
                }
            }
            Err(e) => return Err(e.to_string()),
        }
        let solved = self.full_solve(&updated)?;
        Ok((updated, solved, Tier::Full))
    }

    /// Full re-solve of `instance`; error if no feasible placement
    /// exists.
    fn full_solve(&self, instance: &Instance) -> Result<Placement, String> {
        let outcome = RulePlacer::new(self.options.placement.clone())
            .place(instance, self.options.objective.clone())
            .expect("PlaceError is uninhabited");
        outcome
            .placement
            .ok_or_else(|| format!("full re-solve failed: {}", outcome.status))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowplace_acl::{Action, Rule, Ternary};
    use flowplace_topo::SwitchId;

    fn t(bits: &str) -> Ternary {
        Ternary::parse(bits).unwrap()
    }

    fn small_controller(capacity: usize) -> Controller {
        let mut topo = Topology::linear(3);
        topo.set_uniform_capacity(capacity);
        Controller::new(topo, CtrlOptions::default())
    }

    fn install(ingress: usize, egress: usize, switches: &[usize]) -> Event {
        Event::InstallPolicy {
            ingress: EntryPortId(ingress),
            policy: Policy::from_rules(vec![
                Rule::new(t("10**"), Action::Drop, 2),
                Rule::new(t("****"), Action::Permit, 1),
            ])
            .unwrap(),
            routes: vec![Route::new(
                EntryPortId(ingress),
                EntryPortId(egress),
                switches.iter().map(|&s| SwitchId(s)).collect(),
            )],
        }
    }

    #[test]
    fn install_then_add_rule_greedy() {
        let mut ctrl = small_controller(10);
        ctrl.submit(install(0, 2, &[0, 1, 2])).unwrap();
        ctrl.submit(Event::AddRule {
            ingress: EntryPortId(0),
            rule: Rule::new(t("01**"), Action::Drop, 3),
        })
        .unwrap();
        let reports = ctrl.run_to_idle().unwrap();
        assert_eq!(reports.len(), 1, "both events coalesce into one epoch");
        assert_eq!(
            reports[0].tiers(),
            vec![Tier::Restricted, Tier::Greedy],
            "install settles restricted, add settles greedy"
        );
        assert_eq!(ctrl.epoch(), 1);
        // Both DROP rules are deployed somewhere (the trailing PERMIT is
        // the default action and costs no TCAM entry).
        assert!(ctrl.dataplane().total_occupancy() >= 2);
        assert_eq!(ctrl.stats().verify_failures, 0);
    }

    #[test]
    fn batching_coalesces_to_one_diff() {
        let mut ctrl = small_controller(16);
        ctrl.submit(install(0, 2, &[0, 1, 2])).unwrap();
        for p in 3..7 {
            ctrl.submit(Event::AddRule {
                ingress: EntryPortId(0),
                rule: Rule::new(t(&format!("{:02b}**", p % 4)), Action::Drop, p),
            })
            .unwrap();
        }
        let reports = ctrl.run_to_idle().unwrap();
        assert_eq!(reports.len(), 1, "5 events, batch_size 8, one epoch");
        assert_eq!(ctrl.stats().epochs, 1);
        assert_eq!(ctrl.stats().diffs_applied, 1);
    }

    #[test]
    fn backpressure_rejects_past_capacity() {
        let mut ctrl = Controller::new(
            Topology::linear(2),
            CtrlOptions {
                queue_capacity: 2,
                ..CtrlOptions::default()
            },
        );
        ctrl.submit(Event::Solve).unwrap();
        ctrl.submit(Event::Solve).unwrap();
        assert!(matches!(
            ctrl.submit(Event::Solve),
            Err(CtrlError::QueueFull { capacity: 2 })
        ));
        assert_eq!(ctrl.stats().events_rejected, 1);
        assert_eq!(ctrl.stats().max_queue_depth, 2);
    }

    #[test]
    fn checkpoint_rollback_restores_state() {
        let mut ctrl = small_controller(10);
        ctrl.submit(install(0, 2, &[0, 1, 2])).unwrap();
        ctrl.run_to_idle().unwrap();
        let dump_before = ctrl.dataplane().dump();

        ctrl.submit(Event::Checkpoint).unwrap();
        ctrl.submit(Event::AddRule {
            ingress: EntryPortId(0),
            rule: Rule::new(t("11**"), Action::Drop, 5),
        })
        .unwrap();
        ctrl.submit(Event::Rollback).unwrap();
        ctrl.run_to_idle().unwrap();

        assert_eq!(ctrl.dataplane().dump(), dump_before);
        assert_eq!(ctrl.stats().checkpoints, 1);
        assert_eq!(ctrl.stats().rollbacks, 1);
        assert_eq!(ctrl.instance().policy(EntryPortId(0)).unwrap().len(), 2);
    }

    #[test]
    fn rollback_without_checkpoint_is_rejected() {
        let mut ctrl = small_controller(10);
        ctrl.submit(Event::Rollback).unwrap();
        let reports = ctrl.run_to_idle().unwrap();
        assert!(matches!(
            reports[0].outcomes[0].1,
            EventOutcome::Rejected { .. }
        ));
        assert_eq!(ctrl.stats().events_failed, 1);
    }

    #[test]
    fn capacity_change_keeps_placement_when_it_fits() {
        let mut ctrl = small_controller(10);
        ctrl.submit(install(0, 2, &[0, 1, 2])).unwrap();
        ctrl.run_to_idle().unwrap();
        let before = ctrl.placement().clone();
        ctrl.submit(Event::CapacityChange {
            switch: SwitchId(1),
            capacity: 9,
        })
        .unwrap();
        let reports = ctrl.run_to_idle().unwrap();
        assert_eq!(reports[0].tiers(), vec![Tier::Greedy]);
        assert_eq!(*ctrl.placement(), before);
    }

    #[test]
    fn infeasible_event_is_rejected_not_fatal() {
        let mut ctrl = small_controller(1);
        // The DROP drags its overlapping higher-priority PERMIT shield
        // onto the same switch: 2 entries cannot fit capacity 1.
        ctrl.submit(Event::InstallPolicy {
            ingress: EntryPortId(0),
            policy: Policy::from_rules(vec![
                Rule::new(t("10**"), Action::Permit, 2),
                Rule::new(t("1***"), Action::Drop, 1),
            ])
            .unwrap(),
            routes: vec![Route::new(
                EntryPortId(0),
                EntryPortId(2),
                vec![SwitchId(0), SwitchId(1), SwitchId(2)],
            )],
        })
        .unwrap();
        let reports = ctrl.run_to_idle().unwrap();
        assert!(matches!(
            reports[0].outcomes[0].1,
            EventOutcome::Rejected { .. }
        ));
        assert_eq!(ctrl.stats().events_failed, 1);
        assert_eq!(ctrl.dataplane().total_occupancy(), 0);
    }

    #[test]
    fn replay_is_deterministic() {
        let trace = "\
install-policy l0 via l2:s0-s1-s2 rules 10**:drop:2,****:permit:1
add-rule l0 01** drop 3
capacity s1 6
add-rule l0 11** drop 4
";
        let run = |_: usize| {
            let mut ctrl = small_controller(8);
            ctrl.replay_trace(trace).unwrap();
            (ctrl.dataplane().dump(), ctrl.stats().clone())
        };
        let (dump_a, stats_a) = run(0);
        let (dump_b, stats_b) = run(1);
        assert_eq!(dump_a, dump_b);
        assert_eq!(stats_a, stats_b);
    }
}

//! # flowplace-ctrl — the placement controller runtime
//!
//! The solver crates answer one-shot questions; this crate runs
//! placement as a long-lived controller. A [`Controller`] owns the
//! deployed [`Instance`] + [`Placement`] pair and a simulated
//! [`DataPlane`], consumes a bounded queue of typed [`Event`]s, and
//! commits them in batched *epochs*.
//!
//! ## Escalation ladder
//!
//! Every mutating event is dispatched through up to three tiers,
//! stopping at the first that succeeds:
//!
//! 1. **Greedy** — the §IV-E incremental operations from
//!    [`flowplace_core::incremental`] (constant-ish work, no solver).
//! 2. **Restricted** — re-solve only the affected ingress's policy
//!    against the spare capacity left by every frozen placement.
//! 3. **Full** — re-solve the entire instance from scratch.
//!
//! ## Transactional commits
//!
//! At the end of each epoch the controller emits the target tables for
//! the new placement, verifies them against the golden model
//! ([`flowplace_core::verify`]), and applies the table diff to the
//! dataplane with make-before-break semantics — installs land before
//! deletes, so the §IV-A no-false-negative guarantee holds during the
//! transition. A failed verification discards the whole epoch: the
//! deployed state never changes.
//!
//! ## Fault tolerance
//!
//! With a non-default [`FaultPlan`] (or after any switch outage) the
//! commit pipeline switches from the atomic transaction above to a
//! *resilient* op-by-op path that preserves the no-false-negative
//! invariant under dataplane faults:
//!
//! - Rejected TCAM installs are retried with bounded exponential
//!   backoff on a [`faults::VirtualClock`]; a run of consecutive
//!   failures trips a per-switch circuit breaker and **quarantines**
//!   the switch (alive and forwarding, but unmanageable — its entries
//!   are treated as absent, which is pessimal-safe because a stale
//!   entry can only add drops, never permits, along a route).
//! - Crashed switches ([`Event::SwitchFail`]) lose their TCAM and
//!   forward nothing; routes through them carry no traffic.
//! - Placement degrades gracefully around outages: a restricted §IV-E
//!   re-solve of the affected ingresses, then a full re-solve, then —
//!   if an ingress cannot be placed at all — **safe mode**: an explicit
//!   maximum-priority drop-all entry fencing that ingress's traffic at
//!   the first manageable switch of each route. Degraded is never
//!   permissive.
//! - After partial-apply failures and switch restarts an anti-entropy
//!   reconciliation loop re-diffs desired against actual TCAM state
//!   until it converges (or quarantines the switches that prevent it).
//!
//! Every fault is drawn from a seeded RNG or a scripted schedule and
//! all time is virtual, so chaos runs replay byte-identically.

#![warn(missing_docs)]

pub mod cache;
pub mod dataplane;
pub mod delegate;
pub mod epoch;
pub mod event;
pub mod faults;
pub mod shard;
pub mod stats;

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

use flowplace_acl::{Action, Policy, Ternary};
use flowplace_core::tables::{emit_tables, SwitchTable, TableEntry};
use flowplace_core::verify::VerifyMode;
use flowplace_core::{
    incremental, verify, Instance, Objective, Placement, PlacementOptions, RulePlacer, WarmCache,
    WarmConfig,
};
use flowplace_fasthash::FnvHashSet;
use flowplace_obs::{AttrValue, Obs, SpanId};
use flowplace_routing::{Route, RouteSet};
use flowplace_topo::{EntryPortId, SwitchId, Topology};
use flowplace_traffic::FlowEvent;

pub use cache::{CacheConfig, CacheCounters, CacheLookup, CachePolicy, RuleCache};
pub use dataplane::{ApplyReport, DataPlane, DataPlaneError, RuleDiff, SwitchTcam, TcamEntry};
pub use delegate::{Delegation, DelegationConfig};
pub use epoch::{EpochLog, Snapshot};
pub use event::{format_trace, parse_trace, Event, TraceError};
pub use faults::{
    format_fault_schedule, parse_fault_schedule, CircuitBreaker, FaultInjector, FaultKind,
    FaultPlan, RetryPolicy, ScheduledFault, VirtualClock,
};
pub use shard::{
    ShardArbiterReport, ShardCoordStats, ShardSpec, ShardVerifyCounters, ShardedController,
};
pub use stats::CtrlStats;

/// Which rung of the escalation ladder settled an event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tier {
    /// Greedy incremental deployment (§IV-E), no solver run.
    Greedy,
    /// Restricted sub-problem re-solve against spare capacity.
    Restricted,
    /// Full re-solve of the whole instance.
    Full,
    /// Delegation rung: routes detoured through an off-route delegate
    /// with spare TCAM, then re-solved (see [`delegate`]).
    Delegated,
}

impl Tier {
    /// Every rung, in escalation order. Kept exhaustive by
    /// `tier_all_is_complete` in the tests: adding a variant without
    /// extending this array (and the [`CtrlStats`] counter mapping)
    /// fails the build or the completeness tests.
    pub const ALL: [Tier; 4] = [Tier::Greedy, Tier::Restricted, Tier::Full, Tier::Delegated];
}

impl fmt::Display for Tier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tier::Greedy => write!(f, "greedy"),
            Tier::Restricted => write!(f, "restricted"),
            Tier::Full => write!(f, "full"),
            Tier::Delegated => write!(f, "delegated"),
        }
    }
}

/// What happened to one event inside an epoch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventOutcome {
    /// The event was applied at the given tier.
    Applied(Tier),
    /// A checkpoint was taken.
    Checkpoint,
    /// The working state was rolled back to the snapshot taken at the
    /// given epoch.
    RolledBack {
        /// Epoch counter of the restored snapshot.
        to_epoch: u64,
    },
    /// The event could not be applied; the working state is unchanged.
    Rejected {
        /// Human-readable reason.
        reason: String,
    },
    /// A switch crashed; the commit pipeline re-placed around it or
    /// degraded fail-closed.
    SwitchFailed {
        /// The crashed switch.
        switch: SwitchId,
    },
    /// A switch came back under control.
    SwitchRecovered {
        /// The recovered switch.
        switch: SwitchId,
    },
}

impl EventOutcome {
    /// Stable keyword for traces and metric labels (e.g.
    /// `"applied:greedy"`, `"rejected"`).
    pub fn label(&self) -> &'static str {
        match self {
            EventOutcome::Applied(Tier::Greedy) => "applied:greedy",
            EventOutcome::Applied(Tier::Restricted) => "applied:restricted",
            EventOutcome::Applied(Tier::Full) => "applied:full",
            EventOutcome::Applied(Tier::Delegated) => "applied:delegated",
            EventOutcome::Checkpoint => "checkpoint",
            EventOutcome::RolledBack { .. } => "rolled-back",
            EventOutcome::Rejected { .. } => "rejected",
            EventOutcome::SwitchFailed { .. } => "switch-failed",
            EventOutcome::SwitchRecovered { .. } => "switch-recovered",
        }
    }

    /// Every label [`label`](EventOutcome::label) can produce. The
    /// match above is exhaustive (a new variant fails to compile
    /// without a label); the completeness test pins that each label
    /// also reaches the `ctrl.outcomes` metrics mirror.
    pub const ALL_LABELS: [&'static str; 9] = [
        "applied:greedy",
        "applied:restricted",
        "applied:full",
        "applied:delegated",
        "checkpoint",
        "rolled-back",
        "rejected",
        "switch-failed",
        "switch-recovered",
    ];
}

/// The result of committing one epoch.
#[derive(Clone, Debug)]
pub struct EpochReport {
    /// The committed epoch number.
    pub epoch: u64,
    /// Each processed event with its outcome, in order.
    pub outcomes: Vec<(Event, EventOutcome)>,
    /// TCAM entries installed by this epoch's diff.
    pub installed: usize,
    /// TCAM entries removed by this epoch's diff.
    pub removed: usize,
    /// Peak per-switch occupancy during the transition.
    pub peak_occupancy: usize,
    /// Switches newly quarantined while committing this epoch.
    pub quarantined: Vec<SwitchId>,
    /// Ingresses in safe mode (fail-closed drop-all fence) after this
    /// epoch.
    pub safe_mode: Vec<EntryPortId>,
    /// Ingresses with an active delegation (routes detoured through an
    /// off-route delegate) after this epoch.
    pub delegated: Vec<EntryPortId>,
    /// Dataplane faults injected during this epoch.
    pub injected: usize,
}

impl EpochReport {
    /// Tiers of the applied events, in order.
    pub fn tiers(&self) -> Vec<Tier> {
        self.outcomes
            .iter()
            .filter_map(|(_, o)| match o {
                EventOutcome::Applied(t) => Some(*t),
                _ => None,
            })
            .collect()
    }
}

/// The result of running one flow-event stream through the cache tier
/// (see [`Controller::process_flows`]). All counters are deltas for
/// that one call, except `dep_violations`, which mirrors the
/// controller's cumulative [`CtrlStats::cache_dep_violations`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FlowReport {
    /// Flow events processed.
    pub flows: u64,
    /// Flows whose every on-path lookup was a hit (or no-match).
    pub hit_flows: u64,
    /// Flows that punted to the controller at least once.
    pub miss_flows: u64,
    /// Flows skipped: no route from the ingress, or a crashed switch
    /// on the chosen path.
    pub unrouted: u64,
    /// Per-switch cache lookups.
    pub lookups: u64,
    /// Lookups answered by a resident entry.
    pub hits: u64,
    /// Lookups punted to the controller.
    pub misses: u64,
    /// Entries made resident (dependency pulls included).
    pub inserts: u64,
    /// Entries evicted (cascades included).
    pub evictions: u64,
    /// Warm re-solves triggered by miss batches.
    pub resolves: u64,
    /// Miss batches flushed.
    pub miss_batches: u64,
    /// Virtual milliseconds of punt latency charged.
    pub miss_latency_ms: u64,
    /// Cumulative dependency-safety violations on the controller (must
    /// stay zero).
    pub dep_violations: u64,
}

impl FlowReport {
    /// Hit rate over the lookups of this call, in `[0, 1]` (`1.0` for
    /// an empty call).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            1.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

/// Controller configuration.
#[derive(Clone, Debug)]
pub struct CtrlOptions {
    /// Maximum events coalesced into one epoch.
    pub batch_size: usize,
    /// Bounded queue size; submissions past it are rejected
    /// (backpressure).
    pub queue_capacity: usize,
    /// Snapshots retained for rollback.
    pub checkpoint_depth: usize,
    /// Random packets per route in the commit-time verification, on top
    /// of the deterministic rule-corner packets.
    pub verify_packets: usize,
    /// Solver configuration for restricted and full tiers.
    pub placement: PlacementOptions,
    /// Objective for restricted and full tiers.
    pub objective: Objective,
    /// Dataplane fault plan. The default plan injects nothing, and the
    /// commit pipeline stays on the atomic transaction path.
    pub faults: FaultPlan,
    /// Retry/backoff policy for rejected TCAM installs.
    pub retry: RetryPolicy,
    /// Consecutive failed operations on one switch before its circuit
    /// breaker trips and the switch is quarantined.
    pub quarantine_after: u32,
    /// Reconcile rounds tolerated without progress before the
    /// still-failing switches are force-quarantined.
    pub reconcile_rounds: usize,
    /// Warm-path configuration: epoch caches for dependency graphs,
    /// candidate sets, and solved placements (see
    /// [`flowplace_core::warm`]). Enabled by default; `--warm off`
    /// in the CLI (or `enabled: false` here) forces every solve cold.
    pub warm: WarmConfig,
    /// TCAM-as-cache tier configuration (see [`cache`]). Disabled by
    /// default: the dataplane then *is* the physical TCAM, exactly as
    /// before the cache tier existed.
    pub cache: CacheConfig,
    /// Delegation rung configuration (see [`delegate`]). Enabled by
    /// default; on topologies whose routes span every reachable switch
    /// (no off-route neighbors) the rung is inert.
    pub delegation: DelegationConfig,
}

impl Default for CtrlOptions {
    fn default() -> Self {
        CtrlOptions {
            batch_size: 8,
            queue_capacity: 1024,
            checkpoint_depth: 8,
            verify_packets: 8,
            placement: PlacementOptions::default(),
            objective: Objective::default(),
            faults: FaultPlan::default(),
            retry: RetryPolicy::default(),
            quarantine_after: 3,
            reconcile_rounds: 3,
            warm: WarmConfig::default(),
            cache: CacheConfig::default(),
            delegation: DelegationConfig::default(),
        }
    }
}

/// Controller-level error. Event-level failures (an infeasible add, a
/// bad rule id) do *not* surface here — they are recorded per event in
/// the [`EpochReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CtrlError {
    /// The event queue is full; the event was not accepted.
    QueueFull {
        /// The configured queue capacity.
        capacity: usize,
    },
    /// A trace file failed to parse.
    Trace(TraceError),
    /// Commit-time verification failed; the epoch was discarded.
    VerifyFailed {
        /// The epoch that was discarded.
        epoch: u64,
        /// The verifier's report.
        detail: String,
    },
    /// Table emission failed for the new placement.
    Table(String),
    /// The dataplane refused the diff.
    DataPlane(DataPlaneError),
}

impl fmt::Display for CtrlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtrlError::QueueFull { capacity } => {
                write!(f, "event queue full (capacity {capacity})")
            }
            CtrlError::Trace(e) => write!(f, "{e}"),
            CtrlError::VerifyFailed { epoch, detail } => {
                write!(f, "epoch {epoch} failed verification: {detail}")
            }
            CtrlError::Table(e) => write!(f, "table emission failed: {e}"),
            CtrlError::DataPlane(e) => write!(f, "dataplane: {e}"),
        }
    }
}

impl std::error::Error for CtrlError {}

impl From<TraceError> for CtrlError {
    fn from(e: TraceError) -> Self {
        CtrlError::Trace(e)
    }
}

impl From<DataPlaneError> for CtrlError {
    fn from(e: DataPlaneError) -> Self {
        CtrlError::DataPlane(e)
    }
}

/// Why a switch is out of the controller's reach.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum OutageKind {
    /// Down: not forwarding, TCAM lost. Routes through it are
    /// traffic-dead.
    Crashed,
    /// Alive and forwarding, but its control channel is broken (circuit
    /// breaker tripped). Its entries are stale and treated as absent —
    /// pessimal-safe, since a stale entry can only add drops.
    Quarantined,
}

/// Controller-side bookkeeping for one out-of-service switch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Outage {
    kind: OutageKind,
    /// The hardware capacity to restore when the switch recovers (the
    /// working instance's capacity is zeroed while it is out).
    saved_capacity: usize,
}

/// All mutable fault-tolerance state of a controller.
#[derive(Clone, Debug)]
struct FaultRuntime {
    injector: FaultInjector,
    clock: VirtualClock,
    breakers: BTreeMap<SwitchId, CircuitBreaker>,
    unmanageable: BTreeMap<SwitchId, Outage>,
    safe_mode: BTreeSet<EntryPortId>,
    /// Active delegations, keyed by the detoured ingress.
    delegations: BTreeMap<EntryPortId, Delegation>,
}

/// The single-threaded, deterministic placement controller.
#[derive(Clone, Debug)]
pub struct Controller {
    instance: Instance,
    placement: Placement,
    dataplane: DataPlane,
    epochs: EpochLog,
    queue: VecDeque<Event>,
    options: CtrlOptions,
    stats: CtrlStats,
    faults: FaultRuntime,
    warm: WarmCache,
    cache: RuleCache,
    obs: Option<Obs>,
    /// Slice-scoped verification state, installed by
    /// [`shard::ShardedController`]; `None` (the default) keeps the
    /// full verification sweep on every atomic commit.
    pub(crate) shard_verify: Option<shard::ShardVerifyState>,
}

/// Rebuilds `instance` with one switch's capacity changed (capacity
/// never affects instance validity).
fn with_capacity(instance: &Instance, switch: SwitchId, capacity: usize) -> Instance {
    let mut topology = instance.topology().clone();
    topology.set_capacity(switch, capacity);
    let policies: Vec<(EntryPortId, Policy)> =
        instance.policies().map(|(l, q)| (l, q.clone())).collect();
    Instance::new(topology, instance.routes().clone(), policies)
        .expect("a capacity-only change keeps the instance valid")
}

/// Whether any switch's placed load exceeds its capacity — true after
/// a committed-anyway capacity shrink, until the degradation ladder
/// re-places or fails-closed the overflowing ingresses.
fn capacity_pressure(instance: &Instance, placement: &Placement) -> bool {
    let load = placement.per_switch_load(instance);
    let capacities = instance.topology().capacities();
    load.iter().zip(capacities.iter()).any(|(l, c)| l > c)
}

/// The ingress an event targets, for the safe-mode gate.
fn event_ingress(event: &Event) -> Option<EntryPortId> {
    match event {
        Event::AddRule { ingress, .. }
        | Event::RemoveRule { ingress, .. }
        | Event::ModifyRule { ingress, .. }
        | Event::InstallPolicy { ingress, .. }
        | Event::Reroute { ingress, .. } => Some(*ingress),
        _ => None,
    }
}

impl Controller {
    /// Creates a controller managing a bare topology: no routes, no
    /// policies, an empty dataplane. Policies arrive later via
    /// [`Event::InstallPolicy`].
    pub fn new(topology: Topology, options: CtrlOptions) -> Controller {
        let capacities = topology.capacities();
        let switch_count = capacities.len();
        let instance = Instance::new(topology, RouteSet::new(), Vec::new())
            .expect("an instance with no routes or policies is always valid");
        Controller {
            instance,
            placement: Placement::default(),
            dataplane: DataPlane::new(capacities),
            epochs: EpochLog::new(options.checkpoint_depth),
            queue: VecDeque::new(),
            faults: FaultRuntime {
                injector: FaultInjector::new(options.faults.clone()),
                clock: VirtualClock::default(),
                breakers: BTreeMap::new(),
                unmanageable: BTreeMap::new(),
                safe_mode: BTreeSet::new(),
                delegations: BTreeMap::new(),
            },
            warm: WarmCache::new(options.warm.clone()),
            cache: RuleCache::new(options.cache.clone(), switch_count),
            options,
            stats: CtrlStats::default(),
            obs: None,
            shard_verify: None,
        }
    }

    /// Creates a controller around an existing instance, solving and
    /// deploying it as epoch 1.
    ///
    /// # Errors
    ///
    /// [`CtrlError::VerifyFailed`] / [`CtrlError::DataPlane`] if the
    /// initial deployment cannot be established (including an
    /// infeasible instance, surfaced as a verify-free dataplane
    /// mismatch via [`CtrlError::Table`]).
    pub fn with_instance(
        instance: Instance,
        options: CtrlOptions,
    ) -> Result<Controller, CtrlError> {
        let mut ctrl = Controller::new(instance.topology().clone(), options);
        ctrl.instance = instance;
        ctrl.submit(Event::Solve)
            .expect("fresh queue accepts one event");
        ctrl.run_to_idle()?;
        Ok(ctrl)
    }

    /// The deployed instance.
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// The deployed placement.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// The simulated dataplane.
    pub fn dataplane(&self) -> &DataPlane {
        &self.dataplane
    }

    /// Cumulative counters.
    pub fn stats(&self) -> &CtrlStats {
        &self.stats
    }

    /// Attaches an observability context: epoch/event/commit spans and
    /// controller/solver metrics are recorded onto it from now on.
    /// Telemetry never feeds back into control decisions, so a
    /// controller behaves identically with and without a sink attached.
    pub fn attach_obs(&mut self, obs: Obs) {
        self.obs = Some(obs);
    }

    /// The attached observability context, if any.
    pub fn obs(&self) -> Option<&Obs> {
        self.obs.as_ref()
    }

    /// Opens a span on the attached sink (no-op without one), syncing
    /// the recorder's virtual clock from the fault clock first.
    fn span_begin(&self, name: &str) -> Option<SpanId> {
        let o = self.obs.as_ref()?;
        o.spans.set_virtual_ms(self.faults.clock.now_ms());
        Some(o.spans.begin(name))
    }

    /// Attaches an attribute to a span opened by
    /// [`span_begin`](Controller::span_begin).
    fn span_attr(&self, span: Option<SpanId>, key: &str, value: impl Into<AttrValue>) {
        if let (Some(o), Some(id)) = (&self.obs, span) {
            o.spans.attr(id, key, value);
        }
    }

    /// Ends a span opened by [`span_begin`](Controller::span_begin),
    /// syncing the virtual clock so backoff spent inside it is visible
    /// in the span's duration.
    fn span_end(&self, span: Option<SpanId>) {
        if let (Some(o), Some(id)) = (&self.obs, span) {
            o.spans.set_virtual_ms(self.faults.clock.now_ms());
            o.spans.end(id);
        }
    }

    /// The last committed epoch.
    pub fn epoch(&self) -> u64 {
        self.epochs.current()
    }

    /// The controller's configuration.
    pub fn options(&self) -> &CtrlOptions {
        &self.options
    }

    /// Queued events not yet consumed by an epoch.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Switches currently out of service (crashed or quarantined).
    pub fn out_of_service(&self) -> Vec<SwitchId> {
        self.faults.unmanageable.keys().copied().collect()
    }

    /// Switches currently quarantined by a tripped circuit breaker
    /// (alive and forwarding, but unmanageable).
    pub fn quarantined_switches(&self) -> Vec<SwitchId> {
        self.faults
            .unmanageable
            .iter()
            .filter(|(_, o)| o.kind == OutageKind::Quarantined)
            .map(|(s, _)| *s)
            .collect()
    }

    /// Ingresses currently degraded to the safe-mode drop-all fence.
    pub fn safe_mode_ingresses(&self) -> Vec<EntryPortId> {
        self.faults.safe_mode.iter().copied().collect()
    }

    /// Active delegations: each detoured ingress with its delegate and
    /// anchors.
    pub fn delegations(&self) -> Vec<(EntryPortId, Delegation)> {
        self.faults
            .delegations
            .iter()
            .map(|(l, d)| (*l, d.clone()))
            .collect()
    }

    /// TCAM entries currently offloaded onto delegate switches (the
    /// delegated-rule overhead on top of the redirect stubs).
    pub fn delegated_entries(&self) -> usize {
        self.faults
            .delegations
            .iter()
            .map(|(l, d)| {
                self.placement
                    .iter()
                    .filter(|((pl, _), switches)| pl == l && switches.contains(&d.delegate))
                    .count()
            })
            .sum()
    }

    /// Toggles the delegation rung (used by the benchmark to sweep the
    /// same deployment with and without delegation). Disabling does not
    /// tear down active delegations; they unwind through the normal
    /// lift rounds.
    pub fn set_delegation_enabled(&mut self, enabled: bool) {
        self.options.delegation.enabled = enabled;
    }

    /// Current virtual time in milliseconds (advanced only by retry
    /// backoff, never by wall time — replays are deterministic).
    pub fn virtual_time_ms(&self) -> u64 {
        self.faults.clock.now_ms()
    }

    /// Enqueues an event.
    ///
    /// # Errors
    ///
    /// [`CtrlError::QueueFull`] when the bounded queue is at capacity;
    /// the rejection is counted in [`CtrlStats::events_rejected`].
    pub fn submit(&mut self, event: Event) -> Result<(), CtrlError> {
        if self.queue.len() >= self.options.queue_capacity {
            self.stats.events_rejected += 1;
            return Err(CtrlError::QueueFull {
                capacity: self.options.queue_capacity,
            });
        }
        self.queue.push_back(event);
        self.stats.events_in += 1;
        self.stats.max_queue_depth = self.stats.max_queue_depth.max(self.queue.len());
        Ok(())
    }

    /// Processes one batch of queued events (up to `batch_size`) as a
    /// single epoch: dispatch each event through the escalation ladder,
    /// verify the resulting placement, and commit the coalesced diff to
    /// the dataplane transactionally.
    ///
    /// Returns `Ok(None)` when the queue is empty. Event-level failures
    /// are recorded in the report; an `Err` means the whole epoch was
    /// discarded (deployed state unchanged).
    ///
    /// # Errors
    ///
    /// See [`CtrlError`].
    pub fn run_epoch(&mut self) -> Result<Option<EpochReport>, CtrlError> {
        if self.queue.is_empty() {
            return Ok(None);
        }
        let epoch = self.epochs.next();
        let span = self.span_begin("ctrl.epoch");
        self.span_attr(span, "epoch", epoch);
        let result = self.run_epoch_inner(epoch);
        match &result {
            Ok(report) => {
                self.span_attr(span, "events", report.outcomes.len());
                self.span_attr(span, "installed", report.installed);
                self.span_attr(span, "removed", report.removed);
            }
            Err(e) => self.span_attr(span, "error", e.to_string()),
        }
        self.span_end(span);
        result.map(Some)
    }

    /// The body of [`run_epoch`](Controller::run_epoch), with the epoch
    /// number already drawn (extracted so the `ctrl.epoch` span closes
    /// on the error path too).
    fn run_epoch_inner(&mut self, epoch: u64) -> Result<EpochReport, CtrlError> {
        let faults_before = self.stats.faults_injected;

        // Faults due at this epoch's start are synthesized as events at
        // the head of the batch, so they show up in the report (and the
        // trace of record) like any other input.
        let mut batch = self.inject_due_faults(epoch);
        let take = self.options.batch_size.max(1).min(self.queue.len());
        batch.extend(self.queue.drain(..take));
        if let Some(sv) = self.shard_verify.as_mut() {
            for event in &batch {
                sv.note_event(event);
            }
        }

        // Working copy: events mutate this; the deployed pair is only
        // replaced if the commit below succeeds.
        let mut instance = self.instance.clone();
        let mut placement = self.placement.clone();
        let mut outcomes = Vec::with_capacity(batch.len());

        for event in batch {
            let event_span = self.span_begin("ctrl.event");
            self.span_attr(event_span, "kind", event.label());
            if let Some(o) = &self.obs {
                o.metrics
                    .counter_add_with("ctrl.events", &[("kind", event.label())], 1);
            }
            let outcome = match &event {
                Event::Checkpoint => {
                    self.epochs.checkpoint(instance.clone(), placement.clone());
                    self.stats.checkpoints += 1;
                    EventOutcome::Checkpoint
                }
                Event::Rollback => match self.epochs.rollback() {
                    Some(snap) => {
                        instance = snap.instance;
                        placement = snap.placement;
                        self.stats.rollbacks += 1;
                        EventOutcome::RolledBack {
                            to_epoch: snap.epoch,
                        }
                    }
                    None => {
                        self.stats.events_failed += 1;
                        EventOutcome::Rejected {
                            reason: "nothing to roll back".into(),
                        }
                    }
                },
                Event::SwitchFail { switch } => self.on_switch_fail(*switch, &mut instance),
                Event::SwitchRecover { switch } => self.on_switch_recover(*switch, &mut instance),
                Event::CapacityChange { switch, capacity }
                    if self.faults.unmanageable.contains_key(switch) =>
                {
                    // The switch is out of reach: remember the hardware
                    // capacity for its recovery, keep the working
                    // instance's capacity at zero.
                    self.dataplane.revoke_capacity(*switch, *capacity);
                    self.faults
                        .unmanageable
                        .get_mut(switch)
                        .expect("guard checked membership")
                        .saved_capacity = *capacity;
                    self.stats.greedy_ok += 1;
                    EventOutcome::Applied(Tier::Greedy)
                }
                _ => match event_ingress(&event) {
                    Some(l) if self.faults.safe_mode.contains(&l) => {
                        self.stats.events_failed += 1;
                        EventOutcome::Rejected {
                            reason: format!("ingress {l} is in safe mode (degraded)"),
                        }
                    }
                    _ => match self.dispatch(&instance, &placement, &event) {
                        Ok((ni, np, tier)) => {
                            instance = ni;
                            placement = np;
                            match tier {
                                Tier::Greedy => self.stats.greedy_ok += 1,
                                Tier::Restricted => self.stats.restricted_ok += 1,
                                Tier::Full => self.stats.full_ok += 1,
                                Tier::Delegated => self.stats.delegated_ok += 1,
                            }
                            EventOutcome::Applied(tier)
                        }
                        Err(reason) => match self.rescue_rejected(&event, &instance, &placement) {
                            Some((ni, np)) => {
                                instance = ni;
                                placement = np;
                                self.stats.delegated_ok += 1;
                                EventOutcome::Applied(Tier::Delegated)
                            }
                            None => {
                                // A capacity shrink is committed even
                                // when re-placement fails: the hardware
                                // has already lost the bank, so the old
                                // capacity must not be resurrected. The
                                // resilient commit degrades the
                                // overloaded ingresses fail-closed.
                                if let Event::CapacityChange { switch, capacity } = &event {
                                    if switch.0 < instance.topology().switch_count() {
                                        instance = with_capacity(&instance, *switch, *capacity);
                                    }
                                }
                                self.stats.events_failed += 1;
                                EventOutcome::Rejected { reason }
                            }
                        },
                    },
                },
            };
            self.span_attr(event_span, "outcome", outcome.label());
            if let Some(o) = &self.obs {
                o.metrics
                    .counter_add_with("ctrl.outcomes", &[("outcome", outcome.label())], 1);
            }
            self.span_end(event_span);
            outcomes.push((event, outcome));
        }

        // Commit. The resilient pipeline only engages when faults can
        // fire or an outage / safe-mode fence is live, so a fault-free
        // controller behaves exactly like the atomic one.
        let resilient = self.faults.injector.plan().is_active()
            || !self.faults.unmanageable.is_empty()
            || !self.faults.safe_mode.is_empty()
            || !self.faults.delegations.is_empty()
            || capacity_pressure(&instance, &placement);
        if resilient {
            // The resilient pipeline mutates placement outside the
            // event stream (degradation, delegation, reconciliation),
            // so no slice may ride the scoped-verify fast path after
            // it.
            if let Some(sv) = self.shard_verify.as_mut() {
                sv.dirty_all();
            }
        }

        let commit_span = self.span_begin("ctrl.commit");
        self.span_attr(
            commit_span,
            "path",
            if resilient { "resilient" } else { "atomic" },
        );
        let committed = if resilient {
            self.commit_resilient(epoch, &mut instance, &mut placement)
        } else {
            self.commit_atomic(epoch, &instance, &placement)
        };
        match &committed {
            Ok((report, quarantined)) => {
                self.span_attr(commit_span, "installed", report.installed);
                self.span_attr(commit_span, "removed", report.removed);
                self.span_attr(commit_span, "quarantined", quarantined.len());
            }
            Err(e) => self.span_attr(commit_span, "error", e.to_string()),
        }
        self.span_end(commit_span);
        let (report, quarantined) = committed?;

        self.instance = instance;
        self.placement = placement;
        self.epochs.advance();
        self.stats.epochs += 1;
        self.stats.entries_installed += report.installed as u64;
        self.stats.entries_removed += report.removed as u64;
        self.stats.peak_tcam_occupancy = self.stats.peak_tcam_occupancy.max(report.peak_occupancy);
        self.sync_warm_stats();
        self.resync_cache();

        if resilient && self.fail_closed_audit().is_err() {
            self.stats.failclosed_violations += 1;
        }
        self.record_epoch_metrics();

        Ok(EpochReport {
            epoch,
            outcomes,
            installed: report.installed,
            removed: report.removed,
            peak_occupancy: report.peak_occupancy,
            quarantined,
            safe_mode: self.faults.safe_mode.iter().copied().collect(),
            delegated: self.faults.delegations.keys().copied().collect(),
            injected: (self.stats.faults_injected - faults_before) as usize,
        })
    }

    /// The fault-free commit path: verify, then one staged transaction.
    fn commit_atomic(
        &mut self,
        epoch: u64,
        instance: &Instance,
        placement: &Placement,
    ) -> Result<(ApplyReport, Vec<SwitchId>), CtrlError> {
        let tables =
            emit_tables(instance, placement).map_err(|e| CtrlError::Table(e.to_string()))?;
        // With a shard runtime attached, the verify gate is scoped to
        // the slices whose inputs changed (byte-identical verdict,
        // reusing the tables already emitted above); without one, the
        // full golden-model sweep runs as before.
        let verify_packets = self.options.verify_packets;
        let verdict = match self.shard_verify.as_mut() {
            Some(sv) => sv.verify(instance, &tables, verify_packets, epoch),
            None => verify::verify_placement(instance, placement, verify_packets, epoch),
        };
        if let Err(e) = verdict {
            self.stats.verify_failures += 1;
            return Err(CtrlError::VerifyFailed {
                epoch,
                detail: e.to_string(),
            });
        }
        let target = DataPlane::target_from_tables(&tables);
        self.dataplane
            .set_capacities(&instance.topology().capacities());
        let diff = self.dataplane.diff_to(&target)?;
        let report = self.dataplane.apply(&diff)?;
        if !diff.is_empty() {
            self.stats.diffs_applied += 1;
        }
        Ok((report, Vec::new()))
    }

    /// Post-commit metrics sweep onto the attached sink (no-op without
    /// one): per-switch TCAM occupancy and capacity gauges, queue
    /// depth, §IV-B merge-saving gauges, and an absolute-value export
    /// of every [`CtrlStats`] counter.
    fn record_epoch_metrics(&self) {
        let Some(o) = &self.obs else { return };
        for i in 0..self.dataplane.switch_count() {
            let tcam = self.dataplane.switch(SwitchId(i));
            let tag = format!("s{i}");
            let labels = [("switch", tag.as_str())];
            o.metrics
                .gauge_set_with("tcam.occupancy", &labels, tcam.occupancy() as i64);
            o.metrics
                .gauge_set_with("tcam.capacity", &labels, tcam.capacity() as i64);
        }
        o.metrics
            .gauge_set("ctrl.queue_depth", self.queue.len() as i64);
        let groups = self.placement.merge_groups();
        let saved: usize = groups
            .iter()
            .map(|g| g.members.len().saturating_sub(1))
            .sum();
        o.metrics.gauge_set("merge.groups", groups.len() as i64);
        o.metrics.gauge_set("merge.entries_saved", saved as i64);
        self.stats.export(&o.metrics);
    }

    /// Runs epochs until the queue drains.
    ///
    /// # Errors
    ///
    /// See [`run_epoch`](Controller::run_epoch).
    pub fn run_to_idle(&mut self) -> Result<Vec<EpochReport>, CtrlError> {
        let mut reports = Vec::new();
        while let Some(report) = self.run_epoch()? {
            reports.push(report);
        }
        Ok(reports)
    }

    /// Feeds a stream of events through the controller, draining the
    /// queue whenever backpressure would reject a submission.
    ///
    /// # Errors
    ///
    /// See [`run_epoch`](Controller::run_epoch).
    pub fn replay(
        &mut self,
        events: impl IntoIterator<Item = Event>,
    ) -> Result<Vec<EpochReport>, CtrlError> {
        let mut reports = Vec::new();
        for event in events {
            if self.queue.len() >= self.options.queue_capacity {
                reports.extend(self.run_to_idle()?);
            }
            self.submit(event)?;
        }
        reports.extend(self.run_to_idle()?);
        Ok(reports)
    }

    /// Parses a text trace (see [`event`]) and replays it.
    ///
    /// # Errors
    ///
    /// [`CtrlError::Trace`] on parse failure, otherwise as
    /// [`replay`](Controller::replay).
    pub fn replay_trace(&mut self, text: &str) -> Result<Vec<EpochReport>, CtrlError> {
        let events = parse_trace(text)?;
        self.replay(events)
    }

    /// Dispatches one mutating event through the escalation ladder.
    /// Returns the updated working state and the tier that settled it,
    /// or a rejection reason (working state untouched).
    fn dispatch(
        &self,
        instance: &Instance,
        placement: &Placement,
        event: &Event,
    ) -> Result<(Instance, Placement, Tier), String> {
        match event {
            Event::AddRule { ingress, rule } => {
                match incremental::add_rule_greedy(instance, placement, *ingress, *rule) {
                    Ok(out) => {
                        if let Some(p) = out.placement {
                            return Ok((out.instance, p, Tier::Greedy));
                        }
                    }
                    Err(e) => return Err(e.to_string()),
                }
                let policy = instance
                    .policy(*ingress)
                    .expect("greedy tier validated the ingress");
                let updated = policy.with_rule(*rule).map_err(|e| e.to_string())?;
                self.replace_policy_laddered(instance, placement, *ingress, updated)
            }
            Event::RemoveRule { ingress, rule } => {
                match incremental::remove_rule(instance, placement, *ingress, *rule) {
                    Ok(out) => {
                        let p = out.placement.ok_or_else(|| {
                            "removal unexpectedly produced no placement".to_string()
                        })?;
                        Ok((out.instance, p, Tier::Greedy))
                    }
                    Err(e) => Err(e.to_string()),
                }
            }
            Event::ModifyRule {
                ingress,
                rule,
                replacement,
            } => {
                match incremental::modify_rule(instance, placement, *ingress, *rule, *replacement) {
                    Ok(out) => {
                        if let Some(p) = out.placement {
                            return Ok((out.instance, p, Tier::Greedy));
                        }
                    }
                    Err(e) => return Err(e.to_string()),
                }
                let policy = instance
                    .policy(*ingress)
                    .expect("greedy tier validated the ingress");
                let updated = policy
                    .without_rule(*rule)
                    .with_rule(*replacement)
                    .map_err(|e| e.to_string())?;
                self.replace_policy_laddered(instance, placement, *ingress, updated)
            }
            Event::InstallPolicy {
                ingress,
                policy,
                routes,
            } => {
                match incremental::install_policies_cached(
                    instance,
                    placement,
                    vec![(*ingress, policy.clone(), routes.clone())],
                    &self.options.placement,
                    self.options.objective.clone(),
                    Some(&self.warm),
                ) {
                    Ok(out) => {
                        if let Some(p) = out.placement {
                            return Ok((out.instance, p, Tier::Restricted));
                        }
                    }
                    Err(e) => return Err(e.to_string()),
                }
                // Full: rebuild the instance with the policy and routes
                // included, re-solve everything.
                let mut policies: Vec<(EntryPortId, Policy)> =
                    instance.policies().map(|(l, q)| (l, q.clone())).collect();
                policies.push((*ingress, policy.clone()));
                let all_routes: RouteSet = instance
                    .routes()
                    .iter()
                    .chain(routes.iter())
                    .cloned()
                    .collect();
                let updated = Instance::new(instance.topology().clone(), all_routes, policies)
                    .map_err(|e| e.to_string())?;
                let solved = self.full_solve(&updated)?;
                Ok((updated, solved, Tier::Full))
            }
            Event::Reroute { ingress, routes } => {
                match incremental::reroute_policy_cached(
                    instance,
                    placement,
                    *ingress,
                    routes.clone(),
                    &self.options.placement,
                    self.options.objective.clone(),
                    Some(&self.warm),
                ) {
                    Ok(out) => {
                        if let Some(p) = out.placement {
                            return Ok((out.instance, p, Tier::Restricted));
                        }
                    }
                    Err(e) => return Err(e.to_string()),
                }
                let all_routes: RouteSet = instance
                    .routes()
                    .iter()
                    .filter(|r| r.ingress != *ingress)
                    .chain(routes.iter())
                    .cloned()
                    .collect();
                let updated = instance
                    .with_routes(all_routes)
                    .map_err(|e| e.to_string())?;
                let solved = self.full_solve(&updated)?;
                Ok((updated, solved, Tier::Full))
            }
            Event::CapacityChange { switch, capacity } => {
                if switch.0 >= instance.topology().switch_count() {
                    return Err(format!("unknown switch {switch}"));
                }
                let mut topology = instance.topology().clone();
                topology.set_capacity(*switch, *capacity);
                let policies: Vec<(EntryPortId, Policy)> =
                    instance.policies().map(|(l, q)| (l, q.clone())).collect();
                let updated = Instance::new(topology, instance.routes().clone(), policies)
                    .map_err(|e| e.to_string())?;
                let load = placement.per_switch_load(instance);
                if load.get(switch.0).copied().unwrap_or(0) <= *capacity {
                    // The deployed placement still fits: no solver run.
                    return Ok((updated, placement.clone(), Tier::Greedy));
                }
                let solved = self.full_solve(&updated)?;
                Ok((updated, solved, Tier::Full))
            }
            Event::Solve => {
                let solved = self.full_solve(instance)?;
                Ok((instance.clone(), solved, Tier::Full))
            }
            Event::Checkpoint
            | Event::Rollback
            | Event::SwitchFail { .. }
            | Event::SwitchRecover { .. } => {
                unreachable!("handled in run_epoch")
            }
        }
    }

    /// Restricted → full ladder shared by `AddRule` and `ModifyRule`
    /// once the greedy tier came up empty: re-place only this ingress's
    /// (already updated) policy over its existing routes against the
    /// spare capacity of the frozen rest, then fall back to a global
    /// re-solve.
    fn replace_policy_laddered(
        &self,
        instance: &Instance,
        placement: &Placement,
        ingress: EntryPortId,
        updated_policy: Policy,
    ) -> Result<(Instance, Placement, Tier), String> {
        let mut policies: Vec<(EntryPortId, Policy)> =
            instance.policies().map(|(l, q)| (l, q.clone())).collect();
        match policies.iter_mut().find(|(l, _)| *l == ingress) {
            Some(slot) => slot.1 = updated_policy,
            None => return Err(format!("ingress {ingress} has no policy")),
        }
        let updated = Instance::new(
            instance.topology().clone(),
            instance.routes().clone(),
            policies,
        )
        .map_err(|e| e.to_string())?;
        let routes: Vec<Route> = updated
            .routes()
            .iter()
            .filter(|r| r.ingress == ingress)
            .cloned()
            .collect();
        match incremental::reroute_policy_cached(
            &updated,
            placement,
            ingress,
            routes,
            &self.options.placement,
            self.options.objective.clone(),
            Some(&self.warm),
        ) {
            Ok(out) => {
                if let Some(p) = out.placement {
                    return Ok((out.instance, p, Tier::Restricted));
                }
            }
            Err(e) => return Err(e.to_string()),
        }
        let solved = self.full_solve(&updated)?;
        Ok((updated, solved, Tier::Full))
    }

    /// Full re-solve of `instance` through the warm cache (a replayed
    /// or rolled-back epoch returns its memoized placement in O(1));
    /// error if no feasible placement exists.
    fn full_solve(&self, instance: &Instance) -> Result<Placement, String> {
        let outcome = RulePlacer::new(self.options.placement.clone())
            .place_observed(
                instance,
                self.options.objective.clone(),
                Some(&self.warm),
                self.obs.as_ref(),
            )
            .outcome;
        outcome
            .placement
            .ok_or_else(|| format!("full re-solve failed: {}", outcome.status))
    }

    /// Copies the warm cache's cumulative counters into [`CtrlStats`]
    /// so `ctrl replay` summaries report them alongside the event and
    /// tier counters.
    fn sync_warm_stats(&mut self) {
        let w = self.warm.stats();
        self.stats.warm_memo_lookups = w.memo_lookups;
        self.stats.warm_memo_evictions = w.memo_evictions;
        self.stats.warm_memo_hits = w.memo_hits;
        self.stats.warm_memo_misses = w.memo_misses;
        self.stats.warm_depgraphs_reused = w.depgraphs_reused;
        self.stats.warm_candidates_reused = w.candidates_reused;
        self.stats.warm_ilp_seeded = w.ilp_incumbent_seeded;
        self.stats.warm_sat_learnt_retained = w.sat_learnt_retained;
    }

    // ---- TCAM-as-cache tier ----------------------------------------------

    /// The cache tier's state (residency, counters, audit hooks).
    pub fn cache(&self) -> &RuleCache {
        &self.cache
    }

    /// Mutable cache access for negative-control tests (pairs with
    /// [`RuleCache::force_evict_unsafe`]). Not part of the public API.
    #[doc(hidden)]
    pub fn cache_mut(&mut self) -> &mut RuleCache {
        &mut self.cache
    }

    /// Swaps in a new cache-tier configuration: residency restarts cold
    /// against the currently deployed tables. Lets one solved
    /// deployment be swept across capacities and policies (the cache
    /// benchmark) without paying the solve again.
    pub fn set_cache_config(&mut self, config: CacheConfig) {
        self.options.cache = config.clone();
        self.cache = RuleCache::new(config, self.dataplane.switch_count());
        self.resync_cache();
    }

    /// Re-synchronizes the cache tier with the freshly committed
    /// dataplane tables (no-op while the tier is disabled). Residency
    /// survives for entries the commit kept; the dependency closure is
    /// re-pulled and the capacity re-enforced.
    fn resync_cache(&mut self) {
        if !self.options.cache.enabled {
            return;
        }
        let targets: Vec<Vec<TcamEntry>> = (0..self.dataplane.switch_count())
            .map(|i| self.dataplane.switch(SwitchId(i)).entries().to_vec())
            .collect();
        self.cache.set_target(&targets);
        if self.cache.audit().is_err() {
            self.stats.cache_dep_violations += 1;
        }
        self.sync_cache_stats();
    }

    /// Copies the cache tier's cumulative counters into [`CtrlStats`]
    /// (absolute-value sync, same idiom as the warm counters).
    fn sync_cache_stats(&mut self) {
        let c = *self.cache.counters();
        self.stats.cache_lookups = c.lookups;
        self.stats.cache_hits = c.hits;
        self.stats.cache_misses = c.misses;
        self.stats.cache_inserts = c.inserts;
        self.stats.cache_evictions = c.evictions;
        self.stats.cache_closure_pulls = c.closure_pulls;
        self.stats.cache_uncacheable = c.uncacheable;
    }

    /// Runs a flow-event stream (see [`flowplace_traffic`]) against the
    /// cache tier: each flow picks one of its ingress's routes
    /// deterministically (header-hash ECMP), every on-path switch looks
    /// the packet up in its cached TCAM, and misses punt to the
    /// controller, which batches them (per [`CacheConfig::miss_batch`]),
    /// inserts the missed entries dependency-closed, charges the punt
    /// latency to the virtual clock, and triggers one warm re-solve per
    /// batch to model controller load. The tier is audited after every
    /// batch and at the end; violations land in
    /// [`CtrlStats::cache_dep_violations`] (and must stay zero).
    ///
    /// Flows over ingresses with no routes, or whose route crosses a
    /// crashed switch, count as `unrouted` and touch nothing.
    pub fn process_flows(&mut self, flows: &[FlowEvent]) -> FlowReport {
        let span = self.span_begin("cache.flows");
        self.span_attr(span, "flows", flows.len());
        let before = *self.cache.counters();
        let mut report = FlowReport {
            flows: flows.len() as u64,
            ..FlowReport::default()
        };
        let mut pending: Vec<(SwitchId, usize)> = Vec::new();
        let mut punts_since_flush: u64 = 0;
        for ev in flows {
            let delta = ev.at_ms.saturating_sub(self.faults.clock.now_ms());
            if delta > 0 {
                self.faults.clock.advance(delta);
            }
            let paths = self.instance.routes().paths_from(ev.ingress);
            if paths.is_empty() {
                report.unrouted += 1;
                continue;
            }
            let pick = (ev.packet.bits() % paths.len() as u128) as usize;
            let route = self.instance.routes().route(paths[pick]).clone();
            if !route.switches.iter().all(|&s| self.dataplane.is_online(s)) {
                report.unrouted += 1;
                continue;
            }
            let mut missed = false;
            for &s in &route.switches {
                match self.cache.lookup(s, ev.ingress, &ev.packet) {
                    CacheLookup::Hit(action) => {
                        if action.is_drop() {
                            break;
                        }
                    }
                    CacheLookup::Miss { action, slot } => {
                        missed = true;
                        punts_since_flush += 1;
                        if !pending.contains(&(s, slot)) {
                            pending.push((s, slot));
                        }
                        if punts_since_flush >= self.options.cache.miss_batch.max(1) as u64 {
                            self.flush_miss_batch(&mut pending, punts_since_flush, &mut report);
                            punts_since_flush = 0;
                        }
                        if action.is_drop() {
                            break;
                        }
                    }
                    CacheLookup::NoMatch => {}
                }
            }
            if missed {
                report.miss_flows += 1;
            } else {
                report.hit_flows += 1;
            }
        }
        self.flush_miss_batch(&mut pending, punts_since_flush, &mut report);
        if self.cache.audit().is_err() {
            self.stats.cache_dep_violations += 1;
        }
        let after = *self.cache.counters();
        report.lookups = after.lookups - before.lookups;
        report.hits = after.hits - before.hits;
        report.misses = after.misses - before.misses;
        report.inserts = after.inserts - before.inserts;
        report.evictions = after.evictions - before.evictions;
        report.dep_violations = self.stats.cache_dep_violations;
        self.sync_cache_stats();
        self.record_epoch_metrics();
        self.span_attr(span, "hits", report.hits);
        self.span_attr(span, "misses", report.misses);
        self.span_end(span);
        report
    }

    /// Flushes one batch of cache misses: inserts the missed entries
    /// (dependency-closed, policy-evicted), charges the punt latency,
    /// runs one warm re-solve to model the controller load, and audits
    /// the tier.
    fn flush_miss_batch(
        &mut self,
        pending: &mut Vec<(SwitchId, usize)>,
        punts: u64,
        report: &mut FlowReport,
    ) {
        if pending.is_empty() {
            return;
        }
        let span = self.span_begin("cache.miss_batch");
        self.span_attr(span, "misses", punts);
        self.span_attr(span, "entries", pending.len());
        for (s, slot) in pending.drain(..) {
            self.cache.insert(s, slot);
        }
        let penalty = self.options.cache.miss_penalty_ms * punts.max(1);
        self.faults.clock.advance(penalty);
        report.miss_latency_ms += penalty;
        self.stats.cache_miss_latency_ms += penalty;
        // The miss batch is the controller's signal to re-solve; the
        // instance is unchanged, so the warm memo answers in O(1) and
        // the deployed placement stays put — this models controller
        // load, not a table rewrite.
        if self.full_solve(&self.instance).is_ok() {
            report.resolves += 1;
            self.stats.cache_resolves += 1;
        }
        report.miss_batches += 1;
        self.stats.cache_miss_batches += 1;
        self.sync_warm_stats();
        if self.cache.audit().is_err() {
            self.stats.cache_dep_violations += 1;
        }
        self.span_end(span);
    }

    /// Audits the cache tier's *resident* TCAM state against the
    /// fail-closed invariant, with the punt path modelled as a drop
    /// (see [`RuleCache::audit_tables`]): on every live route, any
    /// packet the ingress policy drops is dropped — or punted — by the
    /// resident entries alone. Trivially green while the tier is
    /// disabled.
    ///
    /// # Errors
    ///
    /// A description of the first leaking packet.
    pub fn cache_fail_closed_audit(&self) -> Result<(), String> {
        if !self.options.cache.enabled {
            return Ok(());
        }
        let tables = self.cache.audit_tables();
        let dataplane = &self.dataplane;
        let unmanageable = &self.faults.unmanageable;
        let safe_mode = &self.faults.safe_mode;
        let live = |route: &Route| {
            if !route.switches.iter().all(|&s| dataplane.is_online(s)) {
                return false; // traffic-dead: a crashed switch on path
            }
            if safe_mode.contains(&route.ingress)
                && route.switches.iter().all(|s| unmanageable.contains_key(s))
            {
                return false; // fenced at the entry port
            }
            true
        };
        verify::verify_tables(
            &self.instance,
            &tables,
            self.options.verify_packets,
            self.epochs.current(),
            VerifyMode::NoFalseNegatives,
            live,
        )
        .map_err(|e| e.to_string())
    }

    // ---- fault tolerance -------------------------------------------------

    /// Pulls the faults due at `epoch`'s start: scripted rejects are
    /// armed inside the injector, crash/recover/capacity faults become
    /// synthesized events at the head of the batch.
    fn inject_due_faults(&mut self, epoch: u64) -> Vec<Event> {
        if !self.faults.injector.plan().is_active() {
            return Vec::new();
        }
        let switch_count = self.instance.topology().switch_count();
        let runtime = &mut self.faults;
        let unmanageable = &runtime.unmanageable;
        let due = runtime
            .injector
            .due_at_epoch(epoch, switch_count, |s| unmanageable.contains_key(&s));
        let mut events = Vec::new();
        for kind in due {
            self.stats.faults_injected += 1;
            if let Some(o) = &self.obs {
                o.metrics
                    .counter_add_with("faults.injected", &[("kind", kind.label())], 1);
            }
            match kind {
                FaultKind::Crash { switch } => events.push(Event::SwitchFail { switch }),
                FaultKind::Recover { switch } => events.push(Event::SwitchRecover { switch }),
                FaultKind::CapacityRevoke { switch, capacity } => {
                    if switch.0 < self.dataplane.switch_count() {
                        // The hardware loses the excess entries now; the
                        // synthesized event updates the instance model.
                        self.dataplane.revoke_capacity(switch, capacity);
                        events.push(Event::CapacityChange { switch, capacity });
                    }
                }
                FaultKind::InstallReject { .. } => {
                    unreachable!("install-rejects are armed inside the injector")
                }
            }
        }
        events
    }

    /// Handles [`Event::SwitchFail`]: the switch goes down, its TCAM is
    /// lost, and its capacity is zeroed in the working instance so every
    /// solver tier avoids it.
    fn on_switch_fail(&mut self, switch: SwitchId, instance: &mut Instance) -> EventOutcome {
        if switch.0 >= instance.topology().switch_count() {
            self.stats.events_failed += 1;
            return EventOutcome::Rejected {
                reason: format!("unknown switch {switch}"),
            };
        }
        self.stats.switch_crashes += 1;
        self.dataplane.crash(switch);
        let saved_capacity = match self.faults.unmanageable.get(&switch) {
            Some(outage) => outage.saved_capacity,
            None => instance.topology().capacities()[switch.0],
        };
        self.faults.unmanageable.insert(
            switch,
            Outage {
                kind: OutageKind::Crashed,
                saved_capacity,
            },
        );
        self.faults.breakers.entry(switch).or_default().reset();
        *instance = with_capacity(instance, switch, 0);
        EventOutcome::SwitchFailed { switch }
    }

    /// Handles [`Event::SwitchRecover`]: the switch comes back under
    /// control (blank TCAM if it crashed; stale-but-reconciled TCAM if
    /// it was quarantined) and its saved capacity is restored.
    fn on_switch_recover(&mut self, switch: SwitchId, instance: &mut Instance) -> EventOutcome {
        match self.faults.unmanageable.remove(&switch) {
            None => {
                self.stats.events_failed += 1;
                EventOutcome::Rejected {
                    reason: format!("{switch} is not out of service"),
                }
            }
            Some(outage) => {
                self.stats.switch_recoveries += 1;
                self.dataplane.restore(switch);
                self.faults.breakers.entry(switch).or_default().reset();
                *instance = with_capacity(instance, switch, outage.saved_capacity);
                EventOutcome::SwitchRecovered { switch }
            }
        }
    }

    /// Marks a switch unmanageable with the breaker-tripped outage kind.
    fn quarantine(&mut self, switch: SwitchId) {
        if self.faults.unmanageable.contains_key(&switch) {
            return;
        }
        self.stats.quarantines += 1;
        if let Some(o) = &self.obs {
            let tag = format!("s{}", switch.0);
            o.metrics.counter_add_with(
                "ctrl.quarantine_transitions",
                &[("switch", tag.as_str())],
                1,
            );
        }
        self.faults.unmanageable.insert(
            switch,
            Outage {
                kind: OutageKind::Quarantined,
                saved_capacity: self.dataplane.switch(switch).capacity(),
            },
        );
    }

    /// Re-zeroes the working instance's capacity for every out-of-service
    /// switch (a rollback can restore a pre-outage topology).
    fn enforce_outage_capacities(&self, instance: &mut Instance) {
        let capacities = instance.topology().capacities();
        let stale: Vec<SwitchId> = self
            .faults
            .unmanageable
            .keys()
            .copied()
            .filter(|s| capacities.get(s.0).is_some_and(|&c| c != 0))
            .collect();
        for s in stale {
            *instance = with_capacity(instance, s, 0);
        }
    }

    /// Moves an ingress into safe mode: its placed entries are stripped
    /// (the drop-all fence replaces them in the dataplane target).
    fn enter_safe_mode(&mut self, ingress: EntryPortId, placement: &mut Placement) {
        placement.remove_ingress(ingress);
        self.faults.safe_mode.insert(ingress);
    }

    /// Graceful-degradation ladder: re-place every ingress touching an
    /// out-of-service or over-budget switch (and, on the first round of
    /// an epoch, every safe-mode ingress, attempting to lift the fence)
    /// via a batched restricted re-solve → full re-solve → per-ingress
    /// delegation → per-ingress salvage; what cannot be placed at all
    /// goes (or stays) fail-closed in safe mode.
    ///
    /// Delegation maintenance runs first: a delegation whose delegate
    /// or anchor went out of service — quarantine treats delegated
    /// entries pessimally — whose routes no longer visit the delegate,
    /// or whose ingress went fail-closed is torn down (routes restored,
    /// entries stripped) and the ingress re-enters the ladder, which
    /// may re-home it on a new delegate or fail it closed. Lift rounds
    /// probe opportunistic undelegation instead: a shadow re-solve
    /// without the detour, committed only when it fits, so a still-
    /// necessary delegation is left untouched.
    fn degrade(&mut self, instance: &mut Instance, placement: &mut Placement, lift: bool) {
        let mut seeded: BTreeSet<EntryPortId> = BTreeSet::new();
        let mut torn: BTreeSet<EntryPortId> = BTreeSet::new();
        for (l, d) in self.faults.delegations.clone() {
            let faulted = self.faults.unmanageable.contains_key(&d.delegate)
                || !self.dataplane.is_online(d.delegate)
                || d.anchors
                    .iter()
                    .any(|a| self.faults.unmanageable.contains_key(a));
            let detached = !instance
                .routes()
                .iter()
                .any(|r| r.ingress == l && r.contains(d.delegate));
            if faulted || detached || self.faults.safe_mode.contains(&l) {
                *instance = delegate::restore_instance(instance, l, d.delegate);
                self.faults.delegations.remove(&l);
                placement.remove_ingress(l);
                seeded.insert(l);
                self.stats.delegation_teardowns += 1;
                torn.insert(l);
                self.note_delegate_event("torn-down");
            } else if lift {
                self.try_undelegate(instance, placement, l, &d);
            }
        }
        self.degrade_inner(instance, placement, lift, seeded, &torn);
    }

    /// Opportunistic undelegation: re-solve `ingress` against its
    /// original (detour-free) routes and commit only if it fits —
    /// capacity came back, the delegation is no longer needed.
    fn try_undelegate(
        &mut self,
        instance: &mut Instance,
        placement: &mut Placement,
        ingress: EntryPortId,
        d: &Delegation,
    ) {
        let restored = delegate::restore_instance(instance, ingress, d.delegate);
        let mut stripped = placement.clone();
        stripped.remove_ingress(ingress);
        let excluded: Vec<SwitchId> = self.faults.unmanageable.keys().copied().collect();
        if let Ok(out) = incremental::replace_ingresses_cached(
            &restored,
            &stripped,
            &[ingress],
            &excluded,
            &self.options.placement,
            self.options.objective.clone(),
            Some(&self.warm),
        ) {
            if let Some(p) = out.placement {
                *instance = out.instance;
                *placement = p;
                self.faults.delegations.remove(&ingress);
                self.stats.undelegations += 1;
                self.note_delegate_event("undelegated");
            }
        }
    }

    /// The ladder proper; `seeded` carries the ingresses the delegation
    /// maintenance pass already stripped.
    fn degrade_inner(
        &mut self,
        instance: &mut Instance,
        placement: &mut Placement,
        lift: bool,
        seeded: BTreeSet<EntryPortId>,
        torn: &BTreeSet<EntryPortId>,
    ) {
        let excluded: Vec<SwitchId> = self.faults.unmanageable.keys().copied().collect();
        let mut affected: BTreeSet<EntryPortId> = seeded;
        for ((ingress, _), switches) in placement.iter() {
            if switches
                .iter()
                .any(|s| self.faults.unmanageable.contains_key(s))
            {
                affected.insert(*ingress);
            }
        }
        // Invariant: a safe-mode ingress has no placed entries (a
        // rollback can resurrect some).
        for l in &self.faults.safe_mode {
            placement.remove_ingress(*l);
        }
        // Capacity pressure: a committed shrink (or cache resync) can
        // leave a switch's placed load over budget; those ingresses
        // must re-place before the commit check would reject the epoch.
        let load = placement.per_switch_load(instance);
        let capacities = instance.topology().capacities();
        for ((ingress, _), switches) in placement.iter() {
            if switches
                .iter()
                .any(|s| load.get(s.0).copied().unwrap_or(0) > capacities[s.0])
            {
                affected.insert(*ingress);
            }
        }
        if lift {
            affected.extend(self.faults.safe_mode.iter().copied());
        }
        if affected.is_empty() {
            return;
        }
        // Strip every affected ingress up front so no frozen entry sits
        // on a zero-capacity switch during the restricted sub-solves.
        for l in &affected {
            placement.remove_ingress(*l);
        }
        let targets: Vec<EntryPortId> = affected.iter().copied().collect();
        // Tier 1: one batched restricted re-solve of the affected set.
        if let Ok(out) = incremental::replace_ingresses_cached(
            instance,
            placement,
            &targets,
            &excluded,
            &self.options.placement,
            self.options.objective.clone(),
            Some(&self.warm),
        ) {
            if let Some(p) = out.placement {
                *instance = out.instance;
                *placement = p;
                for l in &targets {
                    self.faults.safe_mode.remove(l);
                }
                return;
            }
        }
        // Tier 2: full re-solve (outaged capacities are already zero).
        if let Ok(solved) = self.full_solve(instance) {
            *placement = solved;
            self.faults.safe_mode.clear();
            return;
        }
        // Tier 3: the delegation rung — detour through an off-route
        // neighbor with spare TCAM — then salvage; the rest go
        // fail-closed.
        for l in targets {
            if self.try_delegate(instance, placement, l, &excluded, torn) {
                self.faults.safe_mode.remove(&l);
                continue;
            }
            let mut salvaged = false;
            if let Ok(out) = incremental::replace_ingresses_cached(
                instance,
                placement,
                &[l],
                &excluded,
                &self.options.placement,
                self.options.objective.clone(),
                Some(&self.warm),
            ) {
                if let Some(p) = out.placement {
                    *instance = out.instance;
                    *placement = p;
                    self.faults.safe_mode.remove(&l);
                    salvaged = true;
                }
            }
            if !salvaged {
                self.enter_safe_mode(l, placement);
            }
        }
    }

    /// The delegation rung: detour `ingress`'s routes through an
    /// off-route neighbor with spare TCAM (the delegate) and re-solve
    /// just that ingress against the detoured instance, reaching
    /// capacity the on-route solver never could. Returns whether the
    /// ingress ended up placed. The delegation is only recorded when
    /// the solution actually uses the delegate; a solution that ignores
    /// it keeps the placement but drops the detour.
    fn try_delegate(
        &mut self,
        instance: &mut Instance,
        placement: &mut Placement,
        ingress: EntryPortId,
        excluded: &[SwitchId],
        torn: &BTreeSet<EntryPortId>,
    ) -> bool {
        if !self.options.delegation.enabled {
            return false;
        }
        let load = placement.per_switch_load(instance);
        let capacities = instance.topology().capacities();
        let usable =
            |s: SwitchId| !self.faults.unmanageable.contains_key(&s) && self.dataplane.is_online(s);
        let spare =
            |s: SwitchId| usable(s) && load.get(s.0).copied().unwrap_or(0) < capacities[s.0];
        let Some(d) = delegate::plan_delegation(instance, ingress, &usable, &spare) else {
            return false;
        };
        let Some(detoured) = delegate::detour_instance(instance, ingress, &d) else {
            return false;
        };
        let span = self.span_begin("ctrl.delegate");
        self.span_attr(span, "ingress", ingress.to_string());
        self.span_attr(span, "delegate", d.delegate.to_string());
        let mut placed = false;
        if let Ok(out) = incremental::replace_ingresses_cached(
            &detoured,
            placement,
            &[ingress],
            excluded,
            &self.options.placement,
            self.options.objective.clone(),
            Some(&self.warm),
        ) {
            if let Some(p) = out.placement {
                let used = p
                    .iter()
                    .any(|((l, _), sw)| *l == ingress && sw.contains(&d.delegate));
                if used {
                    *instance = out.instance;
                    self.stats.delegations += 1;
                    if torn.contains(&ingress) {
                        self.stats.delegation_rehomes += 1;
                        self.note_delegate_event("rehomed");
                    } else {
                        self.note_delegate_event("created");
                    }
                    self.faults.delegations.insert(ingress, d);
                } else {
                    // The solver fit without the delegate: keep the
                    // placement, roll the detour back unrecorded.
                    *instance = delegate::restore_instance(&out.instance, ingress, d.delegate);
                }
                *placement = p;
                placed = true;
            }
        }
        self.span_attr(
            span,
            "recorded",
            self.faults.delegations.contains_key(&ingress),
        );
        self.span_end(span);
        placed
    }

    /// Event-level delegation rescue: when a `CapacityChange` shrink is
    /// rejected by the dispatch ladder, delegate the victims (the
    /// ingresses placed on the shrunk switch, ascending) one by one
    /// until the shrunk instance fits again. `None` leaves the event
    /// rejected — the shrink still commits and the degradation ladder
    /// settles the overflow fail-closed.
    fn rescue_rejected(
        &mut self,
        event: &Event,
        instance: &Instance,
        placement: &Placement,
    ) -> Option<(Instance, Placement)> {
        match event {
            Event::CapacityChange { switch, capacity } => {
                self.delegate_capacity_rescue(instance, placement, *switch, *capacity)
            }
            _ => None,
        }
    }

    /// The body of the `CapacityChange` rescue; see
    /// [`rescue_rejected`](Controller::rescue_rejected).
    fn delegate_capacity_rescue(
        &mut self,
        instance: &Instance,
        placement: &Placement,
        switch: SwitchId,
        capacity: usize,
    ) -> Option<(Instance, Placement)> {
        if !self.options.delegation.enabled
            || switch.0 >= instance.topology().switch_count()
            || self.faults.unmanageable.contains_key(&switch)
        {
            return None;
        }
        let excluded: Vec<SwitchId> = self.faults.unmanageable.keys().copied().collect();
        let mut inst = with_capacity(instance, switch, capacity);
        let mut p = placement.clone();
        // Victims: ingresses with entries on the shrunk switch, minus
        // the already-delegated (their detours are live in `inst`).
        let victims: BTreeSet<EntryPortId> = p
            .iter()
            .filter(|(_, sw)| sw.contains(&switch))
            .map(|((l, _), _)| *l)
            .filter(|l| !self.faults.delegations.contains_key(l))
            .collect();
        if victims.is_empty() {
            return None;
        }
        let span = self.span_begin("ctrl.delegate.rescue");
        self.span_attr(span, "switch", switch.to_string());
        let mut planned: Vec<(EntryPortId, Delegation)> = Vec::new();
        let mut rescued: Option<(Instance, Placement)> = None;
        for l in victims {
            // Plan against the still-placed state: the delegate is off
            // the victim's routes, so its headroom is what matters.
            let load = p.per_switch_load(&inst);
            let capacities = inst.topology().capacities();
            let usable = |s: SwitchId| {
                !self.faults.unmanageable.contains_key(&s) && self.dataplane.is_online(s)
            };
            let spare =
                |s: SwitchId| usable(s) && load.get(s.0).copied().unwrap_or(0) < capacities[s.0];
            let Some(d) = delegate::plan_delegation(&inst, l, &usable, &spare) else {
                continue;
            };
            let Some(detoured) = delegate::detour_instance(&inst, l, &d) else {
                continue;
            };
            inst = detoured;
            p.remove_ingress(l);
            planned.push((l, d));
            let targets: Vec<EntryPortId> = planned.iter().map(|(l, _)| *l).collect();
            if let Ok(out) = incremental::replace_ingresses_cached(
                &inst,
                &p,
                &targets,
                &excluded,
                &self.options.placement,
                self.options.objective.clone(),
                Some(&self.warm),
            ) {
                if let Some(np) = out.placement {
                    // It fits again: record the delegations the
                    // solution uses, roll back the detours it ignored.
                    let mut ni = out.instance;
                    for (l, d) in &planned {
                        let used = np
                            .iter()
                            .any(|((vl, _), sw)| vl == l && sw.contains(&d.delegate));
                        if used {
                            self.faults.delegations.insert(*l, d.clone());
                            self.stats.delegations += 1;
                            self.note_delegate_event("created");
                        } else {
                            ni = delegate::restore_instance(&ni, *l, d.delegate);
                        }
                    }
                    rescued = Some((ni, np));
                    break;
                }
            }
        }
        self.span_attr(span, "rescued", rescued.is_some());
        self.span_end(span);
        rescued
    }

    /// Bumps the `ctrl.delegate.events` obs counter for one lifecycle
    /// transition (`created`, `rehomed`, `torn-down`, `undelegated`).
    fn note_delegate_event(&self, kind: &str) {
        if let Some(o) = &self.obs {
            o.metrics
                .counter_add_with("ctrl.delegate.events", &[("kind", kind)], 1);
        }
    }

    /// Builds the dataplane target for the working placement under the
    /// current outages: out-of-service switches keep their actual
    /// contents (no ops can reach them) and every safe-mode ingress gets
    /// a maximum-priority drop-all fence at the first manageable switch
    /// of each of its routes. A route with no manageable switch is
    /// fenced at the controller-owned entry port instead (no TCAM
    /// entry).
    fn build_target(
        &self,
        instance: &Instance,
        placement: &Placement,
    ) -> Result<Vec<Vec<TcamEntry>>, CtrlError> {
        let tables =
            emit_tables(instance, placement).map_err(|e| CtrlError::Table(e.to_string()))?;
        let mut target = DataPlane::target_from_tables(&tables);
        target.resize(self.dataplane.switch_count(), Vec::new());
        for s in self.faults.unmanageable.keys() {
            target[s.0] = self.dataplane.switch(*s).entries().to_vec();
        }
        // Membership-only dedup (never iterated): unordered FNV set.
        let mut fenced: FnvHashSet<(SwitchId, EntryPortId)> = FnvHashSet::default();
        for route in instance.routes().iter() {
            if !self.faults.safe_mode.contains(&route.ingress) {
                continue;
            }
            let Some(&s) = route
                .switches
                .iter()
                .find(|s| !self.faults.unmanageable.contains_key(s))
            else {
                continue; // fenced at the entry port
            };
            if !fenced.insert((s, route.ingress)) {
                continue;
            }
            let width = instance
                .policy(route.ingress)
                .map(|p| p.width())
                .unwrap_or(1)
                .max(1);
            target[s.0].push(TcamEntry {
                priority: u32::MAX,
                tags: BTreeSet::from([route.ingress]),
                match_field: Ternary::new(width, 0, 0),
                action: Action::Drop,
            });
        }
        // Delegation stubs: a low-priority match-all PERMIT on each
        // manageable anchor models the TCAM slot the hardware redirect
        // rule occupies. A PERMIT forwards exactly like no-match, so a
        // stale stub can never flip a packet's fate, and the reserved
        // bank keeps it outside billable capacity.
        for (l, d) in &self.faults.delegations {
            let width = instance.policy(*l).map(|p| p.width()).unwrap_or(1).max(1);
            for a in &d.anchors {
                if self.faults.unmanageable.contains_key(a) || a.0 >= target.len() {
                    continue;
                }
                let stub = TcamEntry {
                    priority: 0,
                    tags: BTreeSet::from([*l]),
                    match_field: Ternary::new(width, 0, 0),
                    action: Action::Permit,
                };
                if !target[a.0].contains(&stub) {
                    target[a.0].push(stub);
                }
            }
        }
        Ok(target)
    }

    /// The resilient commit pipeline: degrade → verify (escalating
    /// un-verifiable ingresses to safe mode instead of discarding the
    /// epoch) → fault-aware op-by-op apply → anti-entropy reconcile,
    /// looping until desired and actual state converge. Termination is
    /// guaranteed: every round either converges, quarantines a switch
    /// (bounded by the switch count), or burns bounded patience before
    /// force-quarantining whatever still fails.
    fn commit_resilient(
        &mut self,
        epoch: u64,
        instance: &mut Instance,
        placement: &mut Placement,
    ) -> Result<(ApplyReport, Vec<SwitchId>), CtrlError> {
        let mut total = ApplyReport::default();
        let mut newly_quarantined: Vec<SwitchId> = Vec::new();
        let mut patience = self.options.reconcile_rounds.max(1);
        let mut rounds = 0usize;
        loop {
            rounds += 1;
            self.enforce_outage_capacities(instance);
            self.degrade(instance, placement, rounds == 1);
            loop {
                match verify::verify_placement_excluding(
                    instance,
                    placement,
                    self.options.verify_packets,
                    epoch,
                    &self.faults.safe_mode,
                ) {
                    Ok(()) => break,
                    Err(verify::VerifyError::Violation(v)) => {
                        self.stats.verify_failures += 1;
                        self.enter_safe_mode(v.ingress, placement);
                    }
                    Err(e) => {
                        self.stats.verify_failures += 1;
                        return Err(CtrlError::VerifyFailed {
                            epoch,
                            detail: e.to_string(),
                        });
                    }
                }
            }
            let target = self.build_target(instance, placement)?;
            let mut capacities = instance.topology().capacities();
            for (s, outage) in &self.faults.unmanageable {
                // A switch that froze mid-transaction may hold
                // make-before-break overshoot we cannot clean up until
                // it is manageable again; tolerate the frozen
                // occupancy. `saved_capacity` keeps the true hardware
                // number for restore-on-recover.
                capacities[s.0] = outage
                    .saved_capacity
                    .max(self.dataplane.switch(*s).billable_occupancy());
            }
            self.dataplane.set_capacities(&capacities);
            let diff = self.dataplane.diff_to(&target)?;
            if diff.is_empty() {
                self.dataplane.validate_capacities()?;
                return Ok((total, newly_quarantined));
            }
            if rounds == 1 {
                self.stats.diffs_applied += 1;
            } else {
                self.stats.reconcile_runs += 1;
                self.stats.reconcile_churn += diff.churn() as u64;
            }
            let (applied, tripped, failing) = self.apply_with_faults(&diff);
            total.installed += applied.installed;
            total.removed += applied.removed;
            total.peak_occupancy = total.peak_occupancy.max(applied.peak_occupancy);
            if !tripped.is_empty() {
                newly_quarantined.extend(tripped);
                patience = self.options.reconcile_rounds.max(1);
            } else if !failing.is_empty() {
                patience -= 1;
                if patience == 0 {
                    for s in failing {
                        self.quarantine(s);
                        newly_quarantined.push(s);
                    }
                    patience = self.options.reconcile_rounds.max(1);
                }
            }
        }
    }

    /// Applies a diff op-by-op with retry/backoff and circuit breaking.
    /// Returns what was applied, the switches quarantined mid-apply, and
    /// the switches that failed ops without (yet) tripping the breaker.
    fn apply_with_faults(
        &mut self,
        diff: &RuleDiff,
    ) -> (ApplyReport, Vec<SwitchId>, Vec<SwitchId>) {
        let mut report = ApplyReport {
            installed: 0,
            removed: 0,
            peak_occupancy: (0..self.dataplane.switch_count())
                .map(|i| self.dataplane.switch(SwitchId(i)).occupancy())
                .max()
                .unwrap_or(0),
        };
        let mut tripped: Vec<SwitchId> = Vec::new();
        let mut failing: BTreeSet<SwitchId> = BTreeSet::new();
        for (s, e) in &diff.install {
            if self.faults.unmanageable.contains_key(s) {
                continue; // quarantined mid-apply: reconcile later
            }
            if self.install_with_retry(*s, e) {
                report.installed += 1;
                report.peak_occupancy = report
                    .peak_occupancy
                    .max(self.dataplane.switch(*s).occupancy());
                if e.is_safe_mode() {
                    self.stats.safe_mode_entries += 1;
                }
                if e.is_delegation_stub() {
                    self.stats.delegation_stub_entries += 1;
                }
                self.faults.breakers.entry(*s).or_default().record_success();
            } else {
                failing.insert(*s);
                let trips = self
                    .faults
                    .breakers
                    .entry(*s)
                    .or_default()
                    .record_failure(self.options.quarantine_after);
                if trips {
                    self.quarantine(*s);
                    tripped.push(*s);
                }
            }
        }
        for (s, e) in &diff.remove {
            if self.faults.unmanageable.contains_key(s) {
                continue;
            }
            match self.dataplane.remove(*s, e) {
                Ok(()) => {
                    report.removed += 1;
                    self.faults.breakers.entry(*s).or_default().record_success();
                }
                Err(_) => {
                    failing.insert(*s);
                    let trips = self
                        .faults
                        .breakers
                        .entry(*s)
                        .or_default()
                        .record_failure(self.options.quarantine_after);
                    if trips {
                        self.quarantine(*s);
                        tripped.push(*s);
                    }
                }
            }
        }
        let failing: Vec<SwitchId> = failing
            .into_iter()
            .filter(|s| !self.faults.unmanageable.contains_key(s))
            .collect();
        (report, tripped, failing)
    }

    /// One TCAM install with bounded-exponential-backoff retries on a
    /// virtual clock. Returns whether the entry landed.
    fn install_with_retry(&mut self, s: SwitchId, e: &TcamEntry) -> bool {
        let retry = self.options.retry;
        for attempt in 0..retry.max_attempts.max(1) {
            if attempt > 0 {
                let delay = retry.delay_ms(attempt - 1);
                self.faults.clock.advance(delay);
                self.stats.backoff_ms += delay;
                self.stats.install_retries += 1;
                if let Some(o) = &self.obs {
                    o.metrics.observe("dataplane.backoff_ms", delay);
                }
            }
            if !self.faults.injector.install_allowed(s) {
                self.stats.faults_injected += 1;
                if let Some(o) = &self.obs {
                    o.metrics
                        .counter_add_with("faults.injected", &[("kind", "install-reject")], 1);
                }
                continue;
            }
            return self.dataplane.install(s, e).is_ok();
        }
        false
    }

    /// Audits the deployed dataplane against the fail-closed invariant:
    /// on every live route, any packet the ingress policy drops is also
    /// dropped by the *actual* TCAM contents — stale entries on
    /// quarantined switches included, since those still forward. Routes
    /// through crashed switches carry no traffic, and a safe-mode route
    /// with no manageable switch is fenced at the controller-owned entry
    /// port; both are exempt. Extra drops are fine (degraded, never
    /// permissive); only a drop that leaks as a permit is a violation.
    ///
    /// # Errors
    ///
    /// A description of the first leaking packet.
    pub fn fail_closed_audit(&self) -> Result<(), String> {
        let mut tables = Vec::with_capacity(self.dataplane.switch_count());
        for i in 0..self.dataplane.switch_count() {
            let entries = self
                .dataplane
                .switch(SwitchId(i))
                .entries()
                .iter()
                .map(|e| TableEntry {
                    tags: e.tags.clone(),
                    match_field: e.match_field,
                    action: e.action,
                    priority: e.priority,
                    contributors: Vec::new(),
                })
                .collect();
            tables.push(SwitchTable::from_entries(entries));
        }
        let dataplane = &self.dataplane;
        let unmanageable = &self.faults.unmanageable;
        let safe_mode = &self.faults.safe_mode;
        let live = |route: &Route| {
            if !route.switches.iter().all(|&s| dataplane.is_online(s)) {
                return false; // traffic-dead: a crashed switch on path
            }
            if safe_mode.contains(&route.ingress)
                && route.switches.iter().all(|s| unmanageable.contains_key(s))
            {
                return false; // fenced at the entry port
            }
            true
        };
        verify::verify_tables(
            &self.instance,
            &tables,
            self.options.verify_packets,
            self.epochs.current(),
            VerifyMode::NoFalseNegatives,
            live,
        )
        .map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowplace_acl::{Action, Rule, Ternary};
    use flowplace_topo::SwitchId;

    fn t(bits: &str) -> Ternary {
        Ternary::parse(bits).unwrap()
    }

    fn small_controller(capacity: usize) -> Controller {
        let mut topo = Topology::linear(3);
        topo.set_uniform_capacity(capacity);
        Controller::new(topo, CtrlOptions::default())
    }

    fn install(ingress: usize, egress: usize, switches: &[usize]) -> Event {
        Event::InstallPolicy {
            ingress: EntryPortId(ingress),
            policy: Policy::from_rules(vec![
                Rule::new(t("10**"), Action::Drop, 2),
                Rule::new(t("****"), Action::Permit, 1),
            ])
            .unwrap(),
            routes: vec![Route::new(
                EntryPortId(ingress),
                EntryPortId(egress),
                switches.iter().map(|&s| SwitchId(s)).collect(),
            )],
        }
    }

    #[test]
    fn install_then_add_rule_greedy() {
        let mut ctrl = small_controller(10);
        ctrl.submit(install(0, 2, &[0, 1, 2])).unwrap();
        ctrl.submit(Event::AddRule {
            ingress: EntryPortId(0),
            rule: Rule::new(t("01**"), Action::Drop, 3),
        })
        .unwrap();
        let reports = ctrl.run_to_idle().unwrap();
        assert_eq!(reports.len(), 1, "both events coalesce into one epoch");
        assert_eq!(
            reports[0].tiers(),
            vec![Tier::Restricted, Tier::Greedy],
            "install settles restricted, add settles greedy"
        );
        assert_eq!(ctrl.epoch(), 1);
        // Both DROP rules are deployed somewhere (the trailing PERMIT is
        // the default action and costs no TCAM entry).
        assert!(ctrl.dataplane().total_occupancy() >= 2);
        assert_eq!(ctrl.stats().verify_failures, 0);
    }

    #[test]
    fn batching_coalesces_to_one_diff() {
        let mut ctrl = small_controller(16);
        ctrl.submit(install(0, 2, &[0, 1, 2])).unwrap();
        for p in 3..7 {
            ctrl.submit(Event::AddRule {
                ingress: EntryPortId(0),
                rule: Rule::new(t(&format!("{:02b}**", p % 4)), Action::Drop, p),
            })
            .unwrap();
        }
        let reports = ctrl.run_to_idle().unwrap();
        assert_eq!(reports.len(), 1, "5 events, batch_size 8, one epoch");
        assert_eq!(ctrl.stats().epochs, 1);
        assert_eq!(ctrl.stats().diffs_applied, 1);
    }

    #[test]
    fn flows_warm_the_cache_and_audits_stay_green() {
        let mut topo = Topology::linear(3);
        topo.set_uniform_capacity(10);
        let mut ctrl = Controller::new(
            topo,
            CtrlOptions {
                cache: CacheConfig::parse_spec("4").unwrap(),
                ..CtrlOptions::default()
            },
        );
        ctrl.submit(install(0, 2, &[0, 1, 2])).unwrap();
        ctrl.run_to_idle().unwrap();
        let flows = flowplace_traffic::generate(&flowplace_traffic::TrafficConfig {
            seed: 3,
            rate: 2000,
            duration_ms: 40,
            ingresses: 1,
            width: 4,
            flows_per_ingress: 8,
            ..flowplace_traffic::TrafficConfig::default()
        });
        let cold = ctrl.process_flows(&flows);
        assert_eq!(cold.flows, flows.len() as u64);
        assert_eq!(cold.unrouted, 0);
        assert!(cold.misses > 0, "cold cache must punt: {cold:?}");
        assert!(cold.resolves >= 1, "miss batches trigger re-solves");
        assert!(cold.miss_latency_ms > 0, "punt latency hits the clock");
        // Same stream again: everything missable is resident now.
        let warm = ctrl.process_flows(&flows);
        assert_eq!(warm.misses, 0, "warmed cache serves repeats: {warm:?}");
        assert!(warm.hits >= cold.misses);
        assert_eq!(ctrl.stats().cache_dep_violations, 0);
        ctrl.cache().audit().unwrap();
        ctrl.cache_fail_closed_audit().unwrap();
        assert_eq!(ctrl.stats().cache_hits, cold.hits + warm.hits);
    }

    #[test]
    fn cache_survives_epoch_resync() {
        let mut topo = Topology::linear(3);
        topo.set_uniform_capacity(10);
        let mut ctrl = Controller::new(
            topo,
            CtrlOptions {
                cache: CacheConfig::parse_spec("4").unwrap(),
                ..CtrlOptions::default()
            },
        );
        ctrl.submit(install(0, 2, &[0, 1, 2])).unwrap();
        ctrl.run_to_idle().unwrap();
        let flows = flowplace_traffic::generate(&flowplace_traffic::TrafficConfig {
            seed: 3,
            rate: 500,
            duration_ms: 20,
            ingresses: 1,
            width: 4,
            flows_per_ingress: 4,
            ..flowplace_traffic::TrafficConfig::default()
        });
        ctrl.process_flows(&flows);
        // A policy change re-solves and re-syncs the cache target.
        ctrl.submit(Event::AddRule {
            ingress: EntryPortId(0),
            rule: Rule::new(t("01**"), Action::Drop, 3),
        })
        .unwrap();
        ctrl.run_to_idle().unwrap();
        ctrl.cache().audit().unwrap();
        ctrl.cache_fail_closed_audit().unwrap();
        assert_eq!(ctrl.stats().cache_dep_violations, 0);
    }

    #[test]
    fn backpressure_rejects_past_capacity() {
        let mut ctrl = Controller::new(
            Topology::linear(2),
            CtrlOptions {
                queue_capacity: 2,
                ..CtrlOptions::default()
            },
        );
        ctrl.submit(Event::Solve).unwrap();
        ctrl.submit(Event::Solve).unwrap();
        assert!(matches!(
            ctrl.submit(Event::Solve),
            Err(CtrlError::QueueFull { capacity: 2 })
        ));
        assert_eq!(ctrl.stats().events_rejected, 1);
        assert_eq!(ctrl.stats().max_queue_depth, 2);
    }

    #[test]
    fn checkpoint_rollback_restores_state() {
        let mut ctrl = small_controller(10);
        ctrl.submit(install(0, 2, &[0, 1, 2])).unwrap();
        ctrl.run_to_idle().unwrap();
        let dump_before = ctrl.dataplane().dump();

        ctrl.submit(Event::Checkpoint).unwrap();
        ctrl.submit(Event::AddRule {
            ingress: EntryPortId(0),
            rule: Rule::new(t("11**"), Action::Drop, 5),
        })
        .unwrap();
        ctrl.submit(Event::Rollback).unwrap();
        ctrl.run_to_idle().unwrap();

        assert_eq!(ctrl.dataplane().dump(), dump_before);
        assert_eq!(ctrl.stats().checkpoints, 1);
        assert_eq!(ctrl.stats().rollbacks, 1);
        assert_eq!(ctrl.instance().policy(EntryPortId(0)).unwrap().len(), 2);
    }

    #[test]
    fn rollback_without_checkpoint_is_rejected() {
        let mut ctrl = small_controller(10);
        ctrl.submit(Event::Rollback).unwrap();
        let reports = ctrl.run_to_idle().unwrap();
        assert!(matches!(
            reports[0].outcomes[0].1,
            EventOutcome::Rejected { .. }
        ));
        assert_eq!(ctrl.stats().events_failed, 1);
    }

    #[test]
    fn capacity_change_keeps_placement_when_it_fits() {
        let mut ctrl = small_controller(10);
        ctrl.submit(install(0, 2, &[0, 1, 2])).unwrap();
        ctrl.run_to_idle().unwrap();
        let before = ctrl.placement().clone();
        ctrl.submit(Event::CapacityChange {
            switch: SwitchId(1),
            capacity: 9,
        })
        .unwrap();
        let reports = ctrl.run_to_idle().unwrap();
        assert_eq!(reports[0].tiers(), vec![Tier::Greedy]);
        assert_eq!(*ctrl.placement(), before);
    }

    #[test]
    fn infeasible_event_is_rejected_not_fatal() {
        let mut ctrl = small_controller(1);
        // The DROP drags its overlapping higher-priority PERMIT shield
        // onto the same switch: 2 entries cannot fit capacity 1.
        ctrl.submit(Event::InstallPolicy {
            ingress: EntryPortId(0),
            policy: Policy::from_rules(vec![
                Rule::new(t("10**"), Action::Permit, 2),
                Rule::new(t("1***"), Action::Drop, 1),
            ])
            .unwrap(),
            routes: vec![Route::new(
                EntryPortId(0),
                EntryPortId(2),
                vec![SwitchId(0), SwitchId(1), SwitchId(2)],
            )],
        })
        .unwrap();
        let reports = ctrl.run_to_idle().unwrap();
        assert!(matches!(
            reports[0].outcomes[0].1,
            EventOutcome::Rejected { .. }
        ));
        assert_eq!(ctrl.stats().events_failed, 1);
        assert_eq!(ctrl.dataplane().total_occupancy(), 0);
    }

    #[test]
    fn obs_attachment_is_effect_free_and_records() {
        let mut plain = small_controller(10);
        let mut observed = small_controller(10);
        observed.attach_obs(Obs::new());
        for ctrl in [&mut plain, &mut observed] {
            ctrl.submit(install(0, 2, &[0, 1, 2])).unwrap();
            ctrl.submit(Event::AddRule {
                ingress: EntryPortId(0),
                rule: Rule::new(t("01**"), Action::Drop, 3),
            })
            .unwrap();
            // The full tier runs the observed solver pipeline.
            ctrl.submit(Event::Solve).unwrap();
            ctrl.run_to_idle().unwrap();
        }
        // Telemetry is strictly effect-free.
        assert_eq!(plain.placement(), observed.placement());
        assert_eq!(plain.dataplane().dump(), observed.dataplane().dump());
        assert_eq!(plain.stats(), observed.stats());

        let obs = observed.obs().unwrap();
        assert_eq!(obs.spans.open_count(), 0);
        assert_eq!(obs.spans.mis_nested(), 0);
        let spans = obs.spans.spans();
        for expected in ["ctrl.epoch", "ctrl.event", "ctrl.commit", "pipeline"] {
            assert!(
                spans.iter().any(|s| s.name == expected),
                "missing span {expected}"
            );
        }
        assert_eq!(obs.metrics.counter_value("ctrl.epochs", &[]), 1);
        assert_eq!(
            obs.metrics
                .counter_value("ctrl.events", &[("kind", "install-policy")]),
            1
        );
        assert_eq!(
            obs.metrics
                .counter_value("ctrl.events", &[("kind", "add-rule")]),
            1
        );
        assert!(obs
            .metrics
            .gauge_value("tcam.occupancy", &[("switch", "s0")])
            .is_some());
        flowplace_obs::validate_obs_json(&obs.trace_json()).expect("trace validates");
        flowplace_obs::validate_obs_json(&obs.metrics_json()).expect("metrics validate");
    }

    fn fault_options(schedule: &str) -> CtrlOptions {
        CtrlOptions {
            faults: FaultPlan {
                schedule: parse_fault_schedule(schedule).unwrap(),
                ..FaultPlan::default()
            },
            ..CtrlOptions::default()
        }
    }

    #[test]
    fn switch_crash_degrades_and_recovers() {
        let mut topo = Topology::linear(3);
        topo.set_uniform_capacity(10);
        let mut ctrl = Controller::new(topo, fault_options("@2 fault crash s1"));
        ctrl.submit(install(0, 2, &[0, 1, 2])).unwrap();
        ctrl.run_to_idle().unwrap();

        // Epoch 2: s1 crashes; the placement is rebuilt around it.
        ctrl.submit(Event::AddRule {
            ingress: EntryPortId(0),
            rule: Rule::new(t("01**"), Action::Drop, 3),
        })
        .unwrap();
        let reports = ctrl.run_to_idle().unwrap();
        assert!(reports[0]
            .outcomes
            .iter()
            .any(|(_, o)| matches!(o, EventOutcome::SwitchFailed { switch } if switch.0 == 1)));
        assert_eq!(ctrl.stats().switch_crashes, 1);
        assert!(!ctrl.dataplane().is_online(SwitchId(1)));
        assert_eq!(ctrl.out_of_service(), vec![SwitchId(1)]);
        // Nothing may live on the dead switch; the invariant holds.
        assert_eq!(ctrl.dataplane().switch(SwitchId(1)).occupancy(), 0);
        ctrl.fail_closed_audit().expect("fail-closed after crash");
        assert_eq!(ctrl.stats().failclosed_violations, 0);

        // Recovery brings the switch back and the controller re-uses it.
        ctrl.submit(Event::SwitchRecover {
            switch: SwitchId(1),
        })
        .unwrap();
        let reports = ctrl.run_to_idle().unwrap();
        assert!(reports[0]
            .outcomes
            .iter()
            .any(|(_, o)| matches!(o, EventOutcome::SwitchRecovered { .. })));
        assert!(ctrl.out_of_service().is_empty());
        assert_eq!(ctrl.stats().switch_recoveries, 1);
        ctrl.fail_closed_audit()
            .expect("fail-closed after recovery");
    }

    #[test]
    fn transient_rejects_are_retried_through() {
        let mut topo = Topology::linear(3);
        topo.set_uniform_capacity(10);
        let mut ctrl = Controller::new(topo, fault_options("fault install-reject s0 2"));
        ctrl.submit(install(0, 2, &[0, 1, 2])).unwrap();
        ctrl.run_to_idle().unwrap();
        // Two rejects fit inside one op's retry budget (4 attempts).
        assert_eq!(ctrl.stats().faults_injected, 2);
        assert!(ctrl.stats().install_retries >= 2);
        assert!(ctrl.stats().backoff_ms > 0);
        assert!(ctrl.virtual_time_ms() > 0);
        assert_eq!(ctrl.stats().quarantines, 0);
        assert!(ctrl.dataplane().total_occupancy() >= 1);
        ctrl.fail_closed_audit().expect("fail-closed after retries");
    }

    #[test]
    fn persistent_rejects_quarantine_and_replace() {
        let mut topo = Topology::linear(3);
        topo.set_uniform_capacity(10);
        let options = CtrlOptions {
            quarantine_after: 2,
            retry: RetryPolicy {
                max_attempts: 2,
                ..RetryPolicy::default()
            },
            ..fault_options("fault install-reject s0 10000")
        };
        let mut ctrl = Controller::new(topo, options);
        ctrl.submit(install(0, 2, &[0, 1, 2])).unwrap();
        let reports = ctrl.run_to_idle().unwrap();
        assert_eq!(ctrl.stats().quarantines, 1);
        assert_eq!(ctrl.quarantined_switches(), vec![SwitchId(0)]);
        assert!(reports[0].quarantined.contains(&SwitchId(0)));
        // s0 still forwards but holds nothing; rules live on s1/s2.
        assert!(ctrl.dataplane().is_online(SwitchId(0)));
        assert_eq!(ctrl.dataplane().switch(SwitchId(0)).occupancy(), 0);
        assert!(ctrl.dataplane().total_occupancy() >= 1);
        assert!(ctrl.safe_mode_ingresses().is_empty());
        ctrl.fail_closed_audit()
            .expect("fail-closed after quarantine");
        assert_eq!(ctrl.stats().failclosed_violations, 0);
    }

    #[test]
    fn unplaceable_ingress_goes_safe_mode_and_lifts() {
        // Single-switch network: once s0 is quarantined nothing can be
        // placed, so the ingress must go fail-closed, fenced at the
        // entry port (no manageable switch can hold the drop-all). One
        // armed reject + a hair-trigger breaker quarantines immediately,
        // and the fault is spent by the time the switch recovers.
        let mut topo = Topology::linear(1);
        topo.set_uniform_capacity(10);
        let options = CtrlOptions {
            quarantine_after: 1,
            retry: RetryPolicy {
                max_attempts: 1,
                ..RetryPolicy::default()
            },
            ..fault_options("fault install-reject s0 1")
        };
        let mut ctrl = Controller::new(topo, options);
        ctrl.submit(install(0, 1, &[0])).unwrap();
        let reports = ctrl.run_to_idle().unwrap();
        assert_eq!(ctrl.quarantined_switches(), vec![SwitchId(0)]);
        assert_eq!(ctrl.safe_mode_ingresses(), vec![EntryPortId(0)]);
        assert_eq!(reports[0].safe_mode, vec![EntryPortId(0)]);
        ctrl.fail_closed_audit().expect("fenced route is exempt");

        // Events against a safe-mode ingress are refused.
        ctrl.submit(Event::AddRule {
            ingress: EntryPortId(0),
            rule: Rule::new(t("01**"), Action::Drop, 3),
        })
        .unwrap();
        let reports = ctrl.run_to_idle().unwrap();
        match &reports[0].outcomes[0].1 {
            EventOutcome::Rejected { reason } => assert!(reason.contains("safe mode")),
            other => panic!("expected safe-mode rejection, got {other:?}"),
        }

        // Recovery lifts the fence: the policy is re-placed for real.
        ctrl.submit(Event::SwitchRecover {
            switch: SwitchId(0),
        })
        .unwrap();
        ctrl.run_to_idle().unwrap();
        assert!(ctrl.safe_mode_ingresses().is_empty());
        assert!(ctrl.dataplane().total_occupancy() >= 1);
        ctrl.fail_closed_audit().expect("fail-closed after lift");
    }

    #[test]
    fn capacity_revoke_fault_evicts_and_reconciles() {
        let mut topo = Topology::linear(3);
        topo.set_uniform_capacity(10);
        let mut ctrl = Controller::new(topo, fault_options("@2 fault capacity s1 1"));
        ctrl.submit(install(0, 2, &[0, 1, 2])).unwrap();
        ctrl.run_to_idle().unwrap();
        ctrl.submit(Event::AddRule {
            ingress: EntryPortId(0),
            rule: Rule::new(t("01**"), Action::Drop, 3),
        })
        .unwrap();
        let reports = ctrl.run_to_idle().unwrap();
        // The fault surfaced as a synthesized capacity event.
        assert!(reports[0].outcomes.iter().any(
            |(e, _)| matches!(e, Event::CapacityChange { switch, capacity }
                if switch.0 == 1 && *capacity == 1)
        ));
        assert!(reports[0].injected >= 1);
        assert!(ctrl.dataplane().switch(SwitchId(1)).occupancy() <= 1);
        ctrl.fail_closed_audit().expect("fail-closed after revoke");
        assert_eq!(ctrl.stats().failclosed_violations, 0);
    }

    #[test]
    fn faulty_replay_is_deterministic() {
        let trace = "\
install-policy l0 via l2:s0-s1-s2 rules 10**:drop:2,****:permit:1
add-rule l0 01** drop 3
add-rule l0 11** drop 4
solve
add-rule l0 00** drop 5
";
        let run = || {
            let mut topo = Topology::linear(3);
            topo.set_uniform_capacity(8);
            let options = CtrlOptions {
                batch_size: 2,
                faults: FaultPlan {
                    seed: 7,
                    install_reject_rate: 0.3,
                    crash_rate: 0.1,
                    recover_rate: 0.5,
                    schedule: parse_fault_schedule("@2 fault install-reject s1 2").unwrap(),
                },
                ..CtrlOptions::default()
            };
            let mut ctrl = Controller::new(topo, options);
            let reports = ctrl.replay_trace(trace).unwrap();
            (
                format!("{reports:?}"),
                ctrl.dataplane().dump(),
                ctrl.stats().clone(),
                ctrl.virtual_time_ms(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn replay_is_deterministic() {
        let trace = "\
install-policy l0 via l2:s0-s1-s2 rules 10**:drop:2,****:permit:1
add-rule l0 01** drop 3
capacity s1 6
add-rule l0 11** drop 4
";
        let run = |_: usize| {
            let mut ctrl = small_controller(8);
            ctrl.replay_trace(trace).unwrap();
            (ctrl.dataplane().dump(), ctrl.stats().clone())
        };
        let (dump_a, stats_a) = run(0);
        let (dump_b, stats_b) = run(1);
        assert_eq!(dump_a, dump_b);
        assert_eq!(stats_a, stats_b);
    }

    #[test]
    fn tier_all_is_complete() {
        // Compile-time exhaustiveness: adding a Tier variant breaks
        // this match, forcing ALL (and CtrlStats::tier_counter, which
        // matches exhaustively too) to follow.
        let index = |t: Tier| match t {
            Tier::Greedy => 0usize,
            Tier::Restricted => 1,
            Tier::Full => 2,
            Tier::Delegated => 3,
        };
        assert_eq!(Tier::ALL.len(), 4);
        for (i, t) in Tier::ALL.iter().enumerate() {
            assert_eq!(index(*t), i, "Tier::ALL out of order at {i}");
        }
    }

    #[test]
    fn event_outcome_labels_are_complete() {
        // One sample per variant; a new variant without a label breaks
        // the exhaustive match inside label() first, then this count.
        let samples = [
            EventOutcome::Applied(Tier::Greedy),
            EventOutcome::Applied(Tier::Restricted),
            EventOutcome::Applied(Tier::Full),
            EventOutcome::Applied(Tier::Delegated),
            EventOutcome::Checkpoint,
            EventOutcome::RolledBack { to_epoch: 0 },
            EventOutcome::Rejected {
                reason: String::new(),
            },
            EventOutcome::SwitchFailed {
                switch: SwitchId(0),
            },
            EventOutcome::SwitchRecovered {
                switch: SwitchId(0),
            },
        ];
        assert_eq!(samples.len(), EventOutcome::ALL_LABELS.len());
        for s in &samples {
            assert!(EventOutcome::ALL_LABELS.contains(&s.label()), "{s:?}");
        }
        let distinct: BTreeSet<&str> = EventOutcome::ALL_LABELS.into_iter().collect();
        assert_eq!(distinct.len(), EventOutcome::ALL_LABELS.len());
    }

    /// Hub s0, leaves s1..=s4; routes through the hub leave s3/s4 as
    /// off-route delegation candidates.
    fn star_controller(capacity: usize, options: CtrlOptions) -> Controller {
        let mut topo = Topology::star(4);
        topo.set_uniform_capacity(capacity);
        Controller::new(topo, options)
    }

    /// An install whose policy carries `drops` disjoint exact-match
    /// DROP rules (each one a billable TCAM entry) over one route.
    fn install_drops(ingress: usize, egress: usize, switches: &[usize], drops: usize) -> Event {
        assert!(drops < 16);
        let mut rules: Vec<Rule> = (0..drops)
            .map(|i| Rule::new(t(&format!("{i:04b}")), Action::Drop, (i + 2) as u32))
            .collect();
        rules.push(Rule::new(t("****"), Action::Permit, 1));
        Event::InstallPolicy {
            ingress: EntryPortId(ingress),
            policy: Policy::from_rules(rules).unwrap(),
            routes: vec![Route::new(
                EntryPortId(ingress),
                EntryPortId(egress),
                switches.iter().map(|&s| SwitchId(s)).collect(),
            )],
        }
    }

    /// 10 entries fit the on-route 12 slots of s1-s0-s2; revoking the
    /// hub to zero leaves 8, forcing the shrink through delegation.
    fn delegation_pressure(ctrl: &mut Controller) -> Vec<EpochReport> {
        ctrl.submit(install_drops(0, 2, &[1, 0, 2], 10)).unwrap();
        ctrl.run_to_idle().unwrap();
        assert!(ctrl.delegations().is_empty());
        ctrl.submit(Event::CapacityChange {
            switch: SwitchId(0),
            capacity: 0,
        })
        .unwrap();
        ctrl.run_to_idle().unwrap()
    }

    #[test]
    fn capacity_shrink_delegates_instead_of_failing_closed() {
        let mut ctrl = star_controller(4, CtrlOptions::default());
        let reports = delegation_pressure(&mut ctrl);
        assert_eq!(
            reports.last().unwrap().tiers(),
            vec![Tier::Delegated],
            "the shrink settles via the delegation rung"
        );
        let delegations = ctrl.delegations();
        assert_eq!(delegations.len(), 1);
        assert_eq!(delegations[0].0, EntryPortId(0));
        assert_eq!(
            delegations[0].1.delegate,
            SwitchId(3),
            "smallest off-route neighbor wins"
        );
        assert_eq!(delegations[0].1.anchors, BTreeSet::from([SwitchId(0)]));
        assert_eq!(reports.last().unwrap().delegated, vec![EntryPortId(0)]);
        // The overflow lives on the delegate; the anchor carries a
        // reserved-bank redirect stub.
        assert!(
            ctrl.delegated_entries() >= 2,
            "{}",
            ctrl.delegated_entries()
        );
        assert!(ctrl
            .dataplane()
            .switch(SwitchId(0))
            .entries()
            .iter()
            .any(|e| e.is_delegation_stub()));
        assert_eq!(ctrl.stats().delegations, 1);
        assert_eq!(ctrl.stats().delegated_ok, 1);
        assert!(ctrl.stats().delegation_stub_entries >= 1);
        assert!(ctrl.safe_mode_ingresses().is_empty());
        assert_eq!(ctrl.stats().failclosed_violations, 0);
        ctrl.fail_closed_audit().unwrap();
    }

    #[test]
    fn delegation_off_fails_closed_under_the_same_shrink() {
        let mut ctrl = star_controller(
            4,
            CtrlOptions {
                delegation: DelegationConfig { enabled: false },
                ..CtrlOptions::default()
            },
        );
        let reports = delegation_pressure(&mut ctrl);
        // Without the rung the shrink is rejected, still committed, and
        // the overflowing ingress settles drop-all.
        assert_eq!(
            reports.last().unwrap().safe_mode,
            vec![EntryPortId(0)],
            "no rung: fail closed"
        );
        assert!(ctrl.delegations().is_empty());
        assert_eq!(ctrl.stats().delegations, 0);
        assert!(ctrl.stats().safe_mode_entries >= 1);
        assert_eq!(ctrl.stats().failclosed_violations, 0);
        ctrl.fail_closed_audit().unwrap();
    }

    #[test]
    fn delegate_crash_tears_down_and_rehomes() {
        let mut ctrl = star_controller(4, CtrlOptions::default());
        delegation_pressure(&mut ctrl);
        ctrl.submit(Event::SwitchFail {
            switch: SwitchId(3),
        })
        .unwrap();
        ctrl.run_to_idle().unwrap();
        assert_eq!(ctrl.stats().delegation_teardowns, 1);
        assert_eq!(ctrl.stats().delegation_rehomes, 1);
        let delegations = ctrl.delegations();
        assert_eq!(delegations.len(), 1);
        assert_eq!(
            delegations[0].1.delegate,
            SwitchId(4),
            "re-homed on the surviving neighbor"
        );
        assert!(ctrl.safe_mode_ingresses().is_empty());
        assert_eq!(ctrl.stats().failclosed_violations, 0);
        ctrl.fail_closed_audit().unwrap();
    }

    #[test]
    fn capacity_return_undelegates_opportunistically() {
        let mut ctrl = star_controller(4, CtrlOptions::default());
        delegation_pressure(&mut ctrl);
        ctrl.submit(Event::CapacityChange {
            switch: SwitchId(0),
            capacity: 4,
        })
        .unwrap();
        ctrl.run_to_idle().unwrap();
        assert!(ctrl.delegations().is_empty(), "capacity came back");
        assert_eq!(ctrl.stats().undelegations, 1);
        assert_eq!(ctrl.dataplane().switch(SwitchId(3)).occupancy(), 0);
        assert!(!ctrl
            .dataplane()
            .switch(SwitchId(0))
            .entries()
            .iter()
            .any(|e| e.is_delegation_stub()));
        assert_eq!(ctrl.stats().failclosed_violations, 0);
        ctrl.fail_closed_audit().unwrap();
    }

    #[test]
    fn delegation_lifecycle_mirrors_through_obs() {
        let mut ctrl = star_controller(4, CtrlOptions::default());
        ctrl.attach_obs(Obs::new());
        delegation_pressure(&mut ctrl);
        let obs = ctrl.obs().unwrap();
        assert_eq!(
            obs.metrics
                .counter_value("ctrl.outcomes", &[("outcome", "applied:delegated")]),
            1
        );
        assert_eq!(
            obs.metrics
                .counter_value("ctrl.delegate.events", &[("kind", "created")]),
            1
        );
        assert!(obs
            .spans
            .spans()
            .iter()
            .any(|s| s.name == "ctrl.delegate.rescue"));
        flowplace_obs::validate_obs_json(&obs.trace_json()).expect("trace validates");
        flowplace_obs::validate_obs_json(&obs.metrics_json()).expect("metrics validate");
    }
}

//! Epoch numbering and checkpoint/rollback snapshots.
//!
//! The controller commits one epoch per processed batch. `checkpoint`
//! events capture the working `(Instance, Placement)` pair; `rollback`
//! restores the most recent capture. The dataplane is *not* part of a
//! snapshot — it reconciles automatically at the next commit, because
//! deployed tables are always re-derived from the placement and diffed.
//!
//! Fault-tolerance state (out-of-service switches, safe-mode ingresses,
//! circuit breakers, the injector's RNG) is likewise not snapshotted:
//! outages are facts about the network, not controller decisions, so a
//! rollback cannot undo them. The commit after a rollback re-zeroes
//! capacities for switches that are still out and reconciles as usual.

use flowplace_core::{Instance, Placement};

/// A captured controller state.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Epoch counter at capture time.
    pub epoch: u64,
    /// The instance (topology, routes, policies) at capture time.
    pub instance: Instance,
    /// The deployed placement at capture time.
    pub placement: Placement,
}

/// Monotonic epoch counter plus a bounded stack of snapshots.
#[derive(Clone, Debug)]
pub struct EpochLog {
    current: u64,
    depth: usize,
    snapshots: Vec<Snapshot>,
}

impl EpochLog {
    /// Creates a log retaining at most `depth` snapshots (older ones are
    /// dropped silently).
    pub fn new(depth: usize) -> Self {
        EpochLog {
            current: 0,
            depth: depth.max(1),
            snapshots: Vec::new(),
        }
    }

    /// The last committed epoch (0 before any commit).
    pub fn current(&self) -> u64 {
        self.current
    }

    /// The epoch the in-flight batch will commit as.
    pub fn next(&self) -> u64 {
        self.current + 1
    }

    /// Commits the in-flight epoch.
    pub fn advance(&mut self) -> u64 {
        self.current += 1;
        self.current
    }

    /// Number of retained snapshots.
    pub fn snapshot_count(&self) -> usize {
        self.snapshots.len()
    }

    /// Pushes a snapshot, evicting the oldest past the retention depth.
    pub fn checkpoint(&mut self, instance: Instance, placement: Placement) {
        self.snapshots.push(Snapshot {
            epoch: self.current,
            instance,
            placement,
        });
        if self.snapshots.len() > self.depth {
            let excess = self.snapshots.len() - self.depth;
            self.snapshots.drain(..excess);
        }
    }

    /// Pops the most recent snapshot, if any.
    pub fn rollback(&mut self) -> Option<Snapshot> {
        self.snapshots.pop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowplace_routing::RouteSet;
    use flowplace_topo::Topology;

    fn empty_instance() -> Instance {
        Instance::new(Topology::linear(2), RouteSet::new(), Vec::new()).unwrap()
    }

    #[test]
    fn advances_monotonically() {
        let mut log = EpochLog::new(4);
        assert_eq!(log.current(), 0);
        assert_eq!(log.next(), 1);
        assert_eq!(log.advance(), 1);
        assert_eq!(log.advance(), 2);
        assert_eq!(log.current(), 2);
    }

    #[test]
    fn bounded_snapshot_retention() {
        let mut log = EpochLog::new(2);
        for _ in 0..5 {
            log.checkpoint(empty_instance(), Placement::default());
            log.advance();
        }
        assert_eq!(log.snapshot_count(), 2);
        // Most recent first on rollback.
        assert_eq!(log.rollback().unwrap().epoch, 4);
        assert_eq!(log.rollback().unwrap().epoch, 3);
        assert!(log.rollback().is_none());
    }
}

//! Controller counters.

use crate::Tier;
use flowplace_obs::Registry;
use std::fmt;

/// Cumulative counters for one [`Controller`](crate::Controller).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CtrlStats {
    /// Events accepted into the queue.
    pub events_in: u64,
    /// Events refused at submission because the queue was full.
    pub events_rejected: u64,
    /// Events that failed during processing (infeasible after the full
    /// ladder, bad references, nothing to roll back).
    pub events_failed: u64,
    /// Epochs committed.
    pub epochs: u64,
    /// Non-empty diffs applied to the dataplane.
    pub diffs_applied: u64,
    /// TCAM entries installed, cumulative.
    pub entries_installed: u64,
    /// TCAM entries removed, cumulative.
    pub entries_removed: u64,
    /// Events settled at the greedy incremental tier.
    pub greedy_ok: u64,
    /// Events settled at the restricted re-solve tier.
    pub restricted_ok: u64,
    /// Events settled at the full re-solve tier.
    pub full_ok: u64,
    /// Events settled at the delegation rung (routes detoured through
    /// an off-route delegate with spare TCAM).
    pub delegated_ok: u64,
    /// Commits whose golden-model verification failed (the epoch is
    /// discarded, never deployed).
    pub verify_failures: u64,
    /// Checkpoints taken.
    pub checkpoints: u64,
    /// Rollbacks performed.
    pub rollbacks: u64,
    /// Highest per-switch occupancy ever reached, including transient
    /// make-before-break overshoot.
    pub peak_tcam_occupancy: usize,
    /// Deepest the event queue ever got.
    pub max_queue_depth: usize,
    /// Dataplane faults injected (scripted + probabilistic).
    pub faults_injected: u64,
    /// TCAM installs retried after a rejection.
    pub install_retries: u64,
    /// Virtual milliseconds spent in retry backoff.
    pub backoff_ms: u64,
    /// Switches quarantined by a tripped circuit breaker.
    pub quarantines: u64,
    /// Switch crashes observed (events + injected faults).
    pub switch_crashes: u64,
    /// Switch recoveries observed.
    pub switch_recoveries: u64,
    /// Safe-mode drop-all entries installed, cumulative.
    pub safe_mode_entries: u64,
    /// Delegations established (commit-level rung + event-level
    /// capacity rescues).
    pub delegations: u64,
    /// Delegations re-established for an ingress whose previous
    /// delegation was torn down in the same degradation pass
    /// (delegate/anchor crash or quarantine cascaded a re-home).
    pub delegation_rehomes: u64,
    /// Delegations torn down fail-closed because the delegate or an
    /// anchor left the controller's reach (or the routes moved away).
    pub delegation_teardowns: u64,
    /// Delegations retired opportunistically: a lift-round re-solve
    /// placed the ingress without the detour (capacity returned).
    pub undelegations: u64,
    /// Delegation redirect stubs installed, cumulative.
    pub delegation_stub_entries: u64,
    /// Anti-entropy reconciliation passes that applied repairs.
    pub reconcile_runs: u64,
    /// TCAM entries churned by reconciliation repairs.
    pub reconcile_churn: u64,
    /// Fail-closed audit violations ever observed after a commit. Must
    /// stay zero: a nonzero value means a packet that the policy drops
    /// could traverse a live route un-dropped.
    pub failclosed_violations: u64,
    /// Whole-instance memo lookups (`warm_memo_hits + warm_memo_misses`
    /// always equals this; the invariant tests pin it).
    pub warm_memo_lookups: u64,
    /// Whole-instance solves answered from the epoch placement memo.
    pub warm_memo_hits: u64,
    /// Whole-instance solves that missed the memo and ran the pipeline.
    pub warm_memo_misses: u64,
    /// Memo entries evicted by the FIFO capacity bound.
    pub warm_memo_evictions: u64,
    /// Per-ingress dependency graphs reused from the warm cache.
    pub warm_depgraphs_reused: u64,
    /// Per-ingress candidate sets reused from the warm cache.
    pub warm_candidates_reused: u64,
    /// ILP session solves seeded with the previous epoch's incumbent.
    pub warm_ilp_seeded: u64,
    /// Learnt clauses retained by the persistent PB-SAT session
    /// (gauge: value after the most recent session solve).
    pub warm_sat_learnt_retained: u64,
    /// Cache-tier lookups (per-switch, per-flow).
    pub cache_lookups: u64,
    /// Cache lookups answered by a resident TCAM entry.
    pub cache_hits: u64,
    /// Cache lookups punted to the controller.
    pub cache_misses: u64,
    /// Entries made resident in the cache tier.
    pub cache_inserts: u64,
    /// Entries evicted from the cache tier (cascades included).
    pub cache_evictions: u64,
    /// Ancestor entries pulled resident to preserve the dependency
    /// closure invariant.
    pub cache_closure_pulls: u64,
    /// Insertions skipped because the dependency closure alone exceeds
    /// the cache capacity.
    pub cache_uncacheable: u64,
    /// Warm re-solves triggered by miss batches (controller load).
    pub cache_resolves: u64,
    /// Miss batches flushed through the controller.
    pub cache_miss_batches: u64,
    /// Virtual milliseconds of controller punt latency charged to
    /// cache misses.
    pub cache_miss_latency_ms: u64,
    /// Dependency-safety audit violations in the cache tier. Must stay
    /// zero: a nonzero value means an eviction stranded a dependent
    /// entry and the resident TCAM could invert a decision.
    pub cache_dep_violations: u64,
}

impl CtrlStats {
    /// Total TCAM entries churned (installed + removed).
    pub fn rules_churned(&self) -> u64 {
        self.entries_installed + self.entries_removed
    }

    /// Events that escalated past the greedy tier.
    pub fn escalations(&self) -> u64 {
        self.restricted_ok + self.full_ok + self.delegated_ok
    }

    /// The counter tracking events settled at `tier`. The match is
    /// exhaustive on purpose: adding a ladder rung without a counter
    /// fails to compile, and the completeness test pins each counter's
    /// presence in the [`export`](CtrlStats::export) mirror.
    pub fn tier_counter(&self, tier: Tier) -> u64 {
        match tier {
            Tier::Greedy => self.greedy_ok,
            Tier::Restricted => self.restricted_ok,
            Tier::Full => self.full_ok,
            Tier::Delegated => self.delegated_ok,
        }
    }

    /// Mirrors every counter onto an observability registry under the
    /// `ctrl.*` / `warm.*` namespaces (absolute-value sync — the fields
    /// here stay the source of truth and all public accessors keep
    /// working; the registry is a read-only projection).
    pub fn export(&self, metrics: &Registry) {
        let counters: &[(&str, u64)] = &[
            ("ctrl.events_in", self.events_in),
            ("ctrl.events_rejected", self.events_rejected),
            ("ctrl.events_failed", self.events_failed),
            ("ctrl.epochs", self.epochs),
            ("ctrl.diffs_applied", self.diffs_applied),
            ("ctrl.entries_installed", self.entries_installed),
            ("ctrl.entries_removed", self.entries_removed),
            ("ctrl.greedy_ok", self.greedy_ok),
            ("ctrl.restricted_ok", self.restricted_ok),
            ("ctrl.full_ok", self.full_ok),
            ("ctrl.delegated_ok", self.delegated_ok),
            ("ctrl.verify_failures", self.verify_failures),
            ("ctrl.checkpoints", self.checkpoints),
            ("ctrl.rollbacks", self.rollbacks),
            ("faults.injected_total", self.faults_injected),
            ("dataplane.install_retries", self.install_retries),
            ("dataplane.backoff_ms_total", self.backoff_ms),
            ("ctrl.quarantines", self.quarantines),
            ("ctrl.switch_crashes", self.switch_crashes),
            ("ctrl.switch_recoveries", self.switch_recoveries),
            ("ctrl.safe_mode_entries", self.safe_mode_entries),
            ("ctrl.delegate.delegations", self.delegations),
            ("ctrl.delegate.rehomes", self.delegation_rehomes),
            ("ctrl.delegate.teardowns", self.delegation_teardowns),
            ("ctrl.delegate.undelegations", self.undelegations),
            ("ctrl.delegate.stub_entries", self.delegation_stub_entries),
            ("ctrl.reconcile_runs", self.reconcile_runs),
            ("ctrl.reconcile_churn", self.reconcile_churn),
            ("ctrl.failclosed_violations", self.failclosed_violations),
            ("warm.memo_lookups", self.warm_memo_lookups),
            ("warm.memo_hits", self.warm_memo_hits),
            ("warm.memo_misses", self.warm_memo_misses),
            ("warm.memo_evictions", self.warm_memo_evictions),
            ("warm.depgraphs_reused", self.warm_depgraphs_reused),
            ("warm.candidates_reused", self.warm_candidates_reused),
            ("warm.ilp_seeded", self.warm_ilp_seeded),
            ("cache.lookups", self.cache_lookups),
            ("cache.hits", self.cache_hits),
            ("cache.misses", self.cache_misses),
            ("cache.inserts", self.cache_inserts),
            ("cache.evictions", self.cache_evictions),
            ("cache.closure_pulls", self.cache_closure_pulls),
            ("cache.uncacheable", self.cache_uncacheable),
            ("cache.resolves", self.cache_resolves),
            ("cache.miss_batches", self.cache_miss_batches),
            ("cache.miss_latency_ms", self.cache_miss_latency_ms),
            ("cache.dep_violations", self.cache_dep_violations),
        ];
        for (name, value) in counters {
            metrics.counter_set_with(name, &[], *value);
        }
        metrics.gauge_set("ctrl.peak_tcam_occupancy", self.peak_tcam_occupancy as i64);
        metrics.gauge_set("ctrl.max_queue_depth", self.max_queue_depth as i64);
        metrics.gauge_set(
            "warm.sat_learnt_retained",
            self.warm_sat_learnt_retained as i64,
        );
    }
}

impl fmt::Display for CtrlStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "events: {} in, {} rejected, {} failed",
            self.events_in, self.events_rejected, self.events_failed
        )?;
        writeln!(
            f,
            "tiers: {} greedy, {} restricted, {} full, {} delegated",
            self.greedy_ok, self.restricted_ok, self.full_ok, self.delegated_ok
        )?;
        writeln!(
            f,
            "epochs: {} committed, {} diffs, {} installed, {} removed ({} churned)",
            self.epochs,
            self.diffs_applied,
            self.entries_installed,
            self.entries_removed,
            self.rules_churned()
        )?;
        writeln!(
            f,
            "safety: {} verify failures, {} checkpoints, {} rollbacks",
            self.verify_failures, self.checkpoints, self.rollbacks
        )?;
        writeln!(
            f,
            "pressure: peak tcam occupancy {}, max queue depth {}",
            self.peak_tcam_occupancy, self.max_queue_depth
        )?;
        writeln!(
            f,
            "faults: {} injected, {} retries, {}ms backoff, {} quarantines, {} crashes, {} recoveries",
            self.faults_injected,
            self.install_retries,
            self.backoff_ms,
            self.quarantines,
            self.switch_crashes,
            self.switch_recoveries
        )?;
        writeln!(
            f,
            "degradation: {} safe-mode entries, {} reconcile runs ({} churned), {} fail-closed violations",
            self.safe_mode_entries,
            self.reconcile_runs,
            self.reconcile_churn,
            self.failclosed_violations
        )?;
        writeln!(
            f,
            "delegation: {} delegations ({} rehomed), {} teardowns, {} undelegations, {} stubs installed",
            self.delegations,
            self.delegation_rehomes,
            self.delegation_teardowns,
            self.undelegations,
            self.delegation_stub_entries
        )?;
        writeln!(
            f,
            "warm: {} memo hits / {} misses ({} evicted), {} depgraphs + {} candidates reused, {} ilp seeds, {} learnt retained",
            self.warm_memo_hits,
            self.warm_memo_misses,
            self.warm_memo_evictions,
            self.warm_depgraphs_reused,
            self.warm_candidates_reused,
            self.warm_ilp_seeded,
            self.warm_sat_learnt_retained
        )?;
        write!(
            f,
            "cache: {} hits / {} misses ({} lookups), {} inserts ({} pulled), {} evictions, {} uncacheable, {} resolves in {} batches ({}ms punt), {} dep violations",
            self.cache_hits,
            self.cache_misses,
            self.cache_lookups,
            self.cache_inserts,
            self.cache_closure_pulls,
            self.cache_evictions,
            self.cache_uncacheable,
            self.cache_resolves,
            self.cache_miss_batches,
            self.cache_miss_latency_ms,
            self.cache_dep_violations
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_counters() {
        let stats = CtrlStats {
            entries_installed: 7,
            entries_removed: 3,
            restricted_ok: 2,
            full_ok: 1,
            ..CtrlStats::default()
        };
        assert_eq!(stats.rules_churned(), 10);
        assert_eq!(stats.escalations(), 3);
        let text = stats.to_string();
        assert!(text.contains("2 restricted"));
        assert!(text.contains("10 churned"));
    }

    #[test]
    fn fault_counters_render() {
        let stats = CtrlStats {
            faults_injected: 5,
            install_retries: 3,
            quarantines: 1,
            safe_mode_entries: 2,
            ..CtrlStats::default()
        };
        let text = stats.to_string();
        assert!(text.contains("5 injected"));
        assert!(text.contains("3 retries"));
        assert!(text.contains("1 quarantines"));
        assert!(text.contains("2 safe-mode entries"));
        assert!(text.contains("0 fail-closed violations"));
    }

    #[test]
    fn export_mirrors_onto_registry_idempotently() {
        let stats = CtrlStats {
            events_in: 5,
            quarantines: 2,
            peak_tcam_occupancy: 7,
            warm_memo_hits: 1,
            ..CtrlStats::default()
        };
        let reg = Registry::new();
        stats.export(&reg);
        assert_eq!(reg.counter_value("ctrl.events_in", &[]), 5);
        assert_eq!(reg.counter_value("ctrl.quarantines", &[]), 2);
        assert_eq!(reg.gauge_value("ctrl.peak_tcam_occupancy", &[]), Some(7));
        assert_eq!(reg.counter_value("warm.memo_hits", &[]), 1);
        // Absolute-value sync: re-exporting must not double count.
        stats.export(&reg);
        assert_eq!(reg.counter_value("ctrl.events_in", &[]), 5);
    }

    #[test]
    fn every_tier_round_trips_through_the_metrics_mirror() {
        // Completeness guard: a new ladder rung must get a counter
        // (tier_counter's exhaustive match), an entry in Tier::ALL
        // (pinned in the lib tests), and an export line named after its
        // Display form — this test fails on a missing export line.
        let stats = CtrlStats {
            greedy_ok: 1,
            restricted_ok: 2,
            full_ok: 3,
            delegated_ok: 4,
            ..CtrlStats::default()
        };
        let reg = Registry::new();
        stats.export(&reg);
        for tier in Tier::ALL {
            let name = format!("ctrl.{tier}_ok");
            assert!(
                stats.tier_counter(tier) > 0,
                "test must give {tier} a distinct value"
            );
            assert_eq!(
                reg.counter_value(&name, &[]),
                stats.tier_counter(tier),
                "{name} missing from the export mirror"
            );
        }
    }

    #[test]
    fn delegation_counters_render_and_export() {
        let stats = CtrlStats {
            delegated_ok: 2,
            delegations: 5,
            delegation_rehomes: 1,
            delegation_teardowns: 3,
            undelegations: 2,
            delegation_stub_entries: 4,
            ..CtrlStats::default()
        };
        let text = stats.to_string();
        assert!(text.contains("2 delegated"), "{text}");
        assert!(
            text.contains("delegation: 5 delegations (1 rehomed), 3 teardowns, 2 undelegations, 4 stubs installed"),
            "{text}"
        );
        let reg = Registry::new();
        stats.export(&reg);
        assert_eq!(reg.counter_value("ctrl.delegated_ok", &[]), 2);
        assert_eq!(reg.counter_value("ctrl.delegate.delegations", &[]), 5);
        assert_eq!(reg.counter_value("ctrl.delegate.rehomes", &[]), 1);
        assert_eq!(reg.counter_value("ctrl.delegate.teardowns", &[]), 3);
        assert_eq!(reg.counter_value("ctrl.delegate.undelegations", &[]), 2);
        assert_eq!(reg.counter_value("ctrl.delegate.stub_entries", &[]), 4);
    }

    #[test]
    fn warm_counters_render() {
        let stats = CtrlStats {
            warm_memo_hits: 4,
            warm_memo_misses: 2,
            warm_depgraphs_reused: 9,
            warm_candidates_reused: 8,
            warm_ilp_seeded: 1,
            ..CtrlStats::default()
        };
        let text = stats.to_string();
        assert!(text.contains("warm: 4 memo hits / 2 misses"));
        assert!(text.contains("9 depgraphs + 8 candidates reused"));
        assert!(text.contains("1 ilp seeds"));
    }

    #[test]
    fn cache_counters_render_and_export() {
        let stats = CtrlStats {
            cache_lookups: 10,
            cache_hits: 7,
            cache_misses: 3,
            cache_inserts: 3,
            cache_closure_pulls: 1,
            cache_evictions: 2,
            cache_resolves: 1,
            cache_miss_batches: 1,
            cache_miss_latency_ms: 3,
            ..CtrlStats::default()
        };
        let text = stats.to_string();
        assert!(text.contains("cache: 7 hits / 3 misses (10 lookups)"));
        assert!(text.contains("3 inserts (1 pulled)"));
        assert!(text.contains("1 resolves in 1 batches (3ms punt)"));
        assert!(text.contains("0 dep violations"));
        let reg = Registry::new();
        stats.export(&reg);
        assert_eq!(reg.counter_value("cache.hits", &[]), 7);
        assert_eq!(reg.counter_value("cache.misses", &[]), 3);
        assert_eq!(reg.counter_value("cache.dep_violations", &[]), 0);
    }
}

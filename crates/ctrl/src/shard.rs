//! Sharded multi-tenant controller runtime.
//!
//! A [`ShardedController`] partitions ingress policies (tenants) across
//! `N` shards and runs the controller's epoch/event loop over the
//! partition, with a deterministic cross-shard coordination step after
//! every epoch. The headline contract is *byte-identity*: for any event
//! stream, the sharded controller's placements, [`CtrlStats`], and obs
//! dumps are byte-identical to the unsharded [`Controller`] on the same
//! stream, at any shard count (`tests/shard_differential.rs` pins this
//! over 32 seeds × N ∈ {1, 2, 4, 8}, chaos matrix included).
//!
//! ## Determinism recipe
//!
//! The recipe extends `flowplace_core::par`'s spawn-order merge rule
//! from solve fan-out to the control plane:
//!
//! 1. **Partition** — an ingress's shard is a pure function of the
//!    [`ShardSpec`]: an explicit override, else a stable FNV hash of
//!    the ingress id modulo the shard count. No load balancing, no
//!    arrival-order dependence.
//! 2. **Authoritative interleaving** — events execute in global arrival
//!    order through the *same* controller code path as unsharded;
//!    intra-shard order is arrival order, and cross-shard interleaving
//!    is resolved by the global sequence, never by shard readiness.
//! 3. **Coordination in shard-id order** — after each epoch the
//!    coordinator bills TCAM capacity and cross-shard merge savings by
//!    walking shards in ascending shard id (the arbiter below).
//!
//! ## Where sharding pays: slice-scoped verification
//!
//! Each epoch ends with a golden-model verification sweep, which is the
//! dominant per-epoch cost on realistic tenancies (the deterministic
//! packet set is quadratic in policy size). The shard runtime scopes
//! that sweep: a route is re-verified in full only when its
//! *verification inputs* changed — an event touched its shard, the
//! epoch ran the resilient pipeline, the shard's policies/routes
//! fingerprint moved, or the emitted table of a switch that route
//! traverses changed (a foreign update on a shared downstream switch
//! pulls exactly the routes through it back in, not the whole shard).
//! Clean routes are checked against only their per-epoch
//! seeded random packets ([`flowplace_core::verify::verify_tables_scoped`]);
//! the deterministic verdict is implied by purity, so the result —
//! including which violation would be reported first — is byte-identical
//! to the full sweep. Finer partitions invalidate less per event, which
//! is why event throughput scales with the shard count even on one
//! core (`BENCH_shard.json`).
//!
//! ## Capacity arbiter
//!
//! Every epoch the coordinator computes each shard's per-switch TCAM
//! *bid* (the entries its tenants occupy, with each cross-shard merged
//! entry billed once to the owner shard — the minimum shard id among
//! the group's members, the same rule as
//! [`flowplace_core::merge::shard_buckets`]) and grants bids in
//! shard-id order against the switch capacities. Two invariants hold on
//! every consistent epoch and are property-tested: the grants of all
//! shards sum to exactly the unsharded per-switch bill, and no switch
//! is ever granted beyond its capacity. A bid exceeding the remaining
//! budget means the placement itself over-subscribed a switch — the
//! condition [`capacity_pressure`](crate) already routes through the
//! resilient commit and the escalation ladder (restricted → full →
//! delegation → safe mode); the arbiter records it as an overgrant
//! alarm rather than granting it.

use std::collections::BTreeMap;
use std::time::Instant;

use flowplace_core::merge::{shard_buckets, ShardBucket};
use flowplace_core::tables::SwitchTable;
use flowplace_core::verify::{self, VerifyError, VerifyMode};
use flowplace_core::warm::{fingerprint_ingress, shard_fingerprint, Fingerprint};
use flowplace_core::{Instance, Placement};
use flowplace_fasthash::Fnv64;
use flowplace_obs::{Obs, ShardLabels};
use flowplace_topo::{EntryPortId, SwitchId, Topology};

use crate::{event_ingress, Controller, CtrlError, CtrlOptions, CtrlStats, EpochReport, Event};

/// How ingress policies map to shards: a stable FNV hash of the ingress
/// id modulo the shard count, overridable per ingress.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    shards: u32,
    overrides: BTreeMap<EntryPortId, u32>,
}

impl ShardSpec {
    /// A hash-partitioned spec with no overrides.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: u32) -> ShardSpec {
        assert!(shards > 0, "shard count must be positive");
        ShardSpec {
            shards,
            overrides: BTreeMap::new(),
        }
    }

    /// Pins one ingress to an explicit shard.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range for this spec.
    pub fn with_override(mut self, ingress: EntryPortId, shard: u32) -> ShardSpec {
        assert!(
            shard < self.shards,
            "override shard {shard} out of range for {} shards",
            self.shards
        );
        self.overrides.insert(ingress, shard);
        self
    }

    /// The shard count.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The explicit overrides, in ingress order.
    pub fn overrides(&self) -> impl Iterator<Item = (EntryPortId, u32)> + '_ {
        self.overrides.iter().map(|(&l, &s)| (l, s))
    }

    /// The shard owning `ingress`: its override if pinned, else the
    /// stable FNV hash of the ingress id modulo the shard count.
    pub fn shard_of(&self, ingress: EntryPortId) -> u32 {
        if let Some(&s) = self.overrides.get(&ingress) {
            return s;
        }
        let mut h = Fnv64::new();
        h.usize(ingress.0);
        (h.finish() % u64::from(self.shards)) as u32
    }

    /// Parses a CLI shard spec: `N` (hash partition over N shards) or
    /// `N:l0=2,l7=0` with explicit per-ingress overrides (ingresses
    /// accept both the `l3` display form and bare indices).
    ///
    /// # Errors
    ///
    /// A human-readable reason naming the offending token and the whole
    /// spec (the `--cache` parse_spec convention).
    pub fn parse_spec(spec: &str) -> Result<ShardSpec, String> {
        if spec.is_empty() {
            return Err("empty shards spec (want N or N:l0=2,l7=0)".into());
        }
        let (count, overrides) = match spec.split_once(':') {
            None => (spec, ""),
            Some((count, overrides)) => (count, overrides),
        };
        // Reject zero before parsing so "0" and "00" get the positivity
        // message, not a generic parse failure.
        if !count.is_empty() && count.bytes().all(|b| b == b'0') {
            return Err(format!(
                "shard count must be positive, got {count:?} in {spec:?}"
            ));
        }
        let shards: u32 = count.parse().map_err(|_| {
            format!("bad shard count {count:?} in {spec:?} (want a positive integer)")
        })?;
        if shards == 0 {
            return Err(format!(
                "shard count must be positive, got {count:?} in {spec:?}"
            ));
        }
        let mut parsed = ShardSpec::new(shards);
        if overrides.is_empty() {
            return Ok(parsed);
        }
        for token in overrides.split(',') {
            let Some((ingress, shard)) = token.split_once('=') else {
                return Err(format!(
                    "bad override {token:?} in {spec:?} (want INGRESS=SHARD)"
                ));
            };
            let digits = ingress.strip_prefix('l').unwrap_or(ingress);
            let ingress: usize = digits
                .parse()
                .map_err(|_| format!("bad override ingress {token:?} in {spec:?}"))?;
            let shard: u32 = shard
                .parse()
                .map_err(|_| format!("bad override shard {token:?} in {spec:?}"))?;
            if shard >= shards {
                return Err(format!(
                    "override shard out of range in {token:?} (spec {spec:?} has {shards} shards)"
                ));
            }
            parsed.overrides.insert(EntryPortId(ingress), shard);
        }
        Ok(parsed)
    }
}

/// Cumulative slice-scoped verification accounting, exposed for tests
/// and the shard benchmark. These counters live *outside* [`CtrlStats`]
/// — the whole point is that the inner controller's observables stay
/// byte-identical to an unsharded run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardVerifyCounters {
    /// Scoped verification sweeps run (atomic commits).
    pub sweeps: u64,
    /// Slice-epochs verified in full (dirty or fingerprint-moved).
    pub slices_full: u64,
    /// Slice-epochs passed on the random-packet check only.
    pub slices_clean: u64,
    /// Routes whose deterministic packet set was skipped.
    pub routes_skipped: u64,
    /// Routes verified in full.
    pub routes_full: u64,
}

/// Per-shard verification-input state: conservative dirty flags plus
/// the fingerprints of the last verified pass.
#[derive(Clone, Debug)]
pub(crate) struct ShardVerifyState {
    spec: ShardSpec,
    /// An event touched the shard (or a global event / resilient epoch
    /// touched everything) since the last verified pass.
    dirty: Vec<bool>,
    /// Per-switch emitted-table fingerprints at the last verified pass.
    verified_tables: BTreeMap<SwitchId, u64>,
    /// Per-shard policy+route slice fingerprints at the last verified
    /// pass (salted per shard, see `warm::shard_fingerprint`).
    verified_slices: Vec<Option<Fingerprint>>,
    counters: ShardVerifyCounters,
}

/// FNV over one emitted switch table: tags, match, action, priority,
/// and contributors of every entry, in the emitter's deterministic
/// order.
fn table_fingerprint(table: &SwitchTable) -> u64 {
    let mut h = Fnv64::new();
    h.usize(table.len());
    for e in table.entries() {
        h.usize(e.tags.len());
        for t in &e.tags {
            h.usize(t.0);
        }
        h.u128(e.match_field.care());
        h.u128(e.match_field.value());
        h.bool(e.action.is_drop());
        h.u64(u64::from(e.priority));
        h.usize(e.contributors.len());
        for (l, r) in &e.contributors {
            h.usize(l.0);
            h.usize(r.0);
        }
    }
    h.finish()
}

impl ShardVerifyState {
    pub(crate) fn new(spec: ShardSpec) -> ShardVerifyState {
        let n = spec.shards() as usize;
        ShardVerifyState {
            spec,
            dirty: vec![true; n],
            verified_tables: BTreeMap::new(),
            verified_slices: vec![None; n],
            counters: ShardVerifyCounters::default(),
        }
    }

    pub(crate) fn counters(&self) -> ShardVerifyCounters {
        self.counters
    }

    /// Marks the shard an event touches dirty; events without an
    /// ingress (solve, capacity, faults, checkpoint/rollback) dirty
    /// every shard — their effects are not slice-local.
    pub(crate) fn note_event(&mut self, event: &Event) {
        match event_ingress(event) {
            Some(l) => {
                let s = self.spec.shard_of(l) as usize;
                self.dirty[s] = true;
            }
            None => self.dirty_all(),
        }
    }

    /// Conservative reset: the resilient pipeline mutates placement and
    /// instance outside the event stream (degradation, delegation,
    /// reconciliation), so nothing may be skipped afterwards.
    pub(crate) fn dirty_all(&mut self) {
        self.dirty.iter_mut().for_each(|d| *d = true);
    }

    /// The per-shard policy+route slice fingerprint of `instance`.
    fn slice_fingerprints(&self, instance: &Instance) -> Vec<Fingerprint> {
        let n = self.spec.shards() as usize;
        let mut hashers: Vec<Fnv64> = (0..n).map(|_| Fnv64::new()).collect();
        for (l, _) in instance.policies() {
            let s = self.spec.shard_of(l) as usize;
            hashers[s].u64(fingerprint_ingress(instance, l).0);
        }
        hashers
            .into_iter()
            .enumerate()
            .map(|(s, h)| shard_fingerprint(Fingerprint(h.finish()), s as u32))
            .collect()
    }

    /// The scoped equivalent of `verify::verify_placement` for the
    /// atomic commit gate, reusing the epoch's already-emitted tables.
    /// Byte-identical verdict to the full sweep (see the module docs);
    /// on success the pass's fingerprints become the next epoch's
    /// baseline.
    pub(crate) fn verify(
        &mut self,
        instance: &Instance,
        tables: &[SwitchTable],
        random_per_route: usize,
        seed: u64,
    ) -> Result<(), VerifyError> {
        let n = self.spec.shards() as usize;
        let table_fps: Vec<u64> = tables.iter().map(table_fingerprint).collect();
        let slice_fps = self.slice_fingerprints(instance);

        // A shard's slice is clean iff no event or resilient epoch
        // touched it and its policies and routes fingerprint-match the
        // last verified pass; a *route* may additionally skip only if
        // every switch table it traverses is byte-identical to that
        // pass (a foreign tenant's update can re-emit a table on a
        // shared downstream switch, which must pull exactly the routes
        // through it back into the full sweep — not the whole shard).
        let clean_shard: Vec<bool> = (0..n)
            .map(|s| !self.dirty[s] && self.verified_slices[s] == Some(slice_fps[s]))
            .collect();
        let clean_route: Vec<bool> = instance
            .routes()
            .iter()
            .map(|r| {
                clean_shard[self.spec.shard_of(r.ingress) as usize]
                    && r.switches
                        .iter()
                        .all(|&sw| self.verified_tables.get(&sw).copied() == Some(table_fps[sw.0]))
            })
            .collect();

        let result = verify::verify_tables_scoped(
            instance,
            tables,
            random_per_route,
            seed,
            VerifyMode::Exact,
            |_| true,
            |i, _| clean_route[i],
        );

        self.counters.sweeps += 1;
        for &clean in &clean_shard {
            if clean {
                self.counters.slices_clean += 1;
            } else {
                self.counters.slices_full += 1;
            }
        }
        let skipped = clean_route.iter().filter(|&&c| c).count() as u64;
        self.counters.routes_skipped += skipped;
        self.counters.routes_full += clean_route.len() as u64 - skipped;

        if result.is_ok() {
            self.verified_tables = table_fps
                .iter()
                .enumerate()
                .map(|(i, &fp)| (SwitchId(i), fp))
                .collect();
            self.verified_slices = slice_fps.into_iter().map(Some).collect();
            self.dirty.iter_mut().for_each(|d| *d = false);
        }
        result
    }
}

/// Per-epoch output of the deterministic capacity arbiter.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardArbiterReport {
    /// The committed epoch this report describes.
    pub epoch: u64,
    /// Per-shard, per-switch billable TCAM bids (cross-shard merged
    /// entries billed once, to the owner shard).
    pub bids: Vec<Vec<usize>>,
    /// Per-shard, per-switch grants, issued in shard-id order against
    /// the switch capacities.
    pub grants: Vec<Vec<usize>>,
    /// Bids that exceeded the remaining capacity budget (granted only
    /// up to the budget; the excess is the overgrant alarm).
    pub overgrants: u64,
}

impl ShardArbiterReport {
    /// Total entries granted per switch (sum over shards).
    pub fn granted_per_switch(&self) -> Vec<usize> {
        let switches = self.grants.first().map_or(0, Vec::len);
        let mut total = vec![0usize; switches];
        for shard in &self.grants {
            for (s, g) in shard.iter().enumerate() {
                total[s] += g;
            }
        }
        total
    }

    /// Total entries granted to one shard across all switches.
    pub fn granted_to(&self, shard: u32) -> usize {
        self.grants
            .get(shard as usize)
            .map_or(0, |v| v.iter().sum())
    }
}

/// Cumulative coordination-step accounting.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardCoordStats {
    /// Coordination steps run (one per committed epoch).
    pub epochs: u64,
    /// Events routed to a tenant shard, per shard.
    pub events_routed: Vec<u64>,
    /// Events without a tenant (solve, capacity, faults, snapshots) —
    /// these belong to the coordinator and dirty every slice.
    pub global_events: u64,
    /// Cumulative overgrant alarms (0 on every consistent run).
    pub overgrants: u64,
    /// Merge groups whose members span more than one shard, as of the
    /// last epoch.
    pub cross_shard_groups: usize,
    /// TCAM entries those cross-shard groups save, as of the last
    /// epoch.
    pub cross_shard_entries_saved: usize,
}

/// The sharded controller runtime: a deterministic partition of tenants
/// over an authoritative [`Controller`], plus the per-epoch
/// coordination step (capacity arbiter, cross-shard merge accounting,
/// per-shard telemetry). See the module docs for the determinism
/// recipe and the byte-identity contract.
#[derive(Clone, Debug)]
pub struct ShardedController {
    inner: Controller,
    spec: ShardSpec,
    labels: ShardLabels,
    coord: ShardCoordStats,
    last_arbiter: Option<ShardArbiterReport>,
    shard_obs: Option<Obs>,
    wall_telemetry: bool,
    /// Accumulated wall time driven into the shard obs virtual clock
    /// (microseconds) when wall telemetry is on.
    wall_us: u64,
}

impl ShardedController {
    /// Creates a sharded controller over a bare topology (the
    /// [`Controller::new`] analogue).
    pub fn new(topology: Topology, options: CtrlOptions, spec: ShardSpec) -> ShardedController {
        Self::from_controller(Controller::new(topology, options), spec)
    }

    /// Creates a sharded controller over a pre-built instance, solving
    /// and deploying it as epoch 1 (the [`Controller::with_instance`]
    /// analogue). The deploy runs *through* the shard runtime: its full
    /// verification pass seeds the fingerprint baselines, so the first
    /// post-deploy epoch already scopes verification to the shards its
    /// events touched instead of redundantly re-sweeping every route.
    ///
    /// # Errors
    ///
    /// See [`Controller::with_instance`].
    pub fn with_instance(
        instance: Instance,
        options: CtrlOptions,
        spec: ShardSpec,
    ) -> Result<ShardedController, CtrlError> {
        let inner = Controller::new(instance.topology().clone(), options);
        let mut sharded = Self::from_controller(inner, spec);
        sharded.inner.instance = instance;
        sharded
            .submit(Event::Solve)
            .expect("fresh queue accepts one event");
        sharded.run_to_idle()?;
        Ok(sharded)
    }

    /// Wraps an existing controller in the shard runtime. All slices
    /// start dirty, so the first epoch verifies everything in full.
    pub fn from_controller(mut inner: Controller, spec: ShardSpec) -> ShardedController {
        inner.shard_verify = Some(ShardVerifyState::new(spec.clone()));
        let n = spec.shards();
        ShardedController {
            inner,
            labels: ShardLabels::new(n),
            coord: ShardCoordStats {
                events_routed: vec![0; n as usize],
                ..ShardCoordStats::default()
            },
            spec,
            last_arbiter: None,
            shard_obs: None,
            wall_telemetry: false,
            wall_us: 0,
        }
    }

    /// The partition spec.
    pub fn spec(&self) -> &ShardSpec {
        &self.spec
    }

    /// The authoritative controller (placements, stats, dumps — the
    /// byte-identity surface).
    pub fn inner(&self) -> &Controller {
        &self.inner
    }

    /// Unwraps the authoritative controller.
    pub fn into_inner(self) -> Controller {
        self.inner
    }

    /// The deployed placement (delegates to the inner controller).
    pub fn placement(&self) -> &Placement {
        self.inner.placement()
    }

    /// The deployed instance (delegates to the inner controller).
    pub fn instance(&self) -> &Instance {
        self.inner.instance()
    }

    /// Controller statistics (delegates to the inner controller; these
    /// are byte-identical to an unsharded run).
    pub fn stats(&self) -> &CtrlStats {
        self.inner.stats()
    }

    /// Attaches an obs sink to the *inner* controller. The standard
    /// dumps stay byte-identical to an unsharded observed run; shard
    /// telemetry goes to [`attach_shard_obs`](Self::attach_shard_obs)
    /// instead.
    pub fn attach_obs(&mut self, obs: Obs) {
        self.inner.attach_obs(obs);
    }

    /// Attaches a separate sink for per-shard telemetry (`ctrl.shard*`
    /// spans, counters, and gauges). Kept apart from the inner sink so
    /// shard labels never perturb the standard dumps.
    pub fn attach_shard_obs(&mut self, obs: Obs) {
        self.shard_obs = Some(obs);
    }

    /// The shard telemetry sink, if attached.
    pub fn shard_obs(&self) -> Option<&Obs> {
        self.shard_obs.as_ref()
    }

    /// Drives wall-clock epoch latency into the shard obs virtual
    /// clock, in **microseconds** (`ctrl.shard.epoch` span durations
    /// become real latencies). Off by default: wall time is
    /// non-deterministic, so replay byte-identity tests leave this
    /// alone and the benchmark turns it on.
    pub fn set_wall_telemetry(&mut self, enabled: bool) {
        self.wall_telemetry = enabled;
    }

    /// Cumulative coordination accounting.
    pub fn coord_stats(&self) -> &ShardCoordStats {
        &self.coord
    }

    /// The last epoch's arbiter report, if any epoch has committed.
    pub fn last_arbiter(&self) -> Option<&ShardArbiterReport> {
        self.last_arbiter.as_ref()
    }

    /// Cumulative slice-scoped verification counters.
    pub fn verify_counters(&self) -> ShardVerifyCounters {
        self.inner
            .shard_verify
            .as_ref()
            .map(ShardVerifyState::counters)
            .unwrap_or_default()
    }

    /// Cross-shard merge buckets of the deployed placement, in shard-id
    /// order.
    pub fn merge_buckets(&self) -> Vec<ShardBucket> {
        shard_buckets(
            self.inner.placement().merge_groups(),
            self.spec.shards(),
            |l| self.spec.shard_of(l),
        )
    }

    /// Routes an event to its shard and enqueues it on the
    /// authoritative queue (global arrival order is the execution
    /// order, so queue accounting is byte-identical to unsharded).
    ///
    /// # Errors
    ///
    /// See [`Controller::submit`].
    pub fn submit(&mut self, event: Event) -> Result<(), CtrlError> {
        let shard = event_ingress(&event).map(|l| self.spec.shard_of(l));
        self.inner.submit(event)?;
        match shard {
            Some(s) => self.coord.events_routed[s as usize] += 1,
            None => self.coord.global_events += 1,
        }
        Ok(())
    }

    /// Runs one epoch through the authoritative loop, then the
    /// cross-shard coordination step.
    ///
    /// # Errors
    ///
    /// See [`Controller::run_epoch`].
    pub fn run_epoch(&mut self) -> Result<Option<EpochReport>, CtrlError> {
        let start = Instant::now();
        let result = self.inner.run_epoch();
        let elapsed_us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        if let Ok(Some(report)) = &result {
            self.coordinate(report, elapsed_us);
        }
        result
    }

    /// Runs epochs until the queue drains.
    ///
    /// # Errors
    ///
    /// See [`Controller::run_epoch`].
    pub fn run_to_idle(&mut self) -> Result<Vec<EpochReport>, CtrlError> {
        let mut reports = Vec::new();
        while let Some(report) = self.run_epoch()? {
            reports.push(report);
        }
        Ok(reports)
    }

    /// Feeds a stream of events through the sharded controller,
    /// draining whenever backpressure would reject a submission (the
    /// [`Controller::replay`] semantics).
    ///
    /// # Errors
    ///
    /// See [`Controller::run_epoch`].
    pub fn replay(
        &mut self,
        events: impl IntoIterator<Item = Event>,
    ) -> Result<Vec<EpochReport>, CtrlError> {
        let mut reports = Vec::new();
        let capacity = self.inner.options().queue_capacity;
        for event in events {
            if self.inner.pending() >= capacity {
                reports.extend(self.run_to_idle()?);
            }
            self.submit(event)?;
        }
        reports.extend(self.run_to_idle()?);
        Ok(reports)
    }

    /// Parses a text trace (see [`crate::event`]) and replays it.
    ///
    /// # Errors
    ///
    /// See [`Controller::replay_trace`].
    pub fn replay_trace(&mut self, text: &str) -> Result<Vec<EpochReport>, CtrlError> {
        let events = crate::parse_trace(text)?;
        self.replay(events)
    }

    /// The deterministic cross-shard coordination step: capacity bids
    /// and grants in shard-id order, cross-shard merge accounting, and
    /// per-shard telemetry.
    fn coordinate(&mut self, report: &EpochReport, elapsed_us: u64) {
        let n = self.spec.shards() as usize;
        let instance = self.inner.instance();
        let placement = self.inner.placement();
        let switch_count = instance.topology().switch_count();

        // Billable bids: every placed (rule, switch) pair bills its
        // ingress's shard; each merge group then credits back all
        // members but one, keeping the single shared entry on the owner
        // shard (minimum shard id, first member in sorted order). By
        // construction the bids sum to `Placement::per_switch_load`.
        let mut bids: Vec<Vec<usize>> = vec![vec![0; switch_count]; n];
        for (&(l, _), switches) in placement.iter() {
            let shard = self.spec.shard_of(l) as usize;
            for s in switches {
                bids[shard][s.0] += 1;
            }
        }
        for g in placement.merge_groups() {
            let mut members: Vec<(u32, EntryPortId)> = g
                .members
                .iter()
                .map(|&(l, _)| (self.spec.shard_of(l), l))
                .collect();
            members.sort_unstable();
            for &(shard, _) in &members[1..] {
                bids[shard as usize][g.switch.0] -= 1;
            }
        }

        // Grants in shard-id order against the switch capacities.
        let capacities = instance.topology().capacities();
        let mut remaining = capacities.clone();
        let mut grants: Vec<Vec<usize>> = vec![vec![0; switch_count]; n];
        let mut overgrants = 0u64;
        for shard in 0..n {
            for s in 0..switch_count {
                let bid = bids[shard][s];
                let grant = bid.min(remaining[s]);
                if bid > remaining[s] {
                    overgrants += 1;
                }
                remaining[s] -= grant;
                grants[shard][s] = grant;
            }
        }

        let buckets = self.merge_buckets();
        self.coord.epochs += 1;
        self.coord.overgrants += overgrants;
        self.coord.cross_shard_groups = buckets.iter().map(|b| b.cross_shard_groups).sum();
        self.coord.cross_shard_entries_saved =
            buckets.iter().map(|b| b.cross_shard_entries_saved).sum();

        // Per-shard event counts for this epoch, from the report's
        // outcome list (injected fault events included).
        let mut epoch_events = vec![0u64; n];
        let mut epoch_global = 0u64;
        for (event, _) in &report.outcomes {
            match event_ingress(event) {
                Some(l) => epoch_events[self.spec.shard_of(l) as usize] += 1,
                None => epoch_global += 1,
            }
        }

        let arbiter = ShardArbiterReport {
            epoch: report.epoch,
            bids,
            grants,
            overgrants,
        };

        if let Some(o) = &self.shard_obs {
            let start_us = self.wall_us;
            if self.wall_telemetry {
                self.wall_us += elapsed_us;
            }
            o.spans.set_virtual_ms(start_us);
            let span = o.spans.begin("ctrl.shard.epoch");
            o.spans.attr(span, "epoch", report.epoch);
            o.spans.attr(span, "events", report.outcomes.len());
            o.spans.attr(span, "overgrants", overgrants);
            o.spans.set_virtual_ms(self.wall_us);
            o.spans.end(span);
            for (s, &routed) in epoch_events.iter().enumerate().take(n) {
                let labels = [("shard", self.labels.value(s as u32))];
                if routed > 0 {
                    o.metrics
                        .counter_add_with("ctrl.shard.events", &labels, routed);
                }
                o.metrics.gauge_set_with(
                    "ctrl.shard.granted",
                    &labels,
                    arbiter.granted_to(s as u32) as i64,
                );
            }
            if epoch_global > 0 {
                o.metrics
                    .counter_add("ctrl.shard.global_events", epoch_global);
            }
            o.metrics.gauge_set(
                "ctrl.shard.cross_groups",
                self.coord.cross_shard_groups as i64,
            );
            if overgrants > 0 {
                o.metrics.counter_add("ctrl.shard.overgrants", overgrants);
            }
        }

        self.last_arbiter = Some(arbiter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowplace_acl::{Action, Policy, Rule, Ternary};
    use flowplace_routing::Route;

    fn t(s: &str) -> Ternary {
        Ternary::parse(s).unwrap()
    }

    fn install(ingress: usize, switches: &[usize], rules: &[(&str, Action, u32)]) -> Event {
        Event::InstallPolicy {
            ingress: EntryPortId(ingress),
            policy: Policy::from_rules(
                rules
                    .iter()
                    .map(|&(m, a, p)| Rule::new(t(m), a, p))
                    .collect(),
            )
            .unwrap(),
            routes: vec![Route::new(
                EntryPortId(ingress),
                EntryPortId(ingress + 8),
                switches.iter().map(|&s| SwitchId(s)).collect(),
            )],
        }
    }

    fn sharded(shards: u32) -> ShardedController {
        let mut topo = Topology::linear(4);
        topo.set_uniform_capacity(16);
        ShardedController::new(topo, CtrlOptions::default(), ShardSpec::new(shards))
    }

    #[test]
    fn spec_parses_count_and_overrides() {
        let spec = ShardSpec::parse_spec("4").unwrap();
        assert_eq!(spec.shards(), 4);
        assert_eq!(spec.overrides().count(), 0);

        let spec = ShardSpec::parse_spec("4:l0=2,7=1").unwrap();
        assert_eq!(spec.shards(), 4);
        assert_eq!(spec.shard_of(EntryPortId(0)), 2);
        assert_eq!(spec.shard_of(EntryPortId(7)), 1);
    }

    #[test]
    fn spec_hash_partition_is_stable_and_in_range() {
        let spec = ShardSpec::new(4);
        for i in 0..64 {
            let s = spec.shard_of(EntryPortId(i));
            assert!(s < 4);
            assert_eq!(s, spec.shard_of(EntryPortId(i)), "hash must be pure");
        }
        // The FNV partition actually spreads tenants around.
        let used: std::collections::BTreeSet<u32> =
            (0..64).map(|i| spec.shard_of(EntryPortId(i))).collect();
        assert!(used.len() > 1, "all 64 tenants landed on one shard");
    }

    #[test]
    fn spec_parse_errors_name_the_offending_token() {
        for (spec, needle) in [
            ("", "empty shards spec"),
            ("0", "shard count must be positive"),
            ("00", "shard count must be positive"),
            ("nope", "bad shard count \"nope\""),
            ("4294967296", "bad shard count \"4294967296\""),
            ("-1", "bad shard count \"-1\""),
            ("4:l0", "bad override \"l0\""),
            ("4:l0=x", "bad override shard \"l0=x\""),
            ("4:lx=1", "bad override ingress \"lx=1\""),
            ("4:l0=9", "override shard out of range in \"l0=9\""),
        ] {
            let err = ShardSpec::parse_spec(spec).unwrap_err();
            assert!(
                err.contains(needle),
                "spec {spec:?}: error {err:?} should contain {needle:?}"
            );
            if !spec.is_empty() {
                assert!(
                    err.contains(&format!("{spec:?}")) || spec == "4:l0=9",
                    "spec {spec:?}: error {err:?} should quote the spec"
                );
            }
        }
    }

    #[test]
    fn arbiter_grants_sum_to_the_unsharded_bill() {
        let mut ctrl = sharded(2);
        ctrl.submit(install(
            0,
            &[0, 1],
            &[("11**", Action::Drop, 2), ("****", Action::Permit, 1)],
        ))
        .unwrap();
        ctrl.submit(install(
            1,
            &[2, 3],
            &[("00**", Action::Drop, 2), ("****", Action::Permit, 1)],
        ))
        .unwrap();
        ctrl.run_to_idle().unwrap();

        let arbiter = ctrl.last_arbiter().expect("an epoch committed");
        assert_eq!(arbiter.overgrants, 0);
        let bill = ctrl.placement().per_switch_load(ctrl.instance());
        assert_eq!(arbiter.granted_per_switch(), bill);
        let capacities = ctrl.instance().topology().capacities();
        for (granted, cap) in arbiter.granted_per_switch().iter().zip(&capacities) {
            assert!(granted <= cap, "arbiter granted beyond capacity");
        }
        assert!(ctrl.coord_stats().epochs > 0);
        assert_eq!(ctrl.coord_stats().events_routed, vec![1, 1]);
    }

    #[test]
    fn slice_scoped_verify_skips_untouched_shards() {
        let mut ctrl = sharded(2);
        // Pin the two tenants to different shards regardless of the
        // hash partition.
        let spec = ShardSpec::new(2)
            .with_override(EntryPortId(0), 0)
            .with_override(EntryPortId(1), 1);
        ctrl = ShardedController::from_controller(ctrl.into_inner(), spec);
        ctrl.submit(install(
            0,
            &[0, 1],
            &[("11**", Action::Drop, 2), ("****", Action::Permit, 1)],
        ))
        .unwrap();
        ctrl.submit(install(
            1,
            &[2, 3],
            &[("00**", Action::Drop, 2), ("****", Action::Permit, 1)],
        ))
        .unwrap();
        ctrl.run_to_idle().unwrap();
        let after_setup = ctrl.verify_counters();

        // Touch only tenant 0: tenant 1's slice is clean next epoch.
        ctrl.submit(Event::AddRule {
            ingress: EntryPortId(0),
            rule: Rule::new(t("1010"), Action::Drop, 3),
        })
        .unwrap();
        ctrl.run_to_idle().unwrap();
        let after_touch = ctrl.verify_counters();
        assert_eq!(
            after_touch.slices_clean - after_setup.slices_clean,
            1,
            "exactly tenant 1's slice should ride the clean path"
        );
        assert_eq!(after_touch.routes_skipped - after_setup.routes_skipped, 1);
    }

    #[test]
    fn sharded_replay_matches_unsharded_bytes() {
        let trace = "\
install-policy l0 via l2:s0-s1 rules 11**:drop:2,****:permit:1
install-policy l1 via l3:s2-s3 rules 00**:drop:2,****:permit:1
add-rule l0 1010 drop 3
add-rule l1 0101 drop 3
remove-rule l0 r0
solve
";
        let mut topo = Topology::linear(4);
        topo.set_uniform_capacity(16);
        let mut plain = Controller::new(topo.clone(), CtrlOptions::default());
        plain.attach_obs(Obs::new());
        plain.replay_trace(trace).unwrap();

        for shards in [1u32, 2, 4, 8] {
            let mut sharded = ShardedController::new(
                topo.clone(),
                CtrlOptions::default(),
                ShardSpec::new(shards),
            );
            sharded.attach_obs(Obs::new());
            sharded.attach_shard_obs(Obs::new());
            sharded.replay_trace(trace).unwrap();
            assert_eq!(plain.placement(), sharded.placement(), "N={shards}");
            assert_eq!(plain.stats(), sharded.stats(), "N={shards}");
            assert_eq!(
                plain.dataplane().dump(),
                sharded.inner().dataplane().dump(),
                "N={shards}"
            );
            let (po, so) = (plain.obs().unwrap(), sharded.inner().obs().unwrap());
            assert_eq!(po.trace_json(), so.trace_json(), "N={shards}");
            assert_eq!(po.metrics_json(), so.metrics_json(), "N={shards}");
        }
    }

    #[test]
    fn overgrant_fires_exactly_on_capacity_pressure() {
        let mut ctrl = sharded(2);
        ctrl.submit(install(
            0,
            &[0, 1],
            &[("11**", Action::Drop, 2), ("****", Action::Permit, 1)],
        ))
        .unwrap();
        ctrl.run_to_idle().unwrap();
        assert_eq!(ctrl.coord_stats().overgrants, 0);

        // Shrink s0 below the deployed load: the shrink is committed
        // anyway (hardware lost the bank) and the ladder degrades
        // around it; any epoch that still sees load > capacity is
        // exactly an arbiter overgrant alarm.
        ctrl.submit(Event::CapacityChange {
            switch: SwitchId(0),
            capacity: 0,
        })
        .unwrap();
        ctrl.run_to_idle().unwrap();
        // After the ladder settles, grants are within capacity again.
        let arbiter = ctrl.last_arbiter().unwrap();
        let capacities = ctrl.instance().topology().capacities();
        for (granted, cap) in arbiter.granted_per_switch().iter().zip(&capacities) {
            assert!(granted <= cap);
        }
    }
}

//! Controller events and the text trace format.
//!
//! A trace is a plain-text file with one event per line. Blank lines and
//! lines starting with `#` are ignored. Identifiers accept both the
//! display form (`l0`, `s2`, `r1`) and bare indices (`0`, `2`, `1`).
//!
//! ```text
//! # install a two-rule policy at ingress l0, routed s0 -> s1 -> s2 to l2
//! install-policy l0 via l2:s0-s1-s2 rules 10**:drop:2,****:permit:1
//! add-rule l0 01** drop 3
//! modify-rule l0 r1 11** permit 4
//! remove-rule l0 r0
//! reroute l0 via l2:s0-s2
//! capacity s1 4
//! switch-fail s2
//! switch-recover s2
//! solve
//! checkpoint
//! rollback
//! ```

use std::fmt;

use flowplace_acl::{Action, Policy, Rule, RuleId, Ternary};
use flowplace_routing::Route;
use flowplace_topo::{EntryPortId, SwitchId};

/// One input to the controller loop.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// Insert a rule into the policy at `ingress` (greedy → restricted →
    /// full escalation).
    AddRule {
        /// Ingress whose policy gains the rule.
        ingress: EntryPortId,
        /// The rule to insert (priority decides its position).
        rule: Rule,
    },
    /// Delete a rule from the policy at `ingress` (always greedy).
    RemoveRule {
        /// Ingress whose policy loses the rule.
        ingress: EntryPortId,
        /// Index of the rule in the current priority order.
        rule: RuleId,
    },
    /// Replace a rule in the policy at `ingress`.
    ModifyRule {
        /// Ingress whose policy changes.
        ingress: EntryPortId,
        /// Index of the rule to replace.
        rule: RuleId,
        /// The replacement rule.
        replacement: Rule,
    },
    /// Attach a whole new policy (and its routes) at a fresh ingress
    /// (restricted → full escalation).
    InstallPolicy {
        /// Ingress gaining the policy; must not already have one.
        ingress: EntryPortId,
        /// The policy to install.
        policy: Policy,
        /// Routes carrying this ingress's traffic.
        routes: Vec<Route>,
    },
    /// Replace the routes of an existing ingress (restricted → full).
    Reroute {
        /// Ingress whose routes change.
        ingress: EntryPortId,
        /// The new routes (old ones are discarded).
        routes: Vec<Route>,
    },
    /// Change one switch's TCAM capacity. Escalates to a full re-solve
    /// only if the deployed load no longer fits.
    CapacityChange {
        /// The switch whose capacity changes.
        switch: SwitchId,
        /// The new capacity in TCAM entries.
        capacity: usize,
    },
    /// A switch went down: its TCAM is lost, it forwards nothing, and
    /// the controller must re-place around it (or degrade fail-closed).
    SwitchFail {
        /// The failed switch.
        switch: SwitchId,
    },
    /// A failed (or quarantined) switch came back under control (blank
    /// TCAM if it crashed); its saved capacity becomes usable again and
    /// the next commit reconciles its table.
    SwitchRecover {
        /// The recovering switch.
        switch: SwitchId,
    },
    /// Force a full re-solve of the current instance.
    Solve,
    /// Snapshot the working state for later rollback.
    Checkpoint,
    /// Restore the most recent snapshot.
    Rollback,
}

impl Event {
    /// The event's trace keyword (the first token of its [`fmt::Display`]
    /// form), used as the `kind` label on telemetry counters and spans.
    pub fn label(&self) -> &'static str {
        match self {
            Event::AddRule { .. } => "add-rule",
            Event::RemoveRule { .. } => "remove-rule",
            Event::ModifyRule { .. } => "modify-rule",
            Event::InstallPolicy { .. } => "install-policy",
            Event::Reroute { .. } => "reroute",
            Event::CapacityChange { .. } => "capacity",
            Event::SwitchFail { .. } => "switch-fail",
            Event::SwitchRecover { .. } => "switch-recover",
            Event::Solve => "solve",
            Event::Checkpoint => "checkpoint",
            Event::Rollback => "rollback",
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn fmt_routes(f: &mut fmt::Formatter<'_>, routes: &[Route]) -> fmt::Result {
            for (i, r) in routes.iter().enumerate() {
                if i > 0 {
                    write!(f, ";")?;
                }
                write!(f, "{}:", r.egress)?;
                for (j, s) in r.switches.iter().enumerate() {
                    if j > 0 {
                        write!(f, "-")?;
                    }
                    write!(f, "{s}")?;
                }
            }
            Ok(())
        }
        match self {
            Event::AddRule { ingress, rule } => write!(
                f,
                "add-rule {ingress} {} {} {}",
                rule.match_field(),
                action_word(rule.action()),
                rule.priority()
            ),
            Event::RemoveRule { ingress, rule } => write!(f, "remove-rule {ingress} {rule}"),
            Event::ModifyRule {
                ingress,
                rule,
                replacement,
            } => write!(
                f,
                "modify-rule {ingress} {rule} {} {} {}",
                replacement.match_field(),
                action_word(replacement.action()),
                replacement.priority()
            ),
            Event::InstallPolicy {
                ingress,
                policy,
                routes,
            } => {
                write!(f, "install-policy {ingress} via ")?;
                fmt_routes(f, routes)?;
                write!(f, " rules ")?;
                for (i, (_, r)) in policy.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(
                        f,
                        "{}:{}:{}",
                        r.match_field(),
                        action_word(r.action()),
                        r.priority()
                    )?;
                }
                Ok(())
            }
            Event::Reroute { ingress, routes } => {
                write!(f, "reroute {ingress} via ")?;
                fmt_routes(f, routes)
            }
            Event::CapacityChange { switch, capacity } => {
                write!(f, "capacity {switch} {capacity}")
            }
            Event::SwitchFail { switch } => write!(f, "switch-fail {switch}"),
            Event::SwitchRecover { switch } => write!(f, "switch-recover {switch}"),
            Event::Solve => write!(f, "solve"),
            Event::Checkpoint => write!(f, "checkpoint"),
            Event::Rollback => write!(f, "rollback"),
        }
    }
}

fn action_word(a: Action) -> &'static str {
    match a {
        Action::Permit => "permit",
        Action::Drop => "drop",
    }
}

/// Error from [`parse_trace`], carrying the 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    /// 1-based line the error occurred on.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceError {}

fn err(line: usize, message: impl Into<String>) -> TraceError {
    TraceError {
        line,
        message: message.into(),
    }
}

fn parse_index(token: &str, prefix: char, what: &str, line: usize) -> Result<usize, TraceError> {
    let digits = token.strip_prefix(prefix).unwrap_or(token);
    digits
        .parse::<usize>()
        .map_err(|_| err(line, format!("bad {what} `{token}`")))
}

fn parse_ingress(token: &str, line: usize) -> Result<EntryPortId, TraceError> {
    parse_index(token, 'l', "ingress", line).map(EntryPortId)
}

fn parse_switch(token: &str, line: usize) -> Result<SwitchId, TraceError> {
    parse_index(token, 's', "switch", line).map(SwitchId)
}

fn parse_rule_id(token: &str, line: usize) -> Result<RuleId, TraceError> {
    parse_index(token, 'r', "rule id", line).map(RuleId)
}

fn parse_action(token: &str, line: usize) -> Result<Action, TraceError> {
    match token.to_ascii_lowercase().as_str() {
        "permit" | "allow" | "accept" => Ok(Action::Permit),
        "drop" | "deny" => Ok(Action::Drop),
        _ => Err(err(line, format!("bad action `{token}`"))),
    }
}

fn parse_rule(tokens: &[&str], line: usize) -> Result<Rule, TraceError> {
    let [m, a, p] = tokens else {
        return Err(err(line, "expected MATCH ACTION PRIORITY"));
    };
    let match_field = Ternary::parse(m).map_err(|e| err(line, format!("bad match `{m}`: {e}")))?;
    let action = parse_action(a, line)?;
    let priority = p
        .parse::<u32>()
        .map_err(|_| err(line, format!("bad priority `{p}`")))?;
    Ok(Rule::new(match_field, action, priority))
}

/// Parses `EGRESS:S-S-...[;EGRESS:S-S-...]` into routes from `ingress`.
fn parse_routes(ingress: EntryPortId, spec: &str, line: usize) -> Result<Vec<Route>, TraceError> {
    let mut routes = Vec::new();
    for part in spec.split(';') {
        let (egress, path) = part
            .split_once(':')
            .ok_or_else(|| err(line, format!("route `{part}` needs EGRESS:PATH")))?;
        let egress = parse_ingress(egress, line)?;
        let switches = path
            .split('-')
            .map(|s| parse_switch(s, line))
            .collect::<Result<Vec<_>, _>>()?;
        if switches.is_empty() {
            return Err(err(line, "route has no switches"));
        }
        routes.push(Route::new(ingress, egress, switches));
    }
    Ok(routes)
}

/// Parses `MATCH:ACTION:PRIO,...` into a policy.
fn parse_policy(spec: &str, line: usize) -> Result<Policy, TraceError> {
    let mut rules = Vec::new();
    for part in spec.split(',') {
        let fields: Vec<&str> = part.split(':').collect();
        rules.push(parse_rule(&fields, line)?);
    }
    Policy::from_rules(rules).map_err(|e| err(line, format!("bad policy: {e}")))
}

/// Parses one trace line (already known to be non-blank, non-comment).
fn parse_line(text: &str, line: usize) -> Result<Event, TraceError> {
    let tokens: Vec<&str> = text.split_whitespace().collect();
    match tokens.as_slice() {
        ["add-rule", ingress, rest @ ..] => Ok(Event::AddRule {
            ingress: parse_ingress(ingress, line)?,
            rule: parse_rule(rest, line)?,
        }),
        ["remove-rule", ingress, rule] => Ok(Event::RemoveRule {
            ingress: parse_ingress(ingress, line)?,
            rule: parse_rule_id(rule, line)?,
        }),
        ["modify-rule", ingress, rule, rest @ ..] => Ok(Event::ModifyRule {
            ingress: parse_ingress(ingress, line)?,
            rule: parse_rule_id(rule, line)?,
            replacement: parse_rule(rest, line)?,
        }),
        ["install-policy", ingress, "via", routes, "rules", rules] => {
            let ingress = parse_ingress(ingress, line)?;
            Ok(Event::InstallPolicy {
                ingress,
                policy: parse_policy(rules, line)?,
                routes: parse_routes(ingress, routes, line)?,
            })
        }
        ["reroute", ingress, "via", routes] => {
            let ingress = parse_ingress(ingress, line)?;
            Ok(Event::Reroute {
                ingress,
                routes: parse_routes(ingress, routes, line)?,
            })
        }
        ["capacity", switch, capacity] => Ok(Event::CapacityChange {
            switch: parse_switch(switch, line)?,
            capacity: capacity
                .parse::<usize>()
                .map_err(|_| err(line, format!("bad capacity `{capacity}`")))?,
        }),
        ["switch-fail", switch] => Ok(Event::SwitchFail {
            switch: parse_switch(switch, line)?,
        }),
        ["switch-recover", switch] => Ok(Event::SwitchRecover {
            switch: parse_switch(switch, line)?,
        }),
        ["solve"] => Ok(Event::Solve),
        ["checkpoint"] => Ok(Event::Checkpoint),
        ["rollback"] => Ok(Event::Rollback),
        [verb, ..] => Err(err(line, format!("unknown event `{verb}`"))),
        [] => unreachable!("blank lines are filtered before parse_line"),
    }
}

/// Parses a whole trace file into events.
///
/// # Errors
///
/// The first malformed line, with its line number.
pub fn parse_trace(text: &str) -> Result<Vec<Event>, TraceError> {
    let mut events = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        events.push(parse_line(line, i + 1)?);
    }
    Ok(events)
}

/// Renders events back into the trace text format ([`parse_trace`]'s
/// inverse).
pub fn format_trace(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&e.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_event_kind() {
        let text = "\
# comment

add-rule l0 10** drop 5
remove-rule 0 r1
modify-rule l0 1 11** permit 4
install-policy l1 via l2:s0-s1;l3:s0-s2 rules 0***:drop:2,****:permit:1
reroute l1 via l2:s0-s1-s2
capacity s1 16
switch-fail s2
switch-recover 2
solve
checkpoint
rollback
";
        let events = parse_trace(text).expect("trace parses");
        assert_eq!(events.len(), 11);
        assert_eq!(
            events[6],
            Event::SwitchFail {
                switch: SwitchId(2)
            }
        );
        assert_eq!(
            events[7],
            Event::SwitchRecover {
                switch: SwitchId(2)
            }
        );
        assert_eq!(
            events[0],
            Event::AddRule {
                ingress: EntryPortId(0),
                rule: Rule::new(Ternary::parse("10**").unwrap(), Action::Drop, 5),
            }
        );
        match &events[3] {
            Event::InstallPolicy {
                ingress,
                policy,
                routes,
            } => {
                assert_eq!(*ingress, EntryPortId(1));
                assert_eq!(policy.len(), 2);
                assert_eq!(routes.len(), 2);
                assert_eq!(routes[0].egress, EntryPortId(2));
                assert_eq!(routes[1].switches, vec![SwitchId(0), SwitchId(2)]);
            }
            other => panic!("expected install-policy, got {other:?}"),
        }
    }

    #[test]
    fn round_trips_through_display() {
        let text = "\
add-rule l0 10** drop 5
remove-rule l0 r1
modify-rule l0 r1 11** permit 4
install-policy l1 via l2:s0-s1;l3:s0-s2 rules 0***:drop:2,****:permit:1
reroute l1 via l2:s0-s1-s2
capacity s1 16
switch-fail s2
switch-recover s2
solve
checkpoint
rollback
";
        let events = parse_trace(text).expect("trace parses");
        assert_eq!(format_trace(&events), text);
        let again = parse_trace(&format_trace(&events)).expect("round trip parses");
        assert_eq!(events, again);
    }

    #[test]
    fn reports_line_numbers() {
        let e = parse_trace("solve\n\nbogus l0\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("bogus"));
    }

    #[test]
    fn rejects_malformed_rules() {
        assert!(parse_trace("add-rule l0 10** sideways 5").is_err());
        assert!(parse_trace("add-rule l0 10x* drop 5").is_err());
        assert!(parse_trace("install-policy l1 via l2:s0 rules").is_err());
        assert!(parse_trace("capacity s1 many").is_err());
    }
}

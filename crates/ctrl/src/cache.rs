//! TCAM-as-cache overlay with dependency-safe eviction.
//!
//! Production SDN switches treat TCAM as a *cache* over a far larger
//! rule population. This module layers that semantics on top of the
//! existing transactional [`DataPlane`](crate::DataPlane): the dataplane
//! keeps holding the full per-switch *target* tables (the rule
//! population the controller has committed), while the [`RuleCache`]
//! tracks which of those entries are *resident* in the physical TCAM of
//! each switch, under a separate, smaller cache capacity.
//!
//! ## The eviction invariant
//!
//! First-match TCAM semantics make naive caching unsafe: evicting a
//! high-priority DROP while a lower-priority overlapping PERMIT stays
//! resident silently flips the decision for the overlap — a *false
//! negative*, the §IV-A failure class the whole system is built to
//! exclude. The fix reuses the §IV-A1 dependency relation at the table
//! level. The cache maintains the **upward-closure invariant**:
//!
//! > for every resident entry `e`, every higher-priority entry of the
//! > same switch table that shares an ingress tag and overlaps `e`'s
//! > match field is also resident.
//!
//! Inserting an entry therefore pulls its whole ancestor closure in;
//! evicting an entry cascades to its resident descendants. Under the
//! invariant a lookup is *exact*: the highest-priority resident match is
//! the full table's first match whenever that first match is resident,
//! and when it is not, **no** resident entry matches — the packet punts
//! to the controller (a miss) instead of being mis-decided. A cached
//! DROP keeps its overlapping shield PERMITs resident and vice versa;
//! the decision ladder never inverts.
//!
//! ## Auditability
//!
//! [`RuleCache::audit`] checks the structural invariant directly;
//! [`RuleCache::audit_tables`] materializes the resident state as
//! verifier tables in which the punt path is modelled as a
//! minimum-priority match-all DROP (pessimistic-safe: punted packets are
//! decided by the controller from the full table, which commit-time
//! verification already proved fail-closed). Running
//! `verify::no_false_negatives`-style checks over those tables catches
//! exactly the priority-inversion bug class a broken eviction would
//! introduce — see `Controller::cache_fail_closed_audit`.
//!
//! Safe-mode fence entries (see [`TcamEntry::is_safe_mode`]) live in the
//! reserved system bank: they are always resident and never count
//! against the cache capacity, so fail-closed degradation survives
//! caching unchanged.

use std::collections::BTreeSet;
use std::fmt;

use flowplace_acl::classify::BatchClassifier;
use flowplace_acl::{Action, Packet};
use flowplace_core::tables::{SwitchTable, TableEntry};
use flowplace_fasthash::FnvHashMap;
use flowplace_topo::{EntryPortId, SwitchId};

use crate::dataplane::TcamEntry;

/// Pluggable eviction policy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CachePolicy {
    /// Evict the least-recently-used resident entry.
    #[default]
    Lru,
    /// Dependency-aware frequency: evict the entry with the lowest
    /// `uses + resident-descendant count` — cold entries whose eviction
    /// cascades the least go first.
    DepFreq,
}

impl CachePolicy {
    /// Stable keyword (`lru` / `depfreq`) for flags and dumps.
    pub fn label(&self) -> &'static str {
        match self {
            CachePolicy::Lru => "lru",
            CachePolicy::DepFreq => "depfreq",
        }
    }
}

impl fmt::Display for CachePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Cache-tier configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Master switch; when false the controller behaves exactly as
    /// before this tier existed.
    pub enabled: bool,
    /// Resident entries allowed per switch (safe-mode slots exempt).
    pub capacity: usize,
    /// Eviction policy.
    pub policy: CachePolicy,
    /// Misses batched per controller miss-handling round (each round
    /// inserts the missed entries and triggers one warm re-solve).
    pub miss_batch: usize,
    /// Virtual milliseconds of controller punt latency charged per
    /// missed packet.
    pub miss_penalty_ms: u64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            enabled: false,
            capacity: 0,
            policy: CachePolicy::Lru,
            miss_batch: 8,
            miss_penalty_ms: 1,
        }
    }
}

impl CacheConfig {
    /// Parses a CLI capacity spec: `N` (LRU with capacity N) or
    /// `POLICY:N` with `POLICY` ∈ `lru` | `depfreq`. The result is
    /// enabled.
    ///
    /// # Errors
    ///
    /// A human-readable reason for a malformed spec.
    pub fn parse_spec(spec: &str) -> Result<CacheConfig, String> {
        if spec.is_empty() {
            return Err("empty cache spec (want N or lru:N|depfreq:N)".into());
        }
        let (policy, cap) = match spec.split_once(':') {
            None => (CachePolicy::Lru, spec),
            Some(("lru", cap)) => (CachePolicy::Lru, cap),
            Some(("depfreq", cap)) => (CachePolicy::DepFreq, cap),
            Some((other, _)) => {
                return Err(format!(
                    "unknown cache policy {other:?} in {spec:?} (want lru|depfreq)"
                ))
            }
        };
        // Reject zero before parsing so "0", "00", "lru:0" all get the
        // positivity message, not a generic parse failure.
        if !cap.is_empty() && cap.bytes().all(|b| b == b'0') {
            return Err(format!(
                "cache capacity must be positive, got {cap:?} in {spec:?}"
            ));
        }
        let capacity: usize = cap.parse().map_err(|_| {
            format!("bad cache capacity {cap:?} in {spec:?} (want a positive integer)")
        })?;
        if capacity == 0 {
            return Err(format!(
                "cache capacity must be positive, got {cap:?} in {spec:?}"
            ));
        }
        Ok(CacheConfig {
            enabled: true,
            capacity,
            policy,
            ..CacheConfig::default()
        })
    }
}

/// What one cache lookup concluded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheLookup {
    /// The full table's first match is resident; its action is exact.
    Hit(Action),
    /// The full table matches but the matching entry is not resident:
    /// the packet punts to the controller, which decides `action` from
    /// the full table. `slot` indexes the missed entry for insertion.
    Miss {
        /// The (oracle-correct) action of the full table's first match.
        action: Action,
        /// Slot index of the missed entry within its switch table.
        slot: usize,
    },
    /// No entry of the full table matches; default forward.
    NoMatch,
}

/// Cumulative cache-tier counters (monotone; deltas are taken by the
/// controller when building per-call reports).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Per-switch lookups performed.
    pub lookups: u64,
    /// Lookups answered by a resident entry.
    pub hits: u64,
    /// Lookups punted to the controller.
    pub misses: u64,
    /// Entries made resident (closure pulls included).
    pub inserts: u64,
    /// Entries evicted (cascades included).
    pub evictions: u64,
    /// Extra ancestor entries pulled resident to keep the invariant.
    pub closure_pulls: u64,
    /// Insertions skipped because the dependency closure alone exceeds
    /// the cache capacity.
    pub uncacheable: u64,
}

/// One target entry plus its cache metadata.
#[derive(Clone, Debug)]
struct Slot {
    entry: TcamEntry,
    resident: bool,
    /// Logical tick of the last hit or insert (LRU recency).
    last_use: u64,
    /// Hits served by this entry (DepFreq frequency).
    uses: u64,
    /// Higher-priority overlapping same-tag slots (must be resident
    /// whenever this slot is — the upward closure).
    parents: Vec<usize>,
    /// Reverse edges (evicting this slot cascades to resident children).
    children: Vec<usize>,
}

/// Structure-of-arrays matcher for one ingress tag's slots, built once
/// per [`RuleCache::set_target`]. Cubes keep slot order, so the kernel's
/// first match is exactly the first matching slot carrying this tag; the
/// kernel's width check mirrors the explicit width probe the scalar scan
/// performed.
#[derive(Clone, Debug)]
struct TagMatcher {
    classifier: BatchClassifier,
    /// Slot index behind each classifier cube.
    slots: Vec<u32>,
}

/// The cache tables of one switch, mirroring the dataplane's sorted
/// order (descending priority, ties by entry ordering).
#[derive(Clone, Debug, Default)]
struct CacheTable {
    slots: Vec<Slot>,
    /// Per-ingress-tag batched matchers over the slots. Probe-only map
    /// (never iterated), so the unordered FNV hasher is safe; the match
    /// data is immutable between target commits, so the matchers never
    /// go stale.
    matchers: FnvHashMap<EntryPortId, TagMatcher>,
}

impl CacheTable {
    /// Builds the per-tag matchers from the (already sorted) slots.
    fn from_slots(slots: Vec<Slot>) -> CacheTable {
        let mut grouped: FnvHashMap<EntryPortId, (Vec<flowplace_acl::Ternary>, Vec<u32>)> =
            FnvHashMap::default();
        for (i, slot) in slots.iter().enumerate() {
            for &tag in &slot.entry.tags {
                let (cubes, idx) = grouped.entry(tag).or_default();
                cubes.push(slot.entry.match_field);
                idx.push(i as u32);
            }
        }
        let matchers = grouped
            .into_iter()
            .map(|(tag, (cubes, idx))| {
                (
                    tag,
                    TagMatcher {
                        classifier: BatchClassifier::new(&cubes),
                        slots: idx,
                    },
                )
            })
            .collect();
        CacheTable { slots, matchers }
    }

    /// Index of the first slot matching `packet` for `ingress` — the
    /// batched-kernel replacement for the linear
    /// `tags.contains && width == && matches` scan.
    fn first_match(&self, ingress: EntryPortId, packet: &Packet) -> Option<usize> {
        let m = self.matchers.get(&ingress)?;
        m.classifier
            .first_match(packet)
            .map(|ci| m.slots[ci] as usize)
    }
}

impl CacheTable {
    /// Resident entries that count against capacity.
    fn billable_residents(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.resident && !s.entry.is_safe_mode())
            .count()
    }
}

/// Per-switch TCAM-as-cache residency over the committed target tables.
#[derive(Clone, Debug)]
pub struct RuleCache {
    config: CacheConfig,
    tables: Vec<CacheTable>,
    counters: CacheCounters,
    tick: u64,
}

/// True when two target entries overlap for caching purposes: some
/// ingress tag in common and intersecting match fields (width mismatch
/// means disjoint header spaces, never an overlap).
fn overlaps(a: &TcamEntry, b: &TcamEntry) -> bool {
    a.match_field.width() == b.match_field.width()
        && a.tags.iter().any(|t| b.tags.contains(t))
        && a.match_field.intersects(&b.match_field)
}

impl RuleCache {
    /// Creates an empty cache over `switches` switch tables.
    pub fn new(config: CacheConfig, switches: usize) -> RuleCache {
        RuleCache {
            config,
            tables: (0..switches).map(|_| CacheTable::default()).collect(),
            counters: CacheCounters::default(),
            tick: 0,
        }
    }

    /// The configuration this cache runs under.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Cumulative counters.
    pub fn counters(&self) -> &CacheCounters {
        &self.counters
    }

    /// Resident entries on one switch (safe-mode slots included).
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn occupancy(&self, s: SwitchId) -> usize {
        self.tables[s.0].slots.iter().filter(|x| x.resident).count()
    }

    /// Re-synchronizes the cache with new target tables (after an epoch
    /// commit). Residency survives for entries that still exist in the
    /// target — identity is the full [`TcamEntry`] tuple, matching the
    /// dataplane's identity rule — then the upward closure is re-pulled
    /// and the capacity re-enforced, so the invariant holds on exit no
    /// matter how the target moved.
    pub fn set_target(&mut self, targets: &[Vec<TcamEntry>]) {
        let mut tables = Vec::with_capacity(targets.len());
        for (i, want) in targets.iter().enumerate() {
            let old = self.tables.get(i);
            // Index the previous slots by entry so the carry-over probe
            // is O(1) instead of a scan per target entry. First
            // occurrence wins on duplicate entries, matching the linear
            // `find` this replaces; the map is probe-only, so the
            // unordered FNV hasher cannot leak order anywhere.
            let mut prev_by_entry: FnvHashMap<&TcamEntry, &Slot> = FnvHashMap::default();
            if let Some(t) = old {
                for s in &t.slots {
                    prev_by_entry.entry(&s.entry).or_insert(s);
                }
            }
            let mut slots: Vec<Slot> = want
                .iter()
                .map(|e| {
                    let prev = prev_by_entry.get(e).copied();
                    Slot {
                        entry: e.clone(),
                        resident: e.is_safe_mode() || prev.map(|p| p.resident).unwrap_or(false),
                        last_use: prev.map(|p| p.last_use).unwrap_or(0),
                        uses: prev.map(|p| p.uses).unwrap_or(0),
                        parents: Vec::new(),
                        children: Vec::new(),
                    }
                })
                .collect();
            // Mirror the dataplane's deterministic order.
            slots.sort_by(|a, b| {
                b.entry
                    .priority
                    .cmp(&a.entry.priority)
                    .then_with(|| a.entry.cmp(&b.entry))
            });
            // Rebuild the overlap adjacency: j runs strictly below i in
            // the sorted order, so i is j's higher-priority side.
            for i in 0..slots.len() {
                for j in (i + 1)..slots.len() {
                    if overlaps(&slots[i].entry, &slots[j].entry) {
                        slots[j].parents.push(i);
                        slots[i].children.push(j);
                    }
                }
            }
            tables.push(CacheTable::from_slots(slots));
        }
        // Keep table count in sync with the dataplane.
        tables.resize_with(self.tables.len().max(targets.len()), CacheTable::default);
        self.tables = tables;
        // Re-establish the invariant over the survivors, then shrink
        // back under capacity if closure pulls overshot it.
        for s in 0..self.tables.len() {
            let resident: Vec<usize> = self.tables[s]
                .slots
                .iter()
                .enumerate()
                .filter(|(_, x)| x.resident)
                .map(|(i, _)| i)
                .collect();
            for i in resident {
                let pulled = self.pull_closure(s, i);
                self.counters.closure_pulls += pulled;
            }
            self.enforce_capacity(s, &BTreeSet::new());
        }
    }

    /// Looks one packet up against one switch's cache.
    ///
    /// Under the invariant the answer is exact: the full table's first
    /// match decides between [`CacheLookup::Hit`] (resident) and
    /// [`CacheLookup::Miss`] (punt), and no resident entry can shadow a
    /// non-resident higher-priority one.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn lookup(&mut self, s: SwitchId, ingress: EntryPortId, packet: &Packet) -> CacheLookup {
        self.counters.lookups += 1;
        self.tick += 1;
        let tick = self.tick;
        let table = &mut self.tables[s.0];
        let first = table.first_match(ingress, packet);
        match first {
            None => CacheLookup::NoMatch,
            Some(i) if table.slots[i].resident => {
                let slot = &mut table.slots[i];
                slot.last_use = tick;
                slot.uses += 1;
                self.counters.hits += 1;
                CacheLookup::Hit(slot.entry.action)
            }
            Some(i) => {
                self.counters.misses += 1;
                CacheLookup::Miss {
                    action: table.slots[i].entry.action,
                    slot: i,
                }
            }
        }
    }

    /// Makes `slot` on switch `s` resident, pulling its ancestor closure
    /// in and evicting under the configured policy until the capacity
    /// holds again. The just-inserted closure is pinned against eviction
    /// within this call. Returns `false` (and counts `uncacheable`) when
    /// the closure alone cannot fit.
    ///
    /// # Panics
    ///
    /// Panics if `s` or `slot` is out of range.
    pub fn insert(&mut self, s: SwitchId, slot: usize) -> bool {
        let closure = self.ancestor_closure(s.0, slot);
        let billable = closure
            .iter()
            .filter(|&&i| !self.tables[s.0].slots[i].entry.is_safe_mode())
            .count();
        if billable > self.config.capacity {
            self.counters.uncacheable += 1;
            return false;
        }
        self.tick += 1;
        let tick = self.tick;
        let mut pulled = 0u64;
        for &i in &closure {
            let x = &mut self.tables[s.0].slots[i];
            if !x.resident {
                x.resident = true;
                x.last_use = tick;
                self.counters.inserts += 1;
                if i != slot {
                    pulled += 1;
                }
            }
        }
        self.counters.closure_pulls += pulled;
        self.enforce_capacity(s.0, &closure);
        true
    }

    /// The ancestor closure of `slot` (itself included): everything that
    /// must be resident for `slot` to be resident.
    fn ancestor_closure(&self, s: usize, slot: usize) -> BTreeSet<usize> {
        let mut closure = BTreeSet::new();
        let mut stack = vec![slot];
        while let Some(i) = stack.pop() {
            if closure.insert(i) {
                stack.extend(self.tables[s].slots[i].parents.iter().copied());
            }
        }
        closure
    }

    /// Pulls `slot`'s non-resident ancestors resident (used on resync).
    /// Returns how many were pulled.
    fn pull_closure(&mut self, s: usize, slot: usize) -> u64 {
        let closure = self.ancestor_closure(s, slot);
        let mut pulled = 0u64;
        for i in closure {
            let x = &mut self.tables[s].slots[i];
            if !x.resident {
                x.resident = true;
                pulled += 1;
                self.counters.inserts += 1;
            }
        }
        pulled
    }

    /// Evicts by policy until switch `s` fits its capacity, never
    /// touching `pinned` slots or safe-mode entries. Every eviction
    /// cascades downward to resident descendants so the invariant is
    /// preserved.
    fn enforce_capacity(&mut self, s: usize, pinned: &BTreeSet<usize>) {
        while self.tables[s].billable_residents() > self.config.capacity {
            let victim = self.pick_victim(s, pinned);
            let Some(v) = victim else { return };
            self.evict_cascading(s, v);
        }
    }

    /// The policy's next victim among evictable resident slots. Ties
    /// break toward the lower-priority (later) slot for determinism.
    fn pick_victim(&self, s: usize, pinned: &BTreeSet<usize>) -> Option<usize> {
        let table = &self.tables[s];
        let mut best: Option<(u64, usize)> = None;
        for (i, x) in table.slots.iter().enumerate() {
            if !x.resident || x.entry.is_safe_mode() || pinned.contains(&i) {
                continue;
            }
            let score = match self.config.policy {
                CachePolicy::Lru => x.last_use,
                CachePolicy::DepFreq => {
                    let dependents = x
                        .children
                        .iter()
                        .filter(|&&c| table.slots[c].resident)
                        .count() as u64;
                    x.uses.saturating_add(dependents)
                }
            };
            let better = match best {
                None => true,
                Some((bs, bi)) => score < bs || (score == bs && i > bi),
            };
            if better {
                best = Some((score, i));
            }
        }
        best.map(|(_, i)| i)
    }

    /// Evicts `slot` and every resident descendant (downward closure),
    /// keeping the invariant intact.
    fn evict_cascading(&mut self, s: usize, slot: usize) {
        let mut stack = vec![slot];
        while let Some(i) = stack.pop() {
            let x = &mut self.tables[s].slots[i];
            if !x.resident || x.entry.is_safe_mode() {
                continue;
            }
            x.resident = false;
            self.counters.evictions += 1;
            let children = self.tables[s].slots[i].children.clone();
            stack.extend(children);
        }
    }

    /// Structural audit of the eviction invariant: every resident slot's
    /// parents are resident.
    ///
    /// # Errors
    ///
    /// A description of the first dangling dependency.
    pub fn audit(&self) -> Result<(), String> {
        for (s, table) in self.tables.iter().enumerate() {
            for x in &table.slots {
                if !x.resident {
                    continue;
                }
                for &p in &x.parents {
                    if !table.slots[p].resident {
                        return Err(format!(
                            "s{s}: resident entry {} depends on evicted {}",
                            x.entry, table.slots[p].entry
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Materializes the resident state as verifier tables: resident
    /// entries verbatim, plus one minimum-priority match-all DROP per
    /// (switch, header width) carrying every tag that switch's full
    /// table serves — the punt path modelled pessimistically as a drop.
    /// Feeding these to `verify_tables` in no-false-negatives mode
    /// detects exactly the decision inversions a dependency-violating
    /// eviction would cause.
    pub fn audit_tables(&self) -> Vec<SwitchTable> {
        self.tables
            .iter()
            .map(|table| {
                let mut entries: Vec<TableEntry> = table
                    .slots
                    .iter()
                    .filter(|x| x.resident)
                    .map(|x| TableEntry {
                        tags: x.entry.tags.clone(),
                        match_field: x.entry.match_field,
                        action: x.entry.action,
                        priority: x.entry.priority,
                        contributors: Vec::new(),
                    })
                    .collect();
                // Punt fences: one per header width present in the full
                // table, tagged with every ingress that width serves.
                let mut widths: Vec<u32> = table
                    .slots
                    .iter()
                    .map(|x| x.entry.match_field.width())
                    .collect();
                widths.sort_unstable();
                widths.dedup();
                for width in widths {
                    let tags: BTreeSet<EntryPortId> = table
                        .slots
                        .iter()
                        .filter(|x| x.entry.match_field.width() == width)
                        .flat_map(|x| x.entry.tags.iter().copied())
                        .collect();
                    entries.push(TableEntry {
                        tags,
                        match_field: flowplace_acl::Ternary::any(width),
                        action: Action::Drop,
                        priority: 0,
                        contributors: Vec::new(),
                    });
                }
                SwitchTable::from_entries(entries)
            })
            .collect()
    }

    /// Test/negative-control hook: evicts exactly one slot with **no**
    /// downward cascade, deliberately breaking the invariant the way a
    /// naive cache would. The audits exist to catch what this does.
    #[doc(hidden)]
    pub fn force_evict_unsafe(&mut self, s: SwitchId, slot: usize) {
        let x = &mut self.tables[s.0].slots[slot];
        if x.resident {
            x.resident = false;
            self.counters.evictions += 1;
        }
    }

    /// Slot index of the first entry on `s` matching `predicate`
    /// (tables are in descending-priority order). Test helper.
    #[doc(hidden)]
    pub fn find_slot(&self, s: SwitchId, predicate: impl Fn(&TcamEntry) -> bool) -> Option<usize> {
        self.tables[s.0]
            .slots
            .iter()
            .position(|x| predicate(&x.entry))
    }

    /// Deterministic text dump: per switch, each target entry with its
    /// residency bit. Identical cache states render identically.
    pub fn dump(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        for (s, table) in self.tables.iter().enumerate() {
            let _ = writeln!(
                out,
                "s{s} cache {}/{} resident",
                table.slots.iter().filter(|x| x.resident).count(),
                table.slots.len()
            );
            for x in &table.slots {
                let _ = writeln!(
                    out,
                    "  [{}] {}",
                    if x.resident { 'R' } else { '-' },
                    x.entry
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowplace_acl::Ternary;
    use std::collections::BTreeSet as Set;

    fn entry(priority: u32, bits: &str, action: Action) -> TcamEntry {
        TcamEntry {
            priority,
            tags: Set::from([EntryPortId(0)]),
            match_field: Ternary::parse(bits).unwrap(),
            action,
        }
    }

    fn packet(bits: &str) -> Packet {
        let mut v = 0u128;
        for c in bits.chars() {
            v = (v << 1) | (c == '1') as u128;
        }
        Packet::from_bits(v, bits.len() as u32)
    }

    fn cache(capacity: usize, policy: CachePolicy) -> RuleCache {
        RuleCache::new(
            CacheConfig {
                enabled: true,
                capacity,
                policy,
                ..CacheConfig::default()
            },
            1,
        )
    }

    /// drop(10**) above permit(****): the §IV-A1 shape.
    fn shielded_target() -> Vec<Vec<TcamEntry>> {
        vec![vec![
            entry(2, "10**", Action::Drop),
            entry(1, "****", Action::Permit),
        ]]
    }

    #[test]
    fn parse_spec_accepts_both_forms() {
        let c = CacheConfig::parse_spec("8").unwrap();
        assert!(c.enabled);
        assert_eq!((c.capacity, c.policy), (8, CachePolicy::Lru));
        let c = CacheConfig::parse_spec("depfreq:4").unwrap();
        assert_eq!((c.capacity, c.policy), (4, CachePolicy::DepFreq));
        assert!(CacheConfig::parse_spec("fifo:4").is_err());
        assert!(CacheConfig::parse_spec("lru:x").is_err());
        assert!(CacheConfig::parse_spec("0").is_err());
    }

    #[test]
    fn parse_spec_errors_name_the_offending_token() {
        let err = CacheConfig::parse_spec("fifo:4").unwrap_err();
        assert!(
            err.contains("\"fifo\"") && err.contains("\"fifo:4\""),
            "{err}"
        );
        let err = CacheConfig::parse_spec("lru:x").unwrap_err();
        assert!(err.contains("\"x\"") && err.contains("\"lru:x\""), "{err}");
        for zero in ["0", "00", "lru:0", "depfreq:0"] {
            let err = CacheConfig::parse_spec(zero).unwrap_err();
            assert!(err.contains("must be positive"), "{zero}: {err}");
        }
        let err = CacheConfig::parse_spec("").unwrap_err();
        assert!(err.contains("empty cache spec"), "{err}");
        let err = CacheConfig::parse_spec("lru:").unwrap_err();
        assert!(err.contains("\"\""), "{err}");
    }

    #[test]
    fn lookup_misses_then_hits_after_insert() {
        let mut c = cache(4, CachePolicy::Lru);
        c.set_target(&shielded_target());
        let p = packet("0101");
        let CacheLookup::Miss { action, slot } = c.lookup(SwitchId(0), EntryPortId(0), &p) else {
            panic!("cold cache must miss");
        };
        assert_eq!(action, Action::Permit);
        assert!(c.insert(SwitchId(0), slot));
        assert_eq!(
            c.lookup(SwitchId(0), EntryPortId(0), &p),
            CacheLookup::Hit(Action::Permit)
        );
        c.audit().unwrap();
    }

    #[test]
    fn inserting_the_permit_pulls_the_shield_drop() {
        let mut c = cache(4, CachePolicy::Lru);
        c.set_target(&shielded_target());
        // Miss on the wildcard PERMIT (slot 1); its shield DROP overlaps.
        let CacheLookup::Miss { slot, .. } = c.lookup(SwitchId(0), EntryPortId(0), &packet("0000"))
        else {
            panic!("miss expected");
        };
        c.insert(SwitchId(0), slot);
        assert_eq!(c.occupancy(SwitchId(0)), 2, "closure pulled the DROP");
        assert_eq!(c.counters().closure_pulls, 1);
        // The shielded packet now decides correctly from cache.
        assert_eq!(
            c.lookup(SwitchId(0), EntryPortId(0), &packet("1011")),
            CacheLookup::Hit(Action::Drop)
        );
        c.audit().unwrap();
    }

    #[test]
    fn eviction_cascades_to_dependents() {
        let mut c = cache(2, CachePolicy::Lru);
        c.set_target(&[vec![
            entry(3, "10**", Action::Drop),
            entry(2, "1***", Action::Permit),
            entry(1, "01**", Action::Drop),
        ]]);
        // Cache the permit (pulls its shield): capacity full at 2.
        let s = c
            .find_slot(SwitchId(0), |e| e.action == Action::Permit)
            .unwrap();
        assert!(c.insert(SwitchId(0), s));
        assert_eq!(c.occupancy(SwitchId(0)), 2);
        // Caching the disjoint 01** DROP forces an eviction; whichever
        // victim the policy picks, the invariant must hold after.
        let d = c.find_slot(SwitchId(0), |e| {
            e.match_field == Ternary::parse("01**").unwrap()
        });
        assert!(c.insert(SwitchId(0), d.unwrap()));
        assert!(c.occupancy(SwitchId(0)) <= 2);
        c.audit().unwrap();
        // Evicting the shield DROP must have cascaded to the PERMIT: a
        // 10** packet can never see a lone resident PERMIT.
        match c.lookup(SwitchId(0), EntryPortId(0), &packet("1000")) {
            CacheLookup::Hit(Action::Drop) | CacheLookup::Miss { .. } => {}
            other => panic!("decision inverted: {other:?}"),
        }
    }

    #[test]
    fn closure_larger_than_capacity_is_uncacheable() {
        let mut c = cache(1, CachePolicy::Lru);
        c.set_target(&shielded_target());
        let CacheLookup::Miss { slot, .. } = c.lookup(SwitchId(0), EntryPortId(0), &packet("0000"))
        else {
            panic!("miss expected");
        };
        // PERMIT needs its shield too: closure of 2 > capacity 1.
        assert!(!c.insert(SwitchId(0), slot));
        assert_eq!(c.counters().uncacheable, 1);
        assert_eq!(c.occupancy(SwitchId(0)), 0);
        // The DROP alone (closure of 1) is cacheable.
        let d = c
            .find_slot(SwitchId(0), |e| e.action == Action::Drop)
            .unwrap();
        assert!(c.insert(SwitchId(0), d));
        c.audit().unwrap();
    }

    #[test]
    fn force_evict_unsafe_breaks_the_audit() {
        let mut c = cache(4, CachePolicy::Lru);
        c.set_target(&shielded_target());
        let p = c
            .find_slot(SwitchId(0), |e| e.action == Action::Permit)
            .unwrap();
        c.insert(SwitchId(0), p);
        c.audit().unwrap();
        let d = c
            .find_slot(SwitchId(0), |e| e.action == Action::Drop)
            .unwrap();
        c.force_evict_unsafe(SwitchId(0), d);
        let err = c.audit().unwrap_err();
        assert!(err.contains("depends on evicted"), "{err}");
        // And the materialized tables now permit a policy-dropped packet.
        let tables = c.audit_tables();
        let t = &tables[0];
        assert_eq!(
            t.lookup(EntryPortId(0), &packet("1010")),
            Some(Action::Permit),
            "inversion visible to the verifier"
        );
    }

    #[test]
    fn audit_tables_punt_is_a_drop() {
        let mut c = cache(4, CachePolicy::Lru);
        c.set_target(&shielded_target());
        // Nothing resident: every packet punts, modelled as drop.
        let tables = c.audit_tables();
        assert_eq!(
            tables[0].lookup(EntryPortId(0), &packet("1010")),
            Some(Action::Drop)
        );
        // Resident state mirrors the full table exactly.
        let p = c
            .find_slot(SwitchId(0), |e| e.action == Action::Permit)
            .unwrap();
        c.insert(SwitchId(0), p);
        let tables = c.audit_tables();
        assert_eq!(
            tables[0].lookup(EntryPortId(0), &packet("1010")),
            Some(Action::Drop),
            "shield DROP pulled in by closure"
        );
        assert_eq!(
            tables[0].lookup(EntryPortId(0), &packet("0110")),
            Some(Action::Permit)
        );
    }

    #[test]
    fn lru_evicts_the_coldest_depfreq_keeps_the_popular() {
        let disjoint = |i: u32| entry(i, &format!("{:02b}**", i - 1), Action::Drop);
        let target = vec![vec![disjoint(1), disjoint(2), disjoint(3)]];
        let run = |policy| {
            let mut c = cache(2, policy);
            c.set_target(&target);
            // 10** is *frequent* (5 hits) but touched before 01** was
            // inserted; 01** is cold but *recent*. Inserting 00**
            // forces one eviction; the two policies disagree on the
            // victim.
            c.insert(SwitchId(0), slot_of(&c, "10**"));
            for _ in 0..5 {
                assert_eq!(
                    c.lookup(SwitchId(0), EntryPortId(0), &packet("1000")),
                    CacheLookup::Hit(Action::Drop)
                );
            }
            c.insert(SwitchId(0), slot_of(&c, "01**"));
            c.insert(SwitchId(0), slot_of(&c, "00**"));
            assert_eq!(c.occupancy(SwitchId(0)), 2);
            c.audit().unwrap();
            c
        };
        // LRU judges by recency: the older-touched frequent entry goes.
        let mut lru = run(CachePolicy::Lru);
        assert!(matches!(
            lru.lookup(SwitchId(0), EntryPortId(0), &packet("1000")),
            CacheLookup::Miss { .. }
        ));
        assert_eq!(
            lru.lookup(SwitchId(0), EntryPortId(0), &packet("0100")),
            CacheLookup::Hit(Action::Drop)
        );
        // DepFreq judges by use count: the frequent entry survives.
        let mut df = run(CachePolicy::DepFreq);
        assert_eq!(
            df.lookup(SwitchId(0), EntryPortId(0), &packet("1000")),
            CacheLookup::Hit(Action::Drop)
        );
        assert!(matches!(
            df.lookup(SwitchId(0), EntryPortId(0), &packet("0100")),
            CacheLookup::Miss { .. }
        ));
    }

    fn slot_of(c: &RuleCache, bits: &str) -> usize {
        c.find_slot(SwitchId(0), |e| {
            e.match_field == Ternary::parse(bits).unwrap()
        })
        .unwrap()
    }

    #[test]
    fn set_target_preserves_residency_and_recloses() {
        let mut c = cache(4, CachePolicy::Lru);
        c.set_target(&shielded_target());
        let p = c
            .find_slot(SwitchId(0), |e| e.action == Action::Permit)
            .unwrap();
        c.insert(SwitchId(0), p);
        assert_eq!(c.occupancy(SwitchId(0)), 2);
        // New target: same two entries plus a higher DROP overlapping
        // the permit — the resync must pull it to keep the closure.
        let mut target = shielded_target();
        target[0].push(entry(5, "0***", Action::Drop));
        c.set_target(&target);
        assert_eq!(c.occupancy(SwitchId(0)), 3, "new shield pulled resident");
        c.audit().unwrap();
        // Shrinking the target drops stale residency without panicking.
        c.set_target(&[vec![entry(1, "****", Action::Permit)]]);
        assert_eq!(c.occupancy(SwitchId(0)), 1);
        c.audit().unwrap();
    }

    #[test]
    fn safe_mode_entries_are_pinned_and_exempt() {
        let mut c = cache(1, CachePolicy::Lru);
        let safe = TcamEntry {
            priority: u32::MAX,
            tags: Set::from([EntryPortId(0)]),
            match_field: Ternary::parse("****").unwrap(),
            action: Action::Drop,
        };
        let mut target = shielded_target();
        target[0].push(safe);
        c.set_target(&target);
        // Safe-mode fence resident from the start, free of charge.
        assert_eq!(c.occupancy(SwitchId(0)), 1);
        assert_eq!(
            c.lookup(SwitchId(0), EntryPortId(0), &packet("1010")),
            CacheLookup::Hit(Action::Drop)
        );
        // A billable insert still fits: fence does not consume capacity.
        let d = c.find_slot(SwitchId(0), |e| e.priority == 2).unwrap();
        assert!(c.insert(SwitchId(0), d));
        c.audit().unwrap();
    }

    #[test]
    fn batched_matcher_agrees_with_linear_slot_scan() {
        // Mixed tags, overlapping matches, a width-mismatched entry, and
        // a foreign ingress: the SoA matcher must pick exactly the slot
        // the old `tags ∧ width ∧ matches` linear scan picked.
        let mut c = cache(8, CachePolicy::Lru);
        let mut e3 = entry(3, "1***", Action::Drop);
        e3.tags = Set::from([EntryPortId(1)]);
        let mut e0 = entry(0, "**", Action::Drop); // width 2: never matches width-4 packets
        e0.tags = Set::from([EntryPortId(0), EntryPortId(1)]);
        c.set_target(&[vec![
            entry(2, "10**", Action::Drop),
            entry(1, "****", Action::Permit),
            e3,
            e0,
        ]]);
        let slots: Vec<TcamEntry> = c.tables[0].slots.iter().map(|x| x.entry.clone()).collect();
        for ingress in [EntryPortId(0), EntryPortId(1), EntryPortId(7)] {
            for bits in 0..16u128 {
                let p = Packet::from_bits(bits, 4);
                let want = slots.iter().position(|e| {
                    e.tags.contains(&ingress)
                        && e.match_field.width() == p.width()
                        && e.match_field.matches(&p)
                });
                assert_eq!(
                    c.tables[0].first_match(ingress, &p),
                    want,
                    "ingress {ingress:?} packet {bits:04b}"
                );
            }
        }
    }

    #[test]
    fn dump_is_deterministic() {
        let build = || {
            let mut c = cache(4, CachePolicy::Lru);
            c.set_target(&shielded_target());
            let p = c
                .find_slot(SwitchId(0), |e| e.action == Action::Permit)
                .unwrap();
            c.insert(SwitchId(0), p);
            c
        };
        assert_eq!(build().dump(), build().dump());
        assert!(build().dump().contains("[R]"));
    }
}

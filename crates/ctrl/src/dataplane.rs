//! Simulated per-switch TCAM dataplane with transactional updates.
//!
//! The controller never mutates switch tables entry-by-entry. Each epoch
//! it emits the *target* tables for the new placement, diffs them against
//! what is deployed, and applies the [`RuleDiff`] as one transaction:
//! all installs land before any delete (make-before-break), so the
//! no-false-negative guarantee of §IV-A holds at every instant of the
//! transition — a packet that should be dropped is never permitted
//! because its DROP rule (or a shield above it) was momentarily absent.
//! The price is transient occupancy above the committed load, which the
//! dataplane tracks as `peak_occupancy`; only the *final* state must
//! respect each switch's capacity.

use std::collections::BTreeMap;
use std::fmt;

use flowplace_acl::{Action, Ternary};
use flowplace_core::tables::SwitchTable;
use flowplace_topo::{EntryPortId, SwitchId};

/// One deployed TCAM entry. Identity is the full tuple: two entries that
/// differ only in priority are distinct dataplane state.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct TcamEntry {
    /// Table priority (larger wins).
    pub priority: u32,
    /// Ingress tags this entry applies to (§IV-D disjointness).
    pub tags: std::collections::BTreeSet<EntryPortId>,
    /// Header match field.
    pub match_field: Ternary,
    /// PERMIT or DROP.
    pub action: Action,
}

impl fmt::Display for TcamEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] tags={{", self.priority)?;
        for (i, t) in self.tags.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "}} {} {}", self.match_field, self.action)
    }
}

/// The table of one switch: entries sorted by descending priority, ties
/// broken by the entry's full ordering so dumps are deterministic.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SwitchTcam {
    capacity: usize,
    entries: Vec<TcamEntry>,
}

impl SwitchTcam {
    /// Current number of installed entries.
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The installed entries, highest priority first.
    pub fn entries(&self) -> &[TcamEntry] {
        &self.entries
    }

    fn sort(&mut self) {
        self.entries
            .sort_by(|a, b| b.priority.cmp(&a.priority).then_with(|| a.cmp(b)));
    }
}

/// The delta between the deployed dataplane and a target table set.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RuleDiff {
    /// Entries to add, per switch.
    pub install: Vec<(SwitchId, TcamEntry)>,
    /// Entries to delete, per switch.
    pub remove: Vec<(SwitchId, TcamEntry)>,
}

impl RuleDiff {
    /// True when the diff changes nothing.
    pub fn is_empty(&self) -> bool {
        self.install.is_empty() && self.remove.is_empty()
    }

    /// Total entries touched (installs + removes) — the churn of the
    /// transition.
    pub fn churn(&self) -> usize {
        self.install.len() + self.remove.len()
    }
}

/// What a committed transaction did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ApplyReport {
    /// Entries installed.
    pub installed: usize,
    /// Entries removed.
    pub removed: usize,
    /// Highest per-switch occupancy reached *during* the transition
    /// (installs land before removes, so this can exceed the final
    /// occupancy and even the capacity).
    pub peak_occupancy: usize,
}

/// Error applying a [`RuleDiff`]; the dataplane is rolled back to its
/// pre-transaction state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataPlaneError {
    /// A remove referenced an entry that is not installed.
    MissingEntry {
        /// The switch the delete targeted.
        switch: SwitchId,
        /// Rendered form of the missing entry.
        entry: String,
    },
    /// The *final* state of a switch exceeds its capacity.
    OverCapacity {
        /// The overfull switch.
        switch: SwitchId,
        /// Entries after the transaction.
        occupancy: usize,
        /// The switch's capacity.
        capacity: usize,
    },
    /// A diff referenced a switch the dataplane does not have.
    UnknownSwitch(SwitchId),
}

impl fmt::Display for DataPlaneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataPlaneError::MissingEntry { switch, entry } => {
                write!(f, "delete of absent entry on {switch}: {entry}")
            }
            DataPlaneError::OverCapacity {
                switch,
                occupancy,
                capacity,
            } => write!(
                f,
                "{switch} over capacity after commit: {occupancy}/{capacity}"
            ),
            DataPlaneError::UnknownSwitch(s) => write!(f, "diff references unknown switch {s}"),
        }
    }
}

impl std::error::Error for DataPlaneError {}

/// The simulated network dataplane: one TCAM per switch.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DataPlane {
    switches: Vec<SwitchTcam>,
}

impl DataPlane {
    /// Creates an empty dataplane with the given per-switch capacities.
    pub fn new(capacities: Vec<usize>) -> Self {
        DataPlane {
            switches: capacities
                .into_iter()
                .map(|capacity| SwitchTcam {
                    capacity,
                    entries: Vec::new(),
                })
                .collect(),
        }
    }

    /// Number of switches.
    pub fn switch_count(&self) -> usize {
        self.switches.len()
    }

    /// The TCAM of one switch.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn switch(&self, s: SwitchId) -> &SwitchTcam {
        &self.switches[s.0]
    }

    /// Total entries installed across all switches.
    pub fn total_occupancy(&self) -> usize {
        self.switches.iter().map(|s| s.entries.len()).sum()
    }

    /// Re-synchronizes per-switch capacities (after a `capacity` event).
    pub fn set_capacities(&mut self, capacities: &[usize]) {
        for (tcam, &c) in self.switches.iter_mut().zip(capacities) {
            tcam.capacity = c;
        }
    }

    /// Converts emitted [`SwitchTable`]s into target TCAM contents.
    pub fn target_from_tables(tables: &[SwitchTable]) -> Vec<Vec<TcamEntry>> {
        tables
            .iter()
            .map(|t| {
                t.entries()
                    .iter()
                    .map(|e| TcamEntry {
                        priority: e.priority,
                        tags: e.tags.clone(),
                        match_field: e.match_field,
                        action: e.action,
                    })
                    .collect()
            })
            .collect()
    }

    /// Computes the diff that turns the deployed state into `target`.
    /// Entries are compared as multisets per switch.
    ///
    /// # Errors
    ///
    /// [`DataPlaneError::UnknownSwitch`] if `target` has more switches
    /// than the dataplane.
    pub fn diff_to(&self, target: &[Vec<TcamEntry>]) -> Result<RuleDiff, DataPlaneError> {
        if target.len() > self.switches.len() {
            return Err(DataPlaneError::UnknownSwitch(SwitchId(self.switches.len())));
        }
        let mut diff = RuleDiff::default();
        for (i, tcam) in self.switches.iter().enumerate() {
            let want = target.get(i).map(Vec::as_slice).unwrap_or(&[]);
            let mut counts: BTreeMap<&TcamEntry, isize> = BTreeMap::new();
            for e in want {
                *counts.entry(e).or_default() += 1;
            }
            for e in &tcam.entries {
                *counts.entry(e).or_default() -= 1;
            }
            for (e, n) in counts {
                for _ in 0..n.max(0) {
                    diff.install.push((SwitchId(i), e.clone()));
                }
                for _ in 0..(-n).max(0) {
                    diff.remove.push((SwitchId(i), e.clone()));
                }
            }
        }
        Ok(diff)
    }

    /// Applies a diff transactionally: every install lands before any
    /// delete, per-switch peak occupancy is recorded, and the final state
    /// must respect capacities. On any error the dataplane is restored
    /// to its pre-transaction state.
    ///
    /// # Errors
    ///
    /// See [`DataPlaneError`].
    pub fn apply(&mut self, diff: &RuleDiff) -> Result<ApplyReport, DataPlaneError> {
        let before = self.switches.clone();
        match self.apply_inner(diff) {
            Ok(report) => Ok(report),
            Err(e) => {
                self.switches = before;
                Err(e)
            }
        }
    }

    fn apply_inner(&mut self, diff: &RuleDiff) -> Result<ApplyReport, DataPlaneError> {
        // Phase 1: install everything (make-before-break).
        for (s, e) in &diff.install {
            let tcam = self
                .switches
                .get_mut(s.0)
                .ok_or(DataPlaneError::UnknownSwitch(*s))?;
            tcam.entries.push(e.clone());
        }
        let peak_occupancy = self
            .switches
            .iter()
            .map(|t| t.entries.len())
            .max()
            .unwrap_or(0);
        // Phase 2: delete the obsolete entries.
        for (s, e) in &diff.remove {
            let tcam = self
                .switches
                .get_mut(s.0)
                .ok_or(DataPlaneError::UnknownSwitch(*s))?;
            let Some(pos) = tcam.entries.iter().position(|x| x == e) else {
                return Err(DataPlaneError::MissingEntry {
                    switch: *s,
                    entry: e.to_string(),
                });
            };
            tcam.entries.remove(pos);
        }
        // Commit check: the final state must fit.
        for (i, tcam) in self.switches.iter_mut().enumerate() {
            if tcam.entries.len() > tcam.capacity {
                return Err(DataPlaneError::OverCapacity {
                    switch: SwitchId(i),
                    occupancy: tcam.entries.len(),
                    capacity: tcam.capacity,
                });
            }
            tcam.sort();
        }
        Ok(ApplyReport {
            installed: diff.install.len(),
            removed: diff.remove.len(),
            peak_occupancy,
        })
    }

    /// Deterministic text dump of the whole dataplane. Identical
    /// deployed state always renders to identical bytes.
    pub fn dump(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        for (i, tcam) in self.switches.iter().enumerate() {
            let _ = writeln!(
                out,
                "{} cap={} occ={}",
                SwitchId(i),
                tcam.capacity,
                tcam.entries.len()
            );
            for e in &tcam.entries {
                let _ = writeln!(out, "  {e}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn entry(priority: u32, bits: &str, action: Action) -> TcamEntry {
        TcamEntry {
            priority,
            tags: BTreeSet::from([EntryPortId(0)]),
            match_field: Ternary::parse(bits).unwrap(),
            action,
        }
    }

    #[test]
    fn diff_then_apply_reaches_target() {
        let mut dp = DataPlane::new(vec![4, 4]);
        let target = vec![
            vec![
                entry(2, "10**", Action::Drop),
                entry(1, "****", Action::Permit),
            ],
            vec![entry(1, "****", Action::Permit)],
        ];
        let diff = dp.diff_to(&target).unwrap();
        assert_eq!(diff.install.len(), 3);
        assert_eq!(diff.remove.len(), 0);
        let report = dp.apply(&diff).unwrap();
        assert_eq!(report.installed, 3);
        assert_eq!(dp.total_occupancy(), 3);
        // Applying the same target again is a no-op.
        let diff2 = dp.diff_to(&target).unwrap();
        assert!(diff2.is_empty());
    }

    #[test]
    fn installs_land_before_deletes() {
        let mut dp = DataPlane::new(vec![2]);
        let old = vec![vec![entry(1, "0***", Action::Drop)]];
        dp.apply(&dp.diff_to(&old).unwrap()).unwrap();
        // Replace the single entry: transiently 2 entries, finally 1.
        let new = vec![vec![entry(1, "1***", Action::Drop)]];
        let report = dp.apply(&dp.diff_to(&new).unwrap()).unwrap();
        assert_eq!(report.peak_occupancy, 2);
        assert_eq!(dp.switch(SwitchId(0)).occupancy(), 1);
    }

    #[test]
    fn over_capacity_commit_rolls_back() {
        let mut dp = DataPlane::new(vec![1]);
        let one = vec![vec![entry(1, "0***", Action::Drop)]];
        dp.apply(&dp.diff_to(&one).unwrap()).unwrap();
        let two = vec![vec![
            entry(1, "0***", Action::Drop),
            entry(2, "1***", Action::Drop),
        ]];
        let err = dp.apply(&dp.diff_to(&two).unwrap()).unwrap_err();
        assert!(matches!(err, DataPlaneError::OverCapacity { .. }));
        // Rolled back: still exactly the old entry.
        assert_eq!(dp.switch(SwitchId(0)).occupancy(), 1);
    }

    #[test]
    fn missing_delete_rolls_back() {
        let mut dp = DataPlane::new(vec![4]);
        let diff = RuleDiff {
            install: vec![],
            remove: vec![(SwitchId(0), entry(1, "0***", Action::Drop))],
        };
        assert!(matches!(
            dp.apply(&diff),
            Err(DataPlaneError::MissingEntry { .. })
        ));
        assert_eq!(dp.total_occupancy(), 0);
    }

    #[test]
    fn dump_is_deterministic() {
        let mut a = DataPlane::new(vec![4]);
        let mut b = DataPlane::new(vec![4]);
        let target = vec![vec![
            entry(2, "10**", Action::Drop),
            entry(1, "****", Action::Permit),
        ]];
        // Same target through different diff orders.
        a.apply(&a.diff_to(&target).unwrap()).unwrap();
        let step = vec![vec![entry(1, "****", Action::Permit)]];
        b.apply(&b.diff_to(&step).unwrap()).unwrap();
        b.apply(&b.diff_to(&target).unwrap()).unwrap();
        assert_eq!(a.dump(), b.dump());
    }
}

//! Simulated per-switch TCAM dataplane with transactional updates.
//!
//! The controller never mutates switch tables entry-by-entry. Each epoch
//! it emits the *target* tables for the new placement, diffs them against
//! what is deployed, and applies the [`RuleDiff`] as one transaction:
//! all installs land before any delete (make-before-break), so the
//! no-false-negative guarantee of §IV-A holds at every instant of the
//! transition — a packet that should be dropped is never permitted
//! because its DROP rule (or a shield above it) was momentarily absent.
//! The price is transient occupancy above the committed load, which the
//! dataplane tracks as `peak_occupancy`; only the *final* state must
//! respect each switch's capacity.
//!
//! Switches can also *fail*: [`DataPlane::crash`] takes a switch down
//! (it stops forwarding and its TCAM is lost) and [`DataPlane::restore`]
//! brings it back with a blank table. Control operations against a down
//! switch fail with [`DataPlaneError::SwitchDown`]. Safe-mode drop-all
//! entries (see [`TcamEntry::is_safe_mode`]) occupy a reserved system
//! slot and are exempt from the capacity check, so the controller's
//! fail-closed fallback can never itself be infeasible.

use std::collections::BTreeMap;
use std::fmt;

use flowplace_acl::{Action, Ternary};
use flowplace_core::tables::SwitchTable;
use flowplace_topo::{EntryPortId, SwitchId};

/// One deployed TCAM entry. Identity is the full tuple: two entries that
/// differ only in priority are distinct dataplane state.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TcamEntry {
    /// Table priority (larger wins).
    pub priority: u32,
    /// Ingress tags this entry applies to (§IV-D disjointness).
    pub tags: std::collections::BTreeSet<EntryPortId>,
    /// Header match field.
    pub match_field: Ternary,
    /// PERMIT or DROP.
    pub action: Action,
}

impl TcamEntry {
    /// True for the controller's reserved safe-mode drop-all entry: a
    /// maximum-priority all-wildcard DROP. These live in a reserved
    /// system slot and do not count against TCAM capacity.
    pub fn is_safe_mode(&self) -> bool {
        self.priority == u32::MAX && self.match_field.care() == 0 && self.action == Action::Drop
    }

    /// True for a delegation redirect stub: a minimum-priority
    /// all-wildcard PERMIT (see [`crate::delegate`]). Semantically
    /// neutral in the pipeline model — a PERMIT forwards, exactly like
    /// no-match — it models the TCAM slot the hardware redirect rule
    /// occupies while a delegation is active.
    pub fn is_delegation_stub(&self) -> bool {
        self.priority == 0 && self.match_field.care() == 0 && self.action == Action::Permit
    }

    /// True for any reserved-system-bank entry (the safe-mode fence or
    /// a delegation redirect stub): exempt from the capacity check and
    /// surviving capacity revocations, so the controller's fail-closed
    /// fallbacks can never themselves be infeasible.
    pub fn is_reserved(&self) -> bool {
        self.is_safe_mode() || self.is_delegation_stub()
    }
}

impl fmt::Display for TcamEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] tags={{", self.priority)?;
        for (i, t) in self.tags.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "}} {} {}", self.match_field, self.action)
    }
}

/// The table of one switch: entries sorted by descending priority, ties
/// broken by the entry's full ordering so dumps are deterministic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SwitchTcam {
    capacity: usize,
    entries: Vec<TcamEntry>,
    online: bool,
}

impl Default for SwitchTcam {
    fn default() -> Self {
        SwitchTcam {
            capacity: 0,
            entries: Vec::new(),
            online: true,
        }
    }
}

impl SwitchTcam {
    /// Current number of installed entries (safe-mode slots included).
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }

    /// Entries that count against capacity (reserved system slots —
    /// safe-mode fences and delegation stubs — excluded).
    pub fn billable_occupancy(&self) -> usize {
        self.entries.iter().filter(|e| !e.is_reserved()).count()
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// False while the switch is crashed (not forwarding, TCAM lost).
    pub fn is_online(&self) -> bool {
        self.online
    }

    /// The installed entries, highest priority first.
    pub fn entries(&self) -> &[TcamEntry] {
        &self.entries
    }

    fn sort(&mut self) {
        self.entries
            .sort_by(|a, b| b.priority.cmp(&a.priority).then_with(|| a.cmp(b)));
    }
}

/// The delta between the deployed dataplane and a target table set.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RuleDiff {
    /// Entries to add, per switch.
    pub install: Vec<(SwitchId, TcamEntry)>,
    /// Entries to delete, per switch.
    pub remove: Vec<(SwitchId, TcamEntry)>,
}

impl RuleDiff {
    /// True when the diff changes nothing.
    pub fn is_empty(&self) -> bool {
        self.install.is_empty() && self.remove.is_empty()
    }

    /// Total entries touched (installs + removes) — the churn of the
    /// transition.
    pub fn churn(&self) -> usize {
        self.install.len() + self.remove.len()
    }
}

/// What a committed transaction did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ApplyReport {
    /// Entries installed.
    pub installed: usize,
    /// Entries removed.
    pub removed: usize,
    /// Highest per-switch occupancy reached *during* the transition
    /// (installs land before removes, so this can exceed the final
    /// occupancy and even the capacity).
    pub peak_occupancy: usize,
}

/// Error applying a [`RuleDiff`]; the dataplane is rolled back to its
/// pre-transaction state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataPlaneError {
    /// A remove referenced an entry that is not installed.
    MissingEntry {
        /// The switch the delete targeted.
        switch: SwitchId,
        /// Rendered form of the missing entry.
        entry: String,
    },
    /// The *final* state of a switch exceeds its capacity.
    OverCapacity {
        /// The overfull switch.
        switch: SwitchId,
        /// Entries after the transaction.
        occupancy: usize,
        /// The switch's capacity.
        capacity: usize,
    },
    /// A diff referenced a switch the dataplane does not have.
    UnknownSwitch(SwitchId),
    /// A control operation targeted a crashed switch.
    SwitchDown(SwitchId),
    /// The dataplane (scripted or probabilistic fault) rejected an
    /// install. Retryable.
    InstallRejected {
        /// The switch that rejected the install.
        switch: SwitchId,
        /// Rendered form of the rejected entry.
        entry: String,
    },
}

impl fmt::Display for DataPlaneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataPlaneError::MissingEntry { switch, entry } => {
                write!(f, "delete of absent entry on {switch}: {entry}")
            }
            DataPlaneError::OverCapacity {
                switch,
                occupancy,
                capacity,
            } => write!(
                f,
                "{switch} over capacity after commit: {occupancy}/{capacity}"
            ),
            DataPlaneError::UnknownSwitch(s) => write!(f, "diff references unknown switch {s}"),
            DataPlaneError::SwitchDown(s) => write!(f, "{s} is down"),
            DataPlaneError::InstallRejected { switch, entry } => {
                write!(f, "{switch} rejected install: {entry}")
            }
        }
    }
}

impl std::error::Error for DataPlaneError {}

/// The simulated network dataplane: one TCAM per switch.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DataPlane {
    switches: Vec<SwitchTcam>,
}

impl DataPlane {
    /// Creates an empty dataplane with the given per-switch capacities.
    pub fn new(capacities: Vec<usize>) -> Self {
        DataPlane {
            switches: capacities
                .into_iter()
                .map(|capacity| SwitchTcam {
                    capacity,
                    entries: Vec::new(),
                    online: true,
                })
                .collect(),
        }
    }

    /// Number of switches.
    pub fn switch_count(&self) -> usize {
        self.switches.len()
    }

    /// The TCAM of one switch.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn switch(&self, s: SwitchId) -> &SwitchTcam {
        &self.switches[s.0]
    }

    /// Total entries installed across all switches.
    pub fn total_occupancy(&self) -> usize {
        self.switches.iter().map(|s| s.entries.len()).sum()
    }

    /// Re-synchronizes per-switch capacities (after a `capacity` event).
    pub fn set_capacities(&mut self, capacities: &[usize]) {
        for (tcam, &c) in self.switches.iter_mut().zip(capacities) {
            tcam.capacity = c;
        }
    }

    /// Converts emitted [`SwitchTable`]s into target TCAM contents.
    pub fn target_from_tables(tables: &[SwitchTable]) -> Vec<Vec<TcamEntry>> {
        tables
            .iter()
            .map(|t| {
                t.entries()
                    .iter()
                    .map(|e| TcamEntry {
                        priority: e.priority,
                        tags: e.tags.clone(),
                        match_field: e.match_field,
                        action: e.action,
                    })
                    .collect()
            })
            .collect()
    }

    /// Computes the diff that turns the deployed state into `target`.
    /// Entries are compared as multisets per switch.
    ///
    /// # Errors
    ///
    /// [`DataPlaneError::UnknownSwitch`] if `target` has more switches
    /// than the dataplane.
    pub fn diff_to(&self, target: &[Vec<TcamEntry>]) -> Result<RuleDiff, DataPlaneError> {
        if target.len() > self.switches.len() {
            return Err(DataPlaneError::UnknownSwitch(SwitchId(self.switches.len())));
        }
        let mut diff = RuleDiff::default();
        for (i, tcam) in self.switches.iter().enumerate() {
            let want = target.get(i).map(Vec::as_slice).unwrap_or(&[]);
            let mut counts: BTreeMap<&TcamEntry, isize> = BTreeMap::new();
            for e in want {
                *counts.entry(e).or_default() += 1;
            }
            for e in &tcam.entries {
                *counts.entry(e).or_default() -= 1;
            }
            for (e, n) in counts {
                for _ in 0..n.max(0) {
                    diff.install.push((SwitchId(i), e.clone()));
                }
                for _ in 0..(-n).max(0) {
                    diff.remove.push((SwitchId(i), e.clone()));
                }
            }
        }
        Ok(diff)
    }

    /// Applies a diff as one atomic transaction: every install lands
    /// before any delete, per-switch peak occupancy is recorded, and the
    /// final state must respect capacities. The transaction is *staged*
    /// — all mutations happen on a shadow copy of the tables and are
    /// swapped in only after every operation and the commit check
    /// succeed, so a failure can never leave the dataplane half-applied.
    ///
    /// # Errors
    ///
    /// See [`DataPlaneError`]. On error the deployed state is untouched.
    pub fn apply(&mut self, diff: &RuleDiff) -> Result<ApplyReport, DataPlaneError> {
        let mut staged = self.switches.clone();
        let report = Self::apply_staged(&mut staged, diff)?;
        self.switches = staged;
        Ok(report)
    }

    fn apply_staged(
        switches: &mut [SwitchTcam],
        diff: &RuleDiff,
    ) -> Result<ApplyReport, DataPlaneError> {
        // Phase 1: install everything (make-before-break).
        for (s, e) in &diff.install {
            let tcam = switches
                .get_mut(s.0)
                .ok_or(DataPlaneError::UnknownSwitch(*s))?;
            if !tcam.online {
                return Err(DataPlaneError::SwitchDown(*s));
            }
            tcam.entries.push(e.clone());
        }
        let peak_occupancy = switches.iter().map(|t| t.entries.len()).max().unwrap_or(0);
        // Phase 2: delete the obsolete entries.
        for (s, e) in &diff.remove {
            let tcam = switches
                .get_mut(s.0)
                .ok_or(DataPlaneError::UnknownSwitch(*s))?;
            if !tcam.online {
                return Err(DataPlaneError::SwitchDown(*s));
            }
            let Some(pos) = tcam.entries.iter().position(|x| x == e) else {
                return Err(DataPlaneError::MissingEntry {
                    switch: *s,
                    entry: e.to_string(),
                });
            };
            tcam.entries.remove(pos);
        }
        // Commit check: the final state must fit (safe-mode slots are
        // reserved system entries and do not count).
        for (i, tcam) in switches.iter_mut().enumerate() {
            if tcam.billable_occupancy() > tcam.capacity {
                return Err(DataPlaneError::OverCapacity {
                    switch: SwitchId(i),
                    occupancy: tcam.billable_occupancy(),
                    capacity: tcam.capacity,
                });
            }
            tcam.sort();
        }
        Ok(ApplyReport {
            installed: diff.install.len(),
            removed: diff.remove.len(),
            peak_occupancy,
        })
    }

    /// Installs one entry on one switch (fault-aware op-by-op path).
    /// No capacity check: transient over-occupancy is legal
    /// mid-transition; call [`DataPlane::validate_capacities`] at commit.
    ///
    /// # Errors
    ///
    /// [`DataPlaneError::UnknownSwitch`] or [`DataPlaneError::SwitchDown`].
    pub fn install(&mut self, s: SwitchId, e: &TcamEntry) -> Result<(), DataPlaneError> {
        let tcam = self
            .switches
            .get_mut(s.0)
            .ok_or(DataPlaneError::UnknownSwitch(s))?;
        if !tcam.online {
            return Err(DataPlaneError::SwitchDown(s));
        }
        tcam.entries.push(e.clone());
        tcam.sort();
        Ok(())
    }

    /// Removes one entry from one switch (fault-aware op-by-op path).
    ///
    /// # Errors
    ///
    /// [`DataPlaneError::UnknownSwitch`], [`DataPlaneError::SwitchDown`],
    /// or [`DataPlaneError::MissingEntry`].
    pub fn remove(&mut self, s: SwitchId, e: &TcamEntry) -> Result<(), DataPlaneError> {
        let tcam = self
            .switches
            .get_mut(s.0)
            .ok_or(DataPlaneError::UnknownSwitch(s))?;
        if !tcam.online {
            return Err(DataPlaneError::SwitchDown(s));
        }
        let Some(pos) = tcam.entries.iter().position(|x| x == e) else {
            return Err(DataPlaneError::MissingEntry {
                switch: s,
                entry: e.to_string(),
            });
        };
        tcam.entries.remove(pos);
        Ok(())
    }

    /// Checks that every switch's final state fits its capacity
    /// (safe-mode slots exempt).
    ///
    /// # Errors
    ///
    /// [`DataPlaneError::OverCapacity`] for the first overfull switch.
    pub fn validate_capacities(&self) -> Result<(), DataPlaneError> {
        for (i, tcam) in self.switches.iter().enumerate() {
            if tcam.billable_occupancy() > tcam.capacity {
                return Err(DataPlaneError::OverCapacity {
                    switch: SwitchId(i),
                    occupancy: tcam.billable_occupancy(),
                    capacity: tcam.capacity,
                });
            }
        }
        Ok(())
    }

    /// Crashes a switch: it goes offline and its TCAM contents are lost.
    /// Idempotent. Returns the number of entries lost.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn crash(&mut self, s: SwitchId) -> usize {
        let tcam = &mut self.switches[s.0];
        tcam.online = false;
        let lost = tcam.entries.len();
        tcam.entries.clear();
        lost
    }

    /// Brings a crashed switch back online with a blank TCAM.
    /// Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn restore(&mut self, s: SwitchId) {
        self.switches[s.0].online = true;
    }

    /// True while switch `s` is online (not crashed).
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn is_online(&self, s: SwitchId) -> bool {
        self.switches[s.0].online
    }

    /// TCAM bank failure: shrinks `s`'s capacity to `capacity` and
    /// evicts the lowest-priority entries that no longer fit (safe-mode
    /// fences and delegation stubs are in the reserved bank and always
    /// survive). Returns the number of entries lost.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn revoke_capacity(&mut self, s: SwitchId, capacity: usize) -> usize {
        let tcam = &mut self.switches[s.0];
        tcam.capacity = capacity;
        // Entries are sorted by descending priority, so survivors are
        // the reserved slots plus the first `capacity` billable ones.
        let mut kept = 0usize;
        let before = tcam.entries.len();
        tcam.entries.retain(|e| {
            if e.is_reserved() {
                return true;
            }
            kept += 1;
            kept <= capacity
        });
        before - tcam.entries.len()
    }

    /// Deterministic text dump of the whole dataplane. Identical
    /// deployed state always renders to identical bytes.
    pub fn dump(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        for (i, tcam) in self.switches.iter().enumerate() {
            let _ = writeln!(
                out,
                "{} cap={} occ={}{}",
                SwitchId(i),
                tcam.capacity,
                tcam.entries.len(),
                if tcam.online { "" } else { " down" }
            );
            for e in &tcam.entries {
                let _ = writeln!(out, "  {e}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn entry(priority: u32, bits: &str, action: Action) -> TcamEntry {
        TcamEntry {
            priority,
            tags: BTreeSet::from([EntryPortId(0)]),
            match_field: Ternary::parse(bits).unwrap(),
            action,
        }
    }

    #[test]
    fn diff_then_apply_reaches_target() {
        let mut dp = DataPlane::new(vec![4, 4]);
        let target = vec![
            vec![
                entry(2, "10**", Action::Drop),
                entry(1, "****", Action::Permit),
            ],
            vec![entry(1, "****", Action::Permit)],
        ];
        let diff = dp.diff_to(&target).unwrap();
        assert_eq!(diff.install.len(), 3);
        assert_eq!(diff.remove.len(), 0);
        let report = dp.apply(&diff).unwrap();
        assert_eq!(report.installed, 3);
        assert_eq!(dp.total_occupancy(), 3);
        // Applying the same target again is a no-op.
        let diff2 = dp.diff_to(&target).unwrap();
        assert!(diff2.is_empty());
    }

    #[test]
    fn installs_land_before_deletes() {
        let mut dp = DataPlane::new(vec![2]);
        let old = vec![vec![entry(1, "0***", Action::Drop)]];
        dp.apply(&dp.diff_to(&old).unwrap()).unwrap();
        // Replace the single entry: transiently 2 entries, finally 1.
        let new = vec![vec![entry(1, "1***", Action::Drop)]];
        let report = dp.apply(&dp.diff_to(&new).unwrap()).unwrap();
        assert_eq!(report.peak_occupancy, 2);
        assert_eq!(dp.switch(SwitchId(0)).occupancy(), 1);
    }

    #[test]
    fn over_capacity_commit_rolls_back() {
        let mut dp = DataPlane::new(vec![1]);
        let one = vec![vec![entry(1, "0***", Action::Drop)]];
        dp.apply(&dp.diff_to(&one).unwrap()).unwrap();
        let two = vec![vec![
            entry(1, "0***", Action::Drop),
            entry(2, "1***", Action::Drop),
        ]];
        let err = dp.apply(&dp.diff_to(&two).unwrap()).unwrap_err();
        assert!(matches!(err, DataPlaneError::OverCapacity { .. }));
        // Rolled back: still exactly the old entry.
        assert_eq!(dp.switch(SwitchId(0)).occupancy(), 1);
    }

    #[test]
    fn missing_delete_rolls_back() {
        let mut dp = DataPlane::new(vec![4]);
        let diff = RuleDiff {
            install: vec![],
            remove: vec![(SwitchId(0), entry(1, "0***", Action::Drop))],
        };
        assert!(matches!(
            dp.apply(&diff),
            Err(DataPlaneError::MissingEntry { .. })
        ));
        assert_eq!(dp.total_occupancy(), 0);
    }

    #[test]
    fn failed_transaction_leaves_no_half_applied_state() {
        // The remove in this diff is bogus, but the installs before it
        // are fine — staging must discard them too, not just roll back
        // the failing op.
        let mut dp = DataPlane::new(vec![4, 4]);
        let seeded = vec![vec![entry(1, "0***", Action::Permit)]];
        dp.apply(&dp.diff_to(&seeded).unwrap()).unwrap();
        let before = dp.dump();
        let diff = RuleDiff {
            install: vec![
                (SwitchId(0), entry(3, "11**", Action::Drop)),
                (SwitchId(1), entry(2, "10**", Action::Drop)),
            ],
            remove: vec![(SwitchId(0), entry(9, "0101", Action::Drop))],
        };
        let err = dp.apply(&diff).unwrap_err();
        assert!(matches!(err, DataPlaneError::MissingEntry { .. }));
        assert_eq!(dp.dump(), before, "no install from the failed txn leaked");
    }

    #[test]
    fn crashed_switch_rejects_ops_and_loses_tcam() {
        let mut dp = DataPlane::new(vec![4]);
        let target = vec![vec![
            entry(2, "10**", Action::Drop),
            entry(1, "****", Action::Permit),
        ]];
        dp.apply(&dp.diff_to(&target).unwrap()).unwrap();
        assert_eq!(dp.crash(SwitchId(0)), 2, "both entries lost");
        assert!(!dp.is_online(SwitchId(0)));
        assert_eq!(dp.switch(SwitchId(0)).occupancy(), 0);
        assert!(dp.dump().contains(" down"));
        let e = entry(1, "0***", Action::Drop);
        assert_eq!(
            dp.install(SwitchId(0), &e),
            Err(DataPlaneError::SwitchDown(SwitchId(0)))
        );
        assert_eq!(
            dp.remove(SwitchId(0), &e),
            Err(DataPlaneError::SwitchDown(SwitchId(0)))
        );
        assert!(matches!(
            dp.apply(&RuleDiff {
                install: vec![(SwitchId(0), e.clone())],
                remove: vec![],
            }),
            Err(DataPlaneError::SwitchDown(_))
        ));
        dp.restore(SwitchId(0));
        assert!(dp.is_online(SwitchId(0)));
        assert_eq!(dp.switch(SwitchId(0)).occupancy(), 0, "blank after restore");
        dp.install(SwitchId(0), &e).unwrap();
        dp.remove(SwitchId(0), &e).unwrap();
    }

    #[test]
    fn capacity_revoke_evicts_lowest_priority_but_keeps_safe_mode() {
        let mut dp = DataPlane::new(vec![4]);
        let safe = TcamEntry {
            priority: u32::MAX,
            tags: BTreeSet::from([EntryPortId(0)]),
            match_field: Ternary::parse("****").unwrap(),
            action: Action::Drop,
        };
        assert!(safe.is_safe_mode());
        dp.install(SwitchId(0), &safe).unwrap();
        dp.install(SwitchId(0), &entry(3, "11**", Action::Drop))
            .unwrap();
        dp.install(SwitchId(0), &entry(2, "10**", Action::Drop))
            .unwrap();
        dp.install(SwitchId(0), &entry(1, "****", Action::Permit))
            .unwrap();
        let lost = dp.revoke_capacity(SwitchId(0), 1);
        assert_eq!(lost, 2, "two lowest-priority billable entries evicted");
        let survivors = dp.switch(SwitchId(0)).entries();
        assert_eq!(survivors.len(), 2);
        assert!(survivors[0].is_safe_mode());
        assert_eq!(survivors[1].priority, 3);
        dp.validate_capacities().unwrap();
    }

    #[test]
    fn safe_mode_slot_is_exempt_from_capacity() {
        let mut dp = DataPlane::new(vec![1]);
        let safe = TcamEntry {
            priority: u32::MAX,
            tags: BTreeSet::from([EntryPortId(0)]),
            match_field: Ternary::parse("****").unwrap(),
            action: Action::Drop,
        };
        let diff = RuleDiff {
            install: vec![
                (SwitchId(0), safe),
                (SwitchId(0), entry(1, "0***", Action::Drop)),
            ],
            remove: vec![],
        };
        dp.apply(&diff).unwrap();
        assert_eq!(dp.switch(SwitchId(0)).occupancy(), 2);
        assert_eq!(dp.switch(SwitchId(0)).billable_occupancy(), 1);
        dp.validate_capacities().unwrap();
    }

    #[test]
    fn delegation_stub_is_reserved_and_survives_revocation() {
        let stub = TcamEntry {
            priority: 0,
            tags: BTreeSet::from([EntryPortId(0)]),
            match_field: Ternary::parse("****").unwrap(),
            action: Action::Permit,
        };
        assert!(stub.is_delegation_stub());
        assert!(stub.is_reserved());
        assert!(!stub.is_safe_mode());
        // A priority-0 wildcard DROP is a fence candidate, not a stub.
        let drop = TcamEntry {
            action: Action::Drop,
            ..stub.clone()
        };
        assert!(!drop.is_delegation_stub());
        let mut dp = DataPlane::new(vec![1]);
        dp.install(SwitchId(0), &stub).unwrap();
        dp.install(SwitchId(0), &entry(2, "10**", Action::Drop))
            .unwrap();
        assert_eq!(dp.switch(SwitchId(0)).occupancy(), 2);
        assert_eq!(dp.switch(SwitchId(0)).billable_occupancy(), 1);
        dp.validate_capacities().unwrap();
        // Revoking to zero evicts the billable entry but keeps the stub.
        assert_eq!(dp.revoke_capacity(SwitchId(0), 0), 1);
        let survivors = dp.switch(SwitchId(0)).entries();
        assert_eq!(survivors.len(), 1);
        assert!(survivors[0].is_delegation_stub());
        dp.validate_capacities().unwrap();
    }

    #[test]
    fn dump_is_deterministic() {
        let mut a = DataPlane::new(vec![4]);
        let mut b = DataPlane::new(vec![4]);
        let target = vec![vec![
            entry(2, "10**", Action::Drop),
            entry(1, "****", Action::Permit),
        ]];
        // Same target through different diff orders.
        a.apply(&a.diff_to(&target).unwrap()).unwrap();
        let step = vec![vec![entry(1, "****", Action::Permit)]];
        b.apply(&b.diff_to(&step).unwrap()).unwrap();
        b.apply(&b.diff_to(&target).unwrap()).unwrap();
        assert_eq!(a.dump(), b.dump());
    }
}

//! Regression: a fresh persistent session is indistinguishable from a
//! one-shot solve.
//!
//! The warm controller path keeps a persistent solver session alive and
//! drives it through [`Solver::solve_with_assumptions`] with an empty
//! assumption set when nothing is pinned. That call must be a perfect
//! stand-in for [`Solver::solve`]: same verdict, same model bytes, and
//! the exported formula must not drift between the two construction
//! paths. A divergence here would make warm re-solves silently disagree
//! with the cold path the differential oracle checks against.

use flowplace_pbsat::{Lit, SatResult, Solver};

/// Deterministic LCG so the instances are reproducible without any
/// external randomness.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Builds a placement-flavoured PB instance: `rules` candidate
/// placements over `slots` switches, per-switch capacity constraints,
/// coverage clauses, and a few random implications. Both solvers in a
/// comparison are fed exactly this sequence.
fn build(s: &mut Solver, seed: u64, rules: usize, slots: usize, capacity: u64) {
    let mut rng = Lcg(seed ^ 0x9e3779b97f4a7c15);
    let vars: Vec<Vec<Lit>> = (0..rules)
        .map(|_| (0..slots).map(|_| Lit::positive(s.new_var())).collect())
        .collect();
    // Every rule is placed somewhere.
    for row in &vars {
        s.add_at_least_k(row, 1);
    }
    // Per-slot capacity.
    for slot in 0..slots {
        let column: Vec<(u64, Lit)> = vars.iter().map(|row| (1, row[slot])).collect();
        s.add_pb_le(&column, capacity);
    }
    // Random dependency edges: rule i in a slot drags rule j into it.
    for _ in 0..rules {
        let i = rng.below(rules as u64) as usize;
        let j = rng.below(rules as u64) as usize;
        let slot = rng.below(slots as u64) as usize;
        if i != j {
            s.add_implication(vars[i][slot], vars[j][slot]);
        }
    }
    // A conjunction witness, as the encoder's path variables use.
    let witness = Lit::positive(s.new_var());
    s.add_and_equiv(witness, &[vars[0][0], vars[rules - 1][slots - 1]]);
    // Mutual exclusion across the first rule's placements.
    s.add_at_most_k(&vars[0], 1);
}

/// Renders a result into comparable bytes: the verdict plus every model
/// bit in variable order.
fn result_bytes(r: &SatResult) -> String {
    match r {
        SatResult::Sat(model) => {
            let bits: String = model
                .values()
                .iter()
                .map(|&b| if b { '1' } else { '0' })
                .collect();
            format!("sat:{bits}")
        }
        SatResult::Unsat => "unsat".to_string(),
    }
}

#[test]
fn empty_assumptions_match_one_shot_solve_byte_for_byte() {
    let mut seen_sat = false;
    let mut seen_unsat = false;
    for seed in 0..16u64 {
        // Tight capacities on the later seeds force UNSAT instances so
        // both verdicts are exercised.
        let capacity = if seed % 4 == 3 { 1 } else { 3 };
        let (rules, slots) = (8, 3);

        let mut one_shot = Solver::new();
        build(&mut one_shot, seed, rules, slots, capacity);
        let mut session = Solver::new();
        build(&mut session, seed, rules, slots, capacity);

        // The constraint databases must match verbatim before solving.
        assert_eq!(
            one_shot.export_formula().to_opb().expect("no duplicates"),
            session.export_formula().to_opb().expect("no duplicates"),
            "seed {seed}: construction paths drifted before the solve"
        );

        let cold = one_shot.solve();
        let fresh = session.solve_with_assumptions(&[]);
        assert_eq!(
            result_bytes(&cold),
            result_bytes(&fresh),
            "seed {seed}: fresh session diverged from one-shot solve"
        );
        match cold {
            SatResult::Sat(_) => seen_sat = true,
            SatResult::Unsat => seen_unsat = true,
        }
    }
    assert!(seen_sat, "the sweep never produced a SAT instance");
    assert!(seen_unsat, "the sweep never produced an UNSAT instance");
}

#[test]
fn session_resolve_is_stable_after_assumption_probes() {
    for seed in [2u64, 5, 11] {
        let mut one_shot = Solver::new();
        build(&mut one_shot, seed, 6, 3, 2);
        let mut session = Solver::new();
        build(&mut session, seed, 6, 3, 2);

        let baseline = result_bytes(&one_shot.solve());

        // Probe the session with pinned placements (the warm path's
        // incremental pattern), then release the pins. Phase saving and
        // activity decay may steer the search to a *different* model
        // after the probes, but the verdict must never flip, and once
        // the session settles the empty-assumption answer must be
        // byte-stable across repeated calls.
        let pin = Lit::positive(flowplace_pbsat::Var(0));
        let _ = session.solve_with_assumptions(&[pin]);
        let _ = session.solve_with_assumptions(&[!pin]);
        let settled = result_bytes(&session.solve_with_assumptions(&[]));
        assert_eq!(
            baseline.split(':').next(),
            settled.split(':').next(),
            "seed {seed}: probing flipped the verdict"
        );
        for round in 0..3 {
            let again = result_bytes(&session.solve_with_assumptions(&[]));
            assert_eq!(
                settled, again,
                "seed {seed} round {round}: settled session drifted"
            );
        }
    }
}

#[test]
fn mid_session_db_reduction_is_deterministic_and_verdict_preserving() {
    // The warm path may now interleave learnt-DB reductions between
    // incremental solves. Two sessions driven through the identical
    // solve → reduce → solve(assumptions) sequence must stay
    // byte-identical to each other (reduction is part of the replayable
    // state machine), and every verdict must agree with a one-shot
    // solver that never reduced — deleted clauses are all implied, so
    // reduction can steer the search but never flip a verdict.
    for seed in 0..16u64 {
        let capacity = if seed % 4 == 3 { 1 } else { 3 };
        let (rules, slots) = (8, 3);
        let pin = Lit::positive(flowplace_pbsat::Var(seed as u32 % (rules * slots) as u32));
        let drive = |s: &mut Solver| {
            let first = result_bytes(&s.solve());
            s.reduce_learnts();
            let pinned = result_bytes(&s.solve_with_assumptions(&[pin]));
            s.reduce_learnts();
            let released = result_bytes(&s.solve_with_assumptions(&[]));
            (first, pinned, released, s.stats())
        };

        let mut a = Solver::new();
        build(&mut a, seed, rules, slots, capacity);
        let mut b = Solver::new();
        build(&mut b, seed, rules, slots, capacity);
        let run_a = drive(&mut a);
        let run_b = drive(&mut b);
        assert_eq!(
            run_a, run_b,
            "seed {seed}: reduce-interleaved sessions diverged"
        );

        // Verdicts match one-shot solvers that never reduced.
        let mut cold = Solver::new();
        build(&mut cold, seed, rules, slots, capacity);
        let cold_first = result_bytes(&cold.solve());
        assert_eq!(
            run_a.0.split(':').next(),
            cold_first.split(':').next(),
            "seed {seed}: reduction flipped the plain verdict"
        );
        let mut cold_pin = Solver::new();
        build(&mut cold_pin, seed, rules, slots, capacity);
        let cold_pinned = result_bytes(&cold_pin.solve_with_assumptions(&[pin]));
        assert_eq!(
            run_a.1.split(':').next(),
            cold_pinned.split(':').next(),
            "seed {seed}: reduction flipped the assumption verdict"
        );
        // The released solve must agree with the plain verdict again
        // (assumptions never persist, reduced or not).
        assert_eq!(
            run_a.2.split(':').next(),
            cold_first.split(':').next(),
            "seed {seed}: released session verdict drifted"
        );
    }
}

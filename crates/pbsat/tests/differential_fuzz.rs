//! Differential fuzzing of the CDCL solver against an exhaustive
//! brute-force oracle.
//!
//! 256 seeded random PB instances (≤ 14 variables — small enough that
//! every assignment can be enumerated), each solved under **every**
//! restart-strategy × DB-reduction configuration. For each run the
//! solver's SAT/UNSAT verdict must agree with the oracle, and any model
//! it returns must actually satisfy every clause and PB constraint. A
//! single disagreement is a soundness or completeness bug in the modern
//! CDCL machinery (LBD bookkeeping, clause minimization, adaptive
//! restarts, or DB reduction), so this suite is the gate for all of it.

use flowplace_pbsat::{Lit, RestartStrategy, SatResult, Solver, SolverOptions, Var};

/// xorshift64 — deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        // Avoid the all-zero fixed point.
        Rng(seed.wrapping_mul(2685821657736338717).max(1))
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// A random instance: clauses plus weighted PB ≤ rows over `num_vars`
/// variables. Kept as plain data so the same instance can be fed to the
/// solver and evaluated by the oracle.
struct Instance {
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
    pbs: Vec<(Vec<(u64, Lit)>, u64)>,
}

fn random_lit(rng: &mut Rng, num_vars: usize) -> Lit {
    let v = Var(rng.below(num_vars as u64) as u32);
    if rng.next().is_multiple_of(2) {
        Lit::positive(v)
    } else {
        Lit::negative(v)
    }
}

fn random_instance(seed: u64) -> Instance {
    let mut rng = Rng::new(seed);
    let num_vars = 4 + rng.below(11) as usize; // 4..=14
    let num_clauses = 2 + rng.below(3 * num_vars as u64) as usize;
    let num_pbs = 1 + rng.below(4) as usize;

    let mut clauses = Vec::with_capacity(num_clauses);
    for _ in 0..num_clauses {
        let len = 1 + rng.below(4) as usize;
        let clause: Vec<Lit> = (0..len).map(|_| random_lit(&mut rng, num_vars)).collect();
        clauses.push(clause);
    }
    let mut pbs = Vec::with_capacity(num_pbs);
    for _ in 0..num_pbs {
        let len = 2 + rng.below(num_vars as u64 - 1) as usize;
        let terms: Vec<(u64, Lit)> = (0..len)
            .map(|_| (1 + rng.below(4), random_lit(&mut rng, num_vars)))
            .collect();
        let total: u64 = terms.iter().map(|(w, _)| w).sum();
        // Bounds across the whole range, skewed low so UNSAT happens.
        let bound = rng.below(total + 1);
        pbs.push((terms, bound));
    }
    Instance {
        num_vars,
        clauses,
        pbs,
    }
}

/// Evaluates the instance under the assignment encoded in `mask`
/// (bit v = value of variable v). PB rows are evaluated with the raw
/// term list — duplicate variables contribute each occurrence, matching
/// the merge `Solver::add_pb_le` performs.
fn satisfied(inst: &Instance, mask: u32) -> bool {
    let val = |l: Lit| {
        let b = mask & (1 << l.var().0) != 0;
        b == l.is_positive()
    };
    inst.clauses.iter().all(|c| c.iter().any(|&l| val(l)))
        && inst.pbs.iter().all(|(terms, bound)| {
            let lhs: u64 = terms.iter().filter(|(_, l)| val(*l)).map(|(w, _)| w).sum();
            lhs <= *bound
        })
}

/// Exhaustive oracle: is any assignment satisfying?
fn oracle_sat(inst: &Instance) -> bool {
    (0u32..(1 << inst.num_vars)).any(|mask| satisfied(inst, mask))
}

fn all_configs() -> Vec<SolverOptions> {
    let mut out = Vec::new();
    for restart in [RestartStrategy::Luby, RestartStrategy::Glucose] {
        for db_reduction in [false, true] {
            out.push(SolverOptions {
                restart,
                db_reduction,
            });
        }
    }
    out
}

fn solve_with(inst: &Instance, opts: SolverOptions) -> SatResult {
    let mut s = Solver::with_options(opts);
    for _ in 0..inst.num_vars {
        s.new_var();
    }
    let mut ok = true;
    for c in &inst.clauses {
        ok &= s.add_clause(c);
    }
    for (terms, bound) in &inst.pbs {
        ok &= s.add_pb_le(terms, *bound);
    }
    if !ok {
        // The database was refuted during construction; solve() agrees.
        assert_eq!(s.solve(), SatResult::Unsat);
        return SatResult::Unsat;
    }
    s.solve()
}

#[test]
fn fuzz_256_seeds_all_configs_match_brute_force() {
    let configs = all_configs();
    let mut sat_count = 0usize;
    let mut unsat_count = 0usize;
    for seed in 0..256u64 {
        let inst = random_instance(seed);
        let expected = oracle_sat(&inst);
        if expected {
            sat_count += 1;
        } else {
            unsat_count += 1;
        }
        for &opts in &configs {
            let got = solve_with(&inst, opts);
            assert_eq!(
                got.is_sat(),
                expected,
                "seed {seed} opts {opts:?}: solver said {} but oracle says {}",
                if got.is_sat() { "SAT" } else { "UNSAT" },
                if expected { "SAT" } else { "UNSAT" },
            );
            if let SatResult::Sat(model) = &got {
                // The model must encode a genuinely satisfying assignment.
                let mut mask = 0u32;
                for (v, &b) in model.values().iter().enumerate() {
                    if b {
                        mask |= 1 << v;
                    }
                }
                assert!(
                    satisfied(&inst, mask),
                    "seed {seed} opts {opts:?}: returned model is infeasible"
                );
            }
        }
    }
    // The generator must exercise both verdicts heavily, or the suite
    // is fuzzing only half the solver.
    assert!(sat_count >= 32, "only {sat_count} SAT instances generated");
    assert!(
        unsat_count >= 32,
        "only {unsat_count} UNSAT instances generated"
    );
}

#[test]
fn fuzz_configs_agree_with_each_other_under_assumptions() {
    // Beyond plain verdicts: for a smaller sweep, every configuration
    // must agree on assumption probes too (the persistent-session
    // machinery composed with reduction/restart differences).
    let configs = all_configs();
    for seed in 0..64u64 {
        let inst = random_instance(seed);
        let assume = vec![Lit::positive(Var(0)), Lit::negative(Var(1))];
        let mut verdicts: Vec<bool> = Vec::new();
        for &opts in &configs {
            let mut s = Solver::with_options(opts);
            for _ in 0..inst.num_vars {
                s.new_var();
            }
            let mut ok = true;
            for c in &inst.clauses {
                ok &= s.add_clause(c);
            }
            for (terms, bound) in &inst.pbs {
                ok &= s.add_pb_le(terms, *bound);
            }
            let sat = ok && s.solve_with_assumptions(&assume).is_sat();
            verdicts.push(sat);
        }
        assert!(
            verdicts.iter().all(|&v| v == verdicts[0]),
            "seed {seed}: configurations disagree under assumptions: {verdicts:?}"
        );
    }
}

//! Pseudo-Boolean constraints.

use std::fmt;

use crate::Lit;

/// A pseudo-Boolean less-than-or-equal constraint: `Σ wᵢ·litᵢ ≤ bound`,
/// where a literal contributes its weight when true.
///
/// Weights must be positive (the solver normalizes constraints with
/// negated weights before construction).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PbConstraint {
    /// `(weight, literal)` terms with `weight ≥ 1`.
    pub terms: Vec<(u64, Lit)>,
    /// Inclusive upper bound on the weighted sum of true literals.
    pub bound: u64,
}

impl PbConstraint {
    /// Creates a constraint after dropping zero-weight terms.
    ///
    /// # Panics
    ///
    /// Panics if the same variable appears twice (the solver's public
    /// `add_pb_le` merges duplicates before reaching here).
    pub fn new(terms: Vec<(u64, Lit)>, bound: u64) -> Self {
        let terms: Vec<(u64, Lit)> = terms.into_iter().filter(|(w, _)| *w > 0).collect();
        for (i, (_, l)) in terms.iter().enumerate() {
            for (_, l2) in &terms[i + 1..] {
                assert!(l.var() != l2.var(), "duplicate variable {} in PB", l.var());
            }
        }
        PbConstraint { terms, bound }
    }

    /// Sum of all weights (the maximum possible left-hand side).
    pub fn total_weight(&self) -> u64 {
        self.terms.iter().map(|(w, _)| w).sum()
    }

    /// True if the constraint can never be violated.
    pub fn is_trivial(&self) -> bool {
        self.total_weight() <= self.bound
    }

    /// Evaluates the constraint under a complete assignment
    /// (`assign[v]` = value of variable `v`).
    pub fn is_satisfied(&self, assign: &[bool]) -> bool {
        let lhs: u64 = self
            .terms
            .iter()
            .filter(|(_, l)| assign[l.var().0 as usize] == l.is_positive())
            .map(|(w, _)| w)
            .sum();
        lhs <= self.bound
    }
}

impl fmt::Display for PbConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (w, l)) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{w}·{l}")?;
        }
        write!(f, " <= {}", self.bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Var;

    #[test]
    fn trivial_detection() {
        let a = Lit::positive(Var(0));
        let b = Lit::positive(Var(1));
        assert!(PbConstraint::new(vec![(1, a), (1, b)], 2).is_trivial());
        assert!(!PbConstraint::new(vec![(1, a), (2, b)], 2).is_trivial());
    }

    #[test]
    fn zero_weights_dropped() {
        let a = Lit::positive(Var(0));
        let b = Lit::positive(Var(1));
        let pb = PbConstraint::new(vec![(0, a), (3, b)], 2);
        assert_eq!(pb.terms, vec![(3, b)]);
    }

    #[test]
    fn satisfied_counts_true_literals() {
        let a = Lit::positive(Var(0));
        let nb = Lit::negative(Var(1));
        let pb = PbConstraint::new(vec![(2, a), (3, nb)], 3);
        assert!(pb.is_satisfied(&[false, false])); // nb true: 3 <= 3
        assert!(pb.is_satisfied(&[true, true])); // a true: 2 <= 3
        assert!(!pb.is_satisfied(&[true, false])); // both true: 5 > 3
    }

    #[test]
    #[should_panic(expected = "duplicate variable")]
    fn duplicate_var_panics() {
        let a = Lit::positive(Var(0));
        PbConstraint::new(vec![(1, a), (1, !a)], 1);
    }

    #[test]
    fn display() {
        let pb = PbConstraint::new(vec![(2, Lit::positive(Var(0)))], 1);
        assert_eq!(pb.to_string(), "2·v0 <= 1");
    }
}

//! A CDCL pseudo-Boolean satisfiability solver.
//!
//! The paper's §IV-D gives a satisfiability-only encoding of the rule
//! placement problem (Equations 6–8) intended for SMT or Pseudo-Boolean
//! solvers; this crate is the from-scratch PB solver it runs on:
//!
//! * conflict-driven clause learning (1UIP) with two-watched-literal
//!   propagation,
//! * native pseudo-Boolean constraints `Σ wᵢ·litᵢ ≤ k` with counter-based
//!   propagation and eagerly materialized clausal reasons,
//! * VSIDS-style variable activity and phase saving,
//! * LBD (glue) scoring of learnt clauses with periodic learnt-DB
//!   reduction (glue and locked clauses are never deleted),
//! * recursive clause minimization of every learnt clause,
//! * glucose-style adaptive restarts with trail-size blocking — built on
//!   deterministic integer fixed-point EMAs — selectable alongside the
//!   classic Luby schedule via [`SolverOptions`],
//! * solving under assumptions (used by the incremental-deployment path).
//!
//! # Example
//!
//! ```
//! use flowplace_pbsat::{Lit, SatResult, Solver};
//!
//! let mut s = Solver::new();
//! let a = s.new_var();
//! let b = s.new_var();
//! let c = s.new_var();
//! s.add_clause(&[Lit::positive(a), Lit::positive(b)]); // a ∨ b
//! s.add_clause(&[Lit::negative(a), Lit::positive(c)]); // a → c
//! // At most one of {a, b, c}:
//! s.add_at_most_k(&[Lit::positive(a), Lit::positive(b), Lit::positive(c)], 1);
//! match s.solve() {
//!     SatResult::Sat(model) => {
//!         assert!(model.value(b)); // a forces c, breaking the cardinality
//!     }
//!     SatResult::Unsat => unreachable!(),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod lit;
pub mod opb;
mod pb;
mod solver;

pub use lit::{Lit, Var};
pub use pb::PbConstraint;
pub use solver::{Model, RestartStrategy, SatResult, Solver, SolverOptions, SolverStats};

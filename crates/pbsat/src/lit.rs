//! Variables and literals.

use std::fmt;
use std::ops::Not;

/// A propositional variable.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Var(pub u32);

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A literal: a variable or its negation.
///
/// Encoded as `2·var + sign` (sign bit 1 = negated), the conventional
/// MiniSat packing, so literals index watch lists directly.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `v`.
    pub fn positive(v: Var) -> Lit {
        Lit(v.0 << 1)
    }

    /// The negative literal of `v`.
    pub fn negative(v: Var) -> Lit {
        Lit((v.0 << 1) | 1)
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// True if the literal is the positive polarity.
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// The raw index (`2·var + sign`), usable for dense tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a literal from [`Lit::index`].
    pub fn from_index(index: usize) -> Lit {
        Lit(index as u32)
    }
}

impl Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "{}", self.var())
        } else {
            write!(f, "!{}", self.var())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode() {
        let v = Var(5);
        let p = Lit::positive(v);
        let n = Lit::negative(v);
        assert_eq!(p.var(), v);
        assert_eq!(n.var(), v);
        assert!(p.is_positive());
        assert!(!n.is_positive());
        assert_eq!(!p, n);
        assert_eq!(!!p, p);
        assert_eq!(Lit::from_index(p.index()), p);
    }

    #[test]
    fn display() {
        assert_eq!(Lit::positive(Var(3)).to_string(), "v3");
        assert_eq!(Lit::negative(Var(3)).to_string(), "!v3");
    }
}

//! OPB export — the pseudo-Boolean competition input format.
//!
//! Writes a solver's constraint database in the OPB format consumed by
//! Sat4j, RoundingSat, NaPS, and the other PB-competition solvers, so any
//! formula built here (in particular the paper's Eq. 6–8 placement
//! encoding) can be cross-checked against an external PB solver — the
//! evaluation the paper lists as future work.
//!
//! OPB conventions: variables are `x1, x2, …` (1-indexed); a negated
//! literal is `~xN`; every constraint is `Σ wᵢ lᵢ >= d ;`. Our internal
//! `≤` constraints are exported via negation of the weights' complement:
//! `Σ w·l ≤ k  ⇔  Σ w·~l ≥ Σw − k`.

use std::fmt::Write as _;

use crate::{Lit, PbConstraint};

/// A snapshot of a formula for export: clauses plus PB constraints over
/// `num_vars` variables.
#[derive(Clone, Debug, Default)]
pub struct Formula {
    /// Number of variables.
    pub num_vars: usize,
    /// Disjunctive clauses.
    pub clauses: Vec<Vec<Lit>>,
    /// `Σ w·l ≤ bound` constraints.
    pub pb_le: Vec<PbConstraint>,
}

impl Formula {
    /// Renders the formula in OPB format.
    pub fn to_opb(&self) -> String {
        let mut out = String::new();
        let n_constraints = self.clauses.len() + self.pb_le.len();
        let _ = writeln!(
            out,
            "* #variable= {} #constraint= {}",
            self.num_vars, n_constraints
        );
        let _ = writeln!(out, "* exported by flowplace-pbsat");
        for clause in &self.clauses {
            // A clause is Σ l ≥ 1.
            let mut line = String::new();
            for &l in clause {
                let _ = write!(line, "+1 {} ", opb_lit(l));
            }
            let _ = writeln!(out, "{line}>= 1 ;");
        }
        for pb in &self.pb_le {
            // Σ w·l ≤ k  ⇔  Σ w·~l ≥ Σw − k.
            let total: u64 = pb.total_weight();
            let mut line = String::new();
            for &(w, l) in &pb.terms {
                let _ = write!(line, "+{w} {} ", opb_lit(!l));
            }
            let _ = writeln!(out, "{line}>= {} ;", total.saturating_sub(pb.bound));
        }
        out
    }
}

fn opb_lit(l: Lit) -> String {
    if l.is_positive() {
        format!("x{}", l.var().0 + 1)
    } else {
        format!("~x{}", l.var().0 + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Var;

    #[test]
    fn clause_and_pb_lines() {
        let a = Lit::positive(Var(0));
        let b = Lit::negative(Var(1));
        let f = Formula {
            num_vars: 2,
            clauses: vec![vec![a, b]],
            pb_le: vec![PbConstraint::new(vec![(2, a), (3, !b)], 3)],
        };
        let opb = f.to_opb();
        assert!(opb.contains("* #variable= 2 #constraint= 2"));
        assert!(opb.contains("+1 x1 +1 ~x2 >= 1 ;"));
        // 2a + 3(b) <= 3  →  2~a + 3~b >= 2.
        assert!(opb.contains("+2 ~x1 +3 ~x2 >= 2 ;"), "{opb}");
    }

    #[test]
    fn empty_formula_headers() {
        let f = Formula {
            num_vars: 0,
            ..Formula::default()
        };
        let opb = f.to_opb();
        assert!(opb.contains("#variable= 0 #constraint= 0"));
    }
}

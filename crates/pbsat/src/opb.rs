//! OPB export — the pseudo-Boolean competition input format.
//!
//! Writes a solver's constraint database in the OPB format consumed by
//! Sat4j, RoundingSat, NaPS, and the other PB-competition solvers, so any
//! formula built here (in particular the paper's Eq. 6–8 placement
//! encoding) can be cross-checked against an external PB solver — the
//! evaluation the paper lists as future work.
//!
//! OPB conventions: variables are `x1, x2, …` (1-indexed); a negated
//! literal is `~xN`; every constraint is `Σ wᵢ lᵢ >= d ;`. Our internal
//! `≤` constraints are exported via negation of the weights' complement:
//! `Σ w·l ≤ k  ⇔  Σ w·~l ≥ Σw − k`.

use std::fmt;
use std::fmt::Write as _;

use crate::{Lit, PbConstraint, Var};

/// Why a formula could not be rendered as OPB.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OpbError {
    /// A constraint mentions the same variable more than once. OPB sums
    /// coefficients term by term, so a repeated variable would silently
    /// change the constraint's meaning (e.g. a hand-built
    /// `+2 x1 +2 x1 ≥ d` is `4·x1 ≥ d`, not two independent supports);
    /// the exporter refuses instead.
    DuplicateLiteral {
        /// 0-based constraint index, counting clauses first and then PB
        /// constraints — the order the lines would appear in the file.
        constraint: usize,
        /// The variable that occurs more than once.
        var: Var,
    },
}

impl fmt::Display for OpbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpbError::DuplicateLiteral { constraint, var } => write!(
                f,
                "duplicate literal over variable {var} in constraint {constraint}: \
                 OPB would mis-sum its coefficients"
            ),
        }
    }
}

impl std::error::Error for OpbError {}

/// Returns the first variable repeated in `vars`, if any.
fn first_duplicate(vars: impl Iterator<Item = Var>) -> Option<Var> {
    let mut seen: Vec<Var> = Vec::new();
    for v in vars {
        if seen.contains(&v) {
            return Some(v);
        }
        seen.push(v);
    }
    None
}

/// A snapshot of a formula for export: clauses plus PB constraints over
/// `num_vars` variables.
#[derive(Clone, Debug, Default)]
pub struct Formula {
    /// Number of variables.
    pub num_vars: usize,
    /// Disjunctive clauses.
    pub clauses: Vec<Vec<Lit>>,
    /// `Σ w·l ≤ bound` constraints.
    pub pb_le: Vec<PbConstraint>,
}

impl Formula {
    /// Renders the formula in OPB format.
    ///
    /// # Errors
    ///
    /// Returns [`OpbError::DuplicateLiteral`] if any clause or PB
    /// constraint mentions the same variable twice — OPB's term-sum
    /// semantics would silently merge the coefficients, changing the
    /// constraint (`Solver`-built formulas never contain duplicates, but
    /// [`Formula`]'s fields are public and can be hand-assembled).
    pub fn to_opb(&self) -> Result<String, OpbError> {
        for (i, clause) in self.clauses.iter().enumerate() {
            if let Some(var) = first_duplicate(clause.iter().map(|l| l.var())) {
                return Err(OpbError::DuplicateLiteral { constraint: i, var });
            }
        }
        for (i, pb) in self.pb_le.iter().enumerate() {
            if let Some(var) = first_duplicate(pb.terms.iter().map(|(_, l)| l.var())) {
                return Err(OpbError::DuplicateLiteral {
                    constraint: self.clauses.len() + i,
                    var,
                });
            }
        }
        let mut out = String::new();
        let n_constraints = self.clauses.len() + self.pb_le.len();
        let _ = writeln!(
            out,
            "* #variable= {} #constraint= {}",
            self.num_vars, n_constraints
        );
        let _ = writeln!(out, "* exported by flowplace-pbsat");
        for clause in &self.clauses {
            // A clause is Σ l ≥ 1.
            let mut line = String::new();
            for &l in clause {
                let _ = write!(line, "+1 {} ", opb_lit(l));
            }
            let _ = writeln!(out, "{line}>= 1 ;");
        }
        for pb in &self.pb_le {
            // Σ w·l ≤ k  ⇔  Σ w·~l ≥ Σw − k.
            let total: u64 = pb.total_weight();
            let mut line = String::new();
            for &(w, l) in &pb.terms {
                let _ = write!(line, "+{w} {} ", opb_lit(!l));
            }
            let _ = writeln!(out, "{line}>= {} ;", total.saturating_sub(pb.bound));
        }
        Ok(out)
    }
}

fn opb_lit(l: Lit) -> String {
    if l.is_positive() {
        format!("x{}", l.var().0 + 1)
    } else {
        format!("~x{}", l.var().0 + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Var;

    #[test]
    fn clause_and_pb_lines() {
        let a = Lit::positive(Var(0));
        let b = Lit::negative(Var(1));
        let f = Formula {
            num_vars: 2,
            clauses: vec![vec![a, b]],
            pb_le: vec![PbConstraint::new(vec![(2, a), (3, !b)], 3)],
        };
        let opb = f.to_opb().expect("no duplicates");
        assert!(opb.contains("* #variable= 2 #constraint= 2"));
        assert!(opb.contains("+1 x1 +1 ~x2 >= 1 ;"));
        // 2a + 3(b) <= 3  →  2~a + 3~b >= 2.
        assert!(opb.contains("+2 ~x1 +3 ~x2 >= 2 ;"), "{opb}");
    }

    #[test]
    fn empty_formula_headers() {
        let f = Formula {
            num_vars: 0,
            ..Formula::default()
        };
        let opb = f.to_opb().expect("no duplicates");
        assert!(opb.contains("#variable= 0 #constraint= 0"));
    }

    #[test]
    fn duplicate_literal_in_clause_rejected() {
        let a = Lit::positive(Var(0));
        let f = Formula {
            num_vars: 1,
            clauses: vec![vec![a, !a]],
            pb_le: vec![],
        };
        let err = f.to_opb().expect_err("duplicate must be rejected");
        assert_eq!(
            err,
            OpbError::DuplicateLiteral {
                constraint: 0,
                var: Var(0)
            }
        );
        assert!(err.to_string().contains("duplicate literal"), "{err}");
    }

    #[test]
    fn duplicate_literal_in_pb_rejected_with_offset_index() {
        let a = Lit::positive(Var(0));
        let b = Lit::positive(Var(1));
        // Hand-assembled PB with a repeated variable (PbConstraint::new
        // would panic, but the struct fields are public).
        let dup = PbConstraint {
            terms: vec![(2, b), (2, !b)],
            bound: 1,
        };
        let f = Formula {
            num_vars: 2,
            clauses: vec![vec![a]],
            pb_le: vec![dup],
        };
        let err = f.to_opb().expect_err("duplicate must be rejected");
        // Constraint indices count clauses first.
        assert_eq!(
            err,
            OpbError::DuplicateLiteral {
                constraint: 1,
                var: Var(1)
            }
        );
    }
}

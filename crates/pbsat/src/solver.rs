//! The CDCL search engine.
//!
//! Beyond the baseline CDCL loop (1UIP learning, two-watched-literal
//! propagation, VSIDS activity, phase saving), the solver carries the
//! modern-solver machinery of glucose/splr:
//!
//! * **LBD (glue) scoring** of learnt clauses — the number of distinct
//!   decision levels in a clause at learn time;
//! * **learnt-DB reduction**: once conflicts accumulate, the worst half
//!   of the learnt clauses (highest LBD) is deleted. Glue clauses
//!   (LBD ≤ 2) and *locked* clauses (currently the reason of an assigned
//!   variable) are never deleted;
//! * **recursive clause minimization** of every learnt clause before it
//!   is attached;
//! * **adaptive (glucose-style) restarts** with trail-size *blocking*,
//!   selectable alongside the classic Luby schedule.
//!
//! Everything is deterministic: the restart and blocking conditions use
//! integer fixed-point EMAs (no floats, no wall clock), so a solve is a
//! pure function of the database, the options, and the assumption list —
//! the property the byte-identical-replay and differential test suites
//! rely on.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering as AtomicOrdering};

use crate::pb::PbConstraint;
use crate::{Lit, Var};

/// A satisfying assignment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Model {
    values: Vec<bool>,
}

impl Model {
    /// The value of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `v` was not created by the solving [`Solver`].
    pub fn value(&self, v: Var) -> bool {
        self.values[v.0 as usize]
    }

    /// The value of a literal.
    ///
    /// # Panics
    ///
    /// Panics if the literal's variable is out of range.
    pub fn lit_value(&self, l: Lit) -> bool {
        self.value(l.var()) == l.is_positive()
    }

    /// All variable values indexed by variable number.
    pub fn values(&self) -> &[bool] {
        &self.values
    }
}

/// Result of a solve call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable, with a model.
    Sat(Model),
    /// Proven unsatisfiable.
    Unsat,
}

impl SatResult {
    /// The model if satisfiable.
    pub fn model(&self) -> Option<&Model> {
        match self {
            SatResult::Sat(m) => Some(m),
            SatResult::Unsat => None,
        }
    }

    /// True if satisfiable.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }
}

/// Restart schedule of the CDCL search.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RestartStrategy {
    /// The classic Luby sequence (1,1,2,1,1,2,4,…) × 100 conflicts —
    /// the original schedule of this solver, kept selectable as the
    /// baseline arm of differential benchmarks.
    Luby,
    /// Glucose-style adaptive restarts: restart when the recent learnt-
    /// clause LBD (fast EMA) exceeds the long-term LBD (slow EMA) by
    /// 25%, *blocked* when the trail has grown well past its EMA (the
    /// solver is likely closing in on a model). Both EMAs are integer
    /// fixed-point, so the schedule is bit-reproducible.
    #[default]
    Glucose,
}

impl std::str::FromStr for RestartStrategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "luby" => Ok(RestartStrategy::Luby),
            "glucose" => Ok(RestartStrategy::Glucose),
            other => Err(format!(
                "unknown restart strategy {other:?} (want luby|glucose)"
            )),
        }
    }
}

impl fmt::Display for RestartStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestartStrategy::Luby => write!(f, "luby"),
            RestartStrategy::Glucose => write!(f, "glucose"),
        }
    }
}

/// Tunables of the CDCL search. The default is the modern configuration
/// (glucose restarts, learnt-DB reduction on); the baseline-CDCL
/// behavior is `restart: Luby, db_reduction: false`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SolverOptions {
    /// Restart schedule.
    pub restart: RestartStrategy,
    /// Periodically delete the worst half of the learnt clauses
    /// (glue ≤ 2 and locked clauses are always kept).
    pub db_reduction: bool,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            restart: RestartStrategy::Glucose,
            db_reduction: true,
        }
    }
}

/// Search statistics of the last [`Solver::solve`] call (cumulative across
/// calls).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Decisions made.
    pub decisions: u64,
    /// Conflicts analyzed.
    pub conflicts: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Restarts suppressed by the glucose trail-size blocking rule.
    pub blocked_restarts: u64,
    /// Learnt-DB reductions performed.
    pub db_reductions: u64,
    /// Clauses learned.
    pub learnt_clauses: u64,
    /// Learnt clauses deleted by DB reduction.
    pub learnt_deleted: u64,
    /// Sum of learn-time LBDs over all learnt clauses (for mean LBD).
    pub lbd_sum: u64,
}

impl SolverStats {
    /// Total search effort: decisions plus conflicts plus propagations.
    /// A deterministic single-number cost proxy for telemetry (wall time
    /// is not reproducible across runs; this is).
    pub fn search_steps(&self) -> u64 {
        self.decisions + self.conflicts + self.propagations
    }

    /// Learnt clauses currently alive (learned minus deleted).
    pub fn learnt_live(&self) -> u64 {
        self.learnt_clauses - self.learnt_deleted
    }

    /// Mean learn-time LBD over all learnt clauses (0 if none).
    pub fn mean_lbd(&self) -> f64 {
        if self.learnt_clauses == 0 {
            0.0
        } else {
            self.lbd_sum as f64 / self.learnt_clauses as f64
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum LBool {
    True,
    False,
    Undef,
}

#[derive(Clone, Debug)]
enum Reason {
    None,
    Clause(usize),
    /// Materialized reason clause with the implied literal first
    /// (produced by PB propagation).
    Explicit(Vec<Lit>),
}

#[derive(Clone, Debug)]
struct Clause {
    lits: Vec<Lit>,
    /// Learnt by conflict analysis (problem clauses are never deleted).
    learnt: bool,
    /// Learn-time literal-block distance (0 for problem clauses).
    lbd: u32,
}

#[derive(Clone, Debug)]
struct PbState {
    c: PbConstraint,
    /// Sum of weights of currently-true literals.
    sum_true: u64,
}

// --- glucose fixed-point EMA constants -------------------------------
//
// EMAs are Q48.16 fixed point (samples shifted left by EMA_SHIFT); the
// update `ema += (sample − ema) >> α_shift` is exact integer arithmetic,
// so the restart schedule is identical on every platform and run.

/// Fixed-point scale shift of the restart EMAs.
const EMA_SHIFT: u32 = 16;
/// Fast LBD EMA smoothing (α = 1/32 ≈ the last ~50 conflicts).
const LBD_FAST_SHIFT: u32 = 5;
/// Slow LBD EMA smoothing (α = 1/1024 — the long-term average).
const LBD_SLOW_SHIFT: u32 = 10;
/// Trail-size EMA smoothing for restart blocking.
const TRAIL_SHIFT: u32 = 10;
/// Minimum conflicts between adaptive restarts (the glucose queue len).
const RESTART_MIN_CONFLICTS: u64 = 50;
/// Conflicts before the first learnt-DB reduction of a solve call.
const REDUCE_FIRST: u64 = 2000;
/// Cadence growth: each reduction pushes the next one this much further.
const REDUCE_INC: u64 = 300;

/// Per-solve-call restart/reduction state (reset on every `solve*` call
/// so a solve is a pure function of database + options + assumptions).
struct SearchPacing {
    /// Luby: conflicts left before the next scheduled restart.
    conflicts_until_restart: u64,
    restart_idx: u64,
    /// Glucose EMAs (Q48.16; `None` until the first conflict seeds them).
    lbd_fast: i64,
    lbd_slow: i64,
    trail_ema: i64,
    seeded: bool,
    conflicts_since_restart: u64,
    /// Conflicts in this call (drives the reduction cadence).
    conflicts_this_call: u64,
    next_reduce: u64,
    reductions_this_call: u64,
}

impl SearchPacing {
    fn new() -> Self {
        SearchPacing {
            conflicts_until_restart: 100 * luby(0),
            restart_idx: 0,
            lbd_fast: 0,
            lbd_slow: 0,
            trail_ema: 0,
            seeded: false,
            conflicts_since_restart: 0,
            conflicts_this_call: 0,
            next_reduce: REDUCE_FIRST,
            reductions_this_call: 0,
        }
    }
}

/// A CDCL pseudo-Boolean solver. See the crate docs for an example.
#[derive(Clone, Debug)]
pub struct Solver {
    nvars: usize,
    options: SolverOptions,
    clauses: Vec<Clause>,
    /// `watches[l.index()]` = clauses currently watching literal `l`.
    watches: Vec<Vec<usize>>,
    pbs: Vec<PbState>,
    /// `pb_occ[l.index()]` = PB constraints containing literal `l`.
    pb_occ: Vec<Vec<usize>>,
    assign: Vec<LBool>,
    level: Vec<u32>,
    reason: Vec<Reason>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    phase: Vec<bool>,
    seen: Vec<bool>,
    /// False once the clause database is proven contradictory at level 0.
    ok: bool,
    stats: SolverStats,
}

// Deliberately `new()`, not a derived impl: a field-wise default would
// start with `ok: false` (permanently unsatisfiable) and `var_inc: 0.0`
// (no activity bumping).
impl Default for Solver {
    fn default() -> Self {
        Solver::new()
    }
}

impl Solver {
    /// Creates an empty solver with the default (modern) options.
    pub fn new() -> Self {
        Solver::with_options(SolverOptions::default())
    }

    /// Creates an empty solver with explicit search options.
    pub fn with_options(options: SolverOptions) -> Self {
        Solver {
            nvars: 0,
            options,
            clauses: Vec::new(),
            watches: Vec::new(),
            pbs: Vec::new(),
            pb_occ: Vec::new(),
            assign: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            phase: Vec::new(),
            seen: Vec::new(),
            ok: true,
            stats: SolverStats::default(),
        }
    }

    /// The configured search options.
    pub fn options(&self) -> SolverOptions {
        self.options
    }

    /// Adds a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.nvars as u32);
        self.nvars += 1;
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.pb_occ.push(Vec::new());
        self.pb_occ.push(Vec::new());
        self.assign.push(LBool::Undef);
        self.level.push(0);
        self.reason.push(Reason::None);
        self.activity.push(0.0);
        self.phase.push(false);
        self.seen.push(false);
        v
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.nvars
    }

    /// Cumulative search statistics.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Snapshots the constraint database for [`crate::opb`] export.
    ///
    /// Clauses learnt by a previous [`Solver::solve`] call are included —
    /// they are implied by the original formula, so the export stays
    /// equisatisfiable; export before solving for a verbatim formula.
    pub fn export_formula(&self) -> crate::opb::Formula {
        crate::opb::Formula {
            num_vars: self.nvars,
            clauses: self.clauses.iter().map(|c| c.lits.clone()).collect(),
            pb_le: self.pbs.iter().map(|p| p.c.clone()).collect(),
        }
    }

    fn value_lit(&self, l: Lit) -> LBool {
        match self.assign[l.var().0 as usize] {
            LBool::Undef => LBool::Undef,
            LBool::True => {
                if l.is_positive() {
                    LBool::True
                } else {
                    LBool::False
                }
            }
            LBool::False => {
                if l.is_positive() {
                    LBool::False
                } else {
                    LBool::True
                }
            }
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Adds a clause (a disjunction of literals). Returns `false` if the
    /// database became trivially unsatisfiable.
    ///
    /// # Panics
    ///
    /// Panics if called mid-search (internal use keeps the solver at
    /// decision level 0 between solves) or with an out-of-range literal.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        assert_eq!(self.decision_level(), 0, "add_clause only at level 0");
        if !self.ok {
            return false;
        }
        // Simplify: dedupe, drop false literals, detect tautology/satisfied.
        let mut ls: Vec<Lit> = Vec::with_capacity(lits.len());
        for &l in lits {
            assert!((l.var().0 as usize) < self.nvars, "unknown variable {l}");
            match self.value_lit(l) {
                LBool::True => return true, // already satisfied at level 0
                LBool::False => continue,
                LBool::Undef => {}
            }
            if ls.contains(&!l) {
                return true; // tautology
            }
            if !ls.contains(&l) {
                ls.push(l);
            }
        }
        match ls.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.uncheck_enqueue(ls[0], Reason::None);
                if self.propagate().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                self.attach_clause(ls, false, 0);
                true
            }
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool, lbd: u32) -> usize {
        let ci = self.clauses.len();
        self.watches[lits[0].index()].push(ci);
        self.watches[lits[1].index()].push(ci);
        self.clauses.push(Clause { lits, learnt, lbd });
        ci
    }

    /// Adds `Σ wᵢ·litᵢ ≤ bound`. Duplicate literals are merged; a literal
    /// and its negation contribute a constant (folded into the bound).
    /// Returns `false` if the database became trivially unsatisfiable.
    ///
    /// # Panics
    ///
    /// Panics if called mid-search or with an out-of-range literal.
    pub fn add_pb_le(&mut self, terms: &[(u64, Lit)], bound: u64) -> bool {
        assert_eq!(self.decision_level(), 0, "add_pb_le only at level 0");
        if !self.ok {
            return false;
        }
        // Merge duplicate variables: w1·l + w2·l = (w1+w2)·l;
        // w1·l + w2·!l = min + |w1-w2|·(winner), with min folded as a
        // constant into the bound.
        let mut acc: std::collections::BTreeMap<u32, (u64, u64)> = Default::default();
        for &(w, l) in terms {
            assert!((l.var().0 as usize) < self.nvars, "unknown variable {l}");
            let e = acc.entry(l.var().0).or_insert((0, 0));
            if l.is_positive() {
                e.0 += w;
            } else {
                e.1 += w;
            }
        }
        let mut constant = 0u64;
        let mut ls: Vec<(u64, Lit)> = Vec::new();
        for (v, (wp, wn)) in acc {
            let var = Var(v);
            constant += wp.min(wn);
            if wp > wn {
                ls.push((wp - wn, Lit::positive(var)));
            } else if wn > wp {
                ls.push((wn - wp, Lit::negative(var)));
            }
        }
        if constant > bound {
            self.ok = false;
            return false;
        }
        let bound = bound - constant;
        // Fold in level-0 assignments.
        let mut fixed = 0u64;
        let mut live: Vec<(u64, Lit)> = Vec::new();
        for (w, l) in ls {
            match self.value_lit(l) {
                LBool::True => fixed += w,
                LBool::False => {}
                LBool::Undef => live.push((w, l)),
            }
        }
        if fixed > bound {
            self.ok = false;
            return false;
        }
        let bound = bound - fixed;
        let pb = PbConstraint::new(live, bound);
        if pb.is_trivial() {
            return true;
        }
        // Immediate implications: weights exceeding the bound force lits
        // false.
        for &(w, l) in &pb.terms {
            if w > pb.bound && self.value_lit(l) == LBool::Undef {
                self.uncheck_enqueue(!l, Reason::None);
            }
        }
        let idx = self.pbs.len();
        for &(_, l) in &pb.terms {
            self.pb_occ[l.index()].push(idx);
        }
        self.pbs.push(PbState { c: pb, sum_true: 0 });
        if self.propagate().is_some() {
            self.ok = false;
        }
        self.ok
    }

    /// Adds "at most `k` of these literals are true".
    ///
    /// Returns `false` if the database became trivially unsatisfiable.
    pub fn add_at_most_k(&mut self, lits: &[Lit], k: u64) -> bool {
        self.add_pb_le(&lits.iter().map(|&l| (1, l)).collect::<Vec<_>>(), k)
    }

    /// Adds "at least `k` of these literals are true"
    /// (as `Σ ¬lit ≤ n − k`).
    ///
    /// Returns `false` if the database became trivially unsatisfiable
    /// (including `k > lits.len()`).
    pub fn add_at_least_k(&mut self, lits: &[Lit], k: u64) -> bool {
        let n = lits.len() as u64;
        if k > n {
            self.ok = false;
            return false;
        }
        if k == 1 {
            return self.add_clause(lits);
        }
        self.add_pb_le(&lits.iter().map(|&l| (1, !l)).collect::<Vec<_>>(), n - k)
    }

    /// Adds `a → b`.
    ///
    /// Returns `false` if the database became trivially unsatisfiable.
    pub fn add_implication(&mut self, a: Lit, b: Lit) -> bool {
        self.add_clause(&[!a, b])
    }

    /// Adds `target ↔ (l₁ ∧ l₂ ∧ … ∧ lₙ)` (the merge-rule linking
    /// constraint, Equation 8 of the paper).
    ///
    /// Returns `false` if the database became trivially unsatisfiable.
    pub fn add_and_equiv(&mut self, target: Lit, of: &[Lit]) -> bool {
        // target → each lᵢ
        for &l in of {
            if !self.add_clause(&[!target, l]) {
                return false;
            }
        }
        // (∧ lᵢ) → target
        let mut clause: Vec<Lit> = of.iter().map(|&l| !l).collect();
        clause.push(target);
        self.add_clause(&clause)
    }

    fn uncheck_enqueue(&mut self, l: Lit, reason: Reason) {
        debug_assert_eq!(self.value_lit(l), LBool::Undef);
        let v = l.var().0 as usize;
        self.assign[v] = if l.is_positive() {
            LBool::True
        } else {
            LBool::False
        };
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.trail.push(l);
        self.stats.propagations += 1;
        // PB bookkeeping: l just became true.
        for k in 0..self.pb_occ[l.index()].len() {
            let pi = self.pb_occ[l.index()][k];
            let w = self.pbs[pi]
                .c
                .terms
                .iter()
                .find(|(_, t)| *t == l)
                .map(|(w, _)| *w)
                .expect("occurrence list is consistent");
            self.pbs[pi].sum_true += w;
        }
    }

    /// Unit propagation over clauses and PB constraints. Returns a
    /// conflict clause (all literals false) or `None`.
    fn propagate(&mut self) -> Option<Vec<Lit>> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;

            // Clause propagation: clauses watching ¬p lost a support.
            let false_lit = !p;
            let mut i = 0;
            'clauses: while i < self.watches[false_lit.index()].len() {
                let ci = self.watches[false_lit.index()][i];
                // Make lits[1] the false watch.
                if self.clauses[ci].lits[0] == false_lit {
                    self.clauses[ci].lits.swap(0, 1);
                }
                debug_assert_eq!(self.clauses[ci].lits[1], false_lit);
                let first = self.clauses[ci].lits[0];
                if self.value_lit(first) == LBool::True {
                    i += 1;
                    continue;
                }
                // Look for a replacement watch.
                for k in 2..self.clauses[ci].lits.len() {
                    let l = self.clauses[ci].lits[k];
                    if self.value_lit(l) != LBool::False {
                        self.clauses[ci].lits.swap(1, k);
                        self.watches[false_lit.index()].swap_remove(i);
                        self.watches[l.index()].push(ci);
                        continue 'clauses;
                    }
                }
                // No replacement: unit or conflict.
                if self.value_lit(first) == LBool::False {
                    return Some(self.clauses[ci].lits.clone());
                }
                self.uncheck_enqueue(first, Reason::Clause(ci));
                i += 1;
            }

            // PB propagation: p true raised sums in its constraints.
            for k in 0..self.pb_occ[p.index()].len() {
                let pi = self.pb_occ[p.index()][k];
                let (sum, bound) = (self.pbs[pi].sum_true, self.pbs[pi].c.bound);
                if sum > bound {
                    return Some(self.pb_conflict_clause(pi));
                }
                // Force each unassigned literal that no longer fits.
                let mut forced: Vec<Lit> = Vec::new();
                for &(w, l) in &self.pbs[pi].c.terms {
                    if self.value_lit(l) == LBool::Undef && sum + w > bound {
                        forced.push(l);
                    }
                }
                for l in forced {
                    if self.value_lit(l) != LBool::Undef {
                        continue; // an earlier forcing in this loop set it
                    }
                    let mut reason = vec![!l];
                    reason.extend(self.pb_true_negations(pi));
                    self.uncheck_enqueue(!l, Reason::Explicit(reason));
                }
            }
        }
        None
    }

    /// Negations of the currently-true literals of PB `pi` (a valid
    /// all-false-but-derivable clause core).
    fn pb_true_negations(&self, pi: usize) -> Vec<Lit> {
        self.pbs[pi]
            .c
            .terms
            .iter()
            .filter(|(_, l)| self.value_lit(*l) == LBool::True)
            .map(|(_, l)| !*l)
            .collect()
    }

    fn pb_conflict_clause(&self, pi: usize) -> Vec<Lit> {
        // The true literals of an over-full PB cannot all hold.
        self.pb_true_negations(pi)
    }

    fn cancel_until(&mut self, target: u32) {
        if self.decision_level() <= target {
            return;
        }
        let lim = self.trail_lim[target as usize];
        while self.trail.len() > lim {
            let l = self.trail.pop().expect("trail nonempty above limit");
            let v = l.var().0 as usize;
            self.phase[v] = self.assign[v] == LBool::True;
            self.assign[v] = LBool::Undef;
            self.reason[v] = Reason::None;
            for k in 0..self.pb_occ[l.index()].len() {
                let pi = self.pb_occ[l.index()][k];
                let w = self.pbs[pi]
                    .c
                    .terms
                    .iter()
                    .find(|(_, t)| *t == l)
                    .map(|(w, _)| *w)
                    .expect("occurrence list is consistent");
                self.pbs[pi].sum_true -= w;
            }
        }
        self.trail_lim.truncate(target as usize);
        self.qhead = self.trail.len();
    }

    /// Reason clause of the *assigned* literal `l`, with `l` first.
    fn reason_lits(&mut self, l: Lit) -> Vec<Lit> {
        match &self.reason[l.var().0 as usize] {
            Reason::Clause(ci) => {
                let mut lits = self.clauses[*ci].lits.clone();
                if lits[0] != l {
                    let pos = lits.iter().position(|&x| x == l).expect("lit in reason");
                    lits.swap(0, pos);
                }
                lits
            }
            Reason::Explicit(v) => v.clone(),
            Reason::None => unreachable!("decision literal has no reason"),
        }
    }

    fn bump(&mut self, v: Var) {
        self.activity[v.0 as usize] += self.var_inc;
        if self.activity[v.0 as usize] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
    }

    /// Literal-block distance: distinct decision levels among `lits`.
    fn clause_lbd(&self, lits: &[Lit]) -> u32 {
        let mut levels: Vec<u32> = lits
            .iter()
            .map(|l| self.level[l.var().0 as usize])
            .collect();
        levels.sort_unstable();
        levels.dedup();
        levels.len() as u32
    }

    /// True if learnt-clause literal `l` (false under the current
    /// assignment) is implied by the rest of the learnt clause plus
    /// level-0 facts — the MiniSat recursive-minimization check. `seen`
    /// marks "in the learnt clause or already proven redundant"; vars
    /// marked during a failed probe are unmarked again so the marks
    /// never over-approximate.
    fn lit_redundant(&mut self, l: Lit, to_clear: &mut Vec<Var>) -> bool {
        if matches!(self.reason[l.var().0 as usize], Reason::None) {
            return false;
        }
        let top = to_clear.len();
        let mut stack: Vec<Lit> = vec![l];
        while let Some(p) = stack.pop() {
            // `p` is false; the assigned literal is ¬p.
            let rlits = self.reason_lits(!p);
            for &q in &rlits[1..] {
                let vi = q.var().0 as usize;
                if self.seen[vi] || self.level[vi] == 0 {
                    continue;
                }
                if matches!(self.reason[vi], Reason::None) {
                    // Reached a decision outside the clause: not
                    // redundant. Roll back the speculative marks.
                    for v in to_clear.drain(top..) {
                        self.seen[v.0 as usize] = false;
                    }
                    return false;
                }
                self.seen[vi] = true;
                to_clear.push(q.var());
                stack.push(q);
            }
        }
        true
    }

    /// 1UIP conflict analysis with recursive minimization. Returns the
    /// learnt clause (asserting literal first), the backtrack level, and
    /// the clause's LBD.
    fn analyze(&mut self, conflict: Vec<Lit>) -> (Vec<Lit>, u32, u32) {
        let current = self.decision_level();
        let mut learnt: Vec<Lit> = Vec::new();
        let mut to_clear: Vec<Var> = Vec::new();
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut cls = conflict;

        loop {
            let start = usize::from(p.is_some());
            for &q in &cls[start..] {
                let v = q.var();
                let vi = v.0 as usize;
                if !self.seen[vi] && self.level[vi] > 0 {
                    self.seen[vi] = true;
                    to_clear.push(v);
                    self.bump(v);
                    if self.level[vi] >= current {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Walk back to the next marked trail literal.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().0 as usize] {
                    break;
                }
            }
            let pl = self.trail[index];
            self.seen[pl.var().0 as usize] = false;
            counter -= 1;
            if counter == 0 {
                p = Some(pl);
                break;
            }
            p = Some(pl);
            cls = self.reason_lits(pl);
        }
        // Recursive minimization: drop literals implied by the others
        // (plus level-0 facts). `seen` is still set exactly on the
        // non-asserting learnt literals here, which is what
        // `lit_redundant` keys on.
        let mut kept: Vec<Lit> = Vec::with_capacity(learnt.len());
        for &l in &learnt {
            if !self.lit_redundant(l, &mut to_clear) {
                kept.push(l);
            }
        }
        let mut learnt = kept;
        let asserting = !p.expect("1UIP exists");
        learnt.insert(0, asserting);
        for v in to_clear {
            self.seen[v.0 as usize] = false;
        }
        let lbd = self.clause_lbd(&learnt);
        // Backtrack to the second-highest level in the clause.
        let mut blevel = 0;
        let mut max_i = 1;
        for (i, l) in learnt.iter().enumerate().skip(1) {
            let lv = self.level[l.var().0 as usize];
            if lv > blevel {
                blevel = lv;
                max_i = i;
            }
        }
        if learnt.len() > 1 {
            learnt.swap(1, max_i);
        }
        (learnt, blevel, lbd)
    }

    /// Deletes the worst half of the deletable learnt clauses (highest
    /// LBD first; ties broken by length, then recency). Glue clauses
    /// (LBD ≤ 2), problem clauses, and *locked* clauses — those standing
    /// as the reason of a currently-assigned variable — are never
    /// deleted, so every reason index stays valid. The surviving clause
    /// database is compacted and all clause indices (watch lists and
    /// reasons) are remapped.
    ///
    /// Public so persistent sessions and tests can force a reduction at
    /// a deterministic point; the search loop calls it on its own
    /// cadence when [`SolverOptions::db_reduction`] is set.
    ///
    /// # Panics
    ///
    /// Panics if called mid-search (the solver is at decision level 0
    /// between solves; internally it reduces only after backtracking to
    /// level 0).
    pub fn reduce_learnts(&mut self) {
        assert_eq!(self.decision_level(), 0, "reduce_learnts only at level 0");
        // Locked = reason of an assigned variable (level-0 implications
        // included: their reasons must survive for conflict analysis and
        // the assumption machinery).
        let mut locked = vec![false; self.clauses.len()];
        for r in &self.reason {
            if let Reason::Clause(ci) = r {
                locked[*ci] = true;
            }
        }
        let mut cands: Vec<(u32, usize, usize)> = self
            .clauses
            .iter()
            .enumerate()
            .filter(|(ci, c)| c.learnt && c.lbd > 2 && !locked[*ci])
            .map(|(ci, c)| (c.lbd, c.lits.len(), ci))
            .collect();
        // Worst last: ascending (lbd, len, index) then delete the upper
        // half. Index as the final key keeps the order total and the
        // deletion set deterministic.
        cands.sort_unstable();
        let keep = cands.len() - cands.len() / 2;
        let doomed = &cands[keep..];
        if doomed.is_empty() {
            self.stats.db_reductions += 1;
            return;
        }
        let mut delete = vec![false; self.clauses.len()];
        for &(_, _, ci) in doomed {
            delete[ci] = true;
        }
        // Compact, building old-index → new-index.
        let mut remap: Vec<usize> = vec![usize::MAX; self.clauses.len()];
        let mut survivors: Vec<Clause> = Vec::with_capacity(self.clauses.len() - doomed.len());
        for (ci, c) in std::mem::take(&mut self.clauses).into_iter().enumerate() {
            if !delete[ci] {
                remap[ci] = survivors.len();
                survivors.push(c);
            }
        }
        self.clauses = survivors;
        for w in &mut self.watches {
            w.clear();
        }
        for (ci, c) in self.clauses.iter().enumerate() {
            self.watches[c.lits[0].index()].push(ci);
            self.watches[c.lits[1].index()].push(ci);
        }
        for r in &mut self.reason {
            if let Reason::Clause(ci) = r {
                debug_assert_ne!(remap[*ci], usize::MAX, "locked clause deleted");
                *r = Reason::Clause(remap[*ci]);
            }
        }
        self.stats.db_reductions += 1;
        self.stats.learnt_deleted += doomed.len() as u64;
    }

    fn pick_branch_var(&self) -> Option<Var> {
        let mut best: Option<(usize, f64)> = None;
        for v in 0..self.nvars {
            if self.assign[v] == LBool::Undef {
                let a = self.activity[v];
                if best.map(|(_, ba)| a > ba).unwrap_or(true) {
                    best = Some((v, a));
                }
            }
        }
        best.map(|(v, _)| Var(v as u32))
    }

    /// Restart/blocking bookkeeping after one conflict. `lbd` is the new
    /// learnt clause's LBD; `trail_len` the trail size at conflict
    /// detection. Returns `true` if the search should restart now.
    fn after_conflict_pacing(
        &mut self,
        pacing: &mut SearchPacing,
        lbd: u32,
        trail_len: usize,
    ) -> bool {
        match self.options.restart {
            RestartStrategy::Luby => {
                if pacing.conflicts_until_restart == 0 {
                    pacing.restart_idx += 1;
                    pacing.conflicts_until_restart = 100 * luby(pacing.restart_idx);
                    true
                } else {
                    pacing.conflicts_until_restart -= 1;
                    false
                }
            }
            RestartStrategy::Glucose => {
                let lbd_fp = (lbd as i64) << EMA_SHIFT;
                let trail_fp = (trail_len as i64) << EMA_SHIFT;
                if !pacing.seeded {
                    pacing.seeded = true;
                    pacing.lbd_fast = lbd_fp;
                    pacing.lbd_slow = lbd_fp;
                    pacing.trail_ema = trail_fp;
                } else {
                    pacing.lbd_fast += (lbd_fp - pacing.lbd_fast) >> LBD_FAST_SHIFT;
                    pacing.lbd_slow += (lbd_fp - pacing.lbd_slow) >> LBD_SLOW_SHIFT;
                    pacing.trail_ema += (trail_fp - pacing.trail_ema) >> TRAIL_SHIFT;
                }
                pacing.conflicts_since_restart += 1;
                if pacing.conflicts_since_restart < RESTART_MIN_CONFLICTS {
                    return false;
                }
                // Restart when recent glue runs 25% above the long-term
                // average (the search degraded)…
                if 4 * pacing.lbd_fast > 5 * pacing.lbd_slow {
                    pacing.conflicts_since_restart = 0;
                    pacing.lbd_fast = pacing.lbd_slow;
                    // …unless the trail is 40% above its average: the
                    // solver is probably closing in on a model, so the
                    // restart is blocked.
                    if 5 * trail_fp > 7 * pacing.trail_ema {
                        self.stats.blocked_restarts += 1;
                        return false;
                    }
                    return true;
                }
                false
            }
        }
    }

    /// How many search steps (propagate/decide rounds) pass between two
    /// polls of the cancellation flag in
    /// [`solve_interruptible`](Self::solve_interruptible). Coarse enough
    /// that polling is free, fine enough that cancellation latency is
    /// far below any solve worth cancelling.
    pub const CANCEL_CHECK_INTERVAL: u64 = 1024;

    /// Decides satisfiability of the current database.
    ///
    /// The solver is reusable: more clauses/constraints may be added after
    /// a solve, and `solve` called again.
    pub fn solve(&mut self) -> SatResult {
        self.solve_interruptible(None)
            .expect("uninterrupted solve always concludes")
    }

    /// Like [`solve`](Self::solve), but polls `cancel` every
    /// [`CANCEL_CHECK_INTERVAL`](Self::CANCEL_CHECK_INTERVAL) search steps
    /// (decisions + conflicts). Returns `None` if the flag was observed
    /// set before a verdict was reached; the solver backtracks to decision
    /// level 0 first, so it stays reusable (clauses learnt so far are
    /// kept, and a later call resumes from them).
    pub fn solve_interruptible(&mut self, cancel: Option<&AtomicBool>) -> Option<SatResult> {
        self.solve_with_assumptions_interruptible(&[], cancel)
    }

    /// Decides satisfiability under extra unit assumptions, without
    /// permanently constraining the solver.
    ///
    /// Assumptions are enqueued as pseudo-decisions (MiniSat style), so
    /// clauses learnt under them never mention the assumption context
    /// except as ordinary negated decision literals — every learnt clause
    /// stays implied by the database alone and is retained for later
    /// calls, with or without assumptions. `Unsat` here means
    /// *unsatisfiable under these assumptions*; the database itself is
    /// untouched and the solver stays reusable.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SatResult {
        self.solve_with_assumptions_interruptible(assumptions, None)
            .expect("uninterrupted solve always concludes")
    }

    /// [`solve_with_assumptions`](Self::solve_with_assumptions) with the
    /// cancellation protocol of
    /// [`solve_interruptible`](Self::solve_interruptible).
    ///
    /// # Panics
    ///
    /// Panics if an assumption names a variable the solver has not
    /// created.
    pub fn solve_with_assumptions_interruptible(
        &mut self,
        assumptions: &[Lit],
        cancel: Option<&AtomicBool>,
    ) -> Option<SatResult> {
        for &a in assumptions {
            assert!(
                (a.var().0 as usize) < self.nvars,
                "unknown assumption variable {a}"
            );
        }
        if !self.ok {
            return Some(SatResult::Unsat);
        }
        self.cancel_until(0);
        if self.propagate().is_some() {
            self.ok = false;
            return Some(SatResult::Unsat);
        }

        let mut pacing = SearchPacing::new();
        // Poll on the very first step (an already-set flag interrupts
        // deterministically), then every CANCEL_CHECK_INTERVAL steps.
        let mut steps_until_poll = 1;

        loop {
            if let Some(flag) = cancel {
                steps_until_poll -= 1;
                if steps_until_poll == 0 {
                    steps_until_poll = Self::CANCEL_CHECK_INTERVAL;
                    if flag.load(AtomicOrdering::Relaxed) {
                        self.cancel_until(0);
                        return None;
                    }
                }
            }
            match self.propagate() {
                Some(conflict) => {
                    self.stats.conflicts += 1;
                    pacing.conflicts_this_call += 1;
                    if self.decision_level() == 0 {
                        self.ok = false;
                        return Some(SatResult::Unsat);
                    }
                    let trail_len = self.trail.len();
                    let (learnt, blevel, lbd) = self.analyze(conflict);
                    self.cancel_until(blevel);
                    let asserting = learnt[0];
                    if learnt.len() == 1 {
                        self.uncheck_enqueue(asserting, Reason::None);
                    } else {
                        let ci = self.attach_clause(learnt, true, lbd);
                        self.stats.learnt_clauses += 1;
                        self.stats.lbd_sum += lbd as u64;
                        self.uncheck_enqueue(asserting, Reason::Clause(ci));
                    }
                    self.var_inc /= 0.95;
                    if self.after_conflict_pacing(&mut pacing, lbd, trail_len) {
                        self.stats.restarts += 1;
                        self.cancel_until(0);
                    }
                    if self.options.db_reduction && pacing.conflicts_this_call >= pacing.next_reduce
                    {
                        pacing.reductions_this_call += 1;
                        pacing.next_reduce = pacing.conflicts_this_call
                            + REDUCE_FIRST
                            + REDUCE_INC * pacing.reductions_this_call;
                        self.cancel_until(0);
                        self.reduce_learnts();
                    }
                }
                None => {
                    // (Re-)establish assumptions first: one pseudo-decision
                    // level per assumption, recreated here after every
                    // restart or deep backjump. An already-true assumption
                    // gets a dummy level (keeping level indices aligned);
                    // an already-false one means the database implies its
                    // negation under the earlier assumptions — UNSAT under
                    // assumptions, with `ok` left untouched.
                    if (self.decision_level() as usize) < assumptions.len() {
                        let a = assumptions[self.decision_level() as usize];
                        match self.value_lit(a) {
                            LBool::False => {
                                self.cancel_until(0);
                                return Some(SatResult::Unsat);
                            }
                            LBool::True => {
                                self.trail_lim.push(self.trail.len());
                            }
                            LBool::Undef => {
                                self.trail_lim.push(self.trail.len());
                                self.uncheck_enqueue(a, Reason::None);
                            }
                        }
                        continue;
                    }
                    match self.pick_branch_var() {
                        None => {
                            // Full assignment: SAT.
                            let values: Vec<bool> =
                                self.assign.iter().map(|a| *a == LBool::True).collect();
                            let model = Model { values };
                            debug_assert!(self.model_consistent(&model));
                            self.cancel_until(0);
                            return Some(SatResult::Sat(model));
                        }
                        Some(v) => {
                            self.stats.decisions += 1;
                            self.trail_lim.push(self.trail.len());
                            let l = if self.phase[v.0 as usize] {
                                Lit::positive(v)
                            } else {
                                Lit::negative(v)
                            };
                            self.uncheck_enqueue(l, Reason::None);
                        }
                    }
                }
            }
        }
    }

    /// Debug check: the model satisfies every clause and PB constraint.
    fn model_consistent(&self, model: &Model) -> bool {
        self.clauses
            .iter()
            .all(|c| c.lits.iter().any(|&l| model.lit_value(l)))
            && self.pbs.iter().all(|p| p.c.is_satisfied(model.values()))
    }
}

impl fmt::Display for Solver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "solver: {} vars, {} clauses, {} PB constraints",
            self.nvars,
            self.clauses.len(),
            self.pbs.len()
        )
    }
}

/// The Luby restart sequence 1,1,2,1,1,2,4,… (0-indexed).
fn luby(mut x: u64) -> u64 {
    // Find the finite subsequence containing index x and its size.
    let (mut size, mut seq) = (1u64, 0u64);
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x {
        size = (size - 1) / 2;
        seq -= 1;
        x %= size;
    }
    1u64 << seq
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(s: &mut Solver, n: usize) -> Vec<Lit> {
        (0..n).map(|_| Lit::positive(s.new_var())).collect()
    }

    /// Every solver configuration the differential suites cover.
    fn all_options() -> Vec<SolverOptions> {
        let mut out = Vec::new();
        for restart in [RestartStrategy::Luby, RestartStrategy::Glucose] {
            for db_reduction in [false, true] {
                out.push(SolverOptions {
                    restart,
                    db_reduction,
                });
            }
        }
        out
    }

    #[test]
    fn luby_sequence() {
        let seq: Vec<u64> = (0..15).map(luby).collect();
        assert_eq!(seq, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn restart_strategy_parses_and_displays() {
        assert_eq!("luby".parse(), Ok(RestartStrategy::Luby));
        assert_eq!("glucose".parse(), Ok(RestartStrategy::Glucose));
        assert!("geometric".parse::<RestartStrategy>().is_err());
        assert_eq!(RestartStrategy::Luby.to_string(), "luby");
        assert_eq!(RestartStrategy::Glucose.to_string(), "glucose");
    }

    #[test]
    fn trivial_sat_and_unsat() {
        let mut s = Solver::new();
        let v = s.new_var();
        assert!(s.add_clause(&[Lit::positive(v)]));
        assert!(s.solve().is_sat());
        assert!(!s.add_clause(&[Lit::negative(v)]));
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn unit_propagation_chain() {
        let mut s = Solver::new();
        let v = lits(&mut s, 5);
        s.add_clause(&[v[0]]);
        for i in 0..4 {
            s.add_clause(&[!v[i], v[i + 1]]); // vᵢ → vᵢ₊₁
        }
        let m = s.solve();
        let m = m.model().unwrap();
        for l in &v {
            assert!(m.lit_value(*l));
        }
    }

    #[test]
    fn preset_cancel_flag_interrupts_and_solver_stays_reusable() {
        // The flag is polled before the first search step, so a pre-set
        // flag always interrupts before any verdict.
        let mut s = Solver::new();
        let p: Vec<Vec<Lit>> = (0..6)
            .map(|_| (0..5).map(|_| Lit::positive(s.new_var())).collect())
            .collect();
        for row in &p {
            s.add_clause(row);
        }
        for h in 0..5 {
            let col: Vec<Lit> = p.iter().map(|row| row[h]).collect();
            s.add_at_most_k(&col, 1);
        }
        let flag = AtomicBool::new(true);
        assert_eq!(s.solve_interruptible(Some(&flag)), None);
        // Interruption left the solver at level 0; a plain solve still
        // reaches the right verdict.
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn unset_cancel_flag_does_not_change_verdict() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause(&[v[0], v[1]]);
        s.add_clause(&[!v[0], v[2]]);
        let flag = AtomicBool::new(false);
        let r = s.solve_interruptible(Some(&flag)).expect("concludes");
        assert!(r.is_sat());
    }

    #[test]
    fn simple_conflict_learning() {
        // (a ∨ b) ∧ (a ∨ ¬b) ∧ (¬a ∨ c) ∧ (¬a ∨ ¬c) is UNSAT.
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        let (a, b, c) = (v[0], v[1], v[2]);
        s.add_clause(&[a, b]);
        s.add_clause(&[a, !b]);
        s.add_clause(&[!a, c]);
        s.add_clause(&[!a, !c]);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // 3 pigeons, 2 holes: p_{i,h}; each pigeon somewhere; holes hold
        // at most one pigeon (via PB).
        let mut s = Solver::new();
        let p: Vec<Vec<Lit>> = (0..3)
            .map(|_| (0..2).map(|_| Lit::positive(s.new_var())).collect())
            .collect();
        for row in &p {
            s.add_clause(row);
        }
        for h in 0..2 {
            let col: Vec<Lit> = p.iter().map(|row| row[h]).collect();
            s.add_at_most_k(&col, 1);
        }
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn at_most_k_sat_boundary() {
        let mut s = Solver::new();
        let v = lits(&mut s, 4);
        s.add_at_most_k(&v, 2);
        s.add_at_least_k(&v, 2);
        let r = s.solve();
        let m = r.model().unwrap();
        let count = v.iter().filter(|&&l| m.lit_value(l)).count();
        assert_eq!(count, 2);
    }

    #[test]
    fn at_least_more_than_n_is_unsat() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        assert!(!s.add_at_least_k(&v, 4));
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn weighted_pb_propagation() {
        // 3a + 2b + c <= 3 with a forced true → b false; c free.
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        let (a, b, c) = (v[0], v[1], v[2]);
        s.add_pb_le(&[(3, a), (2, b), (1, c)], 3);
        s.add_clause(&[a]);
        let r = s.solve();
        let m = r.model().unwrap();
        assert!(m.lit_value(a));
        assert!(!m.lit_value(b));
        assert!(!m.lit_value(c));
    }

    #[test]
    fn pb_with_negative_literals() {
        // 2·¬a + 2·¬b <= 2 means at least one of a, b is true.
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_pb_le(&[(2, !v[0]), (2, !v[1])], 2);
        s.add_clause(&[!v[0]]); // a false → b must be true
        let r = s.solve();
        let m = r.model().unwrap();
        assert!(m.lit_value(v[1]));
    }

    #[test]
    fn pb_duplicate_merging() {
        // a + a + ¬a <= 1 → constant 1 folded: a <= 0 → a false.
        let mut s = Solver::new();
        let a = Lit::positive(s.new_var());
        assert!(s.add_pb_le(&[(1, a), (1, a), (1, !a)], 1));
        let r = s.solve();
        assert!(!r.model().unwrap().lit_value(a));
    }

    #[test]
    fn pb_infeasible_constant() {
        // a + ¬a <= 0 is a contradiction (constant 1 > 0).
        let mut s = Solver::new();
        let a = Lit::positive(s.new_var());
        assert!(!s.add_pb_le(&[(1, a), (1, !a)], 0));
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn and_equiv_links() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        let t = Lit::positive(s.new_var());
        s.add_and_equiv(t, &v);
        // Force all inputs true → t true.
        for &l in &v {
            s.add_clause(&[l]);
        }
        let r = s.solve();
        assert!(r.model().unwrap().lit_value(t));
    }

    #[test]
    fn and_equiv_blocks_partial() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        let t = Lit::positive(s.new_var());
        s.add_and_equiv(t, &v);
        s.add_clause(&[t]);
        s.add_clause(&[!v[0]]);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn assumptions_do_not_persist() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause(&[v[0], v[1]]);
        assert!(!s.solve_with_assumptions(&[!v[0], !v[1]]).is_sat());
        // Without assumptions it is still satisfiable.
        assert!(s.solve().is_sat());
        // And a different assumption set works.
        assert!(s.solve_with_assumptions(&[!v[0]]).is_sat());
    }

    #[test]
    fn repeated_assumption_solves_keep_stats_monotone_and_results_correct() {
        // Regression for the former clone-based implementation: every
        // solve_with_assumptions threw away the learnt clauses (and the
        // heuristic state) of the probe. The native implementation keeps
        // one cumulative stats counter and one clause database, so stats
        // must be non-decreasing across an interleaved mix of assumption
        // and plain solves, with every verdict correct.
        let mut s = Solver::new();
        let p: Vec<Vec<Lit>> = (0..4)
            .map(|_| (0..4).map(|_| Lit::positive(s.new_var())).collect())
            .collect();
        for row in &p {
            s.add_clause(row);
        }
        for h in 0..4 {
            let col: Vec<Lit> = p.iter().map(|row| row[h]).collect();
            s.add_at_most_k(&col, 1);
        }
        let mut prev = s.stats();
        for round in 0..4 {
            // Forbid pigeon 0 in holes 0..3: it must take hole 3.
            let assume: Vec<Lit> = (0..3).map(|h| !p[0][h]).collect();
            let r = s.solve_with_assumptions(&assume);
            let m = r.model().expect("4 pigeons fit 4 holes");
            assert!(m.lit_value(p[0][3]), "round {round}: pigeon 0 in hole 3");
            // Contradictory assumptions: pigeon 1 in no hole at all.
            let none: Vec<Lit> = (0..4).map(|h| !p[1][h]).collect();
            assert_eq!(s.solve_with_assumptions(&none), SatResult::Unsat);
            // Unconstrained solve still succeeds (the Unsat above was
            // only under assumptions — the database is untouched).
            assert!(s.solve().is_sat(), "round {round}: plain solve");

            let now = s.stats();
            assert!(now.decisions >= prev.decisions, "decisions monotone");
            assert!(now.conflicts >= prev.conflicts, "conflicts monotone");
            assert!(
                now.propagations > prev.propagations,
                "every solve propagates"
            );
            assert!(
                now.learnt_clauses >= prev.learnt_clauses,
                "learnt clauses monotone"
            );
            prev = now;
        }
    }

    #[test]
    fn assumption_solves_retain_learnt_clauses() {
        // Solving the same hard query twice must not repeat the work:
        // clauses learnt under assumptions are database-implied (the
        // assumptions enter the search as pseudo-decisions) and stay in
        // the database for the second call.
        let mut s = Solver::new();
        let p: Vec<Vec<Lit>> = (0..6)
            .map(|_| (0..6).map(|_| Lit::positive(s.new_var())).collect())
            .collect();
        for row in &p {
            s.add_clause(row);
        }
        for h in 0..6 {
            let col: Vec<Lit> = p.iter().map(|row| row[h]).collect();
            s.add_at_most_k(&col, 1);
        }
        // Knock out one hole via assumptions: 6 pigeons, 5 usable holes.
        let assume: Vec<Lit> = (0..6).map(|i| !p[i][5]).collect();

        let before = s.stats();
        assert_eq!(s.solve_with_assumptions(&assume), SatResult::Unsat);
        let mid = s.stats();
        let first_conflicts = mid.conflicts - before.conflicts;
        assert!(first_conflicts > 0, "the query is non-trivial");
        assert!(
            mid.learnt_clauses > before.learnt_clauses,
            "the first solve learns clauses"
        );

        assert_eq!(s.solve_with_assumptions(&assume), SatResult::Unsat);
        let after = s.stats();
        let second_conflicts = after.conflicts - mid.conflicts;
        assert!(
            second_conflicts <= first_conflicts,
            "retained clauses make the re-solve no harder: \
             {second_conflicts} vs {first_conflicts}"
        );

        // The database itself is still satisfiable.
        assert!(s.solve().is_sat());
    }

    #[test]
    fn assumption_solve_interruptible_preset_flag() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause(&[v[0], v[1]]);
        let flag = AtomicBool::new(true);
        assert_eq!(
            s.solve_with_assumptions_interruptible(&[!v[0]], Some(&flag)),
            None
        );
        // Interruption leaves the solver reusable.
        let r = s.solve_with_assumptions(&[!v[0]]);
        assert!(r.model().expect("satisfiable").lit_value(v[1]));
    }

    #[test]
    fn assumptions_after_database_unsat() {
        let mut s = Solver::new();
        let v = s.new_var();
        s.add_clause(&[Lit::positive(v)]);
        assert!(!s.add_clause(&[Lit::negative(v)]));
        assert_eq!(
            s.solve_with_assumptions(&[Lit::positive(v)]),
            SatResult::Unsat
        );
    }

    #[test]
    fn pigeonhole_6_into_5_unsat_with_learning() {
        // Large enough to force clause learning and restarts.
        let mut s = Solver::new();
        let p: Vec<Vec<Lit>> = (0..6)
            .map(|_| (0..5).map(|_| Lit::positive(s.new_var())).collect())
            .collect();
        for row in &p {
            s.add_clause(row);
        }
        for h in 0..5 {
            let col: Vec<Lit> = p.iter().map(|row| row[h]).collect();
            s.add_at_most_k(&col, 1);
        }
        assert_eq!(s.solve(), SatResult::Unsat);
        assert!(s.stats().conflicts > 0, "learning exercised");
    }

    #[test]
    fn solver_reusable_after_sat() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause(&[v[0], v[1]]);
        assert!(s.solve().is_sat());
        // Add more constraints and solve again.
        s.add_clause(&[!v[0]]);
        s.add_clause(&[!v[1], v[2]]);
        let m = s.solve();
        let m = m.model().unwrap();
        assert!(!m.lit_value(v[0]));
        assert!(m.lit_value(v[1]));
        assert!(m.lit_value(v[2]));
    }

    #[test]
    fn exhaustive_equivalence_small_random() {
        // Compare against brute force on all assignments for a bundle of
        // deterministic pseudo-random 6-var instances — for every solver
        // configuration.
        for opts in all_options() {
            let mut seed = 0x12345678u64;
            let mut next = move || {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                seed
            };
            for _case in 0..40 {
                let nv = 6usize;
                let mut s = Solver::with_options(opts);
                let vars: Vec<Var> = (0..nv).map(|_| s.new_var()).collect();
                let mut clauses: Vec<Vec<Lit>> = Vec::new();
                let nc = 3 + (next() % 8) as usize;
                for _ in 0..nc {
                    let len = 1 + (next() % 3) as usize;
                    let mut cl = Vec::new();
                    for _ in 0..len {
                        let v = vars[(next() % nv as u64) as usize];
                        let l = if next() % 2 == 0 {
                            Lit::positive(v)
                        } else {
                            Lit::negative(v)
                        };
                        cl.push(l);
                    }
                    clauses.push(cl);
                }
                // One random at-most-k.
                let k = next() % 3;
                let sub: Vec<Lit> = vars.iter().take(4).map(|&v| Lit::positive(v)).collect();

                let mut ok = true;
                for cl in &clauses {
                    ok &= s.add_clause(cl);
                }
                ok &= s.add_at_most_k(&sub, k);

                // Brute force.
                let mut any = false;
                for mask in 0u32..(1 << nv) {
                    let val = |l: Lit| {
                        let b = mask & (1 << l.var().0) != 0;
                        b == l.is_positive()
                    };
                    let cls_ok = clauses.iter().all(|c| c.iter().any(|&l| val(l)));
                    let pb_ok = sub.iter().filter(|&&l| val(l)).count() as u64 <= k;
                    if cls_ok && pb_ok {
                        any = true;
                        break;
                    }
                }
                let got = if ok { s.solve().is_sat() } else { false };
                assert_eq!(got, any, "case with {nc} clauses k={k} opts={opts:?}");
            }
        }
    }

    #[test]
    fn stats_accumulate() {
        let mut s = Solver::new();
        let v = lits(&mut s, 8);
        for i in 0..7 {
            s.add_clause(&[v[i], v[i + 1]]);
        }
        s.add_at_most_k(&v, 4);
        assert!(s.solve().is_sat());
        assert!(s.stats().propagations > 0);
    }

    #[test]
    fn learnt_clauses_carry_lbd() {
        // Any instance that learns clauses must account their LBD: the
        // mean is at least 1 and at most the variable count.
        let mut s = Solver::new();
        let p: Vec<Vec<Lit>> = (0..5)
            .map(|_| (0..4).map(|_| Lit::positive(s.new_var())).collect())
            .collect();
        for row in &p {
            s.add_clause(row);
        }
        for h in 0..4 {
            let col: Vec<Lit> = p.iter().map(|row| row[h]).collect();
            s.add_at_most_k(&col, 1);
        }
        assert_eq!(s.solve(), SatResult::Unsat);
        let st = s.stats();
        assert!(st.learnt_clauses > 0);
        assert!(st.lbd_sum >= st.learnt_clauses, "every LBD is at least 1");
        assert!(st.mean_lbd() >= 1.0);
        assert!(st.mean_lbd() <= s.num_vars() as f64);
    }

    #[test]
    fn manual_reduction_preserves_verdicts_and_reasons() {
        // Learn clauses, force a reduction, and re-solve: verdicts must
        // be unchanged and the compaction must not have corrupted any
        // watch list or reason index (the re-solve would derail).
        let mut s = Solver::new();
        let p: Vec<Vec<Lit>> = (0..6)
            .map(|_| (0..5).map(|_| Lit::positive(s.new_var())).collect())
            .collect();
        for row in &p {
            s.add_clause(row);
        }
        for h in 0..5 {
            let col: Vec<Lit> = p.iter().map(|row| row[h]).collect();
            s.add_at_most_k(&col, 1);
        }
        assert_eq!(s.solve(), SatResult::Unsat);
        let learnt_before = s.stats().learnt_live();
        s.reduce_learnts();
        let st = s.stats();
        assert!(st.db_reductions >= 1);
        assert!(st.learnt_live() <= learnt_before);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn reduction_never_deletes_glue_or_locked() {
        // Build a satisfiable instance that learns clauses under
        // assumptions, reduce, and check the assumption solve still
        // works: locked (reason) clauses survived by construction, and
        // the solver state stayed coherent.
        let mut s = Solver::new();
        let p: Vec<Vec<Lit>> = (0..5)
            .map(|_| (0..5).map(|_| Lit::positive(s.new_var())).collect())
            .collect();
        for row in &p {
            s.add_clause(row);
        }
        for h in 0..5 {
            let col: Vec<Lit> = p.iter().map(|row| row[h]).collect();
            s.add_at_most_k(&col, 1);
        }
        let assume: Vec<Lit> = (0..4).map(|h| !p[0][h]).collect();
        assert!(s.solve_with_assumptions(&assume).is_sat());
        for _ in 0..3 {
            s.reduce_learnts();
            let r = s.solve_with_assumptions(&assume);
            assert!(r.model().expect("still satisfiable").lit_value(p[0][4]));
        }
        // Deleted clauses are implied by the database: a plain solve
        // still reaches the right verdict.
        assert!(s.solve().is_sat());
    }

    #[test]
    fn glucose_restarts_fire_on_hard_instances() {
        let mut s = Solver::with_options(SolverOptions {
            restart: RestartStrategy::Glucose,
            db_reduction: true,
        });
        let p: Vec<Vec<Lit>> = (0..8)
            .map(|_| (0..7).map(|_| Lit::positive(s.new_var())).collect())
            .collect();
        for row in &p {
            s.add_clause(row);
        }
        for h in 0..7 {
            let col: Vec<Lit> = p.iter().map(|row| row[h]).collect();
            s.add_at_most_k(&col, 1);
        }
        assert_eq!(s.solve(), SatResult::Unsat);
        let st = s.stats();
        assert!(st.conflicts > RESTART_MIN_CONFLICTS, "instance is hard");
        assert!(
            st.restarts + st.blocked_restarts > 0,
            "the adaptive schedule reacted: {st:?}"
        );
    }

    #[test]
    fn same_options_solves_are_byte_identical() {
        // Determinism: two fresh solvers fed the same formula under the
        // same options produce identical stats and identical models.
        for opts in all_options() {
            let build = |opts: SolverOptions| {
                let mut s = Solver::with_options(opts);
                let p: Vec<Vec<Lit>> = (0..6)
                    .map(|_| (0..5).map(|_| Lit::positive(s.new_var())).collect())
                    .collect();
                for row in &p {
                    s.add_clause(row);
                }
                for h in 0..5 {
                    let col: Vec<Lit> = p.iter().map(|row| row[h]).collect();
                    s.add_at_most_k(&col, 1);
                }
                let r = s.solve();
                (r, s.stats())
            };
            let (r1, st1) = build(opts);
            let (r2, st2) = build(opts);
            assert_eq!(r1, r2, "verdict deterministic under {opts:?}");
            assert_eq!(st1, st2, "stats deterministic under {opts:?}");
        }
    }

    #[test]
    fn display_mentions_counts() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause(&[v[0], v[1]]);
        assert!(s.to_string().contains("2 vars"));
    }
}

//! ClassBench-style synthetic firewall policy generation.
//!
//! The paper's benchmarks generate one firewall policy per network ingress
//! with ClassBench (Taylor & Turner, INFOCOM'05). ClassBench's property
//! that matters for rule placement is *structured overlap*: real filter
//! sets combine a modest pool of popular source/destination prefixes, so
//! rules overlap each other and permit/drop priority dependencies arise.
//! This crate reproduces that structure with a seeded generator:
//!
//! * a header split into source and destination prefix fields,
//! * per-profile pools of popular prefixes with skewed prefix lengths,
//! * a configurable DROP fraction,
//! * global blacklist rules shared verbatim across policies (the
//!   mergeable rules of the paper's §IV-B / Experiment 3).
//!
//! # Example
//!
//! ```
//! use flowplace_classbench::{Generator, Profile};
//!
//! let gen = Generator::new(Profile::Firewall, 16).with_seed(7);
//! let policy = gen.policy(30, 0);
//! assert_eq!(policy.len(), 30);
//! assert!(policy.drop_rules().count() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gen;
mod profiles;

pub use gen::{Generator, PolicySuite};
pub use profiles::Profile;

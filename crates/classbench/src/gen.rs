//! The seeded policy generator.

use flowplace_rng::{Rng, StdRng};

use flowplace_acl::{Action, Policy, Rule, Ternary};

use crate::profiles::{Profile, ProfileParams};

/// Seeded ClassBench-style policy generator.
///
/// The header of `width` bits is split into a source field (high half) and
/// a destination field (low half). Each rule matches a source prefix and a
/// destination prefix, drawn from small pools of "popular" prefixes so
/// rules overlap (the property that produces permit/drop dependencies).
///
/// All output is deterministic in the configured seed plus the per-call
/// index, so experiment sweeps are reproducible rule-for-rule.
#[derive(Clone, Debug)]
pub struct Generator {
    profile: Profile,
    width: u32,
    seed: u64,
}

impl Generator {
    /// Creates a generator for headers of `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width < 2` or `width > 128`.
    pub fn new(profile: Profile, width: u32) -> Self {
        assert!((2..=128).contains(&width), "width {width} not in 2..=128");
        Generator {
            profile,
            width,
            seed: 0,
        }
    }

    /// Sets the base seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The header width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Generates one policy of `rule_count` rules. `index` distinguishes
    /// policies generated from the same base seed (use the ingress number).
    pub fn policy(&self, rule_count: usize, index: u64) -> Policy {
        let mut rng = StdRng::seed_from_u64(self.seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let params = self.profile.params();
        let pools = Pools::draw(&params, self.width, &mut rng);
        // Real filter sets do not repeat a match field verbatim; retry a
        // bounded number of times per rule, then accept a duplicate
        // rather than loop forever on tiny match spaces.
        let mut seen: Vec<flowplace_acl::Ternary> = Vec::with_capacity(rule_count);
        let rules: Vec<Rule> = (0..rule_count)
            .map(|i| {
                let mut m = pools.draw_match(self.width, &mut rng);
                for _ in 0..32 {
                    if !seen.contains(&m) {
                        break;
                    }
                    m = pools.draw_match(self.width, &mut rng);
                }
                seen.push(m);
                let action = if rng.gen_bool(params.drop_fraction) {
                    Action::Drop
                } else {
                    Action::Permit
                };
                Rule::new(m, action, (rule_count - i) as u32)
            })
            .collect();
        Policy::from_rules(rules).expect("generated priorities are strictly decreasing")
    }

    /// Generates `count` policies of `rule_count` rules each (one per
    /// ingress, indexed `0..count`).
    pub fn policies(&self, rule_count: usize, count: usize) -> Vec<Policy> {
        (0..count)
            .map(|i| self.policy(rule_count, i as u64))
            .collect()
    }

    /// Generates `count` network-wide blacklist DROP rules (identical match
    /// fields shared across policies — the paper's mergeable rules).
    ///
    /// The rules are pairwise distinct and returned without priorities
    /// (assign them when inserting into a policy via [`PolicySuite`]).
    pub fn blacklist(&self, count: usize) -> Vec<Ternary> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xB1AC_415D);
        let params = self.profile.params();
        let pools = Pools::draw(&params, self.width, &mut rng);
        let mut out: Vec<Ternary> = Vec::with_capacity(count);
        let mut attempts = 0;
        while out.len() < count {
            attempts += 1;
            assert!(
                attempts < 1000 + count * 100,
                "blacklist generation stalled"
            );
            let m = pools.draw_match(self.width, &mut rng);
            if !out.contains(&m) {
                out.push(m);
            }
        }
        out
    }
}

/// A set of per-ingress policies plus shared (mergeable) blacklist rules —
/// the complete `{Q_i}` input of an experiment instance.
///
/// Shared rules are prepended to every policy at the highest priorities in
/// a common order, which both models a network-wide blacklist and keeps
/// merge dependencies acyclic by construction (see §IV-B of the paper for
/// how cycles are broken when orders differ).
#[derive(Clone, Debug)]
pub struct PolicySuite {
    /// One policy per ingress, in ingress order.
    pub policies: Vec<Policy>,
    /// Match fields of the shared blacklist rules present in every policy.
    pub shared: Vec<Ternary>,
}

impl PolicySuite {
    /// Builds a suite: `count` per-ingress policies of `rule_count` rules,
    /// plus `shared_count` identical blacklist DROP rules prepended to each
    /// policy above its own rules.
    pub fn generate(
        gen: &Generator,
        rule_count: usize,
        count: usize,
        shared_count: usize,
    ) -> PolicySuite {
        let shared = gen.blacklist(shared_count);
        let policies = gen
            .policies(rule_count, count)
            .into_iter()
            .map(|p| prepend_shared(&p, &shared))
            .collect();
        PolicySuite { policies, shared }
    }

    /// Total number of rules across all policies.
    pub fn total_rules(&self) -> usize {
        self.policies.iter().map(Policy::len).sum()
    }
}

/// Returns `policy` with `shared` DROP rules prepended at priorities above
/// every existing rule, in the order given.
fn prepend_shared(policy: &Policy, shared: &[Ternary]) -> Policy {
    let max_priority = policy.rules().first().map(|r| r.priority()).unwrap_or(0);
    let mut rules: Vec<Rule> = policy.rules().to_vec();
    let n = shared.len() as u32;
    for (i, m) in shared.iter().enumerate() {
        rules.push(Rule::new(*m, Action::Drop, max_priority + n - i as u32));
    }
    Policy::from_rules(rules).expect("shifted priorities remain strict")
}

/// Pools of popular prefixes for one policy family.
struct Pools {
    src: Vec<(u32, u128)>, // (prefix length, value bits)
    dst: Vec<(u32, u128)>,
    src_bits: u32,
    dst_bits: u32,
}

impl Pools {
    fn draw(params: &ProfileParams, width: u32, rng: &mut StdRng) -> Pools {
        let src_bits = width / 2;
        let dst_bits = width - src_bits;
        let draw_pool = |n: usize, bits: u32, range: (f64, f64), rng: &mut StdRng| {
            (0..n)
                .map(|_| {
                    let lo = (range.0 * bits as f64).round() as u32;
                    let hi = (range.1 * bits as f64).round() as u32;
                    let len = rng.gen_range(lo..=hi.max(lo)).min(bits);
                    let value = if len == 0 {
                        0
                    } else {
                        rng.gen::<u128>() & prefix_care(bits, len)
                    };
                    (len, value)
                })
                .collect::<Vec<_>>()
        };
        Pools {
            src: draw_pool(params.src_pool, src_bits, params.src_len, rng),
            dst: draw_pool(params.dst_pool, dst_bits, params.dst_len, rng),
            src_bits,
            dst_bits,
        }
    }

    /// Combines one popular source prefix and one popular destination
    /// prefix into a full ternary match. Occasionally (1 in 8) lengthens a
    /// prefix to create narrower rules nested inside popular ones.
    fn draw_match(&self, width: u32, rng: &mut StdRng) -> Ternary {
        let (mut sl, mut sv) = self.src[rng.gen_range(0..self.src.len())];
        let (mut dl, mut dv) = self.dst[rng.gen_range(0..self.dst.len())];
        if rng.gen_ratio(1, 8) && sl < self.src_bits {
            sl += rng.gen_range(1..=(self.src_bits - sl));
            sv |= rng.gen::<u128>() & prefix_care(self.src_bits, sl);
            sv &= prefix_care(self.src_bits, sl);
        }
        if rng.gen_ratio(1, 8) && dl < self.dst_bits {
            dl += rng.gen_range(1..=(self.dst_bits - dl));
            dv |= rng.gen::<u128>() & prefix_care(self.dst_bits, dl);
            dv &= prefix_care(self.dst_bits, dl);
        }
        // Source occupies the high bits, destination the low bits.
        let src_care = prefix_care(self.src_bits, sl) << self.dst_bits;
        let dst_care = prefix_care(self.dst_bits, dl);
        let value = (sv << self.dst_bits) | dv;
        Ternary::new(width, src_care | dst_care, value)
    }
}

/// The care mask of a length-`len` prefix in a `bits`-wide field
/// (the top `len` bits of the field).
fn prefix_care(bits: u32, len: u32) -> u128 {
    debug_assert!(len <= bits);
    if len == 0 {
        return 0;
    }
    let field = if bits >= 128 {
        u128::MAX
    } else {
        (1u128 << bits) - 1
    };
    field & !(field >> len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_care_masks() {
        assert_eq!(prefix_care(8, 0), 0);
        assert_eq!(prefix_care(8, 3), 0b1110_0000);
        assert_eq!(prefix_care(8, 8), 0xFF);
        assert_eq!(prefix_care(4, 2), 0b1100);
    }

    #[test]
    fn deterministic_in_seed_and_index() {
        let g = Generator::new(Profile::Firewall, 16).with_seed(5);
        assert_eq!(g.policy(20, 0), g.policy(20, 0));
        assert_ne!(g.policy(20, 0), g.policy(20, 1));
        let g2 = Generator::new(Profile::Firewall, 16).with_seed(6);
        assert_ne!(g.policy(20, 0), g2.policy(20, 0));
    }

    #[test]
    fn policies_have_requested_size_and_mixed_actions() {
        let g = Generator::new(Profile::Firewall, 16).with_seed(1);
        let p = g.policy(50, 0);
        assert_eq!(p.len(), 50);
        assert!(p.drop_rules().count() > 0, "some drops");
        assert!(p.permit_rules().count() > 0, "some permits");
    }

    #[test]
    fn rules_overlap_enough_to_create_dependencies() {
        // The popular-pool structure must make at least one higher-priority
        // PERMIT overlap a lower-priority DROP in a decently sized policy.
        let g = Generator::new(Profile::Firewall, 16).with_seed(3);
        let p = g.policy(40, 0);
        let mut deps = 0;
        for (i, hi) in p.iter() {
            for (j, lo) in p.iter() {
                if j.0 > i.0 && hi.action().is_permit() && lo.action().is_drop() && hi.overlaps(lo)
                {
                    deps += 1;
                }
            }
        }
        assert!(deps > 0, "expected permit-over-drop dependencies");
    }

    #[test]
    fn blacklist_rules_distinct() {
        let g = Generator::new(Profile::Acl, 16).with_seed(2);
        let b = g.blacklist(8);
        assert_eq!(b.len(), 8);
        for (i, x) in b.iter().enumerate() {
            for y in &b[i + 1..] {
                assert_ne!(x, y);
            }
        }
    }

    #[test]
    fn suite_prepends_shared_at_top() {
        let g = Generator::new(Profile::Firewall, 16).with_seed(4);
        let suite = PolicySuite::generate(&g, 10, 3, 2);
        assert_eq!(suite.policies.len(), 3);
        assert_eq!(suite.shared.len(), 2);
        for p in &suite.policies {
            assert_eq!(p.len(), 12);
            // Highest two priorities are the shared DROP rules, same order.
            assert_eq!(p.rules()[0].match_field(), &suite.shared[0]);
            assert_eq!(p.rules()[1].match_field(), &suite.shared[1]);
            assert!(p.rules()[0].action().is_drop());
            assert!(p.rules()[1].action().is_drop());
        }
    }

    #[test]
    fn suite_total_rules() {
        let g = Generator::new(Profile::IpChain, 16).with_seed(9);
        let suite = PolicySuite::generate(&g, 5, 4, 1);
        assert_eq!(suite.total_rules(), 4 * 6);
    }

    #[test]
    fn all_profiles_generate() {
        for prof in [Profile::Firewall, Profile::Acl, Profile::IpChain] {
            let g = Generator::new(prof, 32).with_seed(11);
            let p = g.policy(25, 0);
            assert_eq!(p.len(), 25);
        }
    }

    #[test]
    fn width_two_edge_case() {
        let g = Generator::new(Profile::Firewall, 2).with_seed(1);
        let p = g.policy(5, 0);
        assert_eq!(p.len(), 5);
    }
}

//! Generation profiles mirroring ClassBench's seed-file families.

/// A generation profile, named after ClassBench's three filter-set
/// families. Profiles differ in prefix-length skew, popular-pool size, and
/// DROP fraction, which together control how much rules overlap (and hence
/// how dense the placement dependency graph is).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Profile {
    /// Firewall-like: short, broad prefixes, many overlaps, drop-heavy.
    Firewall,
    /// Access-control-list-like: longer prefixes, moderate overlap.
    Acl,
    /// IP-chain-like: mixed lengths, permit-heavy.
    IpChain,
}

/// Numeric knobs derived from a [`Profile`].
#[derive(Clone, Copy, Debug)]
pub(crate) struct ProfileParams {
    /// Number of popular source prefixes in the pool.
    pub src_pool: usize,
    /// Number of popular destination prefixes in the pool.
    pub dst_pool: usize,
    /// Inclusive range of source prefix lengths, as a fraction of the
    /// source field width (0.0 = all wildcard, 1.0 = exact).
    pub src_len: (f64, f64),
    /// Inclusive range of destination prefix lengths, as a fraction.
    pub dst_len: (f64, f64),
    /// Probability that a rule is a DROP.
    pub drop_fraction: f64,
}

impl Profile {
    pub(crate) fn params(self) -> ProfileParams {
        match self {
            Profile::Firewall => ProfileParams {
                src_pool: 6,
                dst_pool: 6,
                src_len: (0.1, 0.6),
                dst_len: (0.1, 0.6),
                drop_fraction: 0.55,
            },
            Profile::Acl => ProfileParams {
                src_pool: 10,
                dst_pool: 10,
                src_len: (0.3, 0.9),
                dst_len: (0.3, 0.9),
                drop_fraction: 0.4,
            },
            Profile::IpChain => ProfileParams {
                src_pool: 8,
                dst_pool: 8,
                src_len: (0.2, 1.0),
                dst_len: (0.2, 1.0),
                drop_fraction: 0.25,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_are_sane() {
        for p in [Profile::Firewall, Profile::Acl, Profile::IpChain] {
            let q = p.params();
            assert!(q.src_pool > 0 && q.dst_pool > 0);
            assert!(q.src_len.0 <= q.src_len.1 && q.src_len.1 <= 1.0);
            assert!(q.dst_len.0 <= q.dst_len.1 && q.dst_len.1 <= 1.0);
            assert!((0.0..=1.0).contains(&q.drop_fraction));
        }
    }
}

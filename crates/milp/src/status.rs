//! Solve outcomes for LP and MIP.

use std::fmt;
use std::time::Duration;

/// A malformed model or a broken solver invariant, surfaced as data
/// instead of a panic so a long-running caller (e.g. the controller
/// loop) can reject the offending request and keep serving.
#[derive(Clone, Debug, PartialEq)]
pub enum SolveError {
    /// A variable's bounds are unusable: NaN, `lower > upper`, lower at
    /// `+inf`, or upper at `-inf`.
    BadBound {
        /// Variable index.
        var: usize,
        /// Offending lower bound.
        lower: f64,
        /// Offending upper bound.
        upper: f64,
    },
    /// A variable's objective coefficient is NaN or infinite.
    BadObjective {
        /// Variable index.
        var: usize,
        /// Offending coefficient.
        value: f64,
    },
    /// A constraint coefficient is NaN or infinite.
    BadCoefficient {
        /// Constraint index.
        constraint: usize,
        /// Variable index of the offending term.
        var: usize,
        /// Offending coefficient.
        value: f64,
    },
    /// A constraint right-hand side is NaN or infinite.
    BadRhs {
        /// Constraint index.
        constraint: usize,
        /// Offending right-hand side.
        value: f64,
    },
    /// An internal invariant broke (e.g. a basic variable was asked for
    /// its nonbasic bound value).
    Internal(&'static str),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::BadBound { var, lower, upper } => {
                write!(f, "variable {var} has unusable bounds [{lower}, {upper}]")
            }
            SolveError::BadObjective { var, value } => {
                write!(f, "variable {var} has non-finite objective {value}")
            }
            SolveError::BadCoefficient {
                constraint,
                var,
                value,
            } => write!(
                f,
                "constraint {constraint} has non-finite coefficient {value} on variable {var}"
            ),
            SolveError::BadRhs { constraint, value } => {
                write!(f, "constraint {constraint} has non-finite rhs {value}")
            }
            SolveError::Internal(what) => write!(f, "solver invariant broken: {what}"),
        }
    }
}

impl std::error::Error for SolveError {}

/// Status of an LP solve.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LpStatus {
    /// An optimal basic solution was found.
    Optimal,
    /// The constraints admit no solution.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
    /// The iteration limit was hit before convergence.
    IterationLimit,
    /// The model was malformed or a solver invariant broke.
    Error,
}

/// A solved LP: status plus (when solved) the primal point.
#[derive(Clone, Debug)]
pub struct LpSolution {
    /// Primal values, indexed by [`VarId`](crate::VarId) order.
    pub values: Vec<f64>,
    /// Objective value at `values` (in the model's own sense).
    pub objective: f64,
    /// Simplex iterations used across both phases.
    pub iterations: usize,
}

/// Outcome of [`solve_lp`](crate::solve_lp).
#[derive(Clone, Debug)]
pub enum LpOutcome {
    /// Optimal solution found.
    Optimal(LpSolution),
    /// No feasible point exists.
    Infeasible,
    /// Objective unbounded.
    Unbounded,
    /// Iteration limit reached; no solution reported.
    IterationLimit,
    /// The model was malformed or a solver invariant broke.
    Error(SolveError),
}

impl LpOutcome {
    /// The solution if the solve was optimal.
    pub fn solution(&self) -> Option<&LpSolution> {
        match self {
            LpOutcome::Optimal(s) => Some(s),
            _ => None,
        }
    }

    /// The corresponding status code.
    pub fn status(&self) -> LpStatus {
        match self {
            LpOutcome::Optimal(_) => LpStatus::Optimal,
            LpOutcome::Infeasible => LpStatus::Infeasible,
            LpOutcome::Unbounded => LpStatus::Unbounded,
            LpOutcome::IterationLimit => LpStatus::IterationLimit,
            LpOutcome::Error(_) => LpStatus::Error,
        }
    }
}

/// Status of a MIP solve.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MipStatus {
    /// Proven optimal integer solution.
    Optimal,
    /// Proven that no integer solution exists.
    Infeasible,
    /// A feasible solution was found but optimality was not proven before
    /// a limit (time or nodes) was reached.
    Feasible,
    /// A limit was reached before any feasible solution was found; the
    /// instance may or may not be feasible.
    Unknown,
    /// The model was malformed or a solver invariant broke; the search
    /// was aborted.
    Error,
}

impl fmt::Display for MipStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MipStatus::Optimal => write!(f, "optimal"),
            MipStatus::Infeasible => write!(f, "infeasible"),
            MipStatus::Feasible => write!(f, "feasible"),
            MipStatus::Unknown => write!(f, "unknown"),
            MipStatus::Error => write!(f, "error"),
        }
    }
}

/// An integer-feasible MIP solution.
#[derive(Clone, Debug)]
pub struct MipSolution {
    /// Primal values, indexed by [`VarId`](crate::VarId) order; binary
    /// variables are exactly 0.0 or 1.0.
    pub values: Vec<f64>,
    /// Objective value at `values`.
    pub objective: f64,
}

/// Outcome of [`solve_mip`](crate::solve_mip).
#[derive(Clone, Debug)]
pub struct MipOutcome {
    /// Final status.
    pub status: MipStatus,
    /// Best integer solution found, if any.
    pub best: Option<MipSolution>,
    /// Best proven bound on the optimum (lower bound when minimizing).
    pub bound: f64,
    /// Branch-and-bound nodes processed.
    pub nodes: usize,
    /// Total LP simplex iterations.
    pub lp_iterations: usize,
    /// Lazy-constraint rows added during the solve.
    pub lazy_rows_added: usize,
    /// Wall-clock time spent inside the solver (excludes model
    /// construction by the caller). Telemetry only — never feeds back
    /// into search decisions, so determinism is unaffected.
    pub elapsed: Duration,
}

impl MipOutcome {
    /// The best solution if one was found.
    pub fn solution(&self) -> Option<&MipSolution> {
        self.best.as_ref()
    }

    /// True if the solve proved optimality.
    pub fn is_optimal(&self) -> bool {
        self.status == MipStatus::Optimal
    }

    /// True if the solve proved infeasibility.
    pub fn is_infeasible(&self) -> bool {
        self.status == MipStatus::Infeasible
    }
}

impl fmt::Display for MipOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} nodes", self.status, self.nodes)?;
        if let Some(b) = &self.best {
            write!(f, ", objective {}", b.objective)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_accessors() {
        let o = LpOutcome::Infeasible;
        assert!(o.solution().is_none());
        assert_eq!(o.status(), LpStatus::Infeasible);
        let s = LpOutcome::Optimal(LpSolution {
            values: vec![1.0],
            objective: 2.0,
            iterations: 3,
        });
        assert_eq!(s.status(), LpStatus::Optimal);
        assert_eq!(s.solution().unwrap().objective, 2.0);
    }

    #[test]
    fn mip_outcome_display() {
        let o = MipOutcome {
            status: MipStatus::Optimal,
            best: Some(MipSolution {
                values: vec![],
                objective: 5.0,
            }),
            bound: 5.0,
            nodes: 3,
            lp_iterations: 10,
            lazy_rows_added: 0,
            elapsed: Duration::ZERO,
        };
        assert!(o.is_optimal());
        assert!(o.to_string().contains("optimal"));
        assert!(o.to_string().contains("objective 5"));
    }
}

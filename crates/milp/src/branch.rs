//! Branch & bound over the LP relaxation.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::model::{Cmp, Model, Sense, VarId};
use crate::simplex::{solve_lp_with, LpOptions};
use crate::status::{LpOutcome, MipOutcome, MipSolution, MipStatus};

/// A lazy-constraint callback.
///
/// Invoked whenever an integral candidate solution is found (by the LP or
/// by a heuristic). It must return every constraint the candidate violates
/// (empty = accept the candidate). Returned rows are added to the model
/// permanently, so they also cut off future candidates. This is how the
/// placement encoder generates its quadratic-size dependency rows only
/// when actually violated.
pub type LazyCallback<'a> = dyn FnMut(&[f64]) -> Vec<crate::model::Constraint> + 'a;

/// Options controlling a MIP solve.
#[derive(Clone, Debug)]
pub struct MipOptions {
    /// Wall-clock budget; `None` = unlimited.
    pub time_limit: Option<Duration>,
    /// Maximum branch-and-bound nodes; `None` = unlimited.
    pub node_limit: Option<usize>,
    /// Integrality tolerance on binary variables.
    pub integrality_tol: f64,
    /// Prune nodes whose LP bound is within this of the incumbent.
    pub absolute_gap: f64,
    /// Optional warm-start solution; used as the initial incumbent if it
    /// is feasible for the model (and accepted by the lazy callback).
    pub initial_solution: Option<Vec<f64>>,
    /// Cooperative cancellation flag: when another thread sets it, the
    /// search stops at the next node boundary and reports like a hit time
    /// limit (`Feasible` with the incumbent so far, else `Unknown`).
    pub cancel: Option<Arc<AtomicBool>>,
    /// LP sub-solver options.
    pub lp: LpOptions,
}

impl Default for MipOptions {
    fn default() -> Self {
        MipOptions {
            time_limit: None,
            node_limit: None,
            integrality_tol: 1e-6,
            absolute_gap: 1e-6,
            initial_solution: None,
            cancel: None,
            lp: LpOptions::default(),
        }
    }
}

/// Solves `model` to integer optimality (or a limit) without lazy rows.
pub fn solve_mip(model: &Model, options: &MipOptions) -> MipOutcome {
    solve_mip_lazy(model, options, &mut |_| Vec::new())
}

/// Rounds an LP point to binaries and repairs violated rows: covering
/// (`≥`) rows by raising the highest-LP-value zero variable, packing
/// (`≤`) rows by raising zero variables with negative coefficients (how
/// merge discounts enter capacity rows). Returns a feasible point or
/// `None`.
fn round_and_repair(model: &Model, lp_values: &[f64], binaries: &[VarId]) -> Option<Vec<f64>> {
    let mut vals = lp_values.to_vec();
    for &b in binaries {
        vals[b.0] = if vals[b.0] >= 0.5 { 1.0 } else { 0.0 };
    }
    // Repair >= rows by setting additional variables to 1.
    for c in model.constraints() {
        if !matches!(c.cmp, Cmp::Ge) {
            continue;
        }
        let mut lhs: f64 = c.terms.iter().map(|(v, a)| a * vals[v.0]).sum();
        while lhs < c.rhs - 1e-9 {
            let pick = c
                .terms
                .iter()
                .filter(|(v, a)| *a > 0.0 && vals[v.0] < 0.5 && model.upper(*v) >= 1.0)
                .max_by(|(v1, _), (v2, _)| {
                    lp_values[v1.0]
                        .partial_cmp(&lp_values[v2.0])
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
            match pick {
                None => return None,
                Some(&(v, a)) => {
                    vals[v.0] = 1.0;
                    lhs += a;
                }
            }
        }
    }
    // Repair <= rows via negative-coefficient variables (e.g. merge vars).
    for c in model.constraints() {
        if !matches!(c.cmp, Cmp::Le) {
            continue;
        }
        let mut lhs: f64 = c.terms.iter().map(|(v, a)| a * vals[v.0]).sum();
        if lhs <= c.rhs + 1e-9 {
            continue;
        }
        for &(v, a) in &c.terms {
            if a < 0.0 && vals[v.0] < 0.5 && model.upper(v) >= 1.0 {
                vals[v.0] = 1.0;
                lhs += a;
                if lhs <= c.rhs + 1e-9 {
                    break;
                }
            }
        }
    }
    // Honor current node bounds and verify everything.
    for &b in binaries {
        if vals[b.0] < model.lower(b) || vals[b.0] > model.upper(b) {
            return None;
        }
    }
    model.check_feasible(&vals, 1e-6).ok().map(|_| vals)
}

struct Node {
    /// `(var, lower, upper)` overrides accumulated from the root.
    bounds: Vec<(VarId, f64, f64)>,
    /// LP bound inherited from the parent (in minimize-space).
    parent_bound: f64,
}

/// Solves `model` with a lazy-constraint callback (see [`LazyCallback`]).
///
/// The search is depth-first (dive on the branch closer to the LP value)
/// with best-bound pruning against the incumbent. Works for pure-binary and
/// mixed models; only binary variables are branched on.
pub fn solve_mip_lazy(
    model: &Model,
    options: &MipOptions,
    lazy: &mut LazyCallback<'_>,
) -> MipOutcome {
    let start = Instant::now();
    // Internal bound/prune logic is written for minimization.
    let mul = match model.sense {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };
    // Reject malformed models up front: every node would fail the same
    // way, so surface the error once instead of searching.
    if crate::simplex::validate_model(model).is_err() {
        return MipOutcome {
            status: MipStatus::Error,
            best: None,
            bound: f64::NEG_INFINITY * mul,
            nodes: 0,
            lp_iterations: 0,
            lazy_rows_added: 0,
            elapsed: start.elapsed(),
        };
    }
    // The cancel flag must also reach the LP sub-solver: a single root LP
    // can dwarf all node-boundary checks, and the portfolio racer joins
    // the losing thread.
    let mut lp_options = options.lp.clone();
    if lp_options.cancel.is_none() {
        lp_options.cancel = options.cancel.clone();
    }
    if lp_options.deadline.is_none() {
        lp_options.deadline = options.time_limit.map(|limit| start + limit);
    }
    let mut work = model.clone();
    let binaries = work.binary_vars();
    // With an all-integer objective over binaries, any improving solution
    // beats the incumbent by >= 1, so nodes within 1 of it can be pruned.
    let integral_objective = binaries.len() == work.num_vars()
        && (0..work.num_vars()).all(|v| work.objective_coefficient(VarId(v)).fract() == 0.0);
    let prune_slack = |inc: f64| {
        if integral_objective {
            inc - 1.0 + 1e-6
        } else {
            inc - options.absolute_gap
        }
    };

    let mut nodes = 0usize;
    let mut lp_iterations = 0usize;
    let mut lazy_rows_added = 0usize;
    let mut incumbent: Option<(f64, Vec<f64>)> = None; // (min-space obj, values)
    let mut hit_limit = false;
    let mut solver_broke = false;

    // Warm start.
    if let Some(init) = &options.initial_solution {
        if work.check_feasible(init, 1e-6).is_ok() {
            let cuts = lazy(init);
            if cuts.is_empty() {
                incumbent = Some((work.objective_value(init) * mul, init.clone()));
            } else {
                for c in cuts {
                    work.add_constraint(c.name, c.terms, c.cmp, c.rhs);
                    lazy_rows_added += 1;
                }
            }
        }
    }

    let mut stack = vec![Node {
        bounds: Vec::new(),
        parent_bound: f64::NEG_INFINITY,
    }];
    // Bound over pruned/open space for gap reporting (minimize-space).
    let mut open_bound_floor = f64::INFINITY;

    'search: while let Some(node) = stack.pop() {
        if let Some(cancel) = &options.cancel {
            if cancel.load(Ordering::Relaxed) {
                hit_limit = true;
                open_bound_floor = open_bound_floor.min(node.parent_bound);
                for rest in &stack {
                    open_bound_floor = open_bound_floor.min(rest.parent_bound);
                }
                break 'search;
            }
        }
        if let Some(limit) = options.time_limit {
            if start.elapsed() >= limit {
                hit_limit = true;
                open_bound_floor = open_bound_floor.min(node.parent_bound);
                for rest in &stack {
                    open_bound_floor = open_bound_floor.min(rest.parent_bound);
                }
                break 'search;
            }
        }
        if let Some(limit) = options.node_limit {
            if nodes >= limit {
                hit_limit = true;
                open_bound_floor = open_bound_floor.min(node.parent_bound);
                for rest in &stack {
                    open_bound_floor = open_bound_floor.min(rest.parent_bound);
                }
                break 'search;
            }
        }
        nodes += 1;

        // Parent-bound pruning (the incumbent may have improved since the
        // node was pushed).
        if let Some((inc, _)) = &incumbent {
            if node.parent_bound >= prune_slack(*inc) {
                continue;
            }
        }

        // Apply node bounds.
        let saved: Vec<(VarId, f64, f64)> = node
            .bounds
            .iter()
            .map(|&(v, _, _)| (v, work.lower(v), work.upper(v)))
            .collect();
        for &(v, lo, hi) in &node.bounds {
            work.set_bounds(v, lo, hi);
        }

        // Solve this node (re-solving when lazy rows get added).
        let node_result = loop {
            match solve_lp_with(&work, &lp_options) {
                LpOutcome::Infeasible => break None,
                LpOutcome::Unbounded => {
                    // A bounded-binary placement model can never be
                    // unbounded unless continuous vars are; treat as a
                    // node we cannot reason about and stop.
                    hit_limit = true;
                    break None;
                }
                LpOutcome::IterationLimit => {
                    hit_limit = true;
                    break None;
                }
                LpOutcome::Error(_) => {
                    // A solver invariant broke mid-search (the model
                    // itself validated above): abort rather than risk an
                    // incorrect bound.
                    solver_broke = true;
                    break None;
                }
                LpOutcome::Optimal(sol) => {
                    lp_iterations += sol.iterations;
                    let bound = sol.objective * mul;
                    if let Some((inc, _)) = &incumbent {
                        if bound >= prune_slack(*inc) {
                            break None; // pruned by bound
                        }
                    }
                    // Find the most fractional binary.
                    let mut frac: Option<(VarId, f64)> = None;
                    for &b in &binaries {
                        let x = sol.values[b.0];
                        let dist = (x - x.round()).abs();
                        if dist > options.integrality_tol
                            && frac.map(|(_, d)| dist > d).unwrap_or(true)
                        {
                            frac = Some((b, dist));
                        }
                    }
                    match frac {
                        None => {
                            // Integral: round exactly, then let the lazy
                            // callback veto / cut.
                            let mut values = sol.values.clone();
                            for &b in &binaries {
                                values[b.0] = values[b.0].round();
                            }
                            let cuts = lazy(&values);
                            if cuts.is_empty() {
                                break Some((bound, values, None));
                            }
                            for c in cuts {
                                work.add_constraint(c.name, c.terms, c.cmp, c.rhs);
                                lazy_rows_added += 1;
                            }
                            continue; // re-solve the same node
                        }
                        Some((var, _)) => {
                            // Try a cheap rounding incumbent before
                            // committing to a branch.
                            if let Some(heur) = round_and_repair(&work, &sol.values, &binaries) {
                                let hobj = work.objective_value(&heur) * mul;
                                let better = incumbent
                                    .as_ref()
                                    .map(|(inc, _)| hobj < inc - options.absolute_gap)
                                    .unwrap_or(true);
                                if better {
                                    let cuts = lazy(&heur);
                                    if cuts.is_empty() {
                                        incumbent = Some((hobj, heur));
                                    } else {
                                        for c in cuts {
                                            work.add_constraint(c.name, c.terms, c.cmp, c.rhs);
                                            lazy_rows_added += 1;
                                        }
                                    }
                                }
                            }
                            break Some((bound, sol.values.clone(), Some(var)));
                        }
                    }
                }
            }
        };

        // Restore bounds before queueing children (children re-apply the
        // full override chain from the root).
        for &(v, lo, hi) in saved.iter().rev() {
            work.set_bounds(v, lo, hi);
        }

        if solver_broke {
            break 'search;
        }
        let Some((bound, values, branch_var)) = node_result else {
            continue;
        };
        match branch_var {
            None => {
                let better = incumbent
                    .as_ref()
                    .map(|(inc, _)| bound < inc - options.absolute_gap)
                    .unwrap_or(true);
                if better {
                    incumbent = Some((bound, values));
                }
            }
            Some(var) => {
                let x = values[var.0];
                // Children must stay within the variable's standing bounds
                // (they may have been tightened by presolve or the user);
                // a branch value outside them is simply pruned.
                type Child = (f64, Vec<(VarId, f64, f64)>);
                let mut children: Vec<Child> = Vec::new();
                for value in [0.0, 1.0] {
                    if value < work.lower(var) - 1e-9 || value > work.upper(var) + 1e-9 {
                        continue;
                    }
                    let mut bounds = node.bounds.clone();
                    bounds.push((var, value, value));
                    children.push((value, bounds));
                }
                // DFS: push the less-likely child first so the dive
                // follows the LP value.
                children.sort_by(|a, b| {
                    let da = (a.0 - x).abs();
                    let db = (b.0 - x).abs();
                    db.partial_cmp(&da).unwrap_or(std::cmp::Ordering::Equal)
                });
                for (_, bounds) in children {
                    stack.push(Node {
                        bounds,
                        parent_bound: bound,
                    });
                }
            }
        }
    }

    let status = if solver_broke {
        MipStatus::Error
    } else {
        match (&incumbent, hit_limit) {
            (Some(_), false) => MipStatus::Optimal,
            (Some(_), true) => MipStatus::Feasible,
            (None, false) => MipStatus::Infeasible,
            (None, true) => MipStatus::Unknown,
        }
    };
    let best = incumbent.map(|(obj, values)| MipSolution {
        objective: obj * mul,
        values,
    });
    let bound = match status {
        MipStatus::Optimal => best.as_ref().map(|b| b.objective).unwrap_or(0.0),
        MipStatus::Infeasible => f64::INFINITY * mul,
        _ => {
            let floor = if open_bound_floor.is_finite() {
                open_bound_floor
            } else {
                f64::NEG_INFINITY
            };
            floor * mul
        }
    };
    MipOutcome {
        status,
        best,
        bound,
        nodes,
        lp_iterations,
        lazy_rows_added,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Cmp, Sense};

    #[test]
    fn malformed_model_yields_error_status() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_binary("x");
        m.set_objective(x, f64::NAN);
        let out = crate::solve_mip(&m, &MipOptions::default());
        assert_eq!(out.status, MipStatus::Error);
        assert!(out.best.is_none());
        assert_eq!(out.nodes, 0);
    }

    #[test]
    fn knapsack_small() {
        // max 10a + 6b + 4c s.t. a+b+c <= 2 (binaries) → 16.
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        m.set_objective(a, 10.0);
        m.set_objective(b, 6.0);
        m.set_objective(c, 4.0);
        m.add_constraint("cap", vec![(a, 1.0), (b, 1.0), (c, 1.0)], Cmp::Le, 2.0);
        let out = solve_mip(&m, &MipOptions::default());
        assert!(out.is_optimal());
        let sol = out.solution().unwrap();
        assert!((sol.objective - 16.0).abs() < 1e-6);
        assert_eq!(sol.values[a.0], 1.0);
        assert_eq!(sol.values[b.0], 1.0);
        assert_eq!(sol.values[c.0], 0.0);
    }

    #[test]
    fn weighted_knapsack_needs_branching() {
        // max 5a + 4b + 3c s.t. 2a + 3b + c <= 4 → a=1, c=1 (wait: 2+1=3,
        // value 8; or a,b: 5 weight... 2+3=5 > 4; b+c = 4 weight, value 7).
        // Optimum = 8. LP relaxation is fractional, forcing a branch.
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        m.set_objective(a, 5.0);
        m.set_objective(b, 4.0);
        m.set_objective(c, 3.0);
        m.add_constraint("cap", vec![(a, 2.0), (b, 3.0), (c, 1.0)], Cmp::Le, 4.0);
        let out = solve_mip(&m, &MipOptions::default());
        let sol = out.solution().unwrap();
        assert!((sol.objective - 8.0).abs() < 1e-6, "obj {}", sol.objective);
        assert!(out.is_optimal());
    }

    #[test]
    fn infeasible_binaries() {
        // a + b >= 3 with two binaries.
        let mut m = Model::new(Sense::Minimize);
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        m.add_constraint("c", vec![(a, 1.0), (b, 1.0)], Cmp::Ge, 3.0);
        let out = solve_mip(&m, &MipOptions::default());
        assert!(out.is_infeasible());
        assert!(out.solution().is_none());
    }

    #[test]
    fn set_cover_with_dependencies() {
        // Minimize placed rules: cover two "paths" and respect an
        // implication u >= w (the shape of the placement model).
        let mut m = Model::new(Sense::Minimize);
        let w1 = m.add_binary("w_s1");
        let w2 = m.add_binary("w_s2");
        let u1 = m.add_binary("u_s1");
        for v in [w1, w2, u1] {
            m.set_objective(v, 1.0);
        }
        m.add_constraint("cover_p1", vec![(w1, 1.0), (w2, 1.0)], Cmp::Ge, 1.0);
        m.add_constraint("dep_s1", vec![(u1, 1.0), (w1, -1.0)], Cmp::Ge, 0.0);
        m.add_constraint("cap_s1", vec![(w1, 1.0), (u1, 1.0)], Cmp::Le, 1.0);
        let out = solve_mip(&m, &MipOptions::default());
        let sol = out.solution().unwrap();
        // Cheapest: place w2 alone (s1 can't hold both w1 and its dep).
        assert!((sol.objective - 1.0).abs() < 1e-6);
        assert_eq!(sol.values[w2.0], 1.0);
    }

    #[test]
    fn integral_equality_mix() {
        // x + y + z = 2, minimize 3x + 2y + z → y = z = 1.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        let z = m.add_binary("z");
        m.set_objective(x, 3.0);
        m.set_objective(y, 2.0);
        m.set_objective(z, 1.0);
        m.add_constraint("eq", vec![(x, 1.0), (y, 1.0), (z, 1.0)], Cmp::Eq, 2.0);
        let out = solve_mip(&m, &MipOptions::default());
        let sol = out.solution().unwrap();
        assert!((sol.objective - 3.0).abs() < 1e-6);
    }

    #[test]
    fn warm_start_used_as_incumbent() {
        let mut m = Model::new(Sense::Minimize);
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        m.set_objective(a, 1.0);
        m.set_objective(b, 1.0);
        m.add_constraint("cover", vec![(a, 1.0), (b, 1.0)], Cmp::Ge, 1.0);
        let opts = MipOptions {
            initial_solution: Some(vec![1.0, 1.0]),
            ..MipOptions::default()
        };
        let out = solve_mip(&m, &opts);
        // Still proves the better optimum 1.0.
        assert!(out.is_optimal());
        assert!((out.solution().unwrap().objective - 1.0).abs() < 1e-6);
    }

    #[test]
    fn node_limit_reports_feasible_or_unknown() {
        let mut m = Model::new(Sense::Minimize);
        let vars: Vec<_> = (0..11).map(|i| m.add_binary(format!("x{i}"))).collect();
        for v in &vars {
            m.set_objective(*v, 1.0);
        }
        // Odd-cycle constraints: the LP optimum is all-halves, so the
        // root must branch and the 1-node limit fires before optimality.
        for i in 0..11 {
            let a = vars[i];
            let b = vars[(i + 1) % 11];
            m.add_constraint(format!("c{i}"), vec![(a, 1.0), (b, 1.0)], Cmp::Ge, 1.0);
        }
        let opts = MipOptions {
            node_limit: Some(1),
            ..MipOptions::default()
        };
        let out = solve_mip(&m, &opts);
        assert!(matches!(
            out.status,
            MipStatus::Feasible | MipStatus::Unknown
        ));
    }

    #[test]
    fn time_limit_zero_reports_unknown() {
        let mut m = Model::new(Sense::Minimize);
        let vars: Vec<_> = (0..9).map(|i| m.add_binary(format!("x{i}"))).collect();
        for v in &vars {
            m.set_objective(*v, 1.0);
        }
        for i in 0..9 {
            m.add_constraint(
                format!("c{i}"),
                vec![(vars[i], 1.0), (vars[(i + 1) % 9], 1.0)],
                Cmp::Ge,
                1.0,
            );
        }
        let opts = MipOptions {
            time_limit: Some(Duration::ZERO),
            ..MipOptions::default()
        };
        let out = solve_mip(&m, &opts);
        assert_eq!(out.status, MipStatus::Unknown);
        assert_eq!(out.nodes, 0);
    }

    #[test]
    fn preset_cancel_flag_stops_before_first_node() {
        let mut m = Model::new(Sense::Minimize);
        let vars: Vec<_> = (0..9).map(|i| m.add_binary(format!("x{i}"))).collect();
        for v in &vars {
            m.set_objective(*v, 1.0);
        }
        for i in 0..9 {
            m.add_constraint(
                format!("c{i}"),
                vec![(vars[i], 1.0), (vars[(i + 1) % 9], 1.0)],
                Cmp::Ge,
                1.0,
            );
        }
        let flag = Arc::new(AtomicBool::new(true));
        let opts = MipOptions {
            cancel: Some(flag),
            ..MipOptions::default()
        };
        let out = solve_mip(&m, &opts);
        assert_eq!(out.status, MipStatus::Unknown);
        assert_eq!(out.nodes, 0);
    }

    #[test]
    fn unset_cancel_flag_does_not_disturb_search() {
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        m.set_objective(a, 2.0);
        m.set_objective(b, 1.0);
        m.add_constraint("cap", vec![(a, 1.0), (b, 1.0)], Cmp::Le, 1.0);
        let opts = MipOptions {
            cancel: Some(Arc::new(AtomicBool::new(false))),
            ..MipOptions::default()
        };
        let out = solve_mip(&m, &opts);
        assert!(out.is_optimal());
        assert!((out.solution().unwrap().objective - 2.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_warm_start_is_ignored() {
        let mut m = Model::new(Sense::Minimize);
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        m.set_objective(a, 1.0);
        m.set_objective(b, 1.0);
        m.add_constraint("cover", vec![(a, 1.0), (b, 1.0)], Cmp::Ge, 1.0);
        let opts = MipOptions {
            initial_solution: Some(vec![0.0, 0.0]), // violates the cover
            ..MipOptions::default()
        };
        let out = solve_mip(&m, &opts);
        assert!(out.is_optimal());
        assert!((out.solution().unwrap().objective - 1.0).abs() < 1e-6);
    }

    #[test]
    fn presolve_tightened_bounds_respected_by_branching() {
        // Regression: branching must intersect with standing bounds, not
        // overwrite them (a presolve-fixed variable stays fixed).
        let mut m = Model::new(Sense::Minimize);
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        m.set_objective(a, 1.0);
        m.set_objective(b, 2.0);
        m.add_constraint("cover", vec![(a, 1.0), (b, 1.0)], Cmp::Ge, 1.0);
        m.set_bounds(a, 1.0, 1.0); // "presolve" fixed a = 1
        let out = solve_mip(&m, &MipOptions::default());
        let sol = out.solution().unwrap();
        assert_eq!(sol.values[a.0], 1.0);
        assert!((sol.objective - 1.0).abs() < 1e-6);
        // And fixing to the other side:
        m.set_bounds(a, 0.0, 0.0);
        let out = solve_mip(&m, &MipOptions::default());
        let sol = out.solution().unwrap();
        assert_eq!(sol.values[a.0], 0.0);
        assert_eq!(sol.values[b.0], 1.0);
    }

    #[test]
    fn lazy_cuts_are_respected() {
        // minimize a + b, cover a + b >= 1; lazy: forbid (a=1,b=0) by
        // requiring b >= a.
        let mut m = Model::new(Sense::Minimize);
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        m.set_objective(a, 1.0);
        m.set_objective(b, 1.1);
        m.add_constraint("cover", vec![(a, 1.0), (b, 1.0)], Cmp::Ge, 1.0);
        let mut calls = 0;
        let out = solve_mip_lazy(&m, &MipOptions::default(), &mut |vals| {
            calls += 1;
            if vals[a.0] > 0.5 && vals[b.0] < 0.5 {
                vec![crate::model::Constraint {
                    name: "lazy_dep".into(),
                    terms: vec![(b, 1.0), (a, -1.0)],
                    cmp: Cmp::Ge,
                    rhs: 0.0,
                }]
            } else {
                Vec::new()
            }
        });
        let sol = out.solution().unwrap();
        assert!(calls >= 1);
        assert!(out.lazy_rows_added >= 1);
        // With the cut, the cheapest cover is b alone (1.1).
        assert!((sol.objective - 1.1).abs() < 1e-6, "obj {}", sol.objective);
        assert_eq!(sol.values[b.0], 1.0);
    }

    #[test]
    fn ten_var_assignment_exactness() {
        // Compare against brute force on a random-ish fixed instance.
        let costs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0, 5.0, 3.0];
        let mut m = Model::new(Sense::Minimize);
        let vars: Vec<_> = (0..10).map(|i| m.add_binary(format!("x{i}"))).collect();
        for (v, c) in vars.iter().zip(costs) {
            m.set_objective(*v, c);
        }
        // Pair covers: x_{2i} + x_{2i+1} >= 1.
        for i in 0..5 {
            m.add_constraint(
                format!("pair{i}"),
                vec![(vars[2 * i], 1.0), (vars[2 * i + 1], 1.0)],
                Cmp::Ge,
                1.0,
            );
        }
        // Global cap: at most 6 picked.
        m.add_constraint(
            "cap",
            vars.iter().map(|&v| (v, 1.0)).collect(),
            Cmp::Le,
            6.0,
        );
        let out = solve_mip(&m, &MipOptions::default());
        let got = out.solution().unwrap().objective;

        // Brute force.
        let mut best = f64::INFINITY;
        for mask in 0u32..(1 << 10) {
            let vals: Vec<f64> = (0..10)
                .map(|i| if mask & (1 << i) != 0 { 1.0 } else { 0.0 })
                .collect();
            if m.check_feasible(&vals, 1e-9).is_ok() {
                best = best.min(m.objective_value(&vals));
            }
        }
        assert!((got - best).abs() < 1e-6, "got {got}, brute force {best}");
    }
}

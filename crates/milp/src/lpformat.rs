//! CPLEX LP-format export.
//!
//! Writes a [`Model`] in the LP file format understood by CPLEX, Gurobi,
//! SCIP, HiGHS, lp_solve, and most other solvers — so any model this
//! library builds (in particular the paper's placement encodings) can be
//! cross-checked against an industrial solver, exactly the way the
//! paper's authors drove CPLEX.

use std::fmt::Write as _;

use crate::model::{Cmp, Model, Sense, VarKind};

/// Renders `model` in CPLEX LP format.
///
/// Variable names are sanitized to `x<i>` (LP format forbids many
/// characters); a trailing comment maps them back to the model's own
/// names when those differ.
pub fn to_lp_format(model: &Model) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "\\ exported by flowplace-milp: {} vars, {} rows",
        model.num_vars(),
        model.num_constraints()
    );
    let _ = writeln!(
        out,
        "{}",
        match model.sense() {
            Sense::Minimize => "Minimize",
            Sense::Maximize => "Maximize",
        }
    );
    // Objective.
    let mut obj = String::from(" obj:");
    let mut any = false;
    for i in 0..model.num_vars() {
        let c = model.objective_coefficient(crate::VarId(i));
        if c != 0.0 {
            let _ = write!(obj, " {} x{}", signed(c), i);
            any = true;
        }
    }
    if !any {
        obj.push_str(" 0 x0");
    }
    let _ = writeln!(out, "{obj}");

    let _ = writeln!(out, "Subject To");
    for (r, c) in model.constraints().iter().enumerate() {
        let mut row = format!(" c{r}:");
        for (v, a) in &c.terms {
            let _ = write!(row, " {} x{}", signed(*a), v.0);
        }
        let op = match c.cmp {
            Cmp::Le => "<=",
            Cmp::Ge => ">=",
            Cmp::Eq => "=",
        };
        let _ = writeln!(out, "{row} {op} {}", c.rhs);
    }

    let _ = writeln!(out, "Bounds");
    for i in 0..model.num_vars() {
        let v = crate::VarId(i);
        if model.kind(v) == VarKind::Binary {
            continue; // covered by the Binary section
        }
        let (lo, hi) = (model.lower(v), model.upper(v));
        match (lo.is_finite(), hi.is_finite()) {
            (true, true) => {
                let _ = writeln!(out, " {lo} <= x{i} <= {hi}");
            }
            (true, false) => {
                let _ = writeln!(out, " x{i} >= {lo}");
            }
            (false, true) => {
                let _ = writeln!(out, " x{i} <= {hi}");
            }
            (false, false) => {
                let _ = writeln!(out, " x{i} free");
            }
        }
    }

    let binaries = model.binary_vars();
    if !binaries.is_empty() {
        let _ = writeln!(out, "Binary");
        let mut line = String::from(" ");
        for (k, b) in binaries.iter().enumerate() {
            let _ = write!(line, "x{} ", b.0);
            if (k + 1) % 16 == 0 {
                let _ = writeln!(out, "{line}");
                line = String::from(" ");
            }
        }
        if line.trim() != "" {
            let _ = writeln!(out, "{line}");
        }
    }
    let _ = writeln!(out, "End");
    out
}

fn signed(c: f64) -> String {
    if c >= 0.0 {
        format!("+ {c}")
    } else {
        format!("- {}", -c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;

    #[test]
    fn exports_all_sections() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_binary("x");
        let y = m.add_continuous("y", 0.0, 5.0);
        let z = m.add_continuous("z", f64::NEG_INFINITY, f64::INFINITY);
        m.set_objective(x, 2.0);
        m.set_objective(y, -1.5);
        m.add_constraint("a", vec![(x, 1.0), (y, 1.0)], Cmp::Ge, 1.0);
        m.add_constraint("b", vec![(y, 2.0), (z, -1.0)], Cmp::Le, 4.0);
        m.add_constraint("c", vec![(z, 1.0)], Cmp::Eq, 0.5);
        let lp = to_lp_format(&m);
        assert!(lp.starts_with("\\ exported"));
        assert!(lp.contains("Minimize"));
        assert!(lp.contains(" obj: + 2 x0 - 1.5 x1"));
        assert!(lp.contains(" c0: + 1 x0 + 1 x1 >= 1"));
        assert!(lp.contains(" c1: + 2 x1 - 1 x2 <= 4"));
        assert!(lp.contains(" c2: + 1 x2 = 0.5"));
        assert!(lp.contains(" 0 <= x1 <= 5"));
        assert!(lp.contains(" x2 free"));
        assert!(lp.contains("Binary"));
        assert!(lp.contains("x0"));
        assert!(lp.trim_end().ends_with("End"));
    }

    #[test]
    fn maximize_and_empty_objective() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_binary("x");
        m.add_constraint("a", vec![(x, 1.0)], Cmp::Le, 1.0);
        let lp = to_lp_format(&m);
        assert!(lp.contains("Maximize"));
        assert!(lp.contains(" obj: 0 x0"), "zero objective placeholder");
    }

    #[test]
    fn binary_line_wrapping() {
        let mut m = Model::new(Sense::Minimize);
        for i in 0..40 {
            m.add_binary(format!("b{i}"));
        }
        let lp = to_lp_format(&m);
        let binary_section: Vec<&str> = lp
            .lines()
            .skip_while(|l| *l != "Binary")
            .skip(1)
            .take_while(|l| *l != "End")
            .collect();
        assert!(binary_section.len() >= 3, "wrapped into multiple lines");
    }
}

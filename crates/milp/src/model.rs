//! Model construction: variables, constraints, objective.

use std::fmt;

/// Identifier of a model variable.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct VarId(pub usize);

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// The integrality class of a variable.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VarKind {
    /// Real-valued within its bounds.
    Continuous,
    /// Must take value 0 or 1 in a MIP solution.
    Binary,
}

/// Optimization direction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Sense {
    /// Minimize the objective.
    Minimize,
    /// Maximize the objective.
    Maximize,
}

/// Comparison operator of a linear constraint.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Cmp {
    /// `Σ aᵢxᵢ ≤ b`
    Le,
    /// `Σ aᵢxᵢ ≥ b`
    Ge,
    /// `Σ aᵢxᵢ = b`
    Eq,
}

impl fmt::Display for Cmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cmp::Le => write!(f, "<="),
            Cmp::Ge => write!(f, ">="),
            Cmp::Eq => write!(f, "="),
        }
    }
}

#[derive(Clone, Debug)]
pub(crate) struct Variable {
    pub name: String,
    pub kind: VarKind,
    pub lower: f64,
    pub upper: f64,
    pub objective: f64,
}

/// A linear constraint `Σ aᵢxᵢ  cmp  rhs`.
#[derive(Clone, Debug, PartialEq)]
pub struct Constraint {
    /// Diagnostic name.
    pub name: String,
    /// Sparse terms `(variable, coefficient)`; duplicate variables are
    /// summed by [`Model::add_constraint`].
    pub terms: Vec<(VarId, f64)>,
    /// Comparison operator.
    pub cmp: Cmp,
    /// Right-hand side.
    pub rhs: f64,
}

/// A mixed 0/1 linear program.
///
/// Variables are continuous within `[lower, upper]` or binary; constraints
/// are sparse linear rows; the objective is a linear function optimized in
/// the model's [`Sense`].
#[derive(Clone, Debug)]
pub struct Model {
    pub(crate) vars: Vec<Variable>,
    pub(crate) constraints: Vec<Constraint>,
    pub(crate) sense: Sense,
}

impl Model {
    /// Creates an empty model.
    pub fn new(sense: Sense) -> Self {
        Model {
            vars: Vec::new(),
            constraints: Vec::new(),
            sense,
        }
    }

    /// The optimization sense.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Adds a binary (0/1) variable with zero objective coefficient.
    pub fn add_binary(&mut self, name: impl Into<String>) -> VarId {
        let id = VarId(self.vars.len());
        self.vars.push(Variable {
            name: name.into(),
            kind: VarKind::Binary,
            lower: 0.0,
            upper: 1.0,
            objective: 0.0,
        });
        id
    }

    /// Adds a continuous variable with the given bounds
    /// (use `f64::NEG_INFINITY` / `f64::INFINITY` for free directions)
    /// and zero objective coefficient.
    ///
    /// # Panics
    ///
    /// Panics if `lower > upper` or either bound is NaN.
    pub fn add_continuous(&mut self, name: impl Into<String>, lower: f64, upper: f64) -> VarId {
        assert!(!lower.is_nan() && !upper.is_nan(), "NaN variable bound");
        assert!(lower <= upper, "empty variable domain [{lower}, {upper}]");
        let id = VarId(self.vars.len());
        self.vars.push(Variable {
            name: name.into(),
            kind: VarKind::Continuous,
            lower,
            upper,
            objective: 0.0,
        });
        id
    }

    /// Sets the objective coefficient of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn set_objective(&mut self, var: VarId, coefficient: f64) {
        self.vars[var.0].objective = coefficient;
    }

    /// Adds a linear constraint; duplicate variables in `terms` are summed
    /// and zero coefficients dropped. Returns the row index.
    ///
    /// # Panics
    ///
    /// Panics if any referenced variable is out of range or any
    /// coefficient/rhs is NaN.
    pub fn add_constraint(
        &mut self,
        name: impl Into<String>,
        terms: Vec<(VarId, f64)>,
        cmp: Cmp,
        rhs: f64,
    ) -> usize {
        assert!(!rhs.is_nan(), "NaN rhs");
        let mut merged: std::collections::BTreeMap<usize, f64> = std::collections::BTreeMap::new();
        for (v, c) in terms {
            assert!(v.0 < self.vars.len(), "unknown variable {v}");
            assert!(!c.is_nan(), "NaN coefficient");
            *merged.entry(v.0).or_insert(0.0) += c;
        }
        let terms: Vec<(VarId, f64)> = merged
            .into_iter()
            .filter(|(_, c)| *c != 0.0)
            .map(|(v, c)| (VarId(v), c))
            .collect();
        self.constraints.push(Constraint {
            name: name.into(),
            terms,
            cmp,
            rhs,
        });
        self.constraints.len() - 1
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Lower bound of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn lower(&self, var: VarId) -> f64 {
        self.vars[var.0].lower
    }

    /// Upper bound of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn upper(&self, var: VarId) -> f64 {
        self.vars[var.0].upper
    }

    /// The integrality kind of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn kind(&self, var: VarId) -> VarKind {
        self.vars[var.0].kind
    }

    /// The objective coefficient of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn objective_coefficient(&self, var: VarId) -> f64 {
        self.vars[var.0].objective
    }

    /// The name of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn var_name(&self, var: VarId) -> &str {
        &self.vars[var.0].name
    }

    /// Overwrites a variable's bounds (used by presolve and branching).
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range or the new domain is empty/NaN.
    pub fn set_bounds(&mut self, var: VarId, lower: f64, upper: f64) {
        assert!(!lower.is_nan() && !upper.is_nan(), "NaN variable bound");
        assert!(lower <= upper, "empty variable domain [{lower}, {upper}]");
        self.vars[var.0].lower = lower;
        self.vars[var.0].upper = upper;
    }

    /// Pins a variable to a single value (`lower = upper = value`).
    ///
    /// Branch-and-bound intersects its branching bounds with standing
    /// bounds, so fixing variables before a solve restricts the search to
    /// the fixed subspace — the mechanism warm-started incremental
    /// re-solves use to freeze placements of untouched ingresses.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range or `value` is NaN.
    pub fn fix_var(&mut self, var: VarId, value: f64) {
        self.set_bounds(var, value, value);
    }

    /// The constraints of the model.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// The objective value of an assignment.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != num_vars()`.
    pub fn objective_value(&self, values: &[f64]) -> f64 {
        assert_eq!(values.len(), self.vars.len());
        self.vars
            .iter()
            .zip(values)
            .map(|(v, x)| v.objective * x)
            .sum()
    }

    /// Checks that an assignment satisfies every constraint, bound, and
    /// integrality requirement within `tol`. Returns the first violation
    /// description, or `Ok(())`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// bound, integrality requirement, or constraint.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != num_vars()`.
    pub fn check_feasible(&self, values: &[f64], tol: f64) -> Result<(), String> {
        assert_eq!(values.len(), self.vars.len());
        for (i, (v, &x)) in self.vars.iter().zip(values).enumerate() {
            if x < v.lower - tol || x > v.upper + tol {
                return Err(format!(
                    "variable {} = {x} outside [{}, {}]",
                    VarId(i),
                    v.lower,
                    v.upper
                ));
            }
            if v.kind == VarKind::Binary && (x - x.round()).abs() > tol {
                return Err(format!("variable {} = {x} not integral", VarId(i)));
            }
        }
        for c in &self.constraints {
            let lhs: f64 = c.terms.iter().map(|(v, a)| a * values[v.0]).sum();
            let ok = match c.cmp {
                Cmp::Le => lhs <= c.rhs + tol,
                Cmp::Ge => lhs >= c.rhs - tol,
                Cmp::Eq => (lhs - c.rhs).abs() <= tol,
            };
            if !ok {
                return Err(format!(
                    "constraint {}: {lhs} {} {} violated",
                    c.name, c.cmp, c.rhs
                ));
            }
        }
        Ok(())
    }

    /// Ids of all binary variables.
    pub fn binary_vars(&self) -> Vec<VarId> {
        self.vars
            .iter()
            .enumerate()
            .filter(|(_, v)| v.kind == VarKind::Binary)
            .map(|(i, _)| VarId(i))
            .collect()
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "model: {} vars ({} binary), {} constraints, {:?}",
            self.num_vars(),
            self.binary_vars().len(),
            self.num_constraints(),
            self.sense
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_query_vars() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_binary("x");
        let y = m.add_continuous("y", -1.0, 5.0);
        assert_eq!(m.num_vars(), 2);
        assert_eq!(m.kind(x), VarKind::Binary);
        assert_eq!(m.kind(y), VarKind::Continuous);
        assert_eq!(m.lower(y), -1.0);
        assert_eq!(m.upper(y), 5.0);
        assert_eq!(m.var_name(x), "x");
        assert_eq!(m.binary_vars(), vec![x]);
    }

    #[test]
    fn constraint_merges_duplicates_and_drops_zeros() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_constraint("c", vec![(x, 1.0), (x, 2.0), (y, 0.0)], Cmp::Le, 4.0);
        assert_eq!(m.constraints()[0].terms, vec![(x, 3.0)]);
    }

    #[test]
    fn objective_value_and_check() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.set_objective(x, 2.0);
        m.set_objective(y, 3.0);
        m.add_constraint("c", vec![(x, 1.0), (y, 1.0)], Cmp::Ge, 1.0);
        assert_eq!(m.objective_value(&[1.0, 0.0]), 2.0);
        assert!(m.check_feasible(&[1.0, 0.0], 1e-9).is_ok());
        assert!(m.check_feasible(&[0.0, 0.0], 1e-9).is_err());
        assert!(m.check_feasible(&[0.5, 1.0], 1e-9).is_err()); // not integral
    }

    #[test]
    fn fix_var_pins_both_bounds() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_binary("x");
        m.fix_var(x, 1.0);
        assert_eq!(m.lower(x), 1.0);
        assert_eq!(m.upper(x), 1.0);
        assert!(m.check_feasible(&[1.0], 1e-9).is_ok());
        assert!(m.check_feasible(&[0.0], 1e-9).is_err());
    }

    #[test]
    #[should_panic(expected = "empty variable domain")]
    fn bad_bounds_panic() {
        let mut m = Model::new(Sense::Minimize);
        m.add_continuous("y", 2.0, 1.0);
    }

    #[test]
    fn display_mentions_shape() {
        let mut m = Model::new(Sense::Maximize);
        m.add_binary("x");
        let s = m.to_string();
        assert!(s.contains("1 vars"));
        assert!(s.contains("Maximize"));
    }
}

//! Conservative presolve reductions.
//!
//! Applied before branch & bound to shrink the model without changing its
//! solution set (projected to the original variables):
//!
//! * **Duplicate rows** — identical `(terms, cmp, rhs)` rows are removed.
//! * **Singleton rows** — a row with one variable becomes a bound update.
//! * **Empty rows** — constant rows are checked and dropped (an
//!   unsatisfiable constant row makes the whole model trivially
//!   infeasible).
//!
//! Variables are never removed, so solutions map back index-for-index.

use std::collections::HashSet;

use crate::model::{Cmp, Model};

/// Result of [`presolve`].
#[derive(Clone, Debug)]
pub struct Presolved {
    /// The reduced model (same variable ids as the input).
    pub model: Model,
    /// True if presolve proved the model infeasible outright.
    pub infeasible: bool,
    /// Rows removed (duplicates, singletons, empties).
    pub rows_removed: usize,
    /// Variable bounds tightened by singleton rows.
    pub bounds_tightened: usize,
}

/// Applies the reductions described in the module docs.
pub fn presolve(model: &Model) -> Presolved {
    let mut out = Model::new(model.sense);
    out.vars = model.vars.clone();
    let mut infeasible = false;
    let mut rows_removed = 0;
    let mut bounds_tightened = 0;
    let mut seen: HashSet<String> = HashSet::new();
    let tol = 1e-9;

    for c in &model.constraints {
        // Empty row: constant comparison.
        if c.terms.is_empty() {
            let ok = match c.cmp {
                Cmp::Le => 0.0 <= c.rhs + tol,
                Cmp::Ge => 0.0 >= c.rhs - tol,
                Cmp::Eq => c.rhs.abs() <= tol,
            };
            if !ok {
                infeasible = true;
            }
            rows_removed += 1;
            continue;
        }
        // Singleton row: becomes a bound.
        if c.terms.len() == 1 {
            let (v, a) = c.terms[0];
            let bound = c.rhs / a;
            let (mut lo, mut hi): (f64, f64) = (out.vars[v.0].lower, out.vars[v.0].upper);
            match (c.cmp, a > 0.0) {
                (Cmp::Le, true) | (Cmp::Ge, false) => hi = hi.min(bound),
                (Cmp::Ge, true) | (Cmp::Le, false) => lo = lo.max(bound),
                (Cmp::Eq, _) => {
                    lo = lo.max(bound);
                    hi = hi.min(bound);
                }
            }
            // Binary domains stay integral: x >= 0.5 means x = 1.
            if out.vars[v.0].kind == crate::model::VarKind::Binary {
                lo = if lo > tol { lo.ceil() } else { lo.max(0.0) };
                hi = if hi < 1.0 - tol {
                    hi.floor()
                } else {
                    hi.min(1.0)
                };
            }
            if lo > hi + tol {
                infeasible = true;
            } else {
                out.vars[v.0].lower = lo;
                out.vars[v.0].upper = hi.max(lo);
                bounds_tightened += 1;
            }
            rows_removed += 1;
            continue;
        }
        // Duplicate detection via a canonical key.
        let mut key = String::with_capacity(c.terms.len() * 12);
        for (v, a) in &c.terms {
            key.push_str(&format!("{}:{a};", v.0));
        }
        key.push_str(&format!("{:?}{}", c.cmp, c.rhs));
        if !seen.insert(key) {
            rows_removed += 1;
            continue;
        }
        out.constraints.push(c.clone());
    }

    Presolved {
        model: out,
        infeasible,
        rows_removed,
        bounds_tightened,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Sense;

    #[test]
    fn removes_duplicates() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_constraint("a", vec![(x, 1.0), (y, 1.0)], Cmp::Ge, 1.0);
        m.add_constraint("b", vec![(x, 1.0), (y, 1.0)], Cmp::Ge, 1.0);
        m.add_constraint("c", vec![(x, 1.0), (y, 1.0)], Cmp::Le, 1.0); // different cmp
        let p = presolve(&m);
        assert_eq!(p.rows_removed, 1);
        assert_eq!(p.model.num_constraints(), 2);
    }

    #[test]
    fn singleton_tightens_bounds() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 0.0, 10.0);
        m.add_constraint("a", vec![(x, 2.0)], Cmp::Le, 6.0); // x <= 3
        m.add_constraint("b", vec![(x, -1.0)], Cmp::Le, -1.0); // x >= 1
        let p = presolve(&m);
        assert!(!p.infeasible);
        assert_eq!(p.model.num_constraints(), 0);
        assert_eq!(p.model.lower(x), 1.0);
        assert_eq!(p.model.upper(x), 3.0);
        assert_eq!(p.bounds_tightened, 2);
    }

    #[test]
    fn singleton_conflict_is_infeasible() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_binary("x");
        m.add_constraint("a", vec![(x, 1.0)], Cmp::Ge, 2.0);
        let p = presolve(&m);
        assert!(p.infeasible);
    }

    #[test]
    fn empty_row_checked() {
        let mut m = Model::new(Sense::Minimize);
        let _ = m.add_binary("x");
        m.add_constraint("bad", vec![], Cmp::Ge, 1.0);
        let p = presolve(&m);
        assert!(p.infeasible);

        let mut m2 = Model::new(Sense::Minimize);
        let _ = m2.add_binary("x");
        m2.add_constraint("fine", vec![], Cmp::Le, 1.0);
        let p2 = presolve(&m2);
        assert!(!p2.infeasible);
        assert_eq!(p2.model.num_constraints(), 0);
    }

    #[test]
    fn equality_singleton_fixes_var() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 0.0, 10.0);
        m.add_constraint("fix", vec![(x, 2.0)], Cmp::Eq, 8.0);
        let p = presolve(&m);
        assert_eq!(p.model.lower(x), 4.0);
        assert_eq!(p.model.upper(x), 4.0);
    }
}

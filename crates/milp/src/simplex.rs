//! Bounded-variable two-phase revised primal simplex.
//!
//! Solves the LP relaxation of a [`Model`]: all variables are treated as
//! continuous within their bounds. The implementation keeps an explicit
//! dense basis inverse (suitable for the few-thousand-row models produced
//! by the placement encoder), sparse constraint columns, Dantzig pricing
//! with a Bland's-rule fallback for degeneracy, and bound-flip ("long
//! step") handling for boxed variables.
#![allow(clippy::needless_range_loop)] // dense kernels index several arrays at once

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::model::{Cmp, Model, Sense};
use crate::status::{LpOutcome, LpSolution, SolveError};

/// Options controlling an LP solve.
#[derive(Clone, Debug)]
pub struct LpOptions {
    /// Hard cap on total simplex iterations (both phases).
    pub max_iterations: usize,
    /// Reduced-cost / pivot tolerance.
    pub tolerance: f64,
    /// Cooperative cancellation flag, polled once per simplex iteration
    /// (each iteration is `O(m²)` work, so the poll is free). A cancelled
    /// solve reports [`LpOutcome::IterationLimit`] — large root LPs must
    /// be interruptible or the portfolio racer would block on them.
    pub cancel: Option<Arc<AtomicBool>>,
    /// Hard wall-clock deadline, checked once per iteration. An expired
    /// solve reports [`LpOutcome::IterationLimit`]. The MIP driver
    /// derives this from its own time limit so a single oversized LP
    /// cannot overshoot the budget by more than one iteration.
    pub deadline: Option<std::time::Instant>,
}

impl Default for LpOptions {
    fn default() -> Self {
        LpOptions {
            max_iterations: 200_000,
            tolerance: 1e-9,
            cancel: None,
            deadline: None,
        }
    }
}

/// Solves the LP relaxation of `model` with default options.
pub fn solve_lp(model: &Model) -> LpOutcome {
    solve_lp_with(model, &LpOptions::default())
}

/// Solves the LP relaxation of `model`.
pub fn solve_lp_with(model: &Model, options: &LpOptions) -> LpOutcome {
    if let Err(e) = validate_model(model) {
        return LpOutcome::Error(e);
    }
    let mut s = match Simplex::build(model, options) {
        Ok(s) => s,
        Err(e) => return LpOutcome::Error(e),
    };
    s.solve(model)
}

/// Rejects models the simplex cannot meaningfully process: NaN or
/// reversed variable bounds, a lower bound of `+inf` / upper of `-inf`,
/// and non-finite objective, constraint, or right-hand-side
/// coefficients.
pub(crate) fn validate_model(model: &Model) -> Result<(), SolveError> {
    for (j, v) in model.vars.iter().enumerate() {
        let bad = v.lower.is_nan()
            || v.upper.is_nan()
            || v.lower == f64::INFINITY
            || v.upper == f64::NEG_INFINITY
            || v.lower > v.upper;
        if bad {
            return Err(SolveError::BadBound {
                var: j,
                lower: v.lower,
                upper: v.upper,
            });
        }
        if !v.objective.is_finite() {
            return Err(SolveError::BadObjective {
                var: j,
                value: v.objective,
            });
        }
    }
    for (i, c) in model.constraints.iter().enumerate() {
        for &(v, a) in &c.terms {
            if !a.is_finite() {
                return Err(SolveError::BadCoefficient {
                    constraint: i,
                    var: v.0,
                    value: a,
                });
            }
        }
        if !c.rhs.is_finite() {
            return Err(SolveError::BadRhs {
                constraint: i,
                value: c.rhs,
            });
        }
    }
    Ok(())
}

#[derive(Clone, Copy, PartialEq, Debug)]
enum VStat {
    Basic(usize),
    AtLower,
    AtUpper,
    /// Nonbasic free variable parked at value zero.
    FreeZero,
}

enum PhaseResult {
    Converged,
    Unbounded,
    IterationLimit,
    Error(SolveError),
}

struct Simplex {
    /// Number of rows.
    m: usize,
    /// Number of structural variables (a prefix of the columns).
    n_struct: usize,
    /// Sparse columns: `cols[j]` lists `(row, coefficient)`.
    cols: Vec<Vec<(usize, f64)>>,
    lower: Vec<f64>,
    upper: Vec<f64>,
    /// Phase-2 (true) objective, already negated for maximization.
    cost2: Vec<f64>,
    /// Active-phase objective.
    cost: Vec<f64>,
    status: Vec<VStat>,
    /// `basis[i]` = column basic in row `i`.
    basis: Vec<usize>,
    /// Dense row-major basis inverse, `m × m`.
    binv: Vec<f64>,
    /// Values of basic variables, by row.
    xb: Vec<f64>,
    iterations: usize,
    max_iterations: usize,
    /// Cooperative cancellation flag (see [`LpOptions::cancel`]).
    cancel: Option<Arc<AtomicBool>>,
    /// Wall-clock deadline (see [`LpOptions::deadline`]).
    deadline: Option<std::time::Instant>,
    tol: f64,
    /// Consecutive (near-)degenerate pivots; triggers Bland's rule.
    degenerate_streak: usize,
    /// First artificial column index (columns `>= art_start` are
    /// artificial), or `cols.len()` when there are none.
    art_start: usize,
}

impl Simplex {
    fn build(model: &Model, options: &LpOptions) -> Result<Simplex, SolveError> {
        let m = model.constraints.len();
        let n = model.vars.len();
        let sense_mul = match model.sense {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };

        let mut cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        let mut lower: Vec<f64> = model.vars.iter().map(|v| v.lower).collect();
        let mut upper: Vec<f64> = model.vars.iter().map(|v| v.upper).collect();
        let mut cost2: Vec<f64> = model.vars.iter().map(|v| v.objective * sense_mul).collect();
        let mut rhs = Vec::with_capacity(m);
        for (i, c) in model.constraints.iter().enumerate() {
            for &(v, a) in &c.terms {
                cols[v.0].push((i, a));
            }
            rhs.push(c.rhs);
        }
        // Slack columns.
        for (i, c) in model.constraints.iter().enumerate() {
            cols.push(vec![(i, 1.0)]);
            let (lo, hi) = match c.cmp {
                Cmp::Le => (0.0, f64::INFINITY),
                Cmp::Ge => (f64::NEG_INFINITY, 0.0),
                Cmp::Eq => (0.0, 0.0),
            };
            lower.push(lo);
            upper.push(hi);
            cost2.push(0.0);
        }

        // Initial nonbasic statuses for structural variables: the finite
        // bound closest to zero, or free at zero.
        let mut status = Vec::with_capacity(cols.len());
        for j in 0..n {
            status.push(initial_status(lower[j], upper[j]));
        }
        // Residual each slack must absorb.
        let mut resid = rhs;
        for j in 0..n {
            let v = nb_value(lower[j], upper[j], status[j])?;
            if v != 0.0 {
                for &(i, a) in &cols[j] {
                    resid[i] -= a * v;
                }
            }
        }

        let mut basis = vec![usize::MAX; m];
        let mut xb = vec![0.0; m];
        let mut binv = vec![0.0; m * m];
        // First pass: slack statuses, keeping status indices aligned with
        // the slack columns n..n+m. Rows whose slack cannot absorb the
        // residual are deferred to the artificial pass.
        let mut needs_artificial: Vec<(usize, f64, f64)> = Vec::new(); // (row, r, sb)
        for i in 0..m {
            let sj = n + i;
            let (sl, su) = (lower[sj], upper[sj]);
            let r = resid[i];
            if r >= sl - options.tolerance && r <= su + options.tolerance {
                status.push(VStat::Basic(i));
                basis[i] = sj;
                xb[i] = r;
                binv[i * m + i] = 1.0;
            } else {
                // Park the slack at its nearest (finite) bound.
                let sb = if r < sl { sl } else { su };
                status.push(if sb == sl {
                    VStat::AtLower
                } else {
                    VStat::AtUpper
                });
                needs_artificial.push((i, r, sb));
            }
        }
        let art_candidate = cols.len();
        // Second pass: artificial columns, appended after every slack so
        // statuses stay aligned with columns.
        for (i, r, sb) in needs_artificial {
            let g: f64 = if r - sb > 0.0 { 1.0 } else { -1.0 };
            let aj = cols.len();
            cols.push(vec![(i, g)]);
            lower.push(0.0);
            upper.push(f64::INFINITY);
            cost2.push(0.0);
            status.push(VStat::Basic(i));
            basis[i] = aj;
            xb[i] = (r - sb) * g; // = |r - sb| > 0
            binv[i * m + i] = g;
        }
        debug_assert_eq!(status.len(), cols.len());

        let ncols = cols.len();
        Ok(Simplex {
            m,
            n_struct: n,
            cols,
            lower,
            upper,
            cost2,
            cost: vec![0.0; ncols],
            status,
            basis,
            binv,
            xb,
            iterations: 0,
            max_iterations: options.max_iterations,
            cancel: options.cancel.clone(),
            deadline: options.deadline,
            tol: options.tolerance,
            degenerate_streak: 0,
            art_start: art_candidate,
        })
    }

    fn solve(&mut self, model: &Model) -> LpOutcome {
        // Phase 1: minimize the sum of artificials, if any.
        if self.art_start < self.cols.len() {
            self.cost = vec![0.0; self.cols.len()];
            for j in self.art_start..self.cols.len() {
                self.cost[j] = 1.0;
            }
            match self.optimize() {
                PhaseResult::IterationLimit => return LpOutcome::IterationLimit,
                PhaseResult::Unbounded => {
                    return LpOutcome::Error(SolveError::Internal(
                        "phase-1 objective diverged below zero",
                    ))
                }
                PhaseResult::Error(e) => return LpOutcome::Error(e),
                PhaseResult::Converged => {}
            }
            let infeas: f64 = (0..self.m)
                .filter(|&i| self.basis[i] >= self.art_start)
                .map(|i| self.xb[i])
                .sum();
            if infeas > 1e-6 {
                return LpOutcome::Infeasible;
            }
            if let Err(e) = self.drive_out_artificials() {
                return LpOutcome::Error(e);
            }
            // Freeze artificials at zero so phase 2 cannot use them.
            for j in self.art_start..self.cols.len() {
                self.lower[j] = 0.0;
                self.upper[j] = 0.0;
            }
        }

        // Phase 2: true objective.
        self.cost = self.cost2.clone();
        match self.optimize() {
            PhaseResult::IterationLimit => LpOutcome::IterationLimit,
            PhaseResult::Unbounded => LpOutcome::Unbounded,
            PhaseResult::Error(e) => LpOutcome::Error(e),
            PhaseResult::Converged => {
                let mut values = vec![0.0; self.n_struct];
                for (j, value) in values.iter_mut().enumerate() {
                    *value = match self.status[j] {
                        VStat::Basic(i) => self.xb[i],
                        st => match nb_value(self.lower[j], self.upper[j], st) {
                            Ok(v) => v,
                            Err(e) => return LpOutcome::Error(e),
                        },
                    };
                }
                let objective = model.objective_value(&values);
                LpOutcome::Optimal(LpSolution {
                    values,
                    objective,
                    iterations: self.iterations,
                })
            }
        }
    }

    /// Pivots basic zero-valued artificials out of the basis where a
    /// non-artificial column can replace them; rows where none can are
    /// linearly redundant and keep their artificial pinned at zero.
    fn drive_out_artificials(&mut self) -> Result<(), SolveError> {
        for row in 0..self.m {
            if self.basis[row] < self.art_start {
                continue;
            }
            // Find a replacement column with a usable pivot in this row.
            let mut found = None;
            for j in 0..self.art_start {
                if matches!(self.status[j], VStat::Basic(_)) {
                    continue;
                }
                let alpha: f64 = self.cols[j]
                    .iter()
                    .map(|&(r, a)| self.binv[row * self.m + r] * a)
                    .sum();
                if alpha.abs() > 1e-7 {
                    found = Some(j);
                    break;
                }
            }
            let Some(q) = found else { continue };
            // Degenerate pivot: the artificial sits at zero, so the basis
            // exchange keeps all values unchanged except bookkeeping.
            let w = self.ftran(q);
            let old = self.basis[row];
            let enter_val = nb_value(self.lower[q], self.upper[q], self.status[q])?;
            self.pivot(row, q, w);
            self.xb[row] = enter_val;
            self.status[old] = VStat::AtLower;
        }
        Ok(())
    }

    /// `Binv * A_q` for a sparse column.
    fn ftran(&self, q: usize) -> Vec<f64> {
        let mut w = vec![0.0; self.m];
        for &(r, a) in &self.cols[q] {
            if a == 0.0 {
                continue;
            }
            let col_of_binv = r;
            for i in 0..self.m {
                w[i] += self.binv[i * self.m + col_of_binv] * a;
            }
        }
        w
    }

    /// Basis exchange: column `q` becomes basic in `row`.
    fn pivot(&mut self, row: usize, q: usize, w: Vec<f64>) {
        let piv = w[row];
        debug_assert!(piv.abs() > 1e-12, "pivot too small: {piv}");
        let m = self.m;
        let inv_piv = 1.0 / piv;
        for k in 0..m {
            self.binv[row * m + k] *= inv_piv;
        }
        for i in 0..m {
            if i == row {
                continue;
            }
            let f = w[i];
            if f == 0.0 {
                continue;
            }
            for k in 0..m {
                self.binv[i * m + k] -= f * self.binv[row * m + k];
            }
        }
        self.basis[row] = q;
        self.status[q] = VStat::Basic(row);
    }

    fn optimize(&mut self) -> PhaseResult {
        loop {
            #[cfg(debug_assertions)]
            for j in 0..self.cols.len() {
                match self.status[j] {
                    VStat::Basic(_) => {}
                    st => {
                        let v = nb_value(self.lower[j], self.upper[j], st)
                            .expect("nonbasic status always has a bound value");
                        assert!(
                            v.is_finite(),
                            "iter {}: column {j} nonbasic at non-finite bound {v} ({st:?}, [{}, {}])",
                            self.iterations, self.lower[j], self.upper[j]
                        );
                    }
                }
            }
            if self.iterations >= self.max_iterations {
                return PhaseResult::IterationLimit;
            }
            if let Some(cancel) = &self.cancel {
                if cancel.load(Ordering::Relaxed) {
                    return PhaseResult::IterationLimit;
                }
            }
            if let Some(deadline) = self.deadline {
                if std::time::Instant::now() >= deadline {
                    return PhaseResult::IterationLimit;
                }
            }
            self.iterations += 1;
            let use_bland = self.degenerate_streak > 200;

            // Pricing: y = c_B' * Binv.
            let m = self.m;
            let mut y = vec![0.0; m];
            for i in 0..m {
                let cb = self.cost[self.basis[i]];
                if cb == 0.0 {
                    continue;
                }
                for k in 0..m {
                    y[k] += cb * self.binv[i * m + k];
                }
            }

            // Entering variable selection.
            let mut best: Option<(usize, f64, f64)> = None; // (col, |d|, sigma)
            for j in 0..self.cols.len() {
                let st = self.status[j];
                if matches!(st, VStat::Basic(_)) {
                    continue;
                }
                // Fixed columns (incl. frozen artificials) can never move.
                if self.upper[j] - self.lower[j] <= 0.0 {
                    continue;
                }
                let d = self.cost[j] - self.cols[j].iter().map(|&(r, a)| y[r] * a).sum::<f64>();
                let (eligible, sigma) = match st {
                    VStat::AtLower => (d < -self.tol, 1.0),
                    VStat::AtUpper => (d > self.tol, -1.0),
                    VStat::FreeZero => (d.abs() > self.tol, if d < 0.0 { 1.0 } else { -1.0 }),
                    VStat::Basic(_) => unreachable!(),
                };
                if !eligible {
                    continue;
                }
                if use_bland {
                    best = Some((j, d.abs(), sigma));
                    break;
                }
                if best.map(|(_, bd, _)| d.abs() > bd).unwrap_or(true) {
                    best = Some((j, d.abs(), sigma));
                }
            }
            let Some((q, _, sigma)) = best else {
                return PhaseResult::Converged;
            };

            // Ratio test.
            let w = self.ftran(q);
            let span = self.upper[q] - self.lower[q]; // may be inf
            let mut t_best = f64::INFINITY;
            let mut leave: Option<usize> = None;
            let mut leave_w: f64 = 0.0;
            for i in 0..m {
                let wi = w[i];
                if wi.abs() <= 1e-10 {
                    continue;
                }
                let bvar = self.basis[i];
                let rate = sigma * wi; // xb[i] moves at -rate per unit t
                let t_i = if rate > 0.0 {
                    let lo = self.lower[bvar];
                    if lo == f64::NEG_INFINITY {
                        continue;
                    }
                    (self.xb[i] - lo) / rate
                } else {
                    let hi = self.upper[bvar];
                    if hi == f64::INFINITY {
                        continue;
                    }
                    (self.xb[i] - hi) / rate
                };
                let t_i = t_i.max(0.0);
                if t_i < t_best - 1e-12 || (t_i < t_best + 1e-12 && wi.abs() > leave_w.abs()) {
                    t_best = t_i;
                    leave = Some(i);
                    leave_w = wi;
                }
            }

            let flip = span.is_finite() && span <= t_best;
            let t = if flip { span } else { t_best };
            if t == f64::INFINITY {
                return PhaseResult::Unbounded;
            }
            self.degenerate_streak = if t <= 1e-10 {
                self.degenerate_streak + 1
            } else {
                0
            };

            // Move basic values.
            if t != 0.0 {
                for i in 0..m {
                    self.xb[i] -= sigma * t * w[i];
                }
            }

            if flip {
                self.status[q] = match self.status[q] {
                    VStat::AtLower => VStat::AtUpper,
                    VStat::AtUpper => VStat::AtLower,
                    other => other, // free vars never flip (span infinite)
                };
            } else {
                let Some(row) = leave else {
                    return PhaseResult::Error(SolveError::Internal(
                        "bounded step has no leaving row",
                    ));
                };
                let leaving = self.basis[row];
                let rate = sigma * w[row];
                let enter_val = match nb_value(self.lower[q], self.upper[q], self.status[q]) {
                    Ok(v) => v + sigma * t,
                    Err(e) => return PhaseResult::Error(e),
                };
                self.status[leaving] = if rate > 0.0 {
                    debug_assert!(
                        self.lower[leaving].is_finite(),
                        "leaving {leaving} to -inf lower (rate {rate}, w {})",
                        w[row]
                    );
                    VStat::AtLower
                } else {
                    debug_assert!(
                        self.upper[leaving].is_finite(),
                        "leaving {leaving} to +inf upper (rate {rate}, w {})",
                        w[row]
                    );
                    VStat::AtUpper
                };
                // A leaving free variable parks wherever it ended; model it
                // as a fixed bound at its final value to stay consistent.
                if self.lower[leaving] == f64::NEG_INFINITY && self.upper[leaving] == f64::INFINITY
                {
                    let v = self.xb[row];
                    self.lower[leaving] = v;
                    self.upper[leaving] = v;
                    self.status[leaving] = VStat::AtLower;
                }
                self.pivot(row, q, w);
                self.xb[row] = enter_val;
            }
        }
    }
}

fn initial_status(lower: f64, upper: f64) -> VStat {
    match (lower.is_finite(), upper.is_finite()) {
        (true, true) => {
            if lower.abs() <= upper.abs() {
                VStat::AtLower
            } else {
                VStat::AtUpper
            }
        }
        (true, false) => VStat::AtLower,
        (false, true) => VStat::AtUpper,
        (false, false) => VStat::FreeZero,
    }
}

/// The resting value of a *nonbasic* variable. Asking for a basic
/// variable's bound value is a solver invariant violation and surfaces
/// as [`SolveError::Internal`] rather than a panic, so a malformed
/// model cannot abort a long-running caller.
fn nb_value(lower: f64, upper: f64, status: VStat) -> Result<f64, SolveError> {
    match status {
        VStat::AtLower => Ok(lower),
        VStat::AtUpper => Ok(upper),
        VStat::FreeZero => Ok(0.0),
        VStat::Basic(_) => Err(SolveError::Internal("basic variable has no bound value")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Cmp, Model, Sense, VarId};

    /// Audit helper: solve and then recompute, from scratch, the basis
    /// inverse and the reduced costs, reporting any inconsistency between
    /// the converged state and exact linear algebra.
    fn audit(model: &Model) -> (LpSolution, Vec<String>) {
        let options = LpOptions::default();
        let mut s = Simplex::build(model, &options).expect("audit models are well-formed");
        let out = s.solve(model);
        let sol = match out {
            LpOutcome::Optimal(ref sol) => sol.clone(),
            ref other => panic!("expected optimal, got {:?}", other.status()),
        };
        let mut problems = Vec::new();
        let m = s.m;
        // Exact basis inverse via Gauss-Jordan on [B | I].
        let mut aug = vec![0.0f64; m * 2 * m];
        for (i, &bj) in s.basis.iter().enumerate() {
            for &(r, a) in &s.cols[bj] {
                aug[r * 2 * m + i] = a;
            }
        }
        for i in 0..m {
            aug[i * 2 * m + m + i] = 1.0;
        }
        for col in 0..m {
            let mut piv = col;
            for r in col + 1..m {
                if aug[r * 2 * m + col].abs() > aug[piv * 2 * m + col].abs() {
                    piv = r;
                }
            }
            if aug[piv * 2 * m + col].abs() < 1e-12 {
                problems.push(format!("basis singular at column {col}"));
                return (sol, problems);
            }
            if piv != col {
                for k in 0..2 * m {
                    aug.swap(col * 2 * m + k, piv * 2 * m + k);
                }
            }
            let d = aug[col * 2 * m + col];
            for k in 0..2 * m {
                aug[col * 2 * m + k] /= d;
            }
            for r in 0..m {
                if r != col {
                    let f = aug[r * 2 * m + col];
                    if f != 0.0 {
                        for k in 0..2 * m {
                            aug[r * 2 * m + k] -= f * aug[col * 2 * m + k];
                        }
                    }
                }
            }
        }
        let exact_binv: Vec<f64> = (0..m)
            .flat_map(|r| (0..m).map(move |k| (r, k)))
            .map(|(r, k)| aug[r * 2 * m + m + k])
            .collect();
        for i in 0..m * m {
            if (exact_binv[i] - s.binv[i]).abs() > 1e-6 {
                problems.push(format!(
                    "binv drift at {i}: maintained {} vs exact {}",
                    s.binv[i], exact_binv[i]
                ));
                break;
            }
        }
        // Exact basic values: xb = Binv (b - N x_N).
        let mut rhs_adj: Vec<f64> = model.constraints.iter().map(|c| c.rhs).collect();
        for j in 0..s.cols.len() {
            let val = match s.status[j] {
                VStat::Basic(_) => continue,
                st => nb_value(s.lower[j], s.upper[j], st).expect("nonbasic"),
            };
            if !val.is_finite() {
                problems.push(format!(
                    "column {j} nonbasic at infinite bound: status {:?} bounds [{}, {}]",
                    s.status[j], s.lower[j], s.upper[j]
                ));
            }
            if val != 0.0 {
                for &(r, a) in &s.cols[j] {
                    rhs_adj[r] -= a * val;
                }
            }
        }
        for i in 0..m {
            let exact: f64 = (0..m).map(|k| exact_binv[i * m + k] * rhs_adj[k]).sum();
            if (exact - s.xb[i]).abs() > 1e-6 {
                problems.push(format!(
                    "xb drift at row {i}: maintained {} vs exact {}",
                    s.xb[i], exact
                ));
            }
        }
        // Exact reduced costs.
        let mut y = vec![0.0; m];
        for i in 0..m {
            let cb = s.cost[s.basis[i]];
            for k in 0..m {
                y[k] += cb * exact_binv[i * m + k];
            }
        }
        for j in 0..s.cols.len() {
            if matches!(s.status[j], VStat::Basic(_)) || s.upper[j] - s.lower[j] <= 0.0 {
                continue;
            }
            let d = s.cost[j] - s.cols[j].iter().map(|&(r, a)| y[r] * a).sum::<f64>();
            let bad = match s.status[j] {
                VStat::AtLower => d < -1e-6,
                VStat::AtUpper => d > 1e-6,
                VStat::FreeZero => d.abs() > 1e-6,
                VStat::Basic(_) => false,
            };
            if bad {
                problems.push(format!(
                    "column {j} status {:?} has improving reduced cost {d}",
                    s.status[j]
                ));
            }
        }
        (sol, problems)
    }

    #[test]
    fn audit_seed3_cover_model() {
        // Regression: a random covering model where the simplex once
        // stopped at 8.6 although the optimum is 8.0.
        let mut m = Model::new(Sense::Minimize);
        let v: Vec<VarId> = (0..12)
            .map(|i| m.add_continuous(format!("x{i}"), 0.0, 1.0))
            .collect();
        let costs = [1.0, 2.0, 3.0, 2.0, 1.0, 2.0, 3.0, 3.0, 3.0, 1.0, 4.0, 3.0];
        for (x, c) in v.iter().zip(costs) {
            m.set_objective(*x, c);
        }
        let ge: &[(&[(usize, f64)], f64)] = &[
            (&[(7, 1.0), (11, 1.0)], 1.0),
            (&[(0, 1.0), (9, 1.0)], 1.0),
            (&[(5, 1.0), (8, 1.0), (11, 2.0)], 1.0),
            (&[(1, 1.0), (4, 2.0), (11, 1.0)], 1.0),
            (&[(2, 1.0), (8, 1.0)], 1.0),
            (&[(4, 1.0), (8, 2.0), (11, 1.0)], 1.0),
            (&[(5, 1.0), (8, 1.0), (11, 1.0)], 1.0),
            (&[(1, 1.0), (2, 1.0), (3, 1.0), (11, 1.0)], 1.0),
        ];
        for (i, (terms, rhs)) in ge.iter().enumerate() {
            m.add_constraint(
                format!("c{i}"),
                terms.iter().map(|&(j, a)| (v[j], a)).collect(),
                Cmp::Ge,
                *rhs,
            );
        }
        m.add_constraint("cap", v.iter().map(|&x| (x, 1.0)).collect(), Cmp::Le, 8.0);
        let (sol, problems) = audit(&m);
        assert!(problems.is_empty(), "audit: {problems:?}");
        assert!(
            sol.objective <= 8.0 + 1e-6,
            "LP bound {} exceeds integer optimum 8",
            sol.objective
        );
    }

    fn lp(model: &Model) -> LpSolution {
        match solve_lp(model) {
            LpOutcome::Optimal(s) => s,
            other => panic!("expected optimal, got {:?}", other.status()),
        }
    }

    #[test]
    fn malformed_models_error_instead_of_panicking() {
        // Model constructors assert on NaN inputs; validation catches
        // what slips past them: infinite pins, and NaN set after the
        // fact. A lower bound pinned at +inf is unusable.
        let mut m = Model::new(Sense::Minimize);
        m.add_continuous("x", f64::INFINITY, f64::INFINITY);
        assert!(matches!(
            solve_lp(&m),
            LpOutcome::Error(SolveError::BadBound { var: 0, .. })
        ));
        // Non-finite constraint coefficient.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 0.0, 1.0);
        m.add_constraint("c", vec![(x, f64::INFINITY)], Cmp::Le, 1.0);
        assert!(matches!(
            solve_lp(&m),
            LpOutcome::Error(SolveError::BadCoefficient { .. })
        ));
        // Non-finite rhs.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 0.0, 1.0);
        m.add_constraint("c", vec![(x, 1.0)], Cmp::Le, f64::INFINITY);
        assert!(matches!(
            solve_lp(&m),
            LpOutcome::Error(SolveError::BadRhs { .. })
        ));
        // Non-finite objective.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 0.0, 1.0);
        m.set_objective(x, f64::NAN);
        assert!(matches!(
            solve_lp(&m),
            LpOutcome::Error(SolveError::BadObjective { .. })
        ));
    }

    #[test]
    fn error_outcome_has_error_status() {
        let e = LpOutcome::Error(SolveError::Internal("test"));
        assert_eq!(e.status(), crate::status::LpStatus::Error);
        assert!(e.solution().is_none());
    }

    #[test]
    fn trivial_bounds_only() {
        // minimize x, 2 <= x <= 5 → x = 2.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 2.0, 5.0);
        m.set_objective(x, 1.0);
        let s = lp(&m);
        assert!((s.values[x.0] - 2.0).abs() < 1e-7);
        assert!((s.objective - 2.0).abs() < 1e-7);
    }

    #[test]
    fn classic_two_var_max() {
        // maximize 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 → (2, 6), 36.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.set_objective(x, 3.0);
        m.set_objective(y, 5.0);
        m.add_constraint("c1", vec![(x, 1.0)], Cmp::Le, 4.0);
        m.add_constraint("c2", vec![(y, 2.0)], Cmp::Le, 12.0);
        m.add_constraint("c3", vec![(x, 3.0), (y, 2.0)], Cmp::Le, 18.0);
        let s = lp(&m);
        assert!(
            (s.objective - 36.0).abs() < 1e-6,
            "objective {}",
            s.objective
        );
        assert!((s.values[x.0] - 2.0).abs() < 1e-6);
        assert!((s.values[y.0] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn ge_constraints_need_phase_one() {
        // minimize x + y s.t. x + y >= 3, x - y >= -1 → e.g. (1,2), obj 3.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.set_objective(x, 1.0);
        m.set_objective(y, 1.0);
        m.add_constraint("c1", vec![(x, 1.0), (y, 1.0)], Cmp::Ge, 3.0);
        m.add_constraint("c2", vec![(x, 1.0), (y, -1.0)], Cmp::Ge, -1.0);
        let s = lp(&m);
        assert!((s.objective - 3.0).abs() < 1e-6);
    }

    #[test]
    fn equality_constraints() {
        // minimize 2x + 3y s.t. x + y = 4, x - y = 0 → (2,2), obj 10.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.set_objective(x, 2.0);
        m.set_objective(y, 3.0);
        m.add_constraint("c1", vec![(x, 1.0), (y, 1.0)], Cmp::Eq, 4.0);
        m.add_constraint("c2", vec![(x, 1.0), (y, -1.0)], Cmp::Eq, 0.0);
        let s = lp(&m);
        assert!((s.objective - 10.0).abs() < 1e-6);
        assert!((s.values[x.0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn detects_infeasible() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 0.0, 1.0);
        m.add_constraint("c1", vec![(x, 1.0)], Cmp::Ge, 2.0);
        assert!(matches!(solve_lp(&m), LpOutcome::Infeasible));
    }

    #[test]
    fn detects_infeasible_between_rows() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", f64::NEG_INFINITY, f64::INFINITY);
        m.add_constraint("c1", vec![(x, 1.0)], Cmp::Ge, 2.0);
        m.add_constraint("c2", vec![(x, 1.0)], Cmp::Le, 1.0);
        assert!(matches!(solve_lp(&m), LpOutcome::Infeasible));
    }

    #[test]
    fn detects_unbounded() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        m.set_objective(x, 1.0);
        m.add_constraint("c1", vec![(x, -1.0)], Cmp::Le, 0.0);
        assert!(matches!(solve_lp(&m), LpOutcome::Unbounded));
    }

    #[test]
    fn free_variables() {
        // minimize x s.t. x >= -7 (free var) → -7.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", f64::NEG_INFINITY, f64::INFINITY);
        m.set_objective(x, 1.0);
        m.add_constraint("c1", vec![(x, 1.0)], Cmp::Ge, -7.0);
        let s = lp(&m);
        assert!((s.objective + 7.0).abs() < 1e-6);
    }

    #[test]
    fn negative_rhs_and_bounds() {
        // maximize x + y, -3 <= x <= -1, y <= 0, x + y >= -5.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous("x", -3.0, -1.0);
        let y = m.add_continuous("y", f64::NEG_INFINITY, 0.0);
        m.set_objective(x, 1.0);
        m.set_objective(y, 1.0);
        m.add_constraint("c", vec![(x, 1.0), (y, 1.0)], Cmp::Ge, -5.0);
        let s = lp(&m);
        assert!((s.objective - (-1.0)).abs() < 1e-6, "obj {}", s.objective);
    }

    #[test]
    fn bound_flip_path() {
        // maximize x + 2y with x,y in [0,1] and x + y <= 2 — both to upper.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous("x", 0.0, 1.0);
        let y = m.add_continuous("y", 0.0, 1.0);
        m.set_objective(x, 1.0);
        m.set_objective(y, 2.0);
        m.add_constraint("c", vec![(x, 1.0), (y, 1.0)], Cmp::Le, 2.0);
        let s = lp(&m);
        assert!((s.objective - 3.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_cover_lp() {
        // Fractional set-cover LP: x+y>=1, y+z>=1, x+z>=1, minimize sum →
        // 1.5 at x=y=z=0.5.
        let mut m = Model::new(Sense::Minimize);
        let v: Vec<VarId> = (0..3)
            .map(|i| m.add_continuous(format!("x{i}"), 0.0, 1.0))
            .collect();
        for x in &v {
            m.set_objective(*x, 1.0);
        }
        m.add_constraint("a", vec![(v[0], 1.0), (v[1], 1.0)], Cmp::Ge, 1.0);
        m.add_constraint("b", vec![(v[1], 1.0), (v[2], 1.0)], Cmp::Ge, 1.0);
        m.add_constraint("c", vec![(v[0], 1.0), (v[2], 1.0)], Cmp::Ge, 1.0);
        let s = lp(&m);
        assert!((s.objective - 1.5).abs() < 1e-6, "obj {}", s.objective);
    }

    #[test]
    fn redundant_equalities_ok() {
        // x + y = 2 duplicated; minimize x → x=0, y=2.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.set_objective(x, 1.0);
        m.add_constraint("c1", vec![(x, 1.0), (y, 1.0)], Cmp::Eq, 2.0);
        m.add_constraint("c2", vec![(x, 1.0), (y, 1.0)], Cmp::Eq, 2.0);
        let s = lp(&m);
        assert!(s.objective.abs() < 1e-6);
        assert!((s.values[y.0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn solution_is_feasible_for_model() {
        let mut m = Model::new(Sense::Minimize);
        let v: Vec<VarId> = (0..6)
            .map(|i| m.add_continuous(format!("x{i}"), 0.0, 1.0))
            .collect();
        for (i, x) in v.iter().enumerate() {
            m.set_objective(*x, 1.0 + (i as f64) * 0.3);
        }
        m.add_constraint("r1", vec![(v[0], 1.0), (v[3], 1.0)], Cmp::Ge, 1.0);
        m.add_constraint("r2", vec![(v[1], 1.0), (v[4], 1.0)], Cmp::Ge, 1.0);
        m.add_constraint("r3", vec![(v[2], 1.0), (v[5], 1.0)], Cmp::Ge, 1.0);
        m.add_constraint("cap", v.iter().map(|&x| (x, 1.0)).collect(), Cmp::Le, 4.0);
        let s = lp(&m);
        assert!(m.check_feasible(&s.values, 1e-6).is_ok());
        // Cheapest cover: x0 (1.0) + x1 (1.3) + x2 (1.6) = 3.9.
        assert!((s.objective - 3.9).abs() < 1e-6, "obj {}", s.objective);
    }
}

//! A self-contained 0/1 mixed-integer linear programming solver.
//!
//! The paper solves its rule-placement encoding with CPLEX; this crate is
//! the from-scratch substitute. It provides:
//!
//! * [`Model`] — variables with bounds (continuous or binary), linear
//!   constraints, and a linear objective;
//! * [`solve_lp`] — a bounded-variable, two-phase revised primal simplex
//!   for the LP relaxation;
//! * [`solve_mip`] — branch & bound over the LP relaxation with
//!   most-fractional branching, depth-first dives, rounding incumbents,
//!   warm incumbents, time/node limits, and optional lazy-constraint
//!   callbacks (used by the placement encoder to generate dependency rows
//!   on demand);
//! * a conservative presolve (duplicate-row removal, singleton-row bound
//!   tightening, fixed-variable detection).
//!
//! # Example
//!
//! ```
//! use flowplace_milp::{Cmp, MipOptions, Model, Sense};
//!
//! // minimize x + y  s.t.  x + y >= 1,  binaries
//! let mut m = Model::new(Sense::Minimize);
//! let x = m.add_binary("x");
//! let y = m.add_binary("y");
//! m.set_objective(x, 1.0);
//! m.set_objective(y, 1.0);
//! m.add_constraint("cover", vec![(x, 1.0), (y, 1.0)], Cmp::Ge, 1.0);
//! let sol = flowplace_milp::solve_mip(&m, &MipOptions::default());
//! let sol = sol.solution().expect("feasible");
//! assert!((sol.objective - 1.0).abs() < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod branch;
mod lpformat;
mod model;
mod presolve;
mod simplex;
mod status;

pub use branch::{solve_mip, solve_mip_lazy, LazyCallback, MipOptions};
pub use lpformat::to_lp_format;
pub use model::{Cmp, Constraint, Model, Sense, VarId, VarKind};
pub use presolve::presolve;
pub use simplex::{solve_lp, LpOptions};
pub use status::{LpOutcome, LpSolution, LpStatus, MipOutcome, MipSolution, MipStatus, SolveError};

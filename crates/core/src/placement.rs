//! Placements and the high-level placement facade.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::time::{Duration, Instant};

use flowplace_acl::RuleId;
use flowplace_milp::{solve_mip_lazy, MipOptions, MipStatus};
use flowplace_topo::{EntryPortId, SwitchId};

use crate::candidates::{build_candidates, CandidateMap};
use crate::encode_ilp::{EncodeOptions, IlpEncoding, MergeLinking};
use crate::encode_sat::SatEncoding;
use crate::greedy;
use crate::merge::MergeGroup;
use crate::monitor::{restrict_candidates, MonitorRequirement};
use crate::par::ParallelConfig;
use crate::{Instance, Objective};

pub use crate::encode_ilp::DependencyEncoding;

/// A solved mapping from rules to switches.
///
/// `(ingress, rule) → {switches}`, plus the merge groups realized (each
/// merged group occupies a single shared TCAM entry on its switch).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Placement {
    placed: BTreeMap<(EntryPortId, RuleId), BTreeSet<SwitchId>>,
    merged: Vec<MergeGroup>,
}

impl Placement {
    /// An empty placement.
    pub fn new() -> Self {
        Placement::default()
    }

    /// Records rule `rule` of `ingress` on switch `s`.
    pub fn place(&mut self, ingress: EntryPortId, rule: RuleId, s: SwitchId) {
        self.placed.entry((ingress, rule)).or_default().insert(s);
    }

    /// Records that a merge group is realized (all members placed on its
    /// switch and sharing one entry).
    pub fn record_merge(&mut self, group: MergeGroup) {
        self.merged.push(group);
    }

    /// The switches a rule is placed on (empty if unplaced).
    pub fn switches_of(&self, ingress: EntryPortId, rule: RuleId) -> &BTreeSet<SwitchId> {
        static EMPTY: BTreeSet<SwitchId> = BTreeSet::new();
        self.placed.get(&(ingress, rule)).unwrap_or(&EMPTY)
    }

    /// True if the rule is placed on the switch.
    pub fn is_placed(&self, ingress: EntryPortId, rule: RuleId, s: SwitchId) -> bool {
        self.switches_of(ingress, rule).contains(&s)
    }

    /// Iterates over `((ingress, rule), switches)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (&(EntryPortId, RuleId), &BTreeSet<SwitchId>)> {
        self.placed.iter()
    }

    /// The realized merge groups.
    pub fn merge_groups(&self) -> &[MergeGroup] {
        &self.merged
    }

    /// Total TCAM entries consumed network-wide: every `(rule, switch)`
    /// pair counts one, except merged groups which share a single entry
    /// (the paper's quantity `B`).
    pub fn total_rules(&self) -> usize {
        let raw: usize = self.placed.values().map(BTreeSet::len).sum();
        let saved: usize = self.merged.iter().map(|g| g.members.len() - 1).sum();
        raw - saved
    }

    /// TCAM entries consumed on each switch of `instance`'s topology.
    pub fn per_switch_load(&self, instance: &Instance) -> Vec<usize> {
        let mut load = vec![0usize; instance.topology().switch_count()];
        for ((_, _), switches) in &self.placed {
            for s in switches {
                load[s.0] += 1;
            }
        }
        for g in &self.merged {
            load[g.switch.0] -= g.members.len() - 1;
        }
        load
    }

    /// Duplication overhead `(B − A)/A` (§V Experiment 3): how many more
    /// entries the network holds compared to the sum of policy sizes `A`.
    /// Negative values mean merging saved more than duplication cost.
    pub fn duplication_overhead(&self, instance: &Instance) -> f64 {
        let a = instance.total_policy_rules() as f64;
        if a == 0.0 {
            return 0.0;
        }
        (self.total_rules() as f64 - a) / a
    }

    /// Removes every entry of one ingress policy (used when its routes
    /// change). Merge groups containing the ingress are dissolved (their
    /// remaining members keep individual entries).
    pub fn remove_ingress(&mut self, ingress: EntryPortId) {
        self.placed.retain(|(l, _), _| *l != ingress);
        self.merged
            .retain(|g| g.members.iter().all(|(l, _)| *l != ingress));
    }

    /// Merges another placement into this one (used by incremental
    /// deployment to graft a sub-solution).
    pub fn absorb(&mut self, other: Placement) {
        for ((l, r), switches) in other.placed {
            self.placed.entry((l, r)).or_default().extend(switches);
        }
        self.merged.extend(other.merged);
    }
}

impl fmt::Display for Placement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "placement: {} entries ({} merge groups)",
            self.total_rules(),
            self.merged.len()
        )
    }
}

/// Which engine solves the encoded problem.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PlacerEngine {
    /// ILP via branch & bound — optimizes the objective (§IV-A).
    #[default]
    Ilp,
    /// Pseudo-Boolean satisfiability — any feasible placement, no
    /// objective (§IV-D).
    Sat,
}

/// Outcome status of a placement solve.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SolveStatus {
    /// Proven optimal (ILP) — or satisfying, for the SAT engine.
    Optimal,
    /// Feasible but optimality not proven (limits hit).
    Feasible,
    /// Proven infeasible.
    Infeasible,
    /// Limits hit before any conclusion.
    Unknown,
}

impl fmt::Display for SolveStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveStatus::Optimal => write!(f, "optimal"),
            SolveStatus::Feasible => write!(f, "feasible"),
            SolveStatus::Infeasible => write!(f, "infeasible"),
            SolveStatus::Unknown => write!(f, "unknown"),
        }
    }
}

/// Model/search statistics of a placement solve.
#[derive(Clone, Copy, Debug, Default)]
pub struct PlacementStats {
    /// Binary placement variables in the model.
    pub variables: usize,
    /// Constraint rows (ILP) or clauses+PB constraints (SAT).
    pub constraints: usize,
    /// Branch-and-bound nodes (ILP) or conflicts (SAT).
    pub nodes: usize,
    /// LP simplex iterations (ILP only).
    pub lp_iterations: usize,
    /// Lazy dependency rows generated (ILP lazy mode only).
    pub lazy_rows: usize,
    /// Wall-clock solve time.
    pub elapsed: Duration,
    /// Full CDCL statistics when the SAT engine produced this outcome
    /// (restarts, blocked restarts, DB reductions, learnt clauses, LBD
    /// accounting); `None` for ILP/greedy/memo outcomes.
    pub sat: Option<flowplace_pbsat::SolverStats>,
}

/// The result of [`RulePlacer::place`].
#[derive(Clone, Debug)]
pub struct PlacementOutcome {
    /// The placement, when one was found.
    pub placement: Option<Placement>,
    /// Solve status.
    pub status: SolveStatus,
    /// Objective value of the returned placement (ILP engine).
    pub objective: Option<f64>,
    /// Model and search statistics.
    pub stats: PlacementStats,
}

/// Options for [`RulePlacer`].
#[derive(Clone, Debug, Default)]
pub struct PlacementOptions {
    /// Engine selection (ILP optimizing, or SAT feasibility-only).
    pub engine: PlacerEngine,
    /// Dependency-row strategy for the ILP engine.
    pub dependency: DependencyEncoding,
    /// Enable cross-policy rule merging (Eq. 4–5).
    pub merging: bool,
    /// Merge-variable linking strategy (ILP engine).
    pub merge_linking: MergeLinking,
    /// Seed the ILP incumbent with the ingress-first greedy heuristic.
    pub greedy_warm_start: bool,
    /// Monitoring requirements: DROP rules overlapping a monitored flow
    /// may not be placed upstream of the monitor (§VII future work,
    /// implemented in [`crate::monitor`]).
    pub monitors: Vec<MonitorRequirement>,
    /// Branch-and-bound options (time/node limits, tolerances).
    pub mip: MipOptions,
    /// Parallel-pipeline configuration (threads, portfolio racing). The
    /// default (`threads: 1`, `portfolio: false`) is the serial path.
    pub parallel: ParallelConfig,
    /// CDCL search options for the SAT engine (restart schedule,
    /// learnt-DB reduction). The default is the modern configuration
    /// (glucose restarts + reduction); `--sat-restart luby` selects the
    /// baseline schedule.
    pub sat: flowplace_pbsat::SolverOptions,
}

/// High-level facade: encode, solve, decode.
///
/// See the crate-level example.
#[derive(Clone, Debug, Default)]
pub struct RulePlacer {
    options: PlacementOptions,
}

/// Error from [`RulePlacer::place`]. Currently placement never fails with
/// an error (infeasibility is a status), but the signature leaves room
/// for instance-validation failures in future extensions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlaceError {}

impl fmt::Display for PlaceError {
    fn fmt(&self, _f: &mut fmt::Formatter<'_>) -> fmt::Result {
        unreachable!("PlaceError has no variants")
    }
}

impl std::error::Error for PlaceError {}

impl RulePlacer {
    /// Creates a placer with the given options.
    pub fn new(options: PlacementOptions) -> Self {
        RulePlacer { options }
    }

    /// The configured options.
    pub fn options(&self) -> &PlacementOptions {
        &self.options
    }

    /// Solves the placement problem for `instance` minimizing `objective`
    /// (the SAT engine ignores the objective and returns any feasible
    /// placement).
    ///
    /// # Errors
    ///
    /// Infallible today (see [`PlaceError`]); infeasibility is reported
    /// via [`PlacementOutcome::status`].
    pub fn place(
        &self,
        instance: &Instance,
        objective: Objective,
    ) -> Result<PlacementOutcome, PlaceError> {
        if self.options.parallel.is_parallel() {
            return Ok(crate::par::solve(instance, objective, &self.options).outcome);
        }
        let mut candidates = build_candidates(instance);
        restrict_candidates(instance, &mut candidates, &self.options.monitors);
        match self.options.engine {
            PlacerEngine::Ilp => Ok(place_ilp_with(
                &self.options,
                instance,
                &objective,
                &candidates,
            )),
            PlacerEngine::Sat => Ok(place_sat_with(&self.options, instance, &candidates, None)),
        }
    }

    /// Like [`place`](Self::place), but always runs the staged
    /// [`crate::par`] pipeline and reports its provenance and per-stage
    /// wall times alongside the outcome.
    pub fn place_par(&self, instance: &Instance, objective: Objective) -> crate::par::ParOutcome {
        crate::par::solve(instance, objective, &self.options)
    }

    /// Like [`place_par`](Self::place_par), but consulting (and filling)
    /// a warm cache — the incremental solve path described in
    /// [`crate::warm`]. With a disabled cache this is exactly
    /// [`place_par`](Self::place_par).
    pub fn place_cached(
        &self,
        instance: &Instance,
        objective: Objective,
        cache: &crate::warm::WarmCache,
    ) -> crate::par::ParOutcome {
        crate::par::solve_with_cache(instance, objective, &self.options, Some(cache))
    }

    /// The fully instrumented solve: [`place_cached`](Self::place_cached)
    /// semantics with both the cache and the telemetry context optional.
    /// Records pipeline spans and solver metrics on `obs` (see
    /// [`crate::par::solve_observed`]); observability is effect-free, so
    /// the outcome is byte-identical to the unobserved calls.
    pub fn place_observed(
        &self,
        instance: &Instance,
        objective: Objective,
        cache: Option<&crate::warm::WarmCache>,
        obs: Option<&flowplace_obs::Obs>,
    ) -> crate::par::ParOutcome {
        crate::par::solve_observed(instance, objective, &self.options, cache, obs)
    }
}

/// ILP solve over already-built (and already monitor-restricted)
/// candidates. Shared by the serial path, the parallel pipeline, and the
/// portfolio racer — keeping them on one code path is what makes the
/// serial/parallel byte-identity contract hold.
pub(crate) fn place_ilp_with(
    options: &PlacementOptions,
    instance: &Instance,
    objective: &Objective,
    candidates: &CandidateMap,
) -> PlacementOutcome {
    let start = Instant::now();
    let enc = IlpEncoding::build_with_candidates(
        instance,
        objective,
        &EncodeOptions {
            dependency: options.dependency,
            merging: options.merging,
            merge_linking: options.merge_linking,
        },
        candidates,
    );
    let mut mip = options.mip.clone();
    if options.greedy_warm_start && options.monitors.is_empty() {
        // The greedy heuristic is monitor-oblivious; only use it as a
        // warm start when no monitors constrain placement.
        if let Some(p) = greedy::greedy_place(instance) {
            mip.initial_solution = enc.warm_start(&p);
        }
    }
    let lazy = options.dependency == DependencyEncoding::Lazy;
    let out = solve_mip_lazy(&enc.model, &mip, &mut |vals| {
        if lazy {
            enc.violated_dependencies(vals)
        } else {
            Vec::new()
        }
    });
    let status = match out.status {
        MipStatus::Optimal => SolveStatus::Optimal,
        MipStatus::Feasible => SolveStatus::Feasible,
        MipStatus::Infeasible => SolveStatus::Infeasible,
        MipStatus::Unknown => SolveStatus::Unknown,
        // A malformed model / broken solver invariant proves nothing
        // about feasibility.
        MipStatus::Error => SolveStatus::Unknown,
    };
    let placement = out.best.as_ref().map(|b| enc.decode(&b.values));
    PlacementOutcome {
        placement,
        status,
        objective: out.best.as_ref().map(|b| b.objective),
        stats: PlacementStats {
            variables: enc.num_placement_vars,
            constraints: enc.model.num_constraints(),
            nodes: out.nodes,
            lp_iterations: out.lp_iterations,
            lazy_rows: out.lazy_rows_added,
            elapsed: start.elapsed(),
            sat: None,
        },
    }
}

/// SAT solve over already-built (and already monitor-restricted)
/// candidates, optionally cancellable (the portfolio racer's loser is
/// interrupted through `cancel` and reports [`SolveStatus::Unknown`]).
pub(crate) fn place_sat_with(
    options: &PlacementOptions,
    instance: &Instance,
    candidates: &CandidateMap,
    cancel: Option<&std::sync::atomic::AtomicBool>,
) -> PlacementOutcome {
    let start = Instant::now();
    let mut enc =
        SatEncoding::build_with_candidates_opts(instance, options.merging, candidates, options.sat);
    let (placement, status) = match enc.solve_interruptible(cancel) {
        Some(Some(p)) => (Some(p), SolveStatus::Optimal),
        Some(None) => (None, SolveStatus::Infeasible),
        None => (None, SolveStatus::Unknown), // interrupted before a verdict
    };
    PlacementOutcome {
        placement,
        status,
        objective: None,
        stats: PlacementStats {
            variables: enc.num_placement_vars(),
            constraints: enc.constraint_count(),
            nodes: enc.conflicts() as usize,
            lp_iterations: 0,
            lazy_rows: 0,
            elapsed: start.elapsed(),
            sat: Some(enc.solver_stats()),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowplace_acl::{Action, Ternary};

    fn group(switch: usize, n: usize) -> MergeGroup {
        MergeGroup {
            switch: SwitchId(switch),
            match_field: Ternary::parse("1*").unwrap(),
            action: Action::Drop,
            members: (0..n).map(|i| (EntryPortId(i), RuleId(0))).collect(),
        }
    }

    #[test]
    fn total_rules_counts_merges_once() {
        let mut p = Placement::new();
        p.place(EntryPortId(0), RuleId(0), SwitchId(1));
        p.place(EntryPortId(1), RuleId(0), SwitchId(1));
        p.place(EntryPortId(0), RuleId(1), SwitchId(2));
        assert_eq!(p.total_rules(), 3);
        p.record_merge(group(1, 2));
        assert_eq!(p.total_rules(), 2);
    }

    #[test]
    fn switches_of_unplaced_is_empty() {
        let p = Placement::new();
        assert!(p.switches_of(EntryPortId(0), RuleId(0)).is_empty());
        assert!(!p.is_placed(EntryPortId(0), RuleId(0), SwitchId(0)));
    }

    #[test]
    fn remove_ingress_dissolves_merges() {
        let mut p = Placement::new();
        p.place(EntryPortId(0), RuleId(0), SwitchId(1));
        p.place(EntryPortId(1), RuleId(0), SwitchId(1));
        p.record_merge(group(1, 2));
        p.remove_ingress(EntryPortId(0));
        assert_eq!(p.total_rules(), 1);
        assert!(p.merge_groups().is_empty());
    }

    #[test]
    fn absorb_unions() {
        let mut a = Placement::new();
        a.place(EntryPortId(0), RuleId(0), SwitchId(1));
        let mut b = Placement::new();
        b.place(EntryPortId(0), RuleId(0), SwitchId(2));
        b.place(EntryPortId(1), RuleId(0), SwitchId(1));
        a.absorb(b);
        assert_eq!(a.total_rules(), 3);
        assert!(a.is_placed(EntryPortId(0), RuleId(0), SwitchId(2)));
    }

    #[test]
    fn display_mentions_entries() {
        let mut p = Placement::new();
        p.place(EntryPortId(0), RuleId(0), SwitchId(1));
        assert!(p.to_string().contains("1 entries"));
    }
}

//! The rule dependency graph (§IV-A1 of the paper).
//!
//! For one ingress policy, a directed edge `u → w` means: PERMIT rule `u`
//! has higher priority than DROP rule `w` and their match fields overlap,
//! so wherever `w` is placed, `u` must be placed too (otherwise packets
//! that the policy permits via `u` would be dropped by `w` on that
//! switch). These edges become the Equation 1 constraints
//! `v_{i,u,k} ≥ v_{i,w,k}`.
//!
//! Rules with disjoint match fields, and DROP/DROP pairs, impose no
//! constraints (it does not matter *where* a packet is dropped, only
//! *that* it is dropped — the per-path coverage constraint handles that).

use std::fmt;

use flowplace_acl::{Policy, RuleId};

/// The dependency graph of a single policy.
///
/// # Example
///
/// ```
/// use flowplace_acl::{Action, Policy, Ternary};
/// use flowplace_core::DependencyGraph;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let policy = Policy::from_ordered(vec![
///     (Ternary::parse("11**")?, Action::Permit), // r0, shields part of r1
///     (Ternary::parse("1***")?, Action::Drop),   // r1
/// ])?;
/// let g = DependencyGraph::build(&policy);
/// assert_eq!(
///     g.permits_required_by(flowplace_acl::RuleId(1)),
///     &[flowplace_acl::RuleId(0)]
/// );
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DependencyGraph {
    /// `deps[w.0]` = the PERMIT rules that must accompany DROP rule `w`
    /// (empty for PERMIT rules). Sorted ascending.
    deps: Vec<Vec<RuleId>>,
}

impl DependencyGraph {
    /// Builds the graph for `policy` using an interval-sort prune.
    ///
    /// Every packet matched by a ternary lies numerically between the
    /// field with all wildcards set to 0 (`sample_packet`) and all
    /// wildcards set to 1 (`max_packet`) — each wildcard bit contributes
    /// either 0 or its positional weight, independently. Two ternaries can
    /// therefore only intersect if their `[lo, hi]` intervals do, so the
    /// PERMIT rules are sorted by `lo` once and each DROP rule only runs
    /// the exact [`Rule::overlaps`](flowplace_acl::Rule::overlaps) check
    /// against the sorted prefix with `lo ≤ hi_drop` that also satisfies
    /// `hi ≥ lo_drop`. The interval test is necessary (never sufficient)
    /// for intersection, so pruned pairs are guaranteed non-edges; see
    /// [`build_naive`](Self::build_naive) for the exhaustive reference
    /// oracle the differential tests compare against. Worst case (all
    /// intervals overlapping, e.g. every rule starting with a wildcard)
    /// degrades to the same `O(n²)` exact checks as the naive scan;
    /// classbench-style prefix-heavy policies prune most pairs.
    pub fn build(policy: &Policy) -> DependencyGraph {
        let rules = policy.rules();
        let mut deps = vec![Vec::new(); rules.len()];
        // (lo, hi, index) per PERMIT rule, sorted by lo.
        let mut permits: Vec<(u128, u128, usize)> = rules
            .iter()
            .enumerate()
            .filter(|(_, r)| r.action().is_permit())
            .map(|(u, r)| {
                let f = r.match_field();
                (f.sample_packet().bits(), f.max_packet().bits(), u)
            })
            .collect();
        permits.sort_unstable();
        for (w, drop_rule) in rules.iter().enumerate() {
            if !drop_rule.action().is_drop() {
                continue;
            }
            let lo_w = drop_rule.match_field().sample_packet().bits();
            let hi_w = drop_rule.match_field().max_packet().bits();
            // Candidates: the sorted prefix with lo_u ≤ hi_w.
            let end = permits.partition_point(|&(lo_u, _, _)| lo_u <= hi_w);
            for &(_, hi_u, u) in &permits[..end] {
                // Rules are stored in descending priority order, so only
                // smaller indices (higher priority) can shield the drop.
                if u < w && hi_u >= lo_w && rules[u].overlaps(drop_rule) {
                    deps[w].push(RuleId(u));
                }
            }
            // The prune visits permits in lo-order; restore ascending id.
            deps[w].sort_unstable_by_key(|r| r.0);
        }
        DependencyGraph { deps }
    }

    /// Builds the graph with the exhaustive `O(n²)` pairwise overlap scan.
    ///
    /// This is the reference oracle for [`build`](Self::build): it checks
    /// every (PERMIT, DROP) pair directly, with no pruning that could
    /// conceivably drop an edge. The differential and property tests
    /// assert `build == build_naive`; production code should call
    /// [`build`](Self::build).
    pub fn build_naive(policy: &Policy) -> DependencyGraph {
        let rules = policy.rules();
        let mut deps = vec![Vec::new(); rules.len()];
        for (w, drop_rule) in rules.iter().enumerate() {
            if !drop_rule.action().is_drop() {
                continue;
            }
            // Rules are stored in descending priority order, so every rule
            // with a smaller index has higher priority.
            for (u, permit_rule) in rules.iter().enumerate().take(w) {
                if permit_rule.action().is_permit() && permit_rule.overlaps(drop_rule) {
                    deps[w].push(RuleId(u));
                }
            }
        }
        DependencyGraph { deps }
    }

    /// The PERMIT rules that must be co-located with DROP rule `w`
    /// (sorted ascending by rule id; empty for PERMIT rules).
    ///
    /// # Panics
    ///
    /// Panics if `w` is out of range.
    pub fn permits_required_by(&self, w: RuleId) -> &[RuleId] {
        &self.deps[w.0]
    }

    /// All `(permit, drop)` dependency edges.
    pub fn edges(&self) -> impl Iterator<Item = (RuleId, RuleId)> + '_ {
        self.deps
            .iter()
            .enumerate()
            .flat_map(|(w, us)| us.iter().map(move |&u| (u, RuleId(w))))
    }

    /// Total number of dependency edges.
    pub fn edge_count(&self) -> usize {
        self.deps.iter().map(Vec::len).sum()
    }

    /// Number of rules in the underlying policy.
    pub fn rule_count(&self) -> usize {
        self.deps.len()
    }

    /// Renders the graph in Graphviz DOT syntax (PERMIT boxes, DROP
    /// ellipses), for audit tooling.
    pub fn to_dot(&self, policy: &Policy) -> String {
        let mut out = String::from("digraph deps {\n");
        for (id, r) in policy.iter() {
            let shape = if r.action().is_drop() {
                "ellipse"
            } else {
                "box"
            };
            out.push_str(&format!(
                "  r{} [shape={shape}, label=\"{} {} {}\"];\n",
                id.0,
                id,
                r.match_field(),
                r.action()
            ));
        }
        for (u, w) in self.edges() {
            out.push_str(&format!("  r{} -> r{};\n", u.0, w.0));
        }
        out.push_str("}\n");
        out
    }
}

impl fmt::Display for DependencyGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dependency graph: {} rules, {} edges",
            self.rule_count(),
            self.edge_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowplace_acl::{Action, Ternary};

    fn pol(specs: Vec<(&str, Action)>) -> Policy {
        Policy::from_ordered(
            specs
                .into_iter()
                .map(|(m, a)| (Ternary::parse(m).unwrap(), a))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn permit_over_drop_creates_edge() {
        let p = pol(vec![("11**", Action::Permit), ("1***", Action::Drop)]);
        let g = DependencyGraph::build(&p);
        assert_eq!(g.permits_required_by(RuleId(1)), &[RuleId(0)]);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn disjoint_rules_no_edge() {
        let p = pol(vec![("0***", Action::Permit), ("1***", Action::Drop)]);
        let g = DependencyGraph::build(&p);
        assert!(g.permits_required_by(RuleId(1)).is_empty());
    }

    #[test]
    fn drop_over_drop_no_edge() {
        let p = pol(vec![("11**", Action::Drop), ("1***", Action::Drop)]);
        let g = DependencyGraph::build(&p);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn permit_below_drop_no_edge() {
        // The PERMIT has *lower* priority: it never shields the DROP.
        let p = pol(vec![("1***", Action::Drop), ("11**", Action::Permit)]);
        let g = DependencyGraph::build(&p);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn multiple_permits_collected_in_order() {
        let p = pol(vec![
            ("11**", Action::Permit),
            ("1*1*", Action::Permit),
            ("00**", Action::Permit), // disjoint
            ("1***", Action::Drop),
        ]);
        let g = DependencyGraph::build(&p);
        assert_eq!(g.permits_required_by(RuleId(3)), &[RuleId(0), RuleId(1)]);
    }

    #[test]
    fn edges_iterate_all() {
        let p = pol(vec![
            ("11**", Action::Permit),
            ("11**", Action::Drop),
            ("1***", Action::Drop),
        ]);
        let g = DependencyGraph::build(&p);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(RuleId(0), RuleId(1)), (RuleId(0), RuleId(2))]);
    }

    /// The paper's Fig. 2 worked example: two specific permits shielded by
    /// a narrow drop, a second permit/drop cluster on the other half of
    /// the header space, and a catch-all drop that depends on every
    /// permit. Hand-computed edge set:
    /// r2 ← {r0, r1}, r4 ← {r3}, r5 ← {r0, r1, r3} — 6 edges.
    fn fig2_policy() -> Policy {
        pol(vec![
            ("01**", Action::Permit), // r0
            ("0*1*", Action::Permit), // r1
            ("011*", Action::Drop),   // r2: shielded by r0 and r1
            ("10**", Action::Permit), // r3
            ("1***", Action::Drop),   // r4: shielded by r3 only
            ("****", Action::Drop),   // r5: shielded by every permit
        ])
    }

    #[test]
    fn fig2_edge_count_regression() {
        let p = fig2_policy();
        let g = DependencyGraph::build(&p);
        assert_eq!(g.edge_count(), 6, "prune dropped or invented edges");
        assert_eq!(g.permits_required_by(RuleId(2)), &[RuleId(0), RuleId(1)]);
        assert_eq!(g.permits_required_by(RuleId(4)), &[RuleId(3)]);
        assert_eq!(
            g.permits_required_by(RuleId(5)),
            &[RuleId(0), RuleId(1), RuleId(3)]
        );
        assert_eq!(g, DependencyGraph::build_naive(&p));
    }

    #[test]
    fn pruned_build_matches_naive_on_random_policies() {
        use flowplace_rng::{Rng, StdRng};
        const WIDTH: u32 = 8;
        let mut rng = StdRng::seed_from_u64(0xDE96_2026);
        for case in 0..128 {
            let n = rng.gen_range(1..40usize);
            let specs: Vec<(Ternary, Action)> = (0..n)
                .map(|_| {
                    let care = rng.gen_range(0..(1u128 << WIDTH));
                    let value = rng.gen_range(0..(1u128 << WIDTH));
                    let action = if rng.gen_bool(0.5) {
                        Action::Permit
                    } else {
                        Action::Drop
                    };
                    (Ternary::new(WIDTH, care, value), action)
                })
                .collect();
            let p = Policy::from_ordered(specs).unwrap();
            assert_eq!(
                DependencyGraph::build(&p),
                DependencyGraph::build_naive(&p),
                "case {case}: pruned build diverged from naive oracle"
            );
        }
    }

    #[test]
    fn dot_output_mentions_rules() {
        let p = pol(vec![("11**", Action::Permit), ("1***", Action::Drop)]);
        let g = DependencyGraph::build(&p);
        let dot = g.to_dot(&p);
        assert!(dot.contains("r0 -> r1"));
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("shape=ellipse"));
    }
}

//! Golden-model verification of deployed placements.
//!
//! A placement is correct iff for every route and every packet the route
//! can carry, the deployed switch tables drop the packet exactly when the
//! ingress policy's first-match decision is DROP. This module replays
//! packets through the emitted tables along each route and compares with
//! [`Policy::evaluate`](flowplace_acl::Policy::evaluate) — the executable
//! form of the paper's semantic-preservation requirement, used throughout
//! the test suite and available to library users as a deployment check.
//!
//! Two relaxations support fault-tolerant controllers:
//!
//! * [`verify_tables`] checks an arbitrary table set (e.g. the *actual*
//!   dataplane state reconstructed after faults, rather than the tables
//!   emitted from a placement), can restrict the check to live routes,
//!   and supports [`VerifyMode::NoFalseNegatives`] — the one-sided §IV-A
//!   guarantee that no packet the policy DROPs is ever permitted, which
//!   must survive degraded operation even when fail-closed drop-all
//!   rules make the deployment stricter than the policy.
//! * [`verify_placement_excluding`] skips the routes of ingresses that
//!   are in safe mode (their traffic is dropped wholesale by an explicit
//!   drop-all entry, so exact equivalence is deliberately violated).

use std::collections::BTreeSet;
use std::fmt;

use flowplace_rng::{Rng, StdRng};

use flowplace_acl::classify::BatchClassifier;
use flowplace_acl::{Action, Packet, Ternary};
use flowplace_routing::Route;
use flowplace_topo::EntryPortId;

use crate::placement::Placement;
use crate::tables::{emit_tables, SwitchTable, TableError};
use crate::Instance;

/// A semantic violation found by [`verify_placement`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// The ingress whose policy was violated.
    pub ingress: EntryPortId,
    /// The offending packet.
    pub packet: Packet,
    /// What the policy says should happen.
    pub expected: Action,
    /// What the deployed tables actually do.
    pub actual: Action,
    /// Human-readable description of the route involved.
    pub route: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "packet {} on {} ({}): policy says {}, deployment does {}",
            self.packet, self.route, self.ingress, self.expected, self.actual
        )
    }
}

/// Error from [`verify_placement`]: either emission failed or a semantic
/// violation was found.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyError {
    /// Switch-table emission failed.
    Table(TableError),
    /// The deployment disagrees with a policy on some packet.
    Violation(Violation),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Table(e) => write!(f, "{e}"),
            VerifyError::Violation(v) => write!(f, "{v}"),
        }
    }
}

impl std::error::Error for VerifyError {}

impl From<TableError> for VerifyError {
    fn from(e: TableError) -> Self {
        VerifyError::Table(e)
    }
}

/// Walks `packet` along `route` through the deployed `tables`: dropped at
/// the first switch whose table's first match (for this route's ingress
/// tag) is a DROP; permitted entries forward to the next hop; matching
/// nothing forwards too (the ACL default is PERMIT — forwarding is the
/// routing module's job).
pub fn evaluate_route(tables: &[SwitchTable], route: &Route, packet: &Packet) -> Action {
    for &s in &route.switches {
        match tables[s.0].lookup(route.ingress, packet) {
            Some(Action::Drop) => return Action::Drop,
            Some(Action::Permit) | None => {}
        }
    }
    Action::Permit
}

/// Batched [`evaluate_route`]: classifies all packets against each hop's
/// table at once via the structure-of-arrays kernel
/// ([`flowplace_acl::classify`]), returning per-packet actions identical
/// to the scalar walk. A packet is DROPped iff some switch on the route
/// first-matches it to a DROP entry for this route's ingress tag; a
/// PERMIT match keeps the packet live for later hops (a downstream DROP
/// still wins), exactly as in the scalar semantics.
pub fn evaluate_route_batch(
    tables: &[SwitchTable],
    route: &Route,
    packets: &[Packet],
) -> Vec<Action> {
    let mut verdicts = vec![Action::Permit; packets.len()];
    // Indices of packets not yet dropped.
    let mut live: Vec<u32> = (0..packets.len() as u32).collect();
    let mut cubes: Vec<Ternary> = Vec::new();
    let mut actions: Vec<Action> = Vec::new();
    let mut batch: Vec<Packet> = Vec::new();
    let mut matches: Vec<Option<usize>> = Vec::new();
    let mut worklist: Vec<u32> = Vec::new();
    for &s in &route.switches {
        if live.is_empty() {
            break;
        }
        // Entries applicable to this route's ingress, in table (i.e.
        // descending-priority) order — the same first-match order the
        // scalar `SwitchTable::lookup` scans.
        cubes.clear();
        actions.clear();
        for e in tables[s.0].entries() {
            if e.tags.contains(&route.ingress) {
                cubes.push(e.match_field);
                actions.push(e.action);
            }
        }
        if cubes.is_empty() {
            continue;
        }
        let classifier = BatchClassifier::new(&cubes);
        batch.clear();
        batch.extend(live.iter().map(|&i| packets[i as usize]));
        classifier.classify_into(&batch, &mut matches, &mut worklist);
        let mut j = 0;
        live.retain(|&i| {
            let m = matches[j];
            j += 1;
            match m {
                Some(ci) if actions[ci] == Action::Drop => {
                    verdicts[i as usize] = Action::Drop;
                    false
                }
                _ => true,
            }
        });
    }
    verdicts
}

/// How strictly [`verify_tables`] compares deployment with policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VerifyMode {
    /// Exact semantic equivalence: the tables drop a packet iff the
    /// policy's first-match decision is DROP.
    Exact,
    /// One-sided fail-closed check: every packet the policy DROPs must
    /// be dropped by the tables; extra drops (safe-mode drop-alls,
    /// stale entries on fenced switches) are tolerated.
    NoFalseNegatives,
}

/// The adversarial packet set for one route: per-rule corners, pairwise
/// rule intersections (the regions where priority matters), and
/// `random_per_route` seeded random packets, all restricted to the
/// route's flow when path slicing is in use.
fn route_packets(
    policy: &flowplace_acl::Policy,
    route: &Route,
    random_per_route: usize,
    rng: &mut StdRng,
) -> Vec<Packet> {
    let mut packets: Vec<Packet> = Vec::new();
    let rules = policy.rules();
    let restrict = |m: &Ternary| -> Option<Ternary> {
        match &route.flow {
            None => Some(*m),
            Some(f) => m.intersection(f),
        }
    };
    for r in rules {
        if let Some(m) = restrict(r.match_field()) {
            packets.push(m.sample_packet());
            packets.push(m.max_packet());
        }
    }
    for (i, a) in rules.iter().enumerate() {
        for b in &rules[i + 1..] {
            if let Some(m) = a.match_field().intersection(b.match_field()) {
                if let Some(m) = restrict(&m) {
                    packets.push(m.sample_packet());
                    packets.push(m.max_packet());
                }
            }
        }
    }
    route_random_packets(policy, route, random_per_route, rng, &mut packets);
    packets
}

/// The seeded random tail of [`route_packets`], drawing exactly
/// `2 × random_per_route` RNG words regardless of the policy's shape.
/// The fixed draw count is a load-bearing invariant: it decouples every
/// route's RNG stream position from the policies of earlier routes, so
/// a scoped verifier that skips a route's deterministic packet set can
/// still reproduce the identical random packets for all later routes.
fn route_random_packets(
    policy: &flowplace_acl::Policy,
    route: &Route,
    random_per_route: usize,
    rng: &mut StdRng,
    packets: &mut Vec<Packet>,
) {
    let width = if policy.is_empty() {
        route.flow.map(|f| f.width()).unwrap_or(4)
    } else {
        policy.width()
    };
    let wmask = if width >= 128 {
        u128::MAX
    } else {
        (1u128 << width) - 1
    };
    for _ in 0..random_per_route {
        let bits: u128 = ((rng.gen::<u64>() as u128) << 64) | rng.gen::<u64>() as u128;
        let bits = match &route.flow {
            None => bits & wmask,
            Some(f) => (bits & wmask & !f.care()) | f.value(),
        };
        packets.push(Packet::from_bits(bits, width));
    }
}

/// Checks a concrete table set against every ingress policy, route by
/// route. `route_live` filters which routes carry traffic (a route
/// through a crashed switch is dead and exempt); `mode` selects exact
/// equivalence or the one-sided fail-closed check.
///
/// Unlike [`verify_placement`] this does not emit tables itself, so it
/// can audit *actual* dataplane state — including state that diverged
/// from any placement after partial apply failures.
///
/// # Errors
///
/// The first violation found.
pub fn verify_tables(
    instance: &Instance,
    tables: &[SwitchTable],
    random_per_route: usize,
    seed: u64,
    mode: VerifyMode,
    route_live: impl FnMut(&Route) -> bool,
) -> Result<(), VerifyError> {
    verify_tables_scoped(
        instance,
        tables,
        random_per_route,
        seed,
        mode,
        route_live,
        |_, _| false,
    )
}

/// [`verify_tables`] with a verification scope: routes for which
/// `skip_deterministic` returns true are checked against only their
/// seeded random packets, skipping the per-rule corner and pairwise
/// intersection packet sets (and their construction cost).
///
/// Soundness contract: the deterministic packet set of a route is a pure
/// function of `(policy, route, tables on the route)`. A caller may skip
/// it only when it has previously verified the route against
/// byte-identical inputs — in which case re-evaluating it would
/// reproduce the same (passing) verdict. The random packets change with
/// `seed`, so they are always re-evaluated; the per-route RNG draws are
/// a fixed count (see `route_random_packets`), so skipping one route's
/// deterministic set never perturbs another route's packet stream. Under
/// that contract the result is byte-identical to the unscoped walk,
/// including which violation is reported first.
///
/// # Errors
///
/// The first violation found on a live route, in route order then packet
/// draw order.
pub fn verify_tables_scoped(
    instance: &Instance,
    tables: &[SwitchTable],
    random_per_route: usize,
    seed: u64,
    mode: VerifyMode,
    mut route_live: impl FnMut(&Route) -> bool,
    mut skip_deterministic: impl FnMut(usize, &Route) -> bool,
) -> Result<(), VerifyError> {
    let mut rng = StdRng::seed_from_u64(seed);
    for (index, route) in instance.routes().iter().enumerate() {
        let policy = instance
            .policy(route.ingress)
            .expect("validated instance has a policy per route");
        // Draw packets unconditionally so the RNG stream (and therefore
        // every later route's packet set) does not depend on liveness
        // or scoping.
        let packets = if skip_deterministic(index, route) {
            let mut packets = Vec::with_capacity(random_per_route);
            route_random_packets(policy, route, random_per_route, &mut rng, &mut packets);
            packets
        } else {
            route_packets(policy, route, random_per_route, &mut rng)
        };
        if !route_live(route) {
            continue;
        }
        // Batched replay: one kernel pass per hop instead of a scalar
        // table scan per packet. Violations are still reported for the
        // first offending packet in draw order.
        let actuals = evaluate_route_batch(tables, route, &packets);
        for (packet, actual) in packets.into_iter().zip(actuals) {
            let expected = policy.evaluate(&packet);
            let violated = match mode {
                VerifyMode::Exact => expected != actual,
                VerifyMode::NoFalseNegatives => {
                    expected == Action::Drop && actual == Action::Permit
                }
            };
            if violated {
                return Err(VerifyError::Violation(Violation {
                    ingress: route.ingress,
                    packet,
                    expected,
                    actual,
                    route: route.to_string(),
                }));
            }
        }
    }
    Ok(())
}

/// Emits switch tables for `placement` and checks semantic equivalence
/// with every ingress policy on every route, over a packet set combining
/// per-rule corners, pairwise rule intersections, and `random_per_route`
/// seeded random packets (all restricted to the route's flow when path
/// slicing is in use).
///
/// # Errors
///
/// The first violation found, or a table-emission failure.
pub fn verify_placement(
    instance: &Instance,
    placement: &Placement,
    random_per_route: usize,
    seed: u64,
) -> Result<(), VerifyError> {
    verify_placement_excluding(
        instance,
        placement,
        random_per_route,
        seed,
        &BTreeSet::new(),
    )
}

/// [`verify_placement`], but skipping the routes of the given ingresses.
/// A fault-tolerant controller passes its safe-mode set here: those
/// ingresses are covered by an explicit drop-all (fail-closed by
/// construction) and intentionally violate exact equivalence.
///
/// # Errors
///
/// The first violation found on a non-excluded route, or a
/// table-emission failure.
pub fn verify_placement_excluding(
    instance: &Instance,
    placement: &Placement,
    random_per_route: usize,
    seed: u64,
    exclude: &BTreeSet<EntryPortId>,
) -> Result<(), VerifyError> {
    let tables = emit_tables(instance, placement)?;
    verify_tables(
        instance,
        &tables,
        random_per_route,
        seed,
        VerifyMode::Exact,
        |route| !exclude.contains(&route.ingress),
    )
}

/// One-sided check of a placement: emits its tables and verifies that no
/// packet any ingress policy DROPs is permitted on any route
/// ([`VerifyMode::NoFalseNegatives`]). This is the paper's §IV-A
/// security guarantee in isolation — weaker than [`verify_placement`]
/// (extra drops are tolerated), so it is the right oracle for engines
/// that are only required to be fail-closed.
///
/// # Errors
///
/// The first false negative found, or a table-emission failure.
pub fn no_false_negatives(
    instance: &Instance,
    placement: &Placement,
    random_per_route: usize,
    seed: u64,
) -> Result<(), VerifyError> {
    let tables = emit_tables(instance, placement)?;
    verify_tables(
        instance,
        &tables,
        random_per_route,
        seed,
        VerifyMode::NoFalseNegatives,
        |_| true,
    )
}

/// Exhaustive variant of [`verify_placement`]: checks *every* packet of
/// the policies' match width on every route (restricted to the route's
/// flow when present). Complete — a passing result is a proof of
/// semantic preservation — but exponential in width; intended for tests
/// and small headers.
///
/// # Errors
///
/// The first violation found, or a table-emission failure.
///
/// # Panics
///
/// Panics if the match width exceeds 20 bits.
pub fn verify_placement_exhaustive(
    instance: &Instance,
    placement: &Placement,
) -> Result<(), VerifyError> {
    let tables = emit_tables(instance, placement)?;
    for route in instance.routes().iter() {
        let policy = instance
            .policy(route.ingress)
            .expect("validated instance has a policy per route");
        let width = if policy.is_empty() {
            route.flow.map(|f| f.width()).unwrap_or(1)
        } else {
            policy.width()
        };
        assert!(width <= 20, "width {width} too large for exhaustive check");
        for bits in 0..(1u128 << width) {
            let packet = Packet::from_bits(bits, width);
            if let Some(f) = &route.flow {
                if !f.matches(&packet) {
                    continue;
                }
            }
            let expected = policy.evaluate(&packet);
            let actual = evaluate_route(&tables, route, &packet);
            if expected != actual {
                return Err(VerifyError::Violation(Violation {
                    ingress: route.ingress,
                    packet,
                    expected,
                    actual,
                    route: route.to_string(),
                }));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowplace_acl::{Policy, RuleId};
    use flowplace_routing::RouteSet;
    use flowplace_topo::{SwitchId, Topology};

    fn t(s: &str) -> Ternary {
        Ternary::parse(s).unwrap()
    }

    fn chain_instance() -> Instance {
        let mut topo = Topology::linear(3);
        topo.set_uniform_capacity(10);
        let mut routes = RouteSet::new();
        routes.push(Route::new(
            EntryPortId(0),
            EntryPortId(1),
            vec![SwitchId(0), SwitchId(1), SwitchId(2)],
        ));
        let policy =
            Policy::from_ordered(vec![(t("11**"), Action::Permit), (t("1***"), Action::Drop)])
                .unwrap();
        Instance::new(topo, routes, vec![(EntryPortId(0), policy)]).unwrap()
    }

    #[test]
    fn correct_placement_verifies() {
        let inst = chain_instance();
        let mut p = Placement::new();
        p.place(EntryPortId(0), RuleId(0), SwitchId(1));
        p.place(EntryPortId(0), RuleId(1), SwitchId(1));
        verify_placement(&inst, &p, 64, 7).expect("placement is correct");
    }

    #[test]
    fn missing_drop_detected() {
        let inst = chain_instance();
        // Nothing placed: packets matching the DROP are permitted.
        let e = verify_placement(&inst, &Placement::new(), 0, 7).unwrap_err();
        match e {
            VerifyError::Violation(v) => {
                assert_eq!(v.expected, Action::Drop);
                assert_eq!(v.actual, Action::Permit);
            }
            other => panic!("expected violation, got {other}"),
        }
    }

    #[test]
    fn missing_permit_shield_detected() {
        let inst = chain_instance();
        // DROP placed without its higher-priority PERMIT: 11** packets
        // get wrongly dropped.
        let mut p = Placement::new();
        p.place(EntryPortId(0), RuleId(1), SwitchId(1));
        let e = verify_placement(&inst, &p, 0, 7).unwrap_err();
        match e {
            VerifyError::Violation(v) => {
                assert_eq!(v.expected, Action::Permit);
                assert_eq!(v.actual, Action::Drop);
            }
            other => panic!("expected violation, got {other}"),
        }
    }

    #[test]
    fn shield_on_wrong_switch_detected() {
        let inst = chain_instance();
        // PERMIT upstream, DROP downstream: the permit does NOT shield
        // (permits just forward), so behavior is still correct! The
        // shield must be on the same switch — verify that splitting them
        // the other way (drop upstream) is the failing case.
        let mut p = Placement::new();
        p.place(EntryPortId(0), RuleId(1), SwitchId(0)); // drop first
        p.place(EntryPortId(0), RuleId(0), SwitchId(1)); // permit later
        let e = verify_placement(&inst, &p, 0, 7).unwrap_err();
        assert!(matches!(e, VerifyError::Violation(_)));
    }

    #[test]
    fn permit_then_drop_downstream_is_fine() {
        // Permit upstream alone does not shield downstream drops — the
        // packet reaches the drop switch and must still be shielded
        // there. But placing BOTH on the downstream switch is correct
        // even with a stray permit upstream.
        let inst = chain_instance();
        let mut p = Placement::new();
        p.place(EntryPortId(0), RuleId(0), SwitchId(0)); // stray permit
        p.place(EntryPortId(0), RuleId(0), SwitchId(2));
        p.place(EntryPortId(0), RuleId(1), SwitchId(2));
        verify_placement(&inst, &p, 64, 3).expect("correct");
    }

    #[test]
    fn exhaustive_passes_and_fails_correctly() {
        let inst = chain_instance();
        let mut p = Placement::new();
        p.place(EntryPortId(0), RuleId(0), SwitchId(1));
        p.place(EntryPortId(0), RuleId(1), SwitchId(1));
        verify_placement_exhaustive(&inst, &p).expect("complete placement proves out");
        // Dropping the shield is caught by the exhaustive sweep too.
        let mut bad = Placement::new();
        bad.place(EntryPortId(0), RuleId(1), SwitchId(1));
        assert!(verify_placement_exhaustive(&inst, &bad).is_err());
    }

    #[test]
    fn batched_route_evaluation_matches_scalar_exhaustively() {
        // Every 4-bit packet through several placements: the batched
        // kernel path must agree with the scalar per-packet walk.
        let inst = chain_instance();
        let placements = [
            {
                let mut p = Placement::new();
                p.place(EntryPortId(0), RuleId(0), SwitchId(1));
                p.place(EntryPortId(0), RuleId(1), SwitchId(1));
                p
            },
            {
                let mut p = Placement::new();
                p.place(EntryPortId(0), RuleId(1), SwitchId(0)); // drop upstream
                p.place(EntryPortId(0), RuleId(0), SwitchId(1));
                p
            },
            Placement::new(), // empty tables
        ];
        let packets: Vec<Packet> = (0..16).map(|b| Packet::from_bits(b, 4)).collect();
        for placement in &placements {
            let tables = emit_tables(&inst, placement).unwrap();
            for route in inst.routes().iter() {
                let batched = evaluate_route_batch(&tables, route, &packets);
                for (p, got) in packets.iter().zip(&batched) {
                    assert_eq!(*got, evaluate_route(&tables, route, p));
                }
                // Empty batches are a no-op.
                assert!(evaluate_route_batch(&tables, route, &[]).is_empty());
            }
        }
    }

    #[test]
    fn evaluate_route_walks_switches() {
        let inst = chain_instance();
        let mut p = Placement::new();
        p.place(EntryPortId(0), RuleId(0), SwitchId(2));
        p.place(EntryPortId(0), RuleId(1), SwitchId(2));
        let tables = emit_tables(&inst, &p).unwrap();
        let route = inst.routes().route(flowplace_routing::RouteId(0));
        assert_eq!(
            evaluate_route(&tables, route, &Packet::from_bits(0b1000, 4)),
            Action::Drop
        );
        assert_eq!(
            evaluate_route(&tables, route, &Packet::from_bits(0b1100, 4)),
            Action::Permit
        );
    }

    #[test]
    fn one_sided_mode_tolerates_extra_drops() {
        let inst = chain_instance();
        // Nothing placed at all: false negatives everywhere — both modes
        // must object.
        let tables = emit_tables(&inst, &Placement::new()).unwrap();
        assert!(
            verify_tables(&inst, &tables, 32, 7, VerifyMode::NoFalseNegatives, |_| {
                true
            })
            .is_err()
        );
        // A drop-all table is wrong under Exact but fine one-sided: it
        // never lets a to-be-dropped packet through.
        let drop_all = crate::tables::SwitchTable::from_entries(vec![crate::tables::TableEntry {
            tags: std::collections::BTreeSet::from([EntryPortId(0)]),
            match_field: t("****"),
            action: Action::Drop,
            priority: u32::MAX,
            contributors: Vec::new(),
        }]);
        let tables = vec![drop_all, SwitchTable::default(), SwitchTable::default()];
        assert!(verify_tables(&inst, &tables, 32, 7, VerifyMode::Exact, |_| true).is_err());
        verify_tables(&inst, &tables, 32, 7, VerifyMode::NoFalseNegatives, |_| {
            true
        })
        .expect("drop-all is fail-closed");
    }

    #[test]
    fn dead_routes_are_exempt() {
        let inst = chain_instance();
        let tables = emit_tables(&inst, &Placement::new()).unwrap();
        // The only route is declared dead, so the (empty, violating)
        // deployment passes vacuously.
        verify_tables(&inst, &tables, 32, 7, VerifyMode::NoFalseNegatives, |_| {
            false
        })
        .expect("dead routes carry no traffic");
    }

    #[test]
    fn excluding_an_ingress_skips_its_routes() {
        let inst = chain_instance();
        // Empty placement: ingress 0's DROP is uncovered...
        assert!(verify_placement(&inst, &Placement::new(), 16, 7).is_err());
        // ...but excluding ingress 0 (e.g. it is in safe mode) passes.
        let skip = BTreeSet::from([EntryPortId(0)]);
        verify_placement_excluding(&inst, &Placement::new(), 16, 7, &skip)
            .expect("excluded ingress is not checked");
    }

    #[test]
    fn sliced_flow_restricts_verification() {
        // The drop rule is sliced out of the route (flow disjoint), so
        // not placing it is still correct *for that route*.
        let mut topo = Topology::linear(2);
        topo.set_uniform_capacity(10);
        let mut routes = RouteSet::new();
        routes.push(
            Route::new(
                EntryPortId(0),
                EntryPortId(1),
                vec![SwitchId(0), SwitchId(1)],
            )
            .with_flow(t("**00")),
        );
        let policy = Policy::from_ordered(vec![(t("1*11"), Action::Drop)]).unwrap();
        let inst = Instance::new(topo, routes, vec![(EntryPortId(0), policy)]).unwrap();
        verify_placement(&inst, &Placement::new(), 64, 5)
            .expect("rule is irrelevant to this route's flow");
    }

    /// Two routed ingresses on a shared chain, with a correct placement
    /// for both (each policy pinned on a switch of its route).
    fn two_ingress_instance() -> (Instance, Placement) {
        let mut topo = Topology::linear(4);
        topo.set_uniform_capacity(10);
        let mut routes = RouteSet::new();
        routes.push(Route::new(
            EntryPortId(0),
            EntryPortId(2),
            vec![SwitchId(0), SwitchId(1)],
        ));
        routes.push(Route::new(
            EntryPortId(1),
            EntryPortId(3),
            vec![SwitchId(2), SwitchId(3)],
        ));
        let p0 = Policy::from_ordered(vec![(t("11**"), Action::Permit), (t("1***"), Action::Drop)])
            .unwrap();
        let p1 = Policy::from_ordered(vec![(t("00**"), Action::Permit), (t("0***"), Action::Drop)])
            .unwrap();
        let inst = Instance::new(
            topo,
            routes,
            vec![(EntryPortId(0), p0), (EntryPortId(1), p1)],
        )
        .unwrap();
        let mut p = Placement::new();
        p.place(EntryPortId(0), RuleId(0), SwitchId(0));
        p.place(EntryPortId(0), RuleId(1), SwitchId(0));
        p.place(EntryPortId(1), RuleId(0), SwitchId(2));
        p.place(EntryPortId(1), RuleId(1), SwitchId(2));
        (inst, p)
    }

    /// The scoped walk with an all-false skip predicate is the plain
    /// walk (one code path; `verify_tables` is a thin wrapper).
    #[test]
    fn scoped_never_skip_matches_unscoped() {
        let (inst, p) = two_ingress_instance();
        let tables = emit_tables(&inst, &p).unwrap();
        let plain = verify_tables(&inst, &tables, 16, 9, VerifyMode::Exact, |_| true);
        let scoped = verify_tables_scoped(
            &inst,
            &tables,
            16,
            9,
            VerifyMode::Exact,
            |_| true,
            |_, _| false,
        );
        assert_eq!(plain, scoped);
    }

    /// Skipping one route's deterministic packets must not perturb a
    /// later route's seeded random stream: a violation only reachable
    /// via route 1's random packets is reported identically whether or
    /// not route 0 was scoped out.
    #[test]
    fn skip_preserves_later_route_rng_stream() {
        let (inst, p) = two_ingress_instance();
        // Break ingress 1 only: drop its DROP rule from the deployment.
        let mut broken = Placement::new();
        broken.place(EntryPortId(0), RuleId(0), SwitchId(0));
        broken.place(EntryPortId(0), RuleId(1), SwitchId(0));
        let tables = emit_tables(&inst, &broken).unwrap();
        let full = verify_tables(&inst, &tables, 16, 9, VerifyMode::Exact, |_| true).unwrap_err();
        let scoped = verify_tables_scoped(
            &inst,
            &tables,
            16,
            9,
            VerifyMode::Exact,
            |_| true,
            // Route 0 previously verified unchanged; route 1 is dirty.
            |i, _| i == 0,
        )
        .unwrap_err();
        assert_eq!(full, scoped, "scoping route 0 changed route 1's verdict");
        // And the violating random packet itself is byte-identical even
        // when route 1's own deterministic set is (unsoundly, for the
        // purpose of this stream test) skipped too: the corner packets
        // of a 1-rule policy never catch this, the random ones do.
        let all_skipped = verify_tables_scoped(
            &inst,
            &tables,
            64,
            9,
            VerifyMode::Exact,
            |_| true,
            |_, _| true,
        );
        assert!(all_skipped.is_err(), "random packets still catch the hole");
    }

    /// A clean skip of every route (placement verified before, inputs
    /// unchanged) still passes, and a deterministic-only violation is
    /// indeed invisible when skipped — the caller's fingerprint guard is
    /// what makes that sound.
    #[test]
    fn skip_elides_deterministic_packets_only() {
        let (inst, p) = two_ingress_instance();
        let tables = emit_tables(&inst, &p).unwrap();
        verify_tables_scoped(
            &inst,
            &tables,
            8,
            3,
            VerifyMode::Exact,
            |_| true,
            |_, _| true,
        )
        .expect("correct deployment passes under a full skip");
        // Zero random packets + full skip = no packets at all: even a
        // broken deployment "passes". This is exactly why the scoped
        // entry point is gated behind the byte-unchanged contract.
        let empty = Placement::new();
        let tables = emit_tables(&inst, &empty).unwrap();
        verify_tables_scoped(
            &inst,
            &tables,
            0,
            3,
            VerifyMode::Exact,
            |_| true,
            |_, _| true,
        )
        .expect("skip without the contract is vacuous by design");
        assert!(verify_tables(&inst, &tables, 0, 3, VerifyMode::Exact, |_| true).is_err());
    }
}

//! Warm-path incremental solving: epoch-over-epoch reuse for the
//! placement pipeline (the §IV-E update stream, made cheap).
//!
//! A controller that re-solves after every small policy update repeats
//! almost all of its work: dependency graphs and candidate sets of
//! untouched ingresses are recomputed verbatim, and a rolled-back or
//! replayed epoch re-solves an instance that was already solved. This
//! module makes re-solves proportional to the *change*:
//!
//! 1. **Fingerprints.** A stable 64-bit hash ([`Fingerprint`]) over
//!    policy rules, routes, and slices identifies each ingress
//!    ([`fingerprint_ingress`]) and the whole instance
//!    ([`fingerprint_instance`]). Fingerprints are pure functions of the
//!    problem data — no addresses, no iteration-order dependence — so
//!    they are stable across processes and replays.
//! 2. **Structural caches.** [`WarmCache`] keeps dependency graphs keyed
//!    by policy fingerprint and per-ingress candidate sets keyed by
//!    ingress fingerprint. Stages 1/2 of the parallel pipeline
//!    ([`crate::par::solve_with_cache`]) recompute only dirty ingresses;
//!    cached entries are byte-identical to a cold build because the
//!    cached value *is* the output of the same pure function the cold
//!    path runs, keyed by a hash of that function's entire input.
//! 3. **Placement memo.** Solved instances are memoized under their full
//!    instance fingerprint (policies + routes + capacities + options +
//!    objective), so a checkpoint → rollback → re-apply cycle returns
//!    the cached placement in O(1) instead of re-solving.
//!
//! # Determinism contract
//!
//! With [`WarmConfig::sessions`] **off** (the default), the warm path is
//! **byte-identical** to the cold path for any deterministic
//! configuration (`portfolio: false`, no wall-clock limits): every cache
//! key covers every input of the cached computation, and a memo hit
//! returns exactly the outcome the cold solve produced for the identical
//! instance. The differential suite asserts this over seeded §IV-E
//! update streams, including across rollback.
//!
//! With `sessions` **on**, solver state persists across epochs: the
//! PB-SAT engine keeps its learnt clauses and activates per-epoch deltas
//! through assumptions ([`flowplace_pbsat::Solver::solve_with_assumptions`]
//! with one activation literal per ingress group), and the ILP engine is
//! seeded with the previous epoch's placement as its incumbent plus
//! bound-fixed variables for untouched ingresses. Sessions preserve
//! *feasibility* and solve status semantics but not solution bytes: a
//! seeded incumbent can win objective ties differently, and fixing
//! untouched ingresses restricts the search (such solves report at most
//! [`SolveStatus::Feasible`], never a possibly-unsound `Optimal`).
//! Sessions are therefore opt-in.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::atomic::AtomicBool;
use std::time::Instant;

use flowplace_acl::{Policy, RuleId};
use flowplace_pbsat::{Lit, SatResult, Solver, Var};
use flowplace_topo::{EntryPortId, SwitchId};

use crate::candidates::CandidateMap;
use crate::depgraph::DependencyGraph;
use crate::encode_ilp::{EncodeOptions, IlpEncoding};
use crate::placement::{
    place_ilp_with, place_sat_with, Placement, PlacementOptions, PlacementOutcome, PlacementStats,
};
use crate::slicing;
use crate::{Instance, Objective, PlacerEngine, SolveStatus};
use flowplace_fasthash::FnvHashMap;

/// A stable 64-bit content hash (FNV-1a over a canonical serialization).
///
/// Used as the cache key for every warm-path cache. Keys are pure
/// functions of problem data, so equal problems hash equal across
/// processes; distinct problems colliding is the usual 64-bit-hash
/// assumption (and the differential suite would catch a systematic
/// break).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub struct Fingerprint(pub u64);

/// Incremental FNV-1a hasher over canonical little-endian words — the
/// shared implementation from `flowplace-fasthash`, re-aliased so the
/// fingerprint functions below read the same as ever. `finish` returns
/// the raw `u64`; wrap it in [`Fingerprint`] at the call site.
type Fnv = flowplace_fasthash::Fnv64;

/// Fingerprint of one policy: width plus `(care, value, action,
/// priority)` of every rule in priority order.
pub fn fingerprint_policy(policy: &Policy) -> Fingerprint {
    let mut h = Fnv::new();
    h.u64(policy.width() as u64);
    h.usize(policy.len());
    for (id, rule) in policy.iter() {
        h.usize(id.0);
        h.u128(rule.match_field().care());
        h.u128(rule.match_field().value());
        h.bool(rule.action().is_drop());
        h.u64(rule.priority() as u64);
    }
    Fingerprint(h.finish())
}

/// Salts a fingerprint with a shard id, keeping per-shard scratch
/// streams (slice fingerprints, shard-local caches) disjoint from the
/// global warm-path key space and from each other. The salt is mixed
/// through the same FNV stream as every other fingerprint input, so the
/// result is stable across processes; `shard_fingerprint(fp, a) ≠
/// shard_fingerprint(fp, b)` for `a ≠ b` under the usual 64-bit-hash
/// assumption. The *authoritative* warm cache is never salted — its
/// keys must stay byte-identical between sharded and unsharded runs.
pub fn shard_fingerprint(fp: Fingerprint, shard: u32) -> Fingerprint {
    let mut h = Fnv::new();
    h.u64(fp.0);
    // Tag byte separates the salted stream from plain two-word hashes.
    h.byte(b'S');
    h.u64(shard as u64);
    Fingerprint(h.finish())
}

/// Fingerprint of one ingress: its policy plus every route from it
/// (egress, switch sequence, and flow slice). This is the dirty-ingress
/// key — candidate sets depend on exactly these inputs (capacities enter
/// only at solve time).
pub fn fingerprint_ingress(instance: &Instance, ingress: EntryPortId) -> Fingerprint {
    let mut h = Fnv::new();
    h.usize(ingress.0);
    let policy_fp = instance
        .policy(ingress)
        .map(fingerprint_policy)
        .unwrap_or(Fingerprint(0));
    h.u64(policy_fp.0);
    let paths = instance.routes().paths_from(ingress);
    h.usize(paths.len());
    for rid in paths {
        let route = instance.routes().route(rid);
        h.usize(route.egress.0);
        h.usize(route.switches.len());
        for s in &route.switches {
            h.usize(s.0);
        }
        match &route.flow {
            None => h.bool(false),
            Some(t) => {
                h.bool(true);
                h.u64(t.width() as u64);
                h.u128(t.care());
                h.u128(t.value());
            }
        }
    }
    Fingerprint(h.finish())
}

/// Fingerprint of every solve-affecting option: engine, encoding knobs,
/// monitors, solver limits, and the objective. Thread count is *not*
/// hashed — it never changes the result (the pipeline's merge-order
/// rule); `portfolio` is, because it changes which engine may answer.
fn fingerprint_options(options: &PlacementOptions, objective: &Objective) -> Fingerprint {
    let mut h = Fnv::new();
    h.byte(match options.engine {
        PlacerEngine::Ilp => 0,
        PlacerEngine::Sat => 1,
    });
    h.byte(match options.dependency {
        crate::DependencyEncoding::Pairwise => 0,
        crate::DependencyEncoding::Aggregated => 1,
        crate::DependencyEncoding::Lazy => 2,
    });
    h.bool(options.merging);
    h.byte(match options.merge_linking {
        crate::MergeLinking::PerMember => 0,
        crate::MergeLinking::Aggregated => 1,
    });
    h.bool(options.greedy_warm_start);
    h.usize(options.monitors.len());
    for m in &options.monitors {
        h.usize(m.switch.0);
        h.u64(m.flow.width() as u64);
        h.u128(m.flow.care());
        h.u128(m.flow.value());
    }
    match options.mip.time_limit {
        None => h.bool(false),
        Some(d) => {
            h.bool(true);
            h.u128(d.as_nanos());
        }
    }
    match options.mip.node_limit {
        None => h.bool(false),
        Some(n) => {
            h.bool(true);
            h.usize(n);
        }
    }
    h.f64(options.mip.integrality_tol);
    h.f64(options.mip.absolute_gap);
    match &options.mip.initial_solution {
        None => h.bool(false),
        Some(v) => {
            h.bool(true);
            h.usize(v.len());
            for x in v {
                h.f64(*x);
            }
        }
    }
    h.usize(options.mip.lp.max_iterations);
    h.f64(options.mip.lp.tolerance);
    h.bool(options.parallel.portfolio);
    // CDCL options steer the SAT search (and thus which model a SAT solve
    // returns), so memo entries must not cross option boundaries. Thread
    // count is deliberately not hashed — results are thread-invariant.
    h.byte(match options.sat.restart {
        flowplace_pbsat::RestartStrategy::Luby => 0,
        flowplace_pbsat::RestartStrategy::Glucose => 1,
    });
    h.bool(options.sat.db_reduction);
    match objective {
        Objective::TotalRules => h.byte(0),
        Objective::DistanceWeighted => h.byte(1),
        Objective::WeightedSwitches(w) => {
            h.byte(2);
            h.usize(w.len());
            for (s, c) in w {
                h.usize(s.0);
                h.f64(*c);
            }
        }
    }
    Fingerprint(h.finish())
}

/// Fingerprint of the whole solve instance: every ingress fingerprint,
/// every switch capacity, the options, and the objective — the placement
/// memo key. Two epochs with equal instance fingerprints have
/// byte-identical cold solves (for deterministic configurations), so
/// the memoized outcome substitutes exactly.
pub fn fingerprint_instance(
    instance: &Instance,
    objective: &Objective,
    options: &PlacementOptions,
) -> Fingerprint {
    let mut h = Fnv::new();
    let policies: Vec<_> = instance.policies().collect();
    h.usize(policies.len());
    for (ingress, _) in policies {
        h.u64(fingerprint_ingress(instance, ingress).0);
    }
    let caps = instance.topology().capacities();
    h.usize(caps.len());
    for c in caps {
        h.usize(c);
    }
    h.u64(fingerprint_options(options, objective).0);
    Fingerprint(h.finish())
}

/// Warm-path configuration, carried in
/// [`crate::ctrl-level options`](WarmConfig) and consumed by
/// [`WarmCache`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WarmConfig {
    /// Master switch. Off = every solve is cold (the cache becomes a
    /// no-op pass-through).
    pub enabled: bool,
    /// Persistent solver sessions across epochs (SAT learnt-clause
    /// retention via assumptions, ILP incumbent seeding + bound fixing).
    /// Weaker determinism contract — see the module docs. Off by
    /// default.
    pub sessions: bool,
    /// Placement-memo capacity (entries, FIFO eviction).
    pub memo_capacity: usize,
}

impl Default for WarmConfig {
    fn default() -> Self {
        WarmConfig {
            enabled: true,
            sessions: false,
            memo_capacity: 64,
        }
    }
}

/// Cumulative warm-path counters (all monotone except the
/// `sat_learnt_retained` gauge).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WarmStats {
    /// Placement-memo lookups (`memo_hits + memo_misses` always equals
    /// this — the telemetry invariant `tests/obs_invariants.rs` pins).
    pub memo_lookups: u64,
    /// Placement-memo hits (re-solves answered in O(1)).
    pub memo_hits: u64,
    /// Placement-memo misses (full solves that went to stage 3).
    pub memo_misses: u64,
    /// Memo entries evicted by the FIFO capacity bound.
    pub memo_evictions: u64,
    /// Dependency graphs served from cache.
    pub depgraphs_reused: u64,
    /// Dependency graphs built cold.
    pub depgraphs_built: u64,
    /// Per-ingress candidate sets served from cache.
    pub candidates_reused: u64,
    /// Per-ingress candidate sets built cold.
    pub candidates_built: u64,
    /// Solves answered by the persistent SAT session.
    pub sat_session_solves: u64,
    /// Learnt clauses carried into the most recent session solve (gauge).
    pub sat_learnt_retained: u64,
    /// ILP solves seeded with the previous epoch's placement.
    pub ilp_incumbent_seeded: u64,
    /// Placement variables bound-fixed for untouched ingresses
    /// (cumulative).
    pub ilp_vars_fixed: u64,
}

/// Upper bound on structural-cache entries before the cache is dropped
/// wholesale (a crude but deterministic bound; entries are small and the
/// working set of live policies is far below this).
const STRUCTURAL_CAP: usize = 1024;

type IngressCandidates = BTreeMap<RuleId, BTreeSet<SwitchId>>;

/// The epoch cache: structural caches, the placement memo, and (when
/// enabled) persistent solver sessions.
///
/// Interior-mutable so it threads through the existing `&self` solve
/// paths; it is a single-thread object (the parallel pipeline consults
/// it only from the coordinating thread).
///
/// The structural caches are [`FnvHashMap`]s, not `BTreeMap`s: they are
/// probed by fingerprint and never iterated, so iteration order cannot
/// leak into placements or telemetry (the DESIGN.md §16 hasher policy;
/// the 32-seed warm/obs differential suites pin this).
#[derive(Clone, Debug)]
pub struct WarmCache {
    config: WarmConfig,
    depgraphs: RefCell<FnvHashMap<Fingerprint, DependencyGraph>>,
    candidates: RefCell<FnvHashMap<Fingerprint, IngressCandidates>>,
    memo: RefCell<VecDeque<(Fingerprint, PlacementOutcome)>>,
    stats: RefCell<WarmStats>,
    session: RefCell<SessionState>,
}

impl Default for WarmCache {
    fn default() -> Self {
        WarmCache::new(WarmConfig::default())
    }
}

impl WarmCache {
    /// Creates a cache with the given configuration.
    pub fn new(config: WarmConfig) -> Self {
        WarmCache {
            config,
            depgraphs: RefCell::new(FnvHashMap::default()),
            candidates: RefCell::new(FnvHashMap::default()),
            memo: RefCell::new(VecDeque::new()),
            stats: RefCell::new(WarmStats::default()),
            session: RefCell::new(SessionState::default()),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &WarmConfig {
        &self.config
    }

    /// True if the warm path is active at all.
    pub fn enabled(&self) -> bool {
        self.config.enabled
    }

    /// True if persistent solver sessions are active.
    pub fn sessions_enabled(&self) -> bool {
        self.config.enabled && self.config.sessions
    }

    /// A snapshot of the counters.
    pub fn stats(&self) -> WarmStats {
        *self.stats.borrow()
    }

    /// Drops every cached artifact (structural caches, memo, sessions).
    /// Counters are kept — they describe history, not contents.
    pub fn clear(&self) {
        self.depgraphs.borrow_mut().clear();
        self.candidates.borrow_mut().clear();
        self.memo.borrow_mut().clear();
        *self.session.borrow_mut() = SessionState::default();
    }

    /// Cached dependency graph for `fp`, if present.
    pub(crate) fn depgraph_lookup(&self, fp: Fingerprint) -> Option<DependencyGraph> {
        let hit = self.depgraphs.borrow().get(&fp).cloned();
        let mut stats = self.stats.borrow_mut();
        match hit {
            Some(g) => {
                stats.depgraphs_reused += 1;
                Some(g)
            }
            None => {
                stats.depgraphs_built += 1;
                None
            }
        }
    }

    /// Stores a freshly built dependency graph.
    pub(crate) fn depgraph_store(&self, fp: Fingerprint, graph: &DependencyGraph) {
        let mut map = self.depgraphs.borrow_mut();
        if map.len() >= STRUCTURAL_CAP {
            map.clear();
        }
        map.insert(fp, graph.clone());
    }

    /// Cached per-ingress candidate set for `fp`, if present.
    pub(crate) fn candidates_lookup(&self, fp: Fingerprint) -> Option<IngressCandidates> {
        let hit = self.candidates.borrow().get(&fp).cloned();
        let mut stats = self.stats.borrow_mut();
        match hit {
            Some(c) => {
                stats.candidates_reused += 1;
                Some(c)
            }
            None => {
                stats.candidates_built += 1;
                None
            }
        }
    }

    /// Stores a freshly built per-ingress candidate set.
    pub(crate) fn candidates_store(&self, fp: Fingerprint, cands: &IngressCandidates) {
        let mut map = self.candidates.borrow_mut();
        if map.len() >= STRUCTURAL_CAP {
            map.clear();
        }
        map.insert(fp, cands.clone());
    }

    /// The memoized outcome of a previously solved instance, if any.
    pub(crate) fn memo_get(&self, fp: Fingerprint) -> Option<PlacementOutcome> {
        let hit = self
            .memo
            .borrow()
            .iter()
            .find(|(k, _)| *k == fp)
            .map(|(_, o)| o.clone());
        let mut stats = self.stats.borrow_mut();
        stats.memo_lookups += 1;
        match hit {
            Some(o) => {
                stats.memo_hits += 1;
                Some(o)
            }
            None => {
                stats.memo_misses += 1;
                None
            }
        }
    }

    /// Memoizes a solved instance. Timeout outcomes are never stored —
    /// they depend on wall clock, not on the instance.
    pub(crate) fn memo_put(&self, fp: Fingerprint, outcome: &PlacementOutcome) {
        if outcome.status == SolveStatus::Unknown || self.config.memo_capacity == 0 {
            return;
        }
        let mut memo = self.memo.borrow_mut();
        if memo.iter().any(|(k, _)| *k == fp) {
            return;
        }
        while memo.len() >= self.config.memo_capacity {
            memo.pop_front();
            self.stats.borrow_mut().memo_evictions += 1;
        }
        memo.push_back((fp, outcome.clone()));
    }

    /// Stage-3 solve with persistent solver sessions (the caller already
    /// missed the memo). Falls back to the cold engines internally for
    /// unsupported shapes; always concludes.
    pub(crate) fn session_solve(
        &self,
        instance: &Instance,
        objective: &Objective,
        options: &PlacementOptions,
        candidates: &CandidateMap,
        ingress_fps: &BTreeMap<EntryPortId, Fingerprint>,
    ) -> (PlacementOutcome, crate::par::Provenance) {
        let mut session = self.session.borrow_mut();
        let (outcome, provenance) = if options.parallel.portfolio {
            session.solve_portfolio(self, instance, objective, options, candidates, ingress_fps)
        } else {
            match options.engine {
                PlacerEngine::Ilp => {
                    let out = session.solve_ilp(
                        self,
                        instance,
                        objective,
                        options,
                        candidates,
                        ingress_fps,
                    );
                    (out, crate::par::Provenance::Single(PlacerEngine::Ilp))
                }
                PlacerEngine::Sat => {
                    let out =
                        session.solve_sat(self, instance, options, candidates, ingress_fps, None);
                    (out, crate::par::Provenance::Single(PlacerEngine::Sat))
                }
            }
        };
        // Remember the winner for next epoch's incumbent seeding.
        if let Some(p) = &outcome.placement {
            session.ilp_prev = Some(IlpMemory {
                ingress_fps: ingress_fps.clone(),
                placement: p.clone(),
            });
        }
        (outcome, provenance)
    }

    fn bump(&self, f: impl FnOnce(&mut WarmStats)) {
        f(&mut self.stats.borrow_mut());
    }
}

/// Previous-epoch memory for ILP incumbent seeding.
#[derive(Clone, Debug)]
struct IlpMemory {
    ingress_fps: BTreeMap<EntryPortId, Fingerprint>,
    placement: Placement,
}

/// Persistent solver state across epochs.
#[derive(Clone, Debug, Default)]
struct SessionState {
    sat: Option<SatSession>,
    ilp_prev: Option<IlpMemory>,
}

impl SessionState {
    /// Portfolio race with persistent state on both sides: the SAT
    /// session keeps its learnt clauses; the ILP side is seeded with the
    /// previous epoch's placement. Same cancellation protocol as the
    /// cold portfolio.
    fn solve_portfolio(
        &mut self,
        cache: &WarmCache,
        instance: &Instance,
        objective: &Objective,
        options: &PlacementOptions,
        candidates: &CandidateMap,
        ingress_fps: &BTreeMap<EntryPortId, Fingerprint>,
    ) -> (PlacementOutcome, crate::par::Provenance) {
        use crate::par::Provenance;
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;

        let cancel_ilp = Arc::new(AtomicBool::new(false));
        let cancel_sat = AtomicBool::new(false);
        const NO_WINNER: usize = 0;
        const ILP_WON: usize = 1;
        const SAT_WON: usize = 2;
        let winner = AtomicUsize::new(NO_WINNER);

        let mut ilp_options = options.clone();
        ilp_options.mip.cancel = Some(cancel_ilp.clone());
        let ilp_seed = self.ilp_prev.clone();
        let sat_supported = sat_session_supported(options);
        // The session solver crosses into the scoped thread as a plain
        // `&mut`; the cold fallback needs no state.
        let mut sat_session = if sat_supported {
            Some(
                self.sat
                    .take()
                    .unwrap_or_else(|| SatSession::with_options(options.sat)),
            )
        } else {
            None
        };
        let mut seed_report = SeedReport::default();
        let mut sat_report = SatReport::default();

        let (ilp_out, sat_out) = std::thread::scope(|s| {
            let seed_report = &mut seed_report;
            let sat_report = &mut sat_report;
            let sat_session_ref = &mut sat_session;
            let winner = &winner;
            let cancel_sat_ref = &cancel_sat;
            let cancel_ilp_ref = &cancel_ilp;
            let ilp = s.spawn(move || {
                let (out, report) = ilp_seeded_solve(
                    &ilp_options,
                    instance,
                    objective,
                    candidates,
                    ingress_fps,
                    ilp_seed.as_ref(),
                );
                *seed_report = report;
                if conclusive(&out)
                    && winner
                        .compare_exchange(NO_WINNER, ILP_WON, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                {
                    cancel_sat_ref.store(true, Ordering::Release);
                }
                out
            });
            let sat = s.spawn(move || {
                let (out, report) = match sat_session_ref.as_mut() {
                    Some(session) => {
                        session.solve(instance, candidates, ingress_fps, Some(cancel_sat_ref))
                    }
                    None => (
                        place_sat_with(options, instance, candidates, Some(cancel_sat_ref)),
                        SatReport::default(),
                    ),
                };
                *sat_report = report;
                if conclusive(&out)
                    && winner
                        .compare_exchange(NO_WINNER, SAT_WON, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                {
                    cancel_ilp_ref.store(true, Ordering::Release);
                }
                out
            });
            (
                ilp.join().expect("ILP session thread panicked"),
                sat.join().expect("SAT session thread panicked"),
            )
        });

        self.sat = sat_session;
        cache.bump(|s| {
            s.ilp_incumbent_seeded += seed_report.seeded as u64;
            s.ilp_vars_fixed += seed_report.vars_fixed;
            s.sat_session_solves += sat_report.session_used as u64;
            if sat_report.session_used {
                s.sat_learnt_retained = sat_report.learnt_retained;
            }
        });

        match winner.load(Ordering::Acquire) {
            ILP_WON => (ilp_out, Provenance::Portfolio(PlacerEngine::Ilp)),
            SAT_WON => (sat_out, Provenance::Portfolio(PlacerEngine::Sat)),
            _ => match options.engine {
                PlacerEngine::Ilp => (ilp_out, Provenance::Portfolio(PlacerEngine::Ilp)),
                PlacerEngine::Sat => (sat_out, Provenance::Portfolio(PlacerEngine::Sat)),
            },
        }
    }

    fn solve_ilp(
        &mut self,
        cache: &WarmCache,
        instance: &Instance,
        objective: &Objective,
        options: &PlacementOptions,
        candidates: &CandidateMap,
        ingress_fps: &BTreeMap<EntryPortId, Fingerprint>,
    ) -> PlacementOutcome {
        let (out, report) = ilp_seeded_solve(
            options,
            instance,
            objective,
            candidates,
            ingress_fps,
            self.ilp_prev.as_ref(),
        );
        cache.bump(|s| {
            s.ilp_incumbent_seeded += report.seeded as u64;
            s.ilp_vars_fixed += report.vars_fixed;
        });
        out
    }

    fn solve_sat(
        &mut self,
        cache: &WarmCache,
        instance: &Instance,
        options: &PlacementOptions,
        candidates: &CandidateMap,
        ingress_fps: &BTreeMap<EntryPortId, Fingerprint>,
        cancel: Option<&AtomicBool>,
    ) -> PlacementOutcome {
        if !sat_session_supported(options) {
            return place_sat_with(options, instance, candidates, cancel);
        }
        let mut session = self
            .sat
            .take()
            .unwrap_or_else(|| SatSession::with_options(options.sat));
        let (out, report) = session.solve(instance, candidates, ingress_fps, cancel);
        self.sat = Some(session);
        cache.bump(|s| {
            s.sat_session_solves += 1;
            s.sat_learnt_retained = report.learnt_retained;
        });
        out
    }
}

/// True if the persistent SAT session can encode this configuration.
/// Merging introduces cross-policy variables the delta encoder does not
/// version; such solves fall back to the cold SAT encoder.
fn sat_session_supported(options: &PlacementOptions) -> bool {
    !options.merging
}

fn conclusive(outcome: &PlacementOutcome) -> bool {
    outcome.placement.is_some() || outcome.status == SolveStatus::Infeasible
}

/// What the ILP seeding pass did (folded into [`WarmStats`]).
#[derive(Clone, Copy, Debug, Default)]
struct SeedReport {
    seeded: bool,
    vars_fixed: u64,
}

/// ILP solve seeded from the previous epoch: the old placement becomes
/// the initial incumbent when still feasible, and variables of
/// fingerprint-identical ingresses are bound-fixed to their previous
/// values. A fixed solve that comes back infeasible (the freeze was too
/// aggressive — e.g. a capacity cut elsewhere needs an untouched ingress
/// to move) is retried unfixed, so feasibility is never lost. Solves
/// with any fixed variable report at most [`SolveStatus::Feasible`]:
/// the restricted search cannot prove global optimality.
fn ilp_seeded_solve(
    options: &PlacementOptions,
    instance: &Instance,
    objective: &Objective,
    candidates: &CandidateMap,
    ingress_fps: &BTreeMap<EntryPortId, Fingerprint>,
    prev: Option<&IlpMemory>,
) -> (PlacementOutcome, SeedReport) {
    let mut report = SeedReport::default();
    let Some(prev) = prev else {
        return (
            place_ilp_with(options, instance, objective, candidates),
            report,
        );
    };

    let start = Instant::now();
    let mut enc = IlpEncoding::build_with_candidates(
        instance,
        objective,
        &EncodeOptions {
            dependency: options.dependency,
            merging: options.merging,
            merge_linking: options.merge_linking,
        },
        candidates,
    );

    // Freeze every variable of an untouched ingress to its previous
    // value; only dirty ingresses stay free. This is sound per-ingress:
    // an unchanged fingerprint means unchanged policy, routes, and
    // therefore candidates, so the old per-ingress assignment still
    // satisfies its coverage and dependency rows. Cross-ingress capacity
    // rows may still reject the freeze — handled by the infeasible
    // fallback below.
    for (&(ingress, rule), switches) in candidates {
        let untouched = prev
            .ingress_fps
            .get(&ingress)
            .is_some_and(|f| ingress_fps.get(&ingress) == Some(f));
        if !untouched {
            continue;
        }
        for &s in switches {
            if let Some(v) = enc.var(ingress, rule, s) {
                let val = if prev.placement.is_placed(ingress, rule, s) {
                    1.0
                } else {
                    0.0
                };
                enc.model.fix_var(v, val);
                report.vars_fixed += 1;
            }
        }
    }

    let mut mip = options.mip.clone();
    // Incumbent seeding needs the *whole* previous placement to still
    // decode into the new encoding and satisfy it (it fails when a dirty
    // policy changed its rule set, or capacities shrank under the old
    // load); variable fixing above works regardless.
    if let Some(ws) = enc
        .warm_start(&prev.placement)
        .filter(|ws| enc.model.check_feasible(ws, 1e-6).is_ok())
    {
        report.seeded = true;
        mip.initial_solution = Some(ws);
    }
    let lazy = options.dependency == crate::DependencyEncoding::Lazy;
    let out = flowplace_milp::solve_mip_lazy(&enc.model, &mip, &mut |vals| {
        if lazy {
            enc.violated_dependencies(vals)
        } else {
            Vec::new()
        }
    });
    let status = match out.status {
        flowplace_milp::MipStatus::Optimal => {
            if report.vars_fixed > 0 {
                // Optimal of the *restricted* problem only.
                SolveStatus::Feasible
            } else {
                SolveStatus::Optimal
            }
        }
        flowplace_milp::MipStatus::Feasible => SolveStatus::Feasible,
        flowplace_milp::MipStatus::Infeasible => {
            // The freeze over-constrained the model; retry unrestricted.
            return (
                place_ilp_with(options, instance, objective, candidates),
                report,
            );
        }
        flowplace_milp::MipStatus::Unknown | flowplace_milp::MipStatus::Error => {
            SolveStatus::Unknown
        }
    };
    let placement = out.best.as_ref().map(|b| enc.decode(&b.values));
    (
        PlacementOutcome {
            placement,
            status,
            objective: out.best.as_ref().map(|b| b.objective),
            stats: PlacementStats {
                variables: enc.num_placement_vars,
                constraints: enc.model.num_constraints(),
                nodes: out.nodes,
                lp_iterations: out.lp_iterations,
                lazy_rows: out.lazy_rows_added,
                elapsed: start.elapsed(),
                sat: None,
            },
        },
        report,
    )
}

/// What a SAT session solve did (folded into [`WarmStats`]).
#[derive(Clone, Copy, Debug, Default)]
struct SatReport {
    session_used: bool,
    learnt_retained: u64,
}

/// One ingress group inside the persistent SAT session: the encoding
/// version it was built from, the activation literal gating its clauses,
/// and its placement variables.
#[derive(Clone, Debug)]
struct SatGroup {
    fp: Fingerprint,
    act: Lit,
    vars: BTreeMap<(RuleId, SwitchId), Var>,
}

/// The persistent PB-SAT session: one long-lived [`Solver`] whose clause
/// database accumulates ingress-group encodings gated by activation
/// literals. Each epoch asserts (via assumptions) the activation
/// literals of the *current* encoding versions; superseded versions are
/// permanently disabled with a level-0 unit clause. Capacity PB rows are
/// likewise gated per epoch (big-M slack on the gate literal), because
/// they span all live variables and change whenever any group does.
/// Learnt clauses survive across epochs — they are implied by the clause
/// database alone, since assumptions enter the search as
/// pseudo-decisions.
#[derive(Clone, Debug, Default)]
struct SatSession {
    solver: Solver,
    groups: BTreeMap<EntryPortId, SatGroup>,
    /// Current capacity-row generation: fingerprint of (live variables,
    /// capacities) plus the gate literal that activates those rows.
    capacity: Option<(Fingerprint, Lit)>,
}

impl SatSession {
    /// A fresh session whose long-lived solver uses the given CDCL
    /// options. (`Default` keeps the solver's own defaults and is only
    /// used by tests.)
    fn with_options(sat: flowplace_pbsat::SolverOptions) -> Self {
        SatSession {
            solver: Solver::with_options(sat),
            groups: BTreeMap::new(),
            capacity: None,
        }
    }

    /// Encodes this epoch's delta and solves under assumptions.
    fn solve(
        &mut self,
        instance: &Instance,
        candidates: &CandidateMap,
        ingress_fps: &BTreeMap<EntryPortId, Fingerprint>,
        cancel: Option<&AtomicBool>,
    ) -> (PlacementOutcome, SatReport) {
        let start = Instant::now();
        let report = SatReport {
            session_used: true,
            learnt_retained: self.solver.stats().learnt_clauses,
        };

        // Per-ingress candidates, grouped for the delta encoder. The
        // group key folds the candidate content in: monitors restrict
        // candidates after assembly, and those restrictions must version
        // the group encoding too.
        let mut by_ingress: BTreeMap<EntryPortId, BTreeMap<RuleId, Vec<SwitchId>>> =
            BTreeMap::new();
        for (&(ingress, rule), switches) in candidates {
            by_ingress
                .entry(ingress)
                .or_default()
                .insert(rule, switches.iter().copied().collect());
        }

        let live: BTreeMap<EntryPortId, Fingerprint> = instance
            .policies()
            .map(|(ingress, _)| {
                let mut h = Fnv::new();
                h.u64(ingress_fps.get(&ingress).map(|f| f.0).unwrap_or(0));
                if let Some(rules) = by_ingress.get(&ingress) {
                    h.usize(rules.len());
                    for (rule, switches) in rules {
                        h.usize(rule.0);
                        h.usize(switches.len());
                        for s in switches {
                            h.usize(s.0);
                        }
                    }
                }
                (ingress, Fingerprint(h.finish()))
            })
            .collect();

        // Retire groups whose encoding no longer matches (policy/route/
        // candidate change) or whose ingress vanished.
        let stale: Vec<EntryPortId> = self
            .groups
            .iter()
            .filter(|(ingress, g)| live.get(ingress) != Some(&g.fp))
            .map(|(&ingress, _)| ingress)
            .collect();
        for ingress in stale {
            let g = self.groups.remove(&ingress).expect("listed above");
            // Permanently disable the retired version's clauses.
            self.solver.add_clause(&[!g.act]);
        }

        // Encode missing groups under fresh activation literals.
        for (&ingress, &fp) in &live {
            if self.groups.contains_key(&ingress) {
                continue;
            }
            let group = self.encode_group(instance, ingress, fp, by_ingress.get(&ingress));
            self.groups.insert(ingress, group);
        }

        // Capacity rows: regenerate when the live variable set or the
        // capacities changed; gate each generation on its own literal.
        let mut cap_h = Fnv::new();
        for c in instance.topology().capacities() {
            cap_h.usize(c);
        }
        for g in self.groups.values() {
            cap_h.u64(g.fp.0);
        }
        let cap_fp = Fingerprint(cap_h.finish());
        if self.capacity.as_ref().map(|(fp, _)| *fp) != Some(cap_fp) {
            if let Some((_, old_gate)) = self.capacity.take() {
                self.solver.add_clause(&[!old_gate]);
            }
            let gate = Lit::positive(self.solver.new_var());
            self.encode_capacity_rows(instance, gate);
            self.capacity = Some((cap_fp, gate));
        }

        // Assumptions: activate every live group and this epoch's
        // capacity rows.
        let mut assumptions: Vec<Lit> = self.groups.values().map(|g| g.act).collect();
        if let Some((_, gate)) = &self.capacity {
            assumptions.push(*gate);
        }

        let verdict = self
            .solver
            .solve_with_assumptions_interruptible(&assumptions, cancel);
        let (placement, status) = match verdict {
            Some(SatResult::Sat(model)) => {
                let mut p = Placement::new();
                for (&ingress, group) in &self.groups {
                    for (&(rule, s), &v) in &group.vars {
                        if model.value(v) {
                            p.place(ingress, rule, s);
                        }
                    }
                }
                (Some(p), SolveStatus::Optimal)
            }
            Some(SatResult::Unsat) => (None, SolveStatus::Infeasible),
            None => (None, SolveStatus::Unknown),
        };
        let stats = self.solver.stats();
        (
            PlacementOutcome {
                placement,
                status,
                objective: None,
                stats: PlacementStats {
                    variables: self.groups.values().map(|g| g.vars.len()).sum(),
                    constraints: 0,
                    nodes: stats.conflicts as usize,
                    lp_iterations: 0,
                    lazy_rows: 0,
                    elapsed: start.elapsed(),
                    sat: Some(stats),
                },
            },
            report,
        )
    }

    /// Encodes one ingress group (Eq. 6 dependency implications and Eq. 7
    /// per-path coverage, mirroring the cold encoder with merging off),
    /// gated on a fresh activation literal: every clause carries `¬act`,
    /// so the group is inert unless its literal is assumed.
    fn encode_group(
        &mut self,
        instance: &Instance,
        ingress: EntryPortId,
        fp: Fingerprint,
        rules: Option<&BTreeMap<RuleId, Vec<SwitchId>>>,
    ) -> SatGroup {
        let act = Lit::positive(self.solver.new_var());
        let mut vars: BTreeMap<(RuleId, SwitchId), Var> = BTreeMap::new();
        let Some(rules) = rules else {
            return SatGroup { fp, act, vars };
        };
        for (&rule, switches) in rules {
            for &s in switches {
                vars.insert((rule, s), self.solver.new_var());
            }
        }
        let policy = instance
            .policy(ingress)
            .expect("live ingress carries a policy");

        // Eq. 7: every sliced DROP covered on each of its paths.
        let mut seen_rows: BTreeSet<Vec<Lit>> = BTreeSet::new();
        for rid in instance.routes().paths_from(ingress) {
            let route = instance.routes().route(rid);
            for w in slicing::sliced_drop_rules(policy, route) {
                let mut row: Vec<Lit> = route
                    .switches
                    .iter()
                    .filter_map(|s| vars.get(&(w, *s)).map(|&v| Lit::positive(v)))
                    .collect();
                row.sort_unstable_by_key(|l| l.index());
                row.dedup();
                if row.is_empty() || !seen_rows.insert(row.clone()) {
                    continue;
                }
                row.push(!act);
                self.solver.add_clause(&row);
            }
        }

        // Eq. 6: a DROP on a switch drags its shield PERMITs there.
        let graph = DependencyGraph::build(policy);
        for (id, rule) in policy.iter() {
            if !rule.action().is_drop() {
                continue;
            }
            let deps = graph.permits_required_by(id);
            if deps.is_empty() {
                continue;
            }
            let Some(w_switches) = rules.get(&id) else {
                continue;
            };
            for &s in w_switches {
                let vw = vars[&(id, s)];
                for &u in deps {
                    let vu = vars[&(u, s)];
                    self.solver
                        .add_clause(&[!act, !Lit::positive(vw), Lit::positive(vu)]);
                }
            }
        }
        SatGroup { fp, act, vars }
    }

    /// Encodes this epoch's capacity rows over every live variable,
    /// slack-gated: `Σ x + M·gate ≤ cap + M`. Assuming the gate *true*
    /// adds `M` on the left, so the row binds as `Σ x ≤ cap`; with the
    /// gate false (a retired generation, killed by a `¬gate` unit) the
    /// row is trivially satisfied.
    fn encode_capacity_rows(&mut self, instance: &Instance, gate: Lit) {
        let mut per_switch: BTreeMap<SwitchId, Vec<Lit>> = BTreeMap::new();
        for group in self.groups.values() {
            for (&(_, s), &v) in &group.vars {
                per_switch.entry(s).or_default().push(Lit::positive(v));
            }
        }
        for (s, lits) in per_switch {
            let cap = instance.topology().capacity(s) as u64;
            let m = lits.len() as u64;
            if cap >= m {
                continue; // can never bind
            }
            let mut terms: Vec<(u64, Lit)> = lits.into_iter().map(|l| (1, l)).collect();
            terms.push((m, gate));
            self.solver.add_pb_le(&terms, cap + m);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowplace_acl::{Action, Ternary};
    use flowplace_routing::{Route, RouteSet};
    use flowplace_topo::Topology;

    fn t(s: &str) -> Ternary {
        Ternary::parse(s).unwrap()
    }

    #[test]
    fn shard_fingerprints_are_disjoint_and_stable() {
        let fp = Fingerprint(0xdead_beef_cafe_f00d);
        let salted: Vec<Fingerprint> = (0..8).map(|s| shard_fingerprint(fp, s)).collect();
        for (i, a) in salted.iter().enumerate() {
            assert_ne!(*a, fp, "salting must move the key off the global stream");
            for b in &salted[i + 1..] {
                assert_ne!(a, b, "two shards collided on the same salted key");
            }
        }
        assert_eq!(salted[3], shard_fingerprint(fp, 3), "salting is pure");
    }

    fn small_instance(capacity: usize) -> Instance {
        let mut topo = Topology::linear(3);
        topo.set_uniform_capacity(capacity);
        let mut routes = RouteSet::new();
        routes.push(Route::new(
            EntryPortId(0),
            EntryPortId(1),
            vec![SwitchId(0), SwitchId(1), SwitchId(2)],
        ));
        let policy =
            Policy::from_ordered(vec![(t("11**"), Action::Permit), (t("1***"), Action::Drop)])
                .unwrap();
        Instance::new(topo, routes, vec![(EntryPortId(0), policy)]).unwrap()
    }

    #[test]
    fn policy_fingerprint_sensitive_to_rules() {
        let a = Policy::from_ordered(vec![(t("1***"), Action::Drop)]).unwrap();
        let b = Policy::from_ordered(vec![(t("0***"), Action::Drop)]).unwrap();
        let c = Policy::from_ordered(vec![(t("1***"), Action::Permit)]).unwrap();
        assert_ne!(fingerprint_policy(&a), fingerprint_policy(&b));
        assert_ne!(fingerprint_policy(&a), fingerprint_policy(&c));
        assert_eq!(fingerprint_policy(&a), fingerprint_policy(&a.clone()));
    }

    #[test]
    fn ingress_fingerprint_sensitive_to_routes_not_capacity() {
        let inst = small_instance(4);
        let fp = fingerprint_ingress(&inst, EntryPortId(0));
        // Capacity change: same ingress fingerprint (candidates are
        // capacity-independent)…
        let recap = small_instance(2);
        assert_eq!(fp, fingerprint_ingress(&recap, EntryPortId(0)));
        // …but a different instance fingerprint (solves differ).
        let opts = PlacementOptions::default();
        let obj = Objective::TotalRules;
        assert_ne!(
            fingerprint_instance(&inst, &obj, &opts),
            fingerprint_instance(&recap, &obj, &opts)
        );
        // Route change: different ingress fingerprint.
        let mut routes = RouteSet::new();
        routes.push(Route::new(
            EntryPortId(0),
            EntryPortId(1),
            vec![SwitchId(0), SwitchId(1)],
        ));
        let rerouted = inst.with_routes(routes).unwrap();
        assert_ne!(fp, fingerprint_ingress(&rerouted, EntryPortId(0)));
    }

    #[test]
    fn instance_fingerprint_sensitive_to_options_and_objective() {
        let inst = small_instance(4);
        let base = PlacementOptions::default();
        let obj = Objective::TotalRules;
        let fp = fingerprint_instance(&inst, &obj, &base);
        let merged = PlacementOptions {
            merging: true,
            ..base.clone()
        };
        assert_ne!(fp, fingerprint_instance(&inst, &obj, &merged));
        assert_ne!(
            fp,
            fingerprint_instance(&inst, &Objective::DistanceWeighted, &base)
        );
        assert_eq!(fp, fingerprint_instance(&inst, &obj, &base.clone()));
    }

    #[test]
    fn memo_round_trip_and_eviction() {
        let cache = WarmCache::new(WarmConfig {
            memo_capacity: 2,
            ..WarmConfig::default()
        });
        let outcome = PlacementOutcome {
            placement: Some(Placement::new()),
            status: SolveStatus::Optimal,
            objective: Some(0.0),
            stats: PlacementStats::default(),
        };
        cache.memo_put(Fingerprint(1), &outcome);
        cache.memo_put(Fingerprint(2), &outcome);
        cache.memo_put(Fingerprint(3), &outcome); // evicts 1 (FIFO)
        assert!(cache.memo_get(Fingerprint(1)).is_none());
        assert!(cache.memo_get(Fingerprint(2)).is_some());
        assert!(cache.memo_get(Fingerprint(3)).is_some());
        let stats = cache.stats();
        assert_eq!(stats.memo_hits, 2);
        assert_eq!(stats.memo_misses, 1);
        assert_eq!(stats.memo_lookups, stats.memo_hits + stats.memo_misses);
        assert_eq!(stats.memo_evictions, 1);
    }

    #[test]
    fn memo_never_stores_timeouts() {
        let cache = WarmCache::default();
        let outcome = PlacementOutcome {
            placement: None,
            status: SolveStatus::Unknown,
            objective: None,
            stats: PlacementStats::default(),
        };
        cache.memo_put(Fingerprint(9), &outcome);
        assert!(cache.memo_get(Fingerprint(9)).is_none());
    }

    #[test]
    fn sat_session_matches_cold_verdicts_across_epochs() {
        let options = PlacementOptions::default();
        let mut session = SatSession::default();
        // Epoch 1: feasible instance.
        let inst = small_instance(4);
        let candidates = crate::candidates::build_candidates(&inst);
        let fps: BTreeMap<EntryPortId, Fingerprint> = inst
            .policies()
            .map(|(l, _)| (l, fingerprint_ingress(&inst, l)))
            .collect();
        let (out, report) = session.solve(&inst, &candidates, &fps, None);
        assert!(report.session_used);
        let p = out.placement.expect("feasible");
        let cold = place_sat_with(&options, &inst, &candidates, None);
        assert_eq!(out.status, cold.status);
        // Both are valid placements of the same instance.
        assert!(crate::verify::verify_placement(&inst, &p, 64, 0xBEEF).is_ok());

        // Epoch 2: capacity cut to zero — infeasible; groups are reused,
        // only capacity rows regenerate.
        let tight = small_instance(0);
        let candidates2 = crate::candidates::build_candidates(&tight);
        let fps2: BTreeMap<EntryPortId, Fingerprint> = tight
            .policies()
            .map(|(l, _)| (l, fingerprint_ingress(&tight, l)))
            .collect();
        assert_eq!(fps, fps2, "capacity does not dirty the ingress");
        let (out2, _) = session.solve(&tight, &candidates2, &fps2, None);
        assert_eq!(out2.status, SolveStatus::Infeasible);

        // Epoch 3: capacity restored — feasible again, with the learnt
        // clauses from both prior epochs still in the database.
        let (out3, report3) = session.solve(&inst, &candidates, &fps, None);
        assert!(out3.placement.is_some());
        assert!(report3.learnt_retained >= report.learnt_retained);
        assert!(
            crate::verify::verify_placement(&inst, &out3.placement.unwrap(), 64, 0xBEEF).is_ok()
        );
    }

    #[test]
    fn sat_session_tracks_policy_change() {
        let mut session = SatSession::default();
        let inst = small_instance(4);
        let candidates = crate::candidates::build_candidates(&inst);
        let fps: BTreeMap<EntryPortId, Fingerprint> = inst
            .policies()
            .map(|(l, _)| (l, fingerprint_ingress(&inst, l)))
            .collect();
        session.solve(&inst, &candidates, &fps, None);
        assert_eq!(session.groups.len(), 1);
        let old_act = session.groups[&EntryPortId(0)].act;

        // Swap the policy: the group must be retired and re-encoded.
        let mut topo = Topology::linear(3);
        topo.set_uniform_capacity(4);
        let mut routes = RouteSet::new();
        routes.push(Route::new(
            EntryPortId(0),
            EntryPortId(1),
            vec![SwitchId(0), SwitchId(1), SwitchId(2)],
        ));
        let policy =
            Policy::from_ordered(vec![(t("00**"), Action::Permit), (t("0***"), Action::Drop)])
                .unwrap();
        let changed = Instance::new(topo, routes, vec![(EntryPortId(0), policy)]).unwrap();
        let candidates2 = crate::candidates::build_candidates(&changed);
        let fps2: BTreeMap<EntryPortId, Fingerprint> = changed
            .policies()
            .map(|(l, _)| (l, fingerprint_ingress(&changed, l)))
            .collect();
        let (out, _) = session.solve(&changed, &candidates2, &fps2, None);
        assert_ne!(session.groups[&EntryPortId(0)].act, old_act);
        let p = out.placement.expect("feasible");
        assert!(crate::verify::verify_placement(&changed, &p, 64, 0xF00D).is_ok());
    }

    #[test]
    fn ilp_seeding_freezes_untouched_and_stays_feasible() {
        let inst = small_instance(4);
        let options = PlacementOptions::default();
        let obj = Objective::TotalRules;
        let candidates = crate::candidates::build_candidates(&inst);
        let fps: BTreeMap<EntryPortId, Fingerprint> = inst
            .policies()
            .map(|(l, _)| (l, fingerprint_ingress(&inst, l)))
            .collect();
        let cold = place_ilp_with(&options, &inst, &obj, &candidates);
        let prev = IlpMemory {
            ingress_fps: fps.clone(),
            placement: cold.placement.clone().unwrap(),
        };
        let (seeded, report) =
            ilp_seeded_solve(&options, &inst, &obj, &candidates, &fps, Some(&prev));
        assert!(report.seeded);
        assert!(report.vars_fixed > 0);
        // Everything untouched ⇒ the frozen solve returns the previous
        // placement verbatim, reported as Feasible (restricted search).
        assert_eq!(seeded.status, SolveStatus::Feasible);
        assert_eq!(seeded.placement, cold.placement);
        assert_eq!(seeded.objective, cold.objective);
    }

    #[test]
    fn ilp_seeding_falls_back_when_seed_infeasible() {
        let inst = small_instance(4);
        let options = PlacementOptions::default();
        let obj = Objective::TotalRules;
        let candidates = crate::candidates::build_candidates(&inst);
        let fps: BTreeMap<EntryPortId, Fingerprint> = inst
            .policies()
            .map(|(l, _)| (l, fingerprint_ingress(&inst, l)))
            .collect();
        let cold = place_ilp_with(&options, &inst, &obj, &candidates);

        // Capacity cut to 1 invalidates the old 2-rule-on-one-switch
        // placement; the seeder must detect it and solve cold.
        let tight = small_instance(1);
        let tight_c = crate::candidates::build_candidates(&tight);
        let prev = IlpMemory {
            ingress_fps: fps.clone(),
            placement: cold.placement.unwrap(),
        };
        let (out, report) = ilp_seeded_solve(&options, &tight, &obj, &tight_c, &fps, Some(&prev));
        assert!(!report.seeded, "stale seed rejected");
        let direct = place_ilp_with(&options, &tight, &obj, &tight_c);
        assert_eq!(out.status, direct.status);
        assert_eq!(out.placement, direct.placement);
    }
}

//! The per-path placement baseline the paper compares against.
//!
//! §V: *"other techniques … place all rules in all paths and thus end up
//! placing p × r rules in the network"* (describing the one-big-switch
//! compilation of Kang et al., the paper's reference \[1\], without
//! cross-path sharing). This module implements that baseline faithfully —
//! each path receives its own copy of the (sliced) ingress policy, spread
//! along the path's switches as capacity allows — so the optimizer's
//! sharing gains in Experiment 6 are measured against running code, not
//! a formula.

use flowplace_acl::RuleId;

use crate::depgraph::DependencyGraph;
use crate::placement::Placement;
use crate::slicing;
use crate::Instance;

/// Places every path's sliced policy independently (no sharing across
/// paths or policies): for each route, each DROP rule and its PERMIT
/// shields are installed at the first switch of that route with spare
/// capacity, counted once per route even when routes overlap.
///
/// Returns `None` when some path cannot fit its rules — the baseline is
/// far more capacity-hungry than the optimizer, which is the point.
pub fn per_path_placement(instance: &Instance) -> Option<Placement> {
    let mut remaining: Vec<usize> = instance.topology().capacities();
    let mut placement = Placement::new();
    for (ingress, policy) in instance.policies() {
        let graph = DependencyGraph::build(policy);
        for rid in instance.routes().paths_from(ingress) {
            let route = instance.routes().route(rid);
            for w in slicing::sliced_drop_rules(policy, route) {
                // Per-path semantics: no check whether another path
                // already covers this rule — every path gets a copy.
                let mut done = false;
                for &s in &route.switches {
                    let mut needed: Vec<RuleId> = Vec::new();
                    if !placement.is_placed(ingress, w, s) {
                        needed.push(w);
                    }
                    for &u in graph.permits_required_by(w) {
                        if !placement.is_placed(ingress, u, s) {
                            needed.push(u);
                        }
                    }
                    if needed.is_empty() {
                        // This path hits a switch that (incidentally)
                        // already holds the copy from an overlapping
                        // path; the baseline still "pays" nothing extra
                        // here. Count it as done for feasibility.
                        done = true;
                        break;
                    }
                    if needed.len() <= remaining[s.0] {
                        remaining[s.0] -= needed.len();
                        for r in needed {
                            placement.place(ingress, r, s);
                        }
                        done = true;
                        break;
                    }
                }
                if !done {
                    return None;
                }
            }
        }
    }
    Some(placement)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Objective, PlacementOptions, RulePlacer};
    use flowplace_acl::{Action, Policy, Ternary};
    use flowplace_routing::{Route, RouteSet};
    use flowplace_topo::{EntryPortId, SwitchId, Topology, TopologyBuilder};

    fn t(s: &str) -> Ternary {
        Ternary::parse(s).unwrap()
    }

    /// Two disjoint paths from one ingress (a fork).
    fn fork_instance(capacity: usize) -> Instance {
        let mut b = TopologyBuilder::new();
        let s0 = b.add_switch("s0", capacity);
        let s1 = b.add_switch("s1", capacity);
        let s2 = b.add_switch("s2", capacity);
        b.add_link(s0, s1).unwrap();
        b.add_link(s0, s2).unwrap();
        let l0 = b.add_entry_port("l0", s0).unwrap();
        let l1 = b.add_entry_port("l1", s1).unwrap();
        let l2 = b.add_entry_port("l2", s2).unwrap();
        let topo = b.build();
        let mut routes = RouteSet::new();
        // Deliberately start both paths at s1/s2 (egress-side fork) so
        // the paths share NO switch and the baseline must duplicate.
        routes.push(Route::new(l0, l1, vec![s0, s1]));
        routes.push(Route::new(l0, l2, vec![s0, s2]));
        let policy =
            Policy::from_ordered(vec![(t("11**"), Action::Permit), (t("1***"), Action::Drop)])
                .unwrap();
        Instance::new(topo, routes, vec![(l0, policy)]).unwrap()
    }

    #[test]
    fn baseline_verifies_when_it_fits() {
        let inst = fork_instance(10);
        let p = per_path_placement(&inst).expect("fits");
        crate::verify::verify_placement_exhaustive(&inst, &p).expect("correct");
    }

    #[test]
    fn optimizer_never_worse_than_baseline() {
        let inst = fork_instance(10);
        let baseline = per_path_placement(&inst).unwrap();
        let optimal = RulePlacer::new(PlacementOptions::default())
            .place(&inst, Objective::TotalRules)
            .unwrap()
            .placement
            .unwrap();
        assert!(
            optimal.total_rules() <= baseline.total_rules(),
            "optimal {} > baseline {}",
            optimal.total_rules(),
            baseline.total_rules()
        );
        // Here the shared prefix s0 lets the optimizer install the pair
        // once; the baseline pays once per path only if the first-fit
        // switch differs... in this fork both paths start at s0, so the
        // baseline incidentally shares too. Force divergence by filling
        // s0:
        let mut topo = inst.topology().clone();
        topo.set_capacity(SwitchId(0), 0);
        let inst2 = Instance::new(
            topo,
            inst.routes().clone(),
            inst.policies().map(|(l, q)| (l, q.clone())).collect(),
        )
        .unwrap();
        let baseline2 = per_path_placement(&inst2).unwrap();
        let optimal2 = RulePlacer::new(PlacementOptions::default())
            .place(&inst2, Objective::TotalRules)
            .unwrap()
            .placement
            .unwrap();
        // With no shared switch available, both must replicate: the drop
        // and its shield on each branch = 4 entries.
        assert_eq!(baseline2.total_rules(), 4);
        assert_eq!(optimal2.total_rules(), 4);
    }

    #[test]
    fn baseline_fails_before_optimizer_does() {
        // Tight shared switch: optimizer shares one copy at s0; the
        // baseline also first-fits s0 for the first path, then the second
        // path finds s0 occupied but its own copy already there → shares.
        // To really split them use two ingresses with identical policies
        // and capacity for just one pair at the hub.
        let mut topo = Topology::star(3);
        topo.set_uniform_capacity(0);
        topo.set_capacity(SwitchId(0), 2); // hub: one (permit, drop) pair
        topo.set_capacity(SwitchId(1), 2);
        topo.set_capacity(SwitchId(2), 2);
        let mut routes = RouteSet::new();
        routes.push(Route::new(
            EntryPortId(0),
            EntryPortId(2),
            vec![SwitchId(1), SwitchId(0), SwitchId(3)],
        ));
        routes.push(Route::new(
            EntryPortId(1),
            EntryPortId(2),
            vec![SwitchId(2), SwitchId(0), SwitchId(3)],
        ));
        let policy = || {
            Policy::from_ordered(vec![(t("11**"), Action::Permit), (t("1***"), Action::Drop)])
                .unwrap()
        };
        let inst = Instance::new(
            topo,
            routes,
            vec![(EntryPortId(0), policy()), (EntryPortId(1), policy())],
        )
        .unwrap();
        // Optimizer: each ingress uses its own leaf (2 slots each) or the
        // hub — feasible.
        let optimal = RulePlacer::new(PlacementOptions::default())
            .place(&inst, Objective::TotalRules)
            .unwrap();
        assert!(optimal.placement.is_some(), "optimizer fits");
        // Baseline first-fits ingress-side leaves too, so also feasible
        // here — verify it and compare counts instead.
        if let Some(b) = per_path_placement(&inst) {
            assert!(optimal.placement.unwrap().total_rules() <= b.total_rules());
        }
    }

    #[test]
    fn infeasible_when_nothing_fits() {
        let inst = fork_instance(1); // pair of 2 can never fit anywhere
        assert!(per_path_placement(&inst).is_none());
    }
}

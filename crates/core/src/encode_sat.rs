//! The satisfiability encoding (§IV-D, Equations 6–8).
//!
//! When only feasibility matters — e.g. fast re-placement after a routing
//! change — the placement constraints become a pseudo-Boolean formula:
//!
//! * Eq. 6: every dependency edge is an implication `v_{i,w,k} → v_{i,u,k}`;
//! * Eq. 7: every (path, DROP rule) pair is a clause `⋁_{s∈p} v_{i,j,s}`;
//! * Eq. 3: per-switch capacity is a PB constraint `Σ v ≤ C_k`;
//! * Eq. 8: each merge variable is `v^m ↔ ⋀_{v∈R} v`, and the capacity
//!   row discounts merged duplicates via the rewrite
//!   `Σv + (M−1)·¬v^m ≤ C + (M−1)` (PB weights must be positive).
//!
//! Any model of the formula is a semantics-preserving placement; nothing
//! is optimized.

use std::collections::BTreeMap;

use flowplace_fasthash::FnvHashSet;

use flowplace_acl::RuleId;
use flowplace_pbsat::{Lit, SatResult, Solver, SolverOptions, Var};
use flowplace_topo::{EntryPortId, SwitchId};

use crate::candidates::{build_candidates, CandidateMap};
use crate::depgraph::DependencyGraph;
use crate::merge::{find_merge_groups, MergeGroup};
use crate::placement::Placement;
use crate::slicing;
use crate::Instance;

/// A built PB-SAT formula plus the variable maps to interpret models.
#[derive(Clone, Debug)]
pub struct SatEncoding {
    solver: Solver,
    vars: BTreeMap<(EntryPortId, RuleId, SwitchId), Var>,
    merge_vars: Vec<(Var, MergeGroup)>,
    constraint_count: usize,
    conflicts: u64,
    trivially_unsat: bool,
}

impl SatEncoding {
    /// Encodes `instance` (optionally with merging) into a PB formula.
    pub fn build(instance: &Instance, merging: bool) -> Self {
        let candidates = build_candidates(instance);
        Self::build_with_candidates(instance, merging, &candidates)
    }

    /// Like [`SatEncoding::build`] with a precomputed candidate map.
    pub fn build_with_candidates(
        instance: &Instance,
        merging: bool,
        candidates: &CandidateMap,
    ) -> Self {
        Self::build_with_candidates_opts(instance, merging, candidates, SolverOptions::default())
    }

    /// Like [`SatEncoding::build_with_candidates`] with explicit CDCL
    /// search options (restart schedule, learnt-DB reduction).
    pub fn build_with_candidates_opts(
        instance: &Instance,
        merging: bool,
        candidates: &CandidateMap,
        sat: SolverOptions,
    ) -> Self {
        let mut solver = Solver::with_options(sat);
        let mut ok = true;
        let mut constraint_count = 0usize;
        let mut vars: BTreeMap<(EntryPortId, RuleId, SwitchId), Var> = BTreeMap::new();
        for (&(ingress, rule), switches) in candidates {
            for &s in switches {
                vars.insert((ingress, rule, s), solver.new_var());
            }
        }

        // Eq. 7: per-path coverage clauses, deduplicated. Membership-only
        // (never iterated), so the unordered FNV set is safe here.
        let mut seen: FnvHashSet<Vec<Lit>> = FnvHashSet::default();
        for (ingress, policy) in instance.policies() {
            for rid in instance.routes().paths_from(ingress) {
                let route = instance.routes().route(rid);
                for w in slicing::sliced_drop_rules(policy, route) {
                    let mut clause: Vec<Lit> = route
                        .switches
                        .iter()
                        .filter_map(|s| vars.get(&(ingress, w, *s)))
                        .map(|&v| Lit::positive(v))
                        .collect();
                    clause.sort_unstable();
                    clause.dedup();
                    if clause.is_empty() {
                        continue;
                    }
                    if seen.insert(clause.clone()) {
                        ok &= solver.add_clause(&clause);
                        constraint_count += 1;
                    }
                }
            }
        }

        // Eq. 6: dependency implications.
        for (ingress, policy) in instance.policies() {
            let graph = DependencyGraph::build(policy);
            for (id, rule) in policy.iter() {
                if !rule.action().is_drop() {
                    continue;
                }
                let Some(w_switches) = candidates.get(&(ingress, id)) else {
                    continue;
                };
                for &s in w_switches {
                    let vw = Lit::positive(vars[&(ingress, id, s)]);
                    for &u in graph.permits_required_by(id) {
                        let vu = Lit::positive(vars[&(ingress, u, s)]);
                        ok &= solver.add_implication(vw, vu);
                        constraint_count += 1;
                    }
                }
            }
        }

        // Eq. 8 merge links + capacity bookkeeping.
        let mut merge_vars: Vec<(Var, MergeGroup)> = Vec::new();
        let mut cap_extra: BTreeMap<SwitchId, Vec<(u64, Lit)>> = BTreeMap::new();
        let mut cap_bonus: BTreeMap<SwitchId, u64> = BTreeMap::new();
        if merging {
            for group in find_merge_groups(instance, candidates) {
                let members: Vec<Lit> = group
                    .members
                    .iter()
                    .map(|&(l, r)| Lit::positive(vars[&(l, r, group.switch)]))
                    .collect();
                let m = members.len() as u64;
                let vm = solver.new_var();
                ok &= solver.add_and_equiv(Lit::positive(vm), &members);
                constraint_count += members.len() + 1;
                cap_extra
                    .entry(group.switch)
                    .or_default()
                    .push((m - 1, Lit::negative(vm)));
                *cap_bonus.entry(group.switch).or_default() += m - 1;
                merge_vars.push((vm, group));
            }
        }

        // Eq. 3: capacity PB rows.
        let mut per_switch: BTreeMap<SwitchId, Vec<(u64, Lit)>> = BTreeMap::new();
        for (&(_, _, s), &v) in &vars {
            per_switch.entry(s).or_default().push((1, Lit::positive(v)));
        }
        for (s, mut terms) in per_switch {
            let cap = instance.topology().capacity(s);
            if cap >= terms.len() {
                continue;
            }
            let mut bound = cap as u64;
            if let Some(extra) = cap_extra.get(&s) {
                terms.extend(extra.iter().copied());
                bound += cap_bonus[&s];
            }
            ok &= solver.add_pb_le(&terms, bound);
            constraint_count += 1;
        }

        SatEncoding {
            solver,
            vars,
            merge_vars,
            constraint_count,
            conflicts: 0,
            trivially_unsat: !ok,
        }
    }

    /// Number of placement variables.
    pub fn num_placement_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of clauses and PB constraints added.
    pub fn constraint_count(&self) -> usize {
        self.constraint_count
    }

    /// Conflicts analyzed by the last [`SatEncoding::solve`] call.
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Full CDCL search counters of the last
    /// [`SatEncoding::solve`] call (decisions, conflicts, propagations,
    /// restarts, learnt clauses) — the solver-side telemetry exported to
    /// the observability registry.
    pub fn solver_stats(&self) -> flowplace_pbsat::SolverStats {
        self.solver.stats()
    }

    /// Solves the formula; `Some(placement)` iff satisfiable.
    pub fn solve(&mut self) -> Option<Placement> {
        self.solve_interruptible(None)
            .expect("uninterrupted solve always concludes")
    }

    /// Like [`solve`](Self::solve), but cooperatively cancellable.
    ///
    /// Returns `None` when `cancel` was observed set before the solver
    /// reached a verdict (the portfolio's loser takes this path), and
    /// `Some(verdict)` otherwise — where the inner `Option` is the usual
    /// satisfiable-placement-or-infeasible answer.
    pub fn solve_interruptible(
        &mut self,
        cancel: Option<&std::sync::atomic::AtomicBool>,
    ) -> Option<Option<Placement>> {
        if self.trivially_unsat {
            return Some(None);
        }
        let result = self.solver.solve_interruptible(cancel);
        self.conflicts = self.solver.stats().conflicts;
        Some(match result? {
            SatResult::Unsat => None,
            SatResult::Sat(model) => {
                let mut placement = Placement::new();
                for (&(ingress, rule, s), &v) in &self.vars {
                    if model.value(v) {
                        placement.place(ingress, rule, s);
                    }
                }
                for (vm, group) in &self.merge_vars {
                    if model.value(*vm) {
                        placement.record_merge(group.clone());
                    }
                }
                Some(placement)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowplace_acl::{Action, Policy, Ternary};
    use flowplace_routing::{Route, RouteSet};
    use flowplace_topo::Topology;

    fn t(s: &str) -> Ternary {
        Ternary::parse(s).unwrap()
    }

    fn chain(capacity: usize) -> Instance {
        let mut topo = Topology::linear(3);
        topo.set_uniform_capacity(capacity);
        let mut routes = RouteSet::new();
        routes.push(Route::new(
            EntryPortId(0),
            EntryPortId(1),
            vec![SwitchId(0), SwitchId(1), SwitchId(2)],
        ));
        let policy = Policy::from_ordered(vec![
            (t("11**"), Action::Permit),
            (t("1***"), Action::Drop),
            (t("01**"), Action::Drop),
        ])
        .unwrap();
        Instance::new(topo, routes, vec![(EntryPortId(0), policy)]).unwrap()
    }

    #[test]
    fn satisfiable_when_capacity_allows() {
        let mut enc = SatEncoding::build(&chain(3), false);
        let p = enc.solve().expect("satisfiable");
        // The drop rules are covered somewhere on the path.
        assert!(!p.switches_of(EntryPortId(0), RuleId(1)).is_empty());
        assert!(!p.switches_of(EntryPortId(0), RuleId(2)).is_empty());
        // Dependency: wherever drop r1 sits, permit r0 sits too.
        for &s in p.switches_of(EntryPortId(0), RuleId(1)).clone().iter() {
            assert!(p.is_placed(EntryPortId(0), RuleId(0), s));
        }
    }

    #[test]
    fn unsat_when_pair_cannot_fit() {
        // Capacity 1: the (permit, drop) pair can fit nowhere.
        let mut enc = SatEncoding::build(&chain(1), false);
        assert!(enc.solve().is_none());
    }

    #[test]
    fn merging_rescues_tight_capacity() {
        // Two ingresses sharing one middle switch of capacity 1, both
        // needing the same DROP on it: only merging fits.
        let mut b = flowplace_topo::TopologyBuilder::new();
        let s0 = b.add_switch("s0", 0);
        let s1 = b.add_switch("mid", 1);
        let s2 = b.add_switch("s2", 0);
        b.add_link(s0, s1).unwrap();
        b.add_link(s1, s2).unwrap();
        let l0 = b.add_entry_port("l0", s0).unwrap();
        let l1 = b.add_entry_port("l1", s2).unwrap();
        let topo = b.build();
        let mut routes = RouteSet::new();
        routes.push(Route::new(l0, l1, vec![s0, s1, s2]));
        routes.push(Route::new(l1, l0, vec![s2, s1, s0]));
        let q = Policy::from_ordered(vec![(t("1111"), Action::Drop)]).unwrap();
        let inst = Instance::new(topo, routes, vec![(l0, q.clone()), (l1, q)]).unwrap();

        let mut plain = SatEncoding::build(&inst, false);
        assert!(
            plain.solve().is_none(),
            "two entries cannot fit in one slot"
        );

        let mut merged = SatEncoding::build(&inst, true);
        let p = merged.solve().expect("merging shares the single slot");
        assert_eq!(p.total_rules(), 1);
        assert_eq!(p.merge_groups().len(), 1);
    }

    #[test]
    fn stats_exposed() {
        let mut enc = SatEncoding::build(&chain(3), false);
        assert!(enc.num_placement_vars() > 0);
        assert!(enc.constraint_count() > 0);
        let _ = enc.solve();
    }
}

//! ACL rule placement for software-defined networks.
//!
//! This crate implements the rule-placement optimizer of *"An Adaptable
//! Rule Placement for Software-Defined Networks"* (DSN 2014): given a
//! network topology, a routing (one set of paths per ingress), and one
//! prioritized firewall policy per ingress, place every policy's rules
//! onto switches so that
//!
//! * packets are dropped/permitted exactly as each ingress policy
//!   specifies (first-match semantics along every path),
//! * no switch holds more rules than its TCAM capacity `C_k`,
//! * an objective — total rules installed, or distance-weighted placement
//!   that pushes DROP rules upstream — is minimized.
//!
//! # Architecture
//!
//! Mirroring the paper's Figure 4 flow chart:
//!
//! 1. (optional) redundancy removal — [`flowplace_acl::redundancy`];
//! 2. the **rule dependency graph** ([`DependencyGraph`]): a DROP rule
//!    placed on a switch drags its higher-priority overlapping PERMIT
//!    rules onto the same switch (Eq. 1);
//! 3. **mergeable-rule discovery** across policies with circular-
//!    dependency breaking ([`merge`], §IV-B, Eq. 4–5);
//! 4. the **ILP encoding** ([`encode_ilp`]) solved by
//!    [`flowplace_milp`], or the **satisfiability encoding**
//!    ([`encode_sat`], Eq. 6–8) solved by [`flowplace_pbsat`];
//! 5. **tagging** ([`tags`], §IV-A5) and per-switch table emission
//!    ([`tables`]);
//! 6. **incremental deployment** ([`incremental`], §IV-E) for policy
//!    additions and route changes against spare capacity.
//!
//! The [`verify`] module provides a golden-model checker that replays
//! packets through the emitted switch tables along every route and
//! compares with the original policy — used pervasively in tests.
//!
//! # Quickstart
//!
//! ```
//! use flowplace_acl::{Action, Policy, Ternary};
//! use flowplace_core::{Instance, Objective, PlacementOptions, RulePlacer};
//! use flowplace_routing::{Route, RouteSet};
//! use flowplace_topo::{EntryPortId, Topology};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A 3-switch chain with one policy at the left ingress.
//! let mut topo = Topology::linear(3);
//! topo.set_uniform_capacity(4);
//! let mut routes = RouteSet::new();
//! routes.push(Route::new(
//!     EntryPortId(0),
//!     EntryPortId(1),
//!     topo.switches().map(|(id, _)| id).collect(),
//! ));
//! let policy = Policy::from_ordered(vec![
//!     (Ternary::parse("11**")?, Action::Permit),
//!     (Ternary::parse("1***")?, Action::Drop),
//! ])?;
//! let instance = Instance::new(topo, routes, vec![(EntryPortId(0), policy)])?;
//! let outcome = RulePlacer::new(PlacementOptions::default())
//!     .place(&instance, Objective::TotalRules)?;
//! let placement = outcome.placement.expect("feasible");
//! assert_eq!(placement.total_rules(), 2); // the DROP and its PERMIT shield
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena_obs;
pub mod baseline;
pub mod candidates;
pub mod depgraph;
pub mod encode_ilp;
pub mod encode_sat;
pub mod greedy;
pub mod incremental;
mod instance;
pub mod merge;
pub mod monitor;
mod objective;
pub mod par;
mod placement;
pub mod slicing;
pub mod tables;
pub mod tags;
pub mod verify;
pub mod warm;

pub use depgraph::DependencyGraph;
pub use encode_ilp::MergeLinking;
pub use instance::{Instance, InstanceError};
pub use monitor::MonitorRequirement;
pub use objective::Objective;
pub use par::{ParOutcome, ParallelConfig, Provenance, StageTimes};
pub use placement::{
    DependencyEncoding, PlaceError, Placement, PlacementOptions, PlacementOutcome, PlacementStats,
    PlacerEngine, RulePlacer, SolveStatus,
};
pub use warm::{
    fingerprint_ingress, fingerprint_instance, fingerprint_policy, shard_fingerprint, Fingerprint,
    WarmCache, WarmConfig, WarmStats,
};

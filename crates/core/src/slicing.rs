//! Path-sliced policy rules (§IV-C of the paper).
//!
//! When a route carries a flow descriptor (the set of packets the routing
//! module actually sends along it), only the policy rules whose match
//! fields overlap that flow need to be placed on the route — the paper's
//! Figure 6 optimization. Routes without a descriptor conservatively keep
//! the whole policy.

use flowplace_acl::{Policy, RuleId};
use flowplace_routing::Route;

/// The rules of `policy` that must be considered for `route`: all rules if
/// the route has no flow descriptor, otherwise exactly those whose match
/// field intersects the flow.
///
/// Returned ascending by rule id (i.e. descending priority).
pub fn sliced_rules(policy: &Policy, route: &Route) -> Vec<RuleId> {
    match &route.flow {
        None => policy.iter().map(|(id, _)| id).collect(),
        Some(flow) => policy
            .iter()
            .filter(|(_, r)| r.match_field().intersects(flow))
            .map(|(id, _)| id)
            .collect(),
    }
}

/// The DROP rules of `policy` that must be covered on `route`
/// (the sliced subset of [`Policy::drop_rules`]).
pub fn sliced_drop_rules(policy: &Policy, route: &Route) -> Vec<RuleId> {
    sliced_rules(policy, route)
        .into_iter()
        .filter(|id| policy.rule(*id).action().is_drop())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowplace_acl::{Action, Ternary};
    use flowplace_routing::Route;
    use flowplace_topo::{EntryPortId, SwitchId};

    fn pol() -> Policy {
        // Mirrors Figure 6: dst in the low two bits.
        Policy::from_ordered(vec![
            (Ternary::parse("1*01").unwrap(), Action::Drop), // dst 01 only
            (Ternary::parse("1*10").unwrap(), Action::Drop), // dst 10 only
            (Ternary::parse("0***").unwrap(), Action::Permit), // both
        ])
        .unwrap()
    }

    fn route(flow: Option<&str>) -> Route {
        let mut r = Route::new(EntryPortId(0), EntryPortId(1), vec![SwitchId(0)]);
        if let Some(f) = flow {
            r = r.with_flow(Ternary::parse(f).unwrap());
        }
        r
    }

    #[test]
    fn no_flow_keeps_everything() {
        let p = pol();
        let ids = sliced_rules(&p, &route(None));
        assert_eq!(ids, vec![RuleId(0), RuleId(1), RuleId(2)]);
    }

    #[test]
    fn flow_filters_disjoint_rules() {
        let p = pol();
        // Route carries only dst=01 packets.
        let ids = sliced_rules(&p, &route(Some("**01")));
        assert_eq!(ids, vec![RuleId(0), RuleId(2)]);
        let other = sliced_rules(&p, &route(Some("**10")));
        assert_eq!(other, vec![RuleId(1), RuleId(2)]);
    }

    #[test]
    fn sliced_drops_only() {
        let p = pol();
        let ids = sliced_drop_rules(&p, &route(Some("**01")));
        assert_eq!(ids, vec![RuleId(0)]);
    }
}

//! Deterministic parallel solve pipeline and portfolio solver.
//!
//! The optimize path splits into three stages, each parallelized with std
//! scoped threads (no external dependencies):
//!
//! 1. **Dependency graphs** — one [`DependencyGraph`] per ingress policy,
//!    built across worker threads ([`build_depgraphs`]).
//! 2. **Candidates** — per-ingress candidate switch sets, built across
//!    worker threads and merged into one [`CandidateMap`]
//!    ([`build_candidates_par`]).
//! 3. **Solve** — either the configured single engine, or a *portfolio*
//!    race of ILP branch-and-bound against the PB-SAT feasibility
//!    encoding with cooperative cancellation ([`solve`]).
//!
//! # Determinism contract
//!
//! With `portfolio: false`, the pipeline's output is byte-identical to
//! the serial path for any thread count. Two rules make this hold:
//!
//! - **Merge-order rule.** Per-ingress partial results are merged by
//!   *ingress id* (into ordered `BTreeMap`s keyed by ingress), never by
//!   thread completion order. Worker scheduling can vary freely; the
//!   merged maps cannot.
//! - **One code path.** The parallel stages call the same pure
//!   per-ingress functions the serial path calls, and stage 3 runs the
//!   same encode/solve code the serial path runs, fed the (identical)
//!   merged candidates.
//!
//! With `portfolio: true`, the *engine that answers* depends on wall
//! clock, so only the weaker guarantee holds: the returned placement is
//! feasible (both engines encode the same feasibility space) and the
//! [`Provenance`] tag records which engine produced it. Portfolio mode is
//! therefore opt-in and the differential oracle asserts byte-identity
//! only for `portfolio: false`.
//!
//! # Cancellation protocol
//!
//! The portfolio gives each engine a private `AtomicBool`. The first
//! engine to reach a *conclusive* outcome (a placement, or a proven
//! infeasibility) claims victory with a `compare_exchange` on a shared
//! winner slot and then sets the other engine's flag. Both solvers poll
//! their flag cooperatively — the MIP at every branch-and-bound node, the
//! CDCL solver every [`flowplace_pbsat::Solver::CANCEL_CHECK_INTERVAL`]
//! search steps — back off to a clean state, and report
//! [`SolveStatus::Unknown`]. The loser's partial work is discarded; only
//! the winner's outcome is returned.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use flowplace_topo::EntryPortId;

use flowplace_acl::Policy;

use crate::candidates::{candidates_for_ingress, CandidateMap};
use crate::depgraph::DependencyGraph;
use crate::monitor::restrict_candidates;
use crate::placement::{place_ilp_with, place_sat_with};
use crate::warm::{self, WarmCache, WarmStats};
use crate::{Instance, Objective, PlacementOptions, PlacementOutcome, PlacerEngine, SolveStatus};
use flowplace_obs::Obs;

/// Parallel-pipeline configuration, carried in
/// [`PlacementOptions::parallel`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Worker threads for the construction stages. `0` means auto-detect
    /// ([`std::thread::available_parallelism`]); `1` (the default) is the
    /// serial path.
    pub threads: usize,
    /// Race ILP branch-and-bound against the PB-SAT feasibility encoding
    /// and return whichever concludes first (see the module docs for the
    /// determinism caveat).
    pub portfolio: bool,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            threads: 1,
            portfolio: false,
        }
    }
}

impl ParallelConfig {
    /// The concrete worker count (`0` resolved to the machine's
    /// available parallelism, min 1).
    pub fn effective_threads(&self) -> usize {
        match self.threads {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        }
    }

    /// True if this configuration departs from the plain serial path.
    pub fn is_parallel(&self) -> bool {
        self.portfolio || self.effective_threads() > 1
    }
}

/// Which engine produced the returned outcome, and how.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Provenance {
    /// Single-engine solve (no race): the configured engine ran alone.
    Single(PlacerEngine),
    /// Portfolio race, won by this engine (it concluded first; the other
    /// engine was cancelled).
    Portfolio(PlacerEngine),
    /// No engine ran: the warm cache memoized an identical instance
    /// (same policies, routes, capacities, options, and objective) and
    /// the stored outcome was returned in O(1).
    Memo,
}

impl std::fmt::Display for Provenance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = |e: &PlacerEngine| match e {
            PlacerEngine::Ilp => "ilp",
            PlacerEngine::Sat => "sat",
        };
        match self {
            Provenance::Single(e) => write!(f, "single:{}", name(e)),
            Provenance::Portfolio(e) => write!(f, "portfolio:{}", name(e)),
            Provenance::Memo => write!(f, "memo"),
        }
    }
}

/// Wall time of each pipeline stage.
#[derive(Clone, Copy, Debug, Default)]
pub struct StageTimes {
    /// Stage 1: per-ingress dependency-graph construction.
    pub depgraphs: Duration,
    /// Stage 2: candidate generation (including monitor restriction).
    pub candidates: Duration,
    /// Stage 3: the solve (single engine or portfolio race).
    pub solve: Duration,
}

impl StageTimes {
    /// Sum of all stages.
    pub fn total(&self) -> Duration {
        self.depgraphs + self.candidates + self.solve
    }
}

/// Result of the staged pipeline: the placement outcome plus provenance
/// and per-stage timings.
#[derive(Clone, Debug)]
pub struct ParOutcome {
    /// The placement outcome (same type the serial facade returns).
    pub outcome: PlacementOutcome,
    /// Which engine answered, and whether it won a race.
    pub provenance: Provenance,
    /// Per-stage wall times.
    pub stages: StageTimes,
}

/// Splits `items` into at most `threads` contiguous chunks, maps each
/// chunk on its own scoped thread, and returns the per-item results
/// flattened back into *input order* — the merge-order rule: output
/// position is decided by input position, never by completion order.
fn map_chunked<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let chunk_len = items.len().div_ceil(threads);
    let mut results: Vec<R> = Vec::with_capacity(items.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .map(|chunk| s.spawn(|| chunk.iter().map(&f).collect::<Vec<R>>()))
            .collect();
        // Joining in spawn order reassembles input order regardless of
        // which worker finished first.
        for h in handles {
            results.extend(h.join().expect("pipeline worker panicked"));
        }
    });
    results
}

/// Stage 1: builds the dependency graph of every ingress policy across
/// `threads` workers. Keyed by ingress id, so the merged map is
/// independent of scheduling.
pub fn build_depgraphs(
    instance: &Instance,
    threads: usize,
) -> BTreeMap<EntryPortId, DependencyGraph> {
    let policies: Vec<_> = instance.policies().collect();
    let graphs = map_chunked(policies, threads, |&(ingress, policy)| {
        (ingress, DependencyGraph::build(policy))
    });
    graphs.into_iter().collect()
}

/// Stage 2: builds the candidate map from precomputed dependency graphs
/// across `threads` workers, merged in ingress-id order.
pub fn build_candidates_par(
    instance: &Instance,
    graphs: &BTreeMap<EntryPortId, DependencyGraph>,
    threads: usize,
) -> CandidateMap {
    let work: Vec<(EntryPortId, &DependencyGraph)> =
        graphs.iter().map(|(&ingress, g)| (ingress, g)).collect();
    let per_ingress = map_chunked(work, threads, |&(ingress, graph)| {
        (ingress, candidates_for_ingress(instance, ingress, graph))
    });
    let mut map = CandidateMap::new();
    for (ingress, rules) in per_ingress {
        for (rule, switches) in rules {
            map.insert((ingress, rule), switches);
        }
    }
    map
}

/// True if the outcome settles the instance: a placement was produced,
/// or infeasibility was proven. Limit/cancellation outcomes are not
/// conclusive and cannot win the portfolio race.
fn conclusive(outcome: &PlacementOutcome) -> bool {
    outcome.placement.is_some() || outcome.status == SolveStatus::Infeasible
}

const NO_WINNER: usize = 0;
const ILP_WON: usize = 1;
const SAT_WON: usize = 2;

/// Stage 3 (portfolio): races the ILP and SAT engines over the same
/// candidates; first conclusive engine wins and cancels the other.
fn solve_portfolio(
    options: &PlacementOptions,
    instance: &Instance,
    objective: &Objective,
    candidates: &CandidateMap,
) -> (PlacementOutcome, Provenance) {
    let cancel_ilp = Arc::new(AtomicBool::new(false));
    let cancel_sat = AtomicBool::new(false);
    let winner = AtomicUsize::new(NO_WINNER);

    let mut ilp_options = options.clone();
    ilp_options.mip.cancel = Some(cancel_ilp.clone());

    let (ilp_out, sat_out) = std::thread::scope(|s| {
        let ilp = s.spawn(|| {
            let out = place_ilp_with(&ilp_options, instance, objective, candidates);
            if conclusive(&out)
                && winner
                    .compare_exchange(NO_WINNER, ILP_WON, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
            {
                cancel_sat.store(true, Ordering::Release);
            }
            out
        });
        let sat = s.spawn(|| {
            let out = place_sat_with(options, instance, candidates, Some(&cancel_sat));
            if conclusive(&out)
                && winner
                    .compare_exchange(NO_WINNER, SAT_WON, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
            {
                cancel_ilp.store(true, Ordering::Release);
            }
            out
        });
        (
            ilp.join().expect("ILP portfolio thread panicked"),
            sat.join().expect("SAT portfolio thread panicked"),
        )
    });

    match winner.load(Ordering::Acquire) {
        ILP_WON => (ilp_out, Provenance::Portfolio(PlacerEngine::Ilp)),
        SAT_WON => (sat_out, Provenance::Portfolio(PlacerEngine::Sat)),
        // Neither concluded (both hit limits / were inconclusive): fall
        // back to the configured engine's report.
        _ => match options.engine {
            PlacerEngine::Ilp => (ilp_out, Provenance::Portfolio(PlacerEngine::Ilp)),
            PlacerEngine::Sat => (sat_out, Provenance::Portfolio(PlacerEngine::Sat)),
        },
    }
}

/// Runs the full staged pipeline: parallel dependency graphs, parallel
/// candidates, then the single-engine or portfolio solve, per
/// `options.parallel`.
///
/// This is the engine behind [`crate::RulePlacer::place`] whenever
/// [`ParallelConfig::is_parallel`] holds, and behind
/// [`crate::RulePlacer::place_par`] always.
pub fn solve(instance: &Instance, objective: Objective, options: &PlacementOptions) -> ParOutcome {
    solve_with_cache(instance, objective, options, None)
}

/// [`solve`] with an optional warm cache (see [`crate::warm`]).
///
/// With a cache, the pipeline becomes incremental: the whole solve is
/// first looked up in the placement memo (hit ⇒ [`Provenance::Memo`] in
/// O(1)); on a miss, stages 1/2 rebuild only *dirty* ingresses — those
/// whose policy/route fingerprints have no cached artifact — and stage 3
/// may run through persistent solver sessions when
/// [`crate::WarmConfig::sessions`] is enabled. Cache hits are
/// byte-identical to a cold build because every cache key covers every
/// input of the cached computation. With `cache: None` (or a disabled
/// cache) this is exactly [`solve`].
pub fn solve_with_cache(
    instance: &Instance,
    objective: Objective,
    options: &PlacementOptions,
    cache: Option<&WarmCache>,
) -> ParOutcome {
    solve_observed(instance, objective, options, cache, None)
}

/// Records the deterministic solve telemetry for one pipeline run: the
/// per-provenance solve counter, the search-effort histogram (nodes for
/// ILP, conflicts for SAT — the reproducible latency proxy; see the
/// `flowplace-obs` determinism rules), and the cumulative engine-effort
/// counters.
fn record_solve_metrics(obs: &Obs, provenance: Provenance, outcome: &PlacementOutcome) {
    let tag = provenance.to_string();
    let labels: &[(&str, &str)] = &[("provenance", tag.as_str())];
    obs.metrics.counter_add_with("pipeline.solves", labels, 1);
    if provenance == Provenance::Memo {
        return;
    }
    let stats = &outcome.stats;
    obs.metrics
        .observe_with("pipeline.solve_cost", labels, stats.nodes as u64);
    obs.metrics
        .counter_add_with("solver.nodes", labels, stats.nodes as u64);
    obs.metrics
        .counter_add_with("solver.lp_iterations", labels, stats.lp_iterations as u64);
    obs.metrics
        .counter_add_with("solver.lazy_rows", labels, stats.lazy_rows as u64);
    obs.metrics
        .gauge_set_with("solver.variables", labels, stats.variables as i64);
    obs.metrics
        .gauge_set_with("solver.constraints", labels, stats.constraints as i64);
    // CDCL internals, present only for SAT-engine outcomes. Like
    // `solver.nodes` these mirror the outcome's stats verbatim (the
    // persistent warm session reports cumulative values); all are
    // derived from integer solver counters, so dumps stay
    // byte-reproducible.
    if let Some(sat) = stats.sat {
        obs.metrics
            .counter_add_with("solver.sat.conflicts", labels, sat.conflicts);
        obs.metrics
            .counter_add_with("solver.sat.restarts", labels, sat.restarts);
        obs.metrics
            .counter_add_with("solver.sat.blocked_restarts", labels, sat.blocked_restarts);
        obs.metrics
            .counter_add_with("solver.sat.db_reductions", labels, sat.db_reductions);
        obs.metrics
            .counter_add_with("solver.sat.learnt", labels, sat.learnt_clauses);
        obs.metrics
            .counter_add_with("solver.sat.learnt_deleted", labels, sat.learnt_deleted);
        obs.metrics.gauge_set_with(
            "solver.sat.mean_lbd_milli",
            labels,
            (sat.mean_lbd() * 1000.0) as i64,
        );
    }
}

/// Attaches the built/reused delta of a warm-cache counter pair as span
/// attributes (cold runs pass `None` deltas and report raw totals only).
fn stage_delta(before: Option<WarmStats>, after: Option<WarmStats>) -> Option<(u64, u64)> {
    match (before, after) {
        (Some(b), Some(a)) => Some((
            a.depgraphs_built + a.candidates_built - b.depgraphs_built - b.candidates_built,
            a.depgraphs_reused + a.candidates_reused - b.depgraphs_reused - b.candidates_reused,
        )),
        _ => None,
    }
}

/// [`solve_with_cache`] with optional telemetry (see `flowplace-obs`).
///
/// With `obs: Some`, the pipeline records a `"pipeline"` span with one
/// child per stage (`pipeline.depgraphs`, `pipeline.candidates`,
/// `pipeline.solve`) plus the solve counters/histograms keyed by
/// [`Provenance`]. Observability is strictly effect-free: the returned
/// outcome is byte-identical to `obs: None`, and only deterministic
/// quantities (span ticks, search effort, cache deltas) are recorded —
/// never wall time, so dumps diff clean across same-seed runs. Wall
/// clock stays available separately through [`StageTimes`].
pub fn solve_observed(
    instance: &Instance,
    objective: Objective,
    options: &PlacementOptions,
    cache: Option<&WarmCache>,
    obs: Option<&Obs>,
) -> ParOutcome {
    let cache = cache.filter(|c| c.enabled());
    let threads = options.parallel.effective_threads();

    let root = obs.map(|o| o.spans.enter("pipeline"));
    if let Some(span) = &root {
        span.attr("ingresses", instance.policies().count());
        span.attr("threads", threads);
    }

    // O(1) short-circuit: an identical instance was already solved.
    let instance_fp = cache.map(|c| {
        let fp = warm::fingerprint_instance(instance, &objective, options);
        (c, fp)
    });
    if let Some((c, fp)) = instance_fp {
        if let Some(outcome) = c.memo_get(fp) {
            if let (Some(span), Some(o)) = (&root, obs) {
                span.attr("provenance", Provenance::Memo.to_string());
                record_solve_metrics(o, Provenance::Memo, &outcome);
            }
            return ParOutcome {
                outcome,
                provenance: Provenance::Memo,
                stages: StageTimes::default(),
            };
        }
    }

    let t = Instant::now();
    let warm_before = cache.map(|c| c.stats());
    let stage = obs.map(|o| o.spans.enter("pipeline.depgraphs"));
    let graphs = match cache {
        Some(c) => build_depgraphs_cached(instance, threads, c),
        None => build_depgraphs(instance, threads),
    };
    if let Some(span) = &stage {
        span.attr("graphs", graphs.len());
        if let Some((built, reused)) = stage_delta(warm_before, cache.map(|c| c.stats())) {
            span.attr("built", built);
            span.attr("reused", reused);
        }
    }
    drop(stage);
    let depgraphs = t.elapsed();

    let t = Instant::now();
    let warm_before = cache.map(|c| c.stats());
    let stage = obs.map(|o| o.spans.enter("pipeline.candidates"));
    let mut candidates = match cache {
        Some(c) => build_candidates_cached(instance, &graphs, threads, c),
        None => build_candidates_par(instance, &graphs, threads),
    };
    restrict_candidates(instance, &mut candidates, &options.monitors);
    if let Some(span) = &stage {
        span.attr("ingresses", candidates.len());
        if let Some((built, reused)) = stage_delta(warm_before, cache.map(|c| c.stats())) {
            span.attr("built", built);
            span.attr("reused", reused);
        }
    }
    drop(stage);
    let candidates_time = t.elapsed();

    let t = Instant::now();
    let stage = obs.map(|o| o.spans.enter("pipeline.solve"));
    let sessions = cache.map(|c| c.sessions_enabled()).unwrap_or(false);
    let (outcome, provenance) = if sessions {
        let c = cache.expect("sessions implies a cache");
        let ingress_fps: BTreeMap<EntryPortId, warm::Fingerprint> = instance
            .policies()
            .map(|(ingress, _)| (ingress, warm::fingerprint_ingress(instance, ingress)))
            .collect();
        c.session_solve(instance, &objective, options, &candidates, &ingress_fps)
    } else if options.parallel.portfolio {
        solve_portfolio(options, instance, &objective, &candidates)
    } else {
        let out = match options.engine {
            PlacerEngine::Ilp => place_ilp_with(options, instance, &objective, &candidates),
            PlacerEngine::Sat => place_sat_with(options, instance, &candidates, None),
        };
        (out, Provenance::Single(options.engine))
    };
    if let Some(span) = &stage {
        span.attr("provenance", provenance.to_string());
        span.attr("status", outcome.status.to_string());
        span.attr("nodes", outcome.stats.nodes);
    }
    drop(stage);
    let solve_time = t.elapsed();

    if let Some((c, fp)) = instance_fp {
        c.memo_put(fp, &outcome);
    }

    if let Some(span) = &root {
        span.attr("provenance", provenance.to_string());
    }
    if let Some(o) = obs {
        record_solve_metrics(o, provenance, &outcome);
    }

    ParOutcome {
        outcome,
        provenance,
        stages: StageTimes {
            depgraphs,
            candidates: candidates_time,
            solve: solve_time,
        },
    }
}

/// Stage 1 with the warm cache: dependency graphs of fingerprint-clean
/// policies come from the cache; only dirty policies are built (across
/// worker threads), then stored. Cache traffic stays on the coordinating
/// thread — the workers run the same pure per-policy function the cold
/// stage runs.
fn build_depgraphs_cached(
    instance: &Instance,
    threads: usize,
    cache: &WarmCache,
) -> BTreeMap<EntryPortId, DependencyGraph> {
    let mut graphs: BTreeMap<EntryPortId, DependencyGraph> = BTreeMap::new();
    let mut dirty: Vec<(EntryPortId, warm::Fingerprint, &Policy)> = Vec::new();
    for (ingress, policy) in instance.policies() {
        let fp = warm::fingerprint_policy(policy);
        match cache.depgraph_lookup(fp) {
            Some(g) => {
                graphs.insert(ingress, g);
            }
            None => dirty.push((ingress, fp, policy)),
        }
    }
    let built = map_chunked(dirty, threads, |&(ingress, fp, policy)| {
        (ingress, fp, DependencyGraph::build(policy))
    });
    for (ingress, fp, g) in built {
        cache.depgraph_store(fp, &g);
        graphs.insert(ingress, g);
    }
    graphs
}

/// Stage 2 with the warm cache: candidate sets of fingerprint-clean
/// ingresses come from the cache; only dirty ingresses are rebuilt
/// (across worker threads), then stored. The cache holds *unrestricted*
/// candidates — monitor restriction is applied by the caller to the
/// assembled map, exactly as in the cold pipeline.
fn build_candidates_cached(
    instance: &Instance,
    graphs: &BTreeMap<EntryPortId, DependencyGraph>,
    threads: usize,
    cache: &WarmCache,
) -> CandidateMap {
    let mut per_ingress: BTreeMap<EntryPortId, BTreeMap<_, _>> = BTreeMap::new();
    let mut dirty: Vec<(EntryPortId, warm::Fingerprint, &DependencyGraph)> = Vec::new();
    for (&ingress, graph) in graphs {
        let fp = warm::fingerprint_ingress(instance, ingress);
        match cache.candidates_lookup(fp) {
            Some(c) => {
                per_ingress.insert(ingress, c);
            }
            None => dirty.push((ingress, fp, graph)),
        }
    }
    let built = map_chunked(dirty, threads, |&(ingress, fp, graph)| {
        (
            ingress,
            fp,
            candidates_for_ingress(instance, ingress, graph),
        )
    });
    for (ingress, fp, c) in built {
        cache.candidates_store(fp, &c);
        per_ingress.insert(ingress, c);
    }
    let mut map = CandidateMap::new();
    for (ingress, rules) in per_ingress {
        for (rule, switches) in rules {
            map.insert((ingress, rule), switches);
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::build_candidates;
    use flowplace_acl::{Action, Policy, Ternary};
    use flowplace_routing::{Route, RouteSet};
    use flowplace_topo::{SwitchId, Topology};

    fn t(s: &str) -> Ternary {
        Ternary::parse(s).unwrap()
    }

    /// A small instance with several ingresses so the chunked stages
    /// actually split work.
    fn multi_ingress_instance() -> Instance {
        let mut topo = Topology::star(4);
        topo.set_uniform_capacity(16);
        let mut routes = RouteSet::new();
        let mut policies = Vec::new();
        for i in 0..4usize {
            let ingress = EntryPortId(i);
            let egress = EntryPortId((i + 1) % 4);
            routes.push(Route::new(
                ingress,
                egress,
                vec![SwitchId(i + 1), SwitchId(0), SwitchId((i + 1) % 4 + 1)],
            ));
            let policy = Policy::from_ordered(vec![
                (t("11**"), Action::Permit),
                (t("1***"), Action::Drop),
                (t("0101"), Action::Drop),
            ])
            .unwrap();
            policies.push((ingress, policy));
        }
        Instance::new(topo, routes, policies).unwrap()
    }

    #[test]
    fn parallel_stages_match_serial_construction() {
        let inst = multi_ingress_instance();
        for threads in [1, 2, 3, 8] {
            let graphs = build_depgraphs(&inst, threads);
            assert_eq!(graphs.len(), 4);
            for (ingress, policy) in inst.policies() {
                assert_eq!(graphs[&ingress], DependencyGraph::build(policy));
            }
            let cand = build_candidates_par(&inst, &graphs, threads);
            assert_eq!(cand, build_candidates(&inst), "threads={threads}");
        }
    }

    #[test]
    fn pipeline_without_portfolio_matches_serial_place() {
        let inst = multi_ingress_instance();
        let serial = crate::RulePlacer::new(PlacementOptions::default())
            .place(&inst, Objective::TotalRules)
            .unwrap();
        let mut options = PlacementOptions {
            parallel: ParallelConfig {
                threads: 4,
                portfolio: false,
            },
            ..PlacementOptions::default()
        };
        let par = solve(&inst, Objective::TotalRules, &options);
        assert_eq!(par.provenance, Provenance::Single(PlacerEngine::Ilp));
        assert_eq!(par.outcome.placement, serial.placement);
        assert_eq!(par.outcome.status, serial.status);
        // The facade routes through the pipeline for parallel configs.
        options.parallel.threads = 3;
        let routed = crate::RulePlacer::new(options)
            .place(&inst, Objective::TotalRules)
            .unwrap();
        assert_eq!(routed.placement, serial.placement);
    }

    #[test]
    fn portfolio_returns_verified_placement_with_provenance() {
        let inst = multi_ingress_instance();
        let options = PlacementOptions {
            parallel: ParallelConfig {
                threads: 2,
                portfolio: true,
            },
            ..PlacementOptions::default()
        };
        let par = solve(&inst, Objective::TotalRules, &options);
        assert!(matches!(par.provenance, Provenance::Portfolio(_)));
        let placement = par.outcome.placement.expect("instance is feasible");
        let report = crate::verify::verify_placement(&inst, &placement, 64, 0xF01D);
        assert!(report.is_ok(), "portfolio placement failed verify");
    }

    #[test]
    fn portfolio_agrees_on_infeasibility() {
        // Capacity 0 on every switch with a non-empty policy: infeasible.
        let mut topo = Topology::linear(2);
        topo.set_uniform_capacity(0);
        let mut routes = RouteSet::new();
        routes.push(Route::new(
            EntryPortId(0),
            EntryPortId(1),
            vec![SwitchId(0), SwitchId(1)],
        ));
        let policy =
            Policy::from_ordered(vec![(t("11**"), Action::Permit), (t("1***"), Action::Drop)])
                .unwrap();
        let inst = Instance::new(topo, routes, vec![(EntryPortId(0), policy)]).unwrap();
        let options = PlacementOptions {
            parallel: ParallelConfig {
                threads: 2,
                portfolio: true,
            },
            ..PlacementOptions::default()
        };
        let par = solve(&inst, Objective::TotalRules, &options);
        assert_eq!(par.outcome.status, SolveStatus::Infeasible);
        assert!(par.outcome.placement.is_none());
    }

    #[test]
    fn effective_threads_resolves_auto() {
        let auto = ParallelConfig {
            threads: 0,
            portfolio: false,
        };
        assert!(auto.effective_threads() >= 1);
        assert!(auto.is_parallel() || auto.effective_threads() == 1);
        assert!(!ParallelConfig::default().is_parallel());
    }

    #[test]
    fn provenance_display() {
        assert_eq!(
            Provenance::Single(PlacerEngine::Ilp).to_string(),
            "single:ilp"
        );
        assert_eq!(
            Provenance::Portfolio(PlacerEngine::Sat).to_string(),
            "portfolio:sat"
        );
        assert_eq!(Provenance::Memo.to_string(), "memo");
    }

    #[test]
    fn warm_pipeline_matches_cold_and_memoizes() {
        let inst = multi_ingress_instance();
        let options = PlacementOptions::default();
        let cold = solve(&inst, Objective::TotalRules, &options);
        let cache = crate::WarmCache::default();

        // First warm solve: every cache misses, result identical to cold.
        let first = solve_with_cache(&inst, Objective::TotalRules, &options, Some(&cache));
        assert_eq!(first.outcome.placement, cold.outcome.placement);
        assert_eq!(first.outcome.status, cold.outcome.status);
        assert_eq!(first.provenance, cold.provenance);

        // Second warm solve of the identical instance: memo hit, O(1).
        let second = solve_with_cache(&inst, Objective::TotalRules, &options, Some(&cache));
        assert_eq!(second.provenance, Provenance::Memo);
        assert_eq!(second.outcome.placement, cold.outcome.placement);
        assert_eq!(second.outcome.status, cold.outcome.status);

        let stats = cache.stats();
        assert_eq!(stats.memo_hits, 1);
        assert_eq!(stats.memo_misses, 1);
        assert_eq!(stats.depgraphs_built, 4);
        assert_eq!(stats.candidates_built, 4);
    }

    #[test]
    fn warm_pipeline_rebuilds_only_dirty_ingresses() {
        let inst = multi_ingress_instance();
        let options = PlacementOptions::default();
        let cache = crate::WarmCache::default();
        solve_with_cache(&inst, Objective::TotalRules, &options, Some(&cache));
        let before = cache.stats();

        // Change one ingress's policy: exactly one candidate set is dirty.
        // (All four policies are identical, so the shared depgraph entry
        // stays warm for the other three; the changed one rebuilds.)
        let mut policies: Vec<_> = inst.policies().map(|(l, p)| (l, p.clone())).collect();
        policies[0].1 =
            Policy::from_ordered(vec![(t("00**"), Action::Permit), (t("0***"), Action::Drop)])
                .unwrap();
        let changed =
            Instance::new(inst.topology().clone(), inst.routes().clone(), policies).unwrap();
        let warm = solve_with_cache(&changed, Objective::TotalRules, &options, Some(&cache));
        let cold = solve(&changed, Objective::TotalRules, &options);
        assert_eq!(warm.outcome.placement, cold.outcome.placement);

        let after = cache.stats();
        assert_eq!(after.depgraphs_built - before.depgraphs_built, 1);
        assert_eq!(after.candidates_built - before.candidates_built, 1);
        assert_eq!(after.candidates_reused - before.candidates_reused, 3);
    }

    #[test]
    fn session_pipeline_stays_feasible_across_epochs() {
        let inst = multi_ingress_instance();
        let options = PlacementOptions::default();
        let cache = crate::WarmCache::new(crate::WarmConfig {
            sessions: true,
            ..crate::WarmConfig::default()
        });
        let first = solve_with_cache(&inst, Objective::TotalRules, &options, Some(&cache));
        let p1 = first.outcome.placement.expect("feasible");
        assert!(crate::verify::verify_placement(&inst, &p1, 64, 0x5E55).is_ok());

        // Second epoch, one policy changed: the ILP session seeds from
        // epoch 1 and freezes the three untouched ingresses.
        let mut policies: Vec<_> = inst.policies().map(|(l, p)| (l, p.clone())).collect();
        policies[1].1 =
            Policy::from_ordered(vec![(t("01**"), Action::Permit), (t("0***"), Action::Drop)])
                .unwrap();
        let changed =
            Instance::new(inst.topology().clone(), inst.routes().clone(), policies).unwrap();
        let second = solve_with_cache(&changed, Objective::TotalRules, &options, Some(&cache));
        let p2 = second.outcome.placement.expect("feasible");
        assert!(crate::verify::verify_placement(&changed, &p2, 64, 0x5E56).is_ok());
        let stats = cache.stats();
        assert!(stats.ilp_vars_fixed > 0, "untouched ingresses were frozen");

        // Third epoch, capacities grow: every ingress fingerprint is
        // unchanged (capacity is not part of it), so the whole previous
        // placement seeds the incumbent.
        let mut topo = changed.topology().clone();
        topo.set_uniform_capacity(32);
        let grown = Instance::new(
            topo,
            changed.routes().clone(),
            changed.policies().map(|(l, p)| (l, p.clone())).collect(),
        )
        .unwrap();
        let third = solve_with_cache(&grown, Objective::TotalRules, &options, Some(&cache));
        let p3 = third.outcome.placement.expect("feasible");
        assert!(crate::verify::verify_placement(&grown, &p3, 64, 0x5E57).is_ok());
        assert!(cache.stats().ilp_incumbent_seeded >= 1);
    }

    #[test]
    fn session_portfolio_returns_verified_placements() {
        let inst = multi_ingress_instance();
        let options = PlacementOptions {
            parallel: ParallelConfig {
                threads: 2,
                portfolio: true,
            },
            ..PlacementOptions::default()
        };
        let cache = crate::WarmCache::new(crate::WarmConfig {
            sessions: true,
            ..crate::WarmConfig::default()
        });
        for round in 0..3u64 {
            let out = solve_with_cache(&inst, Objective::TotalRules, &options, Some(&cache));
            if out.provenance != Provenance::Memo {
                assert!(matches!(out.provenance, Provenance::Portfolio(_)));
            }
            let p = out.outcome.placement.expect("feasible");
            assert!(
                crate::verify::verify_placement(&inst, &p, 64, 0xA000 + round).is_ok(),
                "round {round}"
            );
        }
    }
}

//! The rule-placement problem instance: `(N, P, Q)`.

use std::collections::BTreeMap;
use std::fmt;

use flowplace_acl::Policy;
use flowplace_routing::RouteSet;
use flowplace_topo::{EntryPortId, SwitchId, Topology};

/// Error constructing an [`Instance`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstanceError {
    /// A policy references an entry port the topology does not have.
    UnknownIngress(EntryPortId),
    /// A route's ingress has no policy attached.
    RouteWithoutPolicy(EntryPortId),
    /// A route visits a switch the topology does not have.
    UnknownSwitch(SwitchId),
    /// Two policies use different match-field widths.
    MixedWidths {
        /// Width of the first nonempty policy seen.
        expected: u32,
        /// The conflicting width.
        found: u32,
    },
    /// The same ingress was given two policies.
    DuplicatePolicy(EntryPortId),
}

impl fmt::Display for InstanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstanceError::UnknownIngress(l) => write!(f, "unknown ingress {l}"),
            InstanceError::RouteWithoutPolicy(l) => {
                write!(f, "route from {l} has no policy attached")
            }
            InstanceError::UnknownSwitch(s) => write!(f, "route visits unknown switch {s}"),
            InstanceError::MixedWidths { expected, found } => {
                write!(f, "policies use mixed widths: {expected} vs {found}")
            }
            InstanceError::DuplicatePolicy(l) => write!(f, "two policies for ingress {l}"),
        }
    }
}

impl std::error::Error for InstanceError {}

/// A complete rule-placement problem: the network `N` (switches with
/// capacities), the routing `P` (paths per ingress), and the distributed
/// firewall `{Q_i}` (one prioritized policy per ingress).
///
/// Construct with [`Instance::new`], which validates cross-references.
#[derive(Clone, Debug)]
pub struct Instance {
    topology: Topology,
    routes: RouteSet,
    policies: BTreeMap<EntryPortId, Policy>,
}

impl Instance {
    /// Builds and validates an instance.
    ///
    /// Every route's ingress must carry a policy; ingresses and switches
    /// must exist; all nonempty policies must share one match width.
    /// Policies for ingresses without routes are allowed (they simply
    /// place no rules).
    ///
    /// # Errors
    ///
    /// See [`InstanceError`].
    pub fn new(
        topology: Topology,
        routes: RouteSet,
        policies: Vec<(EntryPortId, Policy)>,
    ) -> Result<Self, InstanceError> {
        let mut map = BTreeMap::new();
        let mut width: Option<u32> = None;
        for (l, q) in policies {
            if l.0 >= topology.entry_port_count() {
                return Err(InstanceError::UnknownIngress(l));
            }
            if !q.is_empty() {
                match width {
                    None => width = Some(q.width()),
                    Some(w) if w != q.width() => {
                        return Err(InstanceError::MixedWidths {
                            expected: w,
                            found: q.width(),
                        })
                    }
                    Some(_) => {}
                }
            }
            if map.insert(l, q).is_some() {
                return Err(InstanceError::DuplicatePolicy(l));
            }
        }
        for route in routes.iter() {
            if !map.contains_key(&route.ingress) {
                return Err(InstanceError::RouteWithoutPolicy(route.ingress));
            }
            for &s in &route.switches {
                if s.0 >= topology.switch_count() {
                    return Err(InstanceError::UnknownSwitch(s));
                }
            }
        }
        Ok(Instance {
            topology,
            routes,
            policies: map,
        })
    }

    /// The network topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The routing input.
    pub fn routes(&self) -> &RouteSet {
        &self.routes
    }

    /// The policy attached to an ingress, if any.
    pub fn policy(&self, ingress: EntryPortId) -> Option<&Policy> {
        self.policies.get(&ingress)
    }

    /// Iterates over `(ingress, policy)` pairs in ingress order.
    pub fn policies(&self) -> impl Iterator<Item = (EntryPortId, &Policy)> {
        self.policies.iter().map(|(l, q)| (*l, q))
    }

    /// Number of attached policies.
    pub fn policy_count(&self) -> usize {
        self.policies.len()
    }

    /// Total rules across all policies (the paper's quantity `A`, against
    /// which duplication overhead is measured).
    pub fn total_policy_rules(&self) -> usize {
        self.policies.values().map(Policy::len).sum()
    }

    /// Replaces the route set (used by incremental deployment when routes
    /// change). The new routes are validated against existing policies.
    ///
    /// # Errors
    ///
    /// Same as [`Instance::new`].
    pub fn with_routes(&self, routes: RouteSet) -> Result<Instance, InstanceError> {
        Instance::new(
            self.topology.clone(),
            routes,
            self.policies.iter().map(|(l, q)| (*l, q.clone())).collect(),
        )
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "instance: {} switches, {} routes, {} policies, {} rules",
            self.topology.switch_count(),
            self.routes.len(),
            self.policies.len(),
            self.total_policy_rules()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowplace_acl::{Action, Ternary};
    use flowplace_routing::Route;

    fn policy() -> Policy {
        Policy::from_ordered(vec![(Ternary::parse("1*").unwrap(), Action::Drop)]).unwrap()
    }

    #[test]
    fn valid_instance() {
        let topo = Topology::linear(3);
        let mut routes = RouteSet::new();
        routes.push(Route::new(
            EntryPortId(0),
            EntryPortId(1),
            vec![SwitchId(0), SwitchId(1), SwitchId(2)],
        ));
        let inst = Instance::new(topo, routes, vec![(EntryPortId(0), policy())]).unwrap();
        assert_eq!(inst.policy_count(), 1);
        assert_eq!(inst.total_policy_rules(), 1);
        assert!(inst.policy(EntryPortId(0)).is_some());
        assert!(inst.policy(EntryPortId(1)).is_none());
    }

    #[test]
    fn route_without_policy_rejected() {
        let topo = Topology::linear(3);
        let mut routes = RouteSet::new();
        routes.push(Route::new(
            EntryPortId(1),
            EntryPortId(0),
            vec![SwitchId(2)],
        ));
        let e = Instance::new(topo, routes, vec![(EntryPortId(0), policy())]).unwrap_err();
        assert_eq!(e, InstanceError::RouteWithoutPolicy(EntryPortId(1)));
    }

    #[test]
    fn unknown_ingress_rejected() {
        let topo = Topology::linear(2);
        let e = Instance::new(topo, RouteSet::new(), vec![(EntryPortId(9), policy())]).unwrap_err();
        assert_eq!(e, InstanceError::UnknownIngress(EntryPortId(9)));
    }

    #[test]
    fn unknown_switch_rejected() {
        let topo = Topology::linear(2);
        let mut routes = RouteSet::new();
        routes.push(Route::new(
            EntryPortId(0),
            EntryPortId(1),
            vec![SwitchId(9)],
        ));
        let e = Instance::new(topo, routes, vec![(EntryPortId(0), policy())]).unwrap_err();
        assert_eq!(e, InstanceError::UnknownSwitch(SwitchId(9)));
    }

    #[test]
    fn duplicate_policy_rejected() {
        let topo = Topology::linear(2);
        let e = Instance::new(
            topo,
            RouteSet::new(),
            vec![(EntryPortId(0), policy()), (EntryPortId(0), policy())],
        )
        .unwrap_err();
        assert_eq!(e, InstanceError::DuplicatePolicy(EntryPortId(0)));
    }

    #[test]
    fn mixed_width_rejected() {
        let topo = Topology::linear(2);
        let wide =
            Policy::from_ordered(vec![(Ternary::parse("1***").unwrap(), Action::Drop)]).unwrap();
        let e = Instance::new(
            topo,
            RouteSet::new(),
            vec![(EntryPortId(0), policy()), (EntryPortId(1), wide)],
        )
        .unwrap_err();
        assert!(matches!(e, InstanceError::MixedWidths { .. }));
    }
}

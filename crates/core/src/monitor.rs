//! Monitor-aware placement — the paper's §VII future-work extension.
//!
//! > "we plan to explore more complex rule placement constraints, e.g. if
//! > the network wants to monitor certain packets, we do not want to let
//! > firewall rules block the packets before they reach the monitoring
//! > rules."
//!
//! A [`MonitorRequirement`] names a switch carrying monitoring rules and
//! the flow it must observe. Placement must then ensure that packets of
//! that flow are not dropped *upstream* of the monitor on any path that
//! passes through it — the DROP still happens (policy semantics are never
//! weakened), just at or after the monitoring switch.
//!
//! Implementation: a DROP rule whose match field intersects the monitored
//! flow loses its placement candidates on switches that precede the
//! monitor on any route traversing it. The coverage constraints then
//! force the drop onto the suffix (or prove the combination infeasible,
//! which the solver reports rather than silently violating either
//! requirement).

use flowplace_acl::Ternary;
use flowplace_topo::SwitchId;

use crate::candidates::CandidateMap;
use crate::Instance;

/// "Packets of `flow` must reach `switch` before being dropped."
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MonitorRequirement {
    /// The switch hosting the monitoring rules.
    pub switch: SwitchId,
    /// The monitored packet set.
    pub flow: Ternary,
}

impl MonitorRequirement {
    /// Creates a requirement.
    pub fn new(switch: SwitchId, flow: Ternary) -> Self {
        MonitorRequirement { switch, flow }
    }
}

/// Removes placement candidates that would let a DROP rule kill monitored
/// packets upstream of their monitor. Returns the number of `(rule,
/// switch)` candidates removed.
///
/// A candidate `(ingress, drop rule w, switch k)` is removed when some
/// route of `ingress` visits `k` strictly before a monitor's switch and
/// `w` intersects that monitor's flow (and, when the route carries a flow
/// descriptor, the route's flow also intersects the monitored flow — a
/// route that never carries monitored packets imposes nothing).
pub fn restrict_candidates(
    instance: &Instance,
    candidates: &mut CandidateMap,
    monitors: &[MonitorRequirement],
) -> usize {
    if monitors.is_empty() {
        return 0;
    }
    let mut removed = 0;
    for (&(ingress, rule_id), switches) in candidates.iter_mut() {
        let policy = instance
            .policy(ingress)
            .expect("candidate refers to existing policy");
        let rule = policy.rule(rule_id);
        if !rule.action().is_drop() {
            continue; // PERMIT rules never block packets
        }
        let mut prohibited: Vec<SwitchId> = Vec::new();
        for m in monitors {
            if !rule.match_field().intersects(&m.flow) {
                continue;
            }
            for rid in instance.routes().paths_from(ingress) {
                let route = instance.routes().route(rid);
                if let Some(rf) = &route.flow {
                    if !rf.intersects(&m.flow) {
                        continue;
                    }
                }
                let Some(mpos) = route.position_of(m.switch) else {
                    continue;
                };
                prohibited.extend(route.switches.iter().take(mpos).copied());
            }
        }
        for p in prohibited {
            if switches.remove(&p) {
                removed += 1;
            }
        }
    }
    candidates.retain(|_, switches| !switches.is_empty());
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::build_candidates;
    use crate::{Instance, Objective, PlacementOptions, RulePlacer};
    use flowplace_acl::{Action, Policy, RuleId};
    use flowplace_routing::{Route, RouteSet};
    use flowplace_topo::{EntryPortId, Topology};

    fn t(s: &str) -> Ternary {
        Ternary::parse(s).unwrap()
    }

    fn chain() -> Instance {
        let mut topo = Topology::linear(4);
        topo.set_uniform_capacity(10);
        let mut routes = RouteSet::new();
        routes.push(Route::new(
            EntryPortId(0),
            EntryPortId(1),
            (0..4).map(SwitchId).collect(),
        ));
        let policy = Policy::from_ordered(vec![
            (t("11**"), Action::Permit),
            (t("1***"), Action::Drop),
            (t("0***"), Action::Drop),
        ])
        .unwrap();
        Instance::new(topo, routes, vec![(EntryPortId(0), policy)]).unwrap()
    }

    #[test]
    fn removes_upstream_candidates_for_overlapping_drops() {
        let inst = chain();
        let mut cand = build_candidates(&inst);
        // Monitor 10** at switch 2: DROP 1*** overlaps, loses s0 and s1.
        let removed = restrict_candidates(
            &inst,
            &mut cand,
            &[MonitorRequirement::new(SwitchId(2), t("10**"))],
        );
        assert_eq!(removed, 2);
        let drop1 = &cand[&(EntryPortId(0), RuleId(1))];
        assert!(!drop1.contains(&SwitchId(0)));
        assert!(!drop1.contains(&SwitchId(1)));
        assert!(drop1.contains(&SwitchId(2)));
        assert!(drop1.contains(&SwitchId(3)));
        // The disjoint DROP 0*** keeps every candidate.
        let drop2 = &cand[&(EntryPortId(0), RuleId(2))];
        assert_eq!(drop2.len(), 4);
    }

    #[test]
    fn permits_are_never_restricted() {
        let inst = chain();
        let mut cand = build_candidates(&inst);
        restrict_candidates(
            &inst,
            &mut cand,
            &[MonitorRequirement::new(SwitchId(3), t("****"))],
        );
        // The PERMIT keeps all candidates (it shields, never blocks).
        assert_eq!(cand[&(EntryPortId(0), RuleId(0))].len(), 4);
    }

    #[test]
    fn monitored_placement_lands_at_or_after_monitor() {
        let inst = chain();
        let monitors = vec![MonitorRequirement::new(SwitchId(2), t("1***"))];
        let placer = RulePlacer::new(PlacementOptions {
            monitors: monitors.clone(),
            ..PlacementOptions::default()
        });
        let outcome = placer.place(&inst, Objective::TotalRules).unwrap();
        let p = outcome.placement.expect("feasible");
        for &s in p.switches_of(EntryPortId(0), RuleId(1)) {
            assert!(s.0 >= 2, "drop placed upstream of monitor: {s}");
        }
        crate::verify::verify_placement(&inst, &p, 64, 1).unwrap();
    }

    #[test]
    fn impossible_monitoring_is_reported_infeasible() {
        // Monitor at the LAST switch while capacity there is zero: the
        // overlapping drop has nowhere legal to go.
        let inst = chain();
        let mut topo = inst.topology().clone();
        topo.set_capacity(SwitchId(3), 0);
        let inst = Instance::new(
            topo,
            inst.routes().clone(),
            inst.policies().map(|(l, q)| (l, q.clone())).collect(),
        )
        .unwrap();
        let placer = RulePlacer::new(PlacementOptions {
            monitors: vec![MonitorRequirement::new(SwitchId(3), t("1***"))],
            ..PlacementOptions::default()
        });
        let outcome = placer.place(&inst, Objective::TotalRules).unwrap();
        assert_eq!(outcome.status, crate::SolveStatus::Infeasible);
    }

    #[test]
    fn route_flow_disjoint_from_monitor_imposes_nothing() {
        // The route carries only 0*** packets; a monitor for 1*** on it
        // never sees matching traffic, so drops keep their candidates.
        let mut topo = Topology::linear(3);
        topo.set_uniform_capacity(10);
        let mut routes = RouteSet::new();
        routes.push(
            Route::new(
                EntryPortId(0),
                EntryPortId(1),
                (0..3).map(SwitchId).collect(),
            )
            .with_flow(t("0***")),
        );
        let policy = Policy::from_ordered(vec![(t("0***"), Action::Drop)]).unwrap();
        let inst = Instance::new(topo, routes, vec![(EntryPortId(0), policy)]).unwrap();
        let mut cand = build_candidates(&inst);
        let removed = restrict_candidates(
            &inst,
            &mut cand,
            &[MonitorRequirement::new(SwitchId(2), t("1***"))],
        );
        assert_eq!(removed, 0);
    }

    #[test]
    fn sat_engine_honors_monitors_too() {
        let inst = chain();
        let placer = RulePlacer::new(PlacementOptions {
            engine: crate::PlacerEngine::Sat,
            monitors: vec![MonitorRequirement::new(SwitchId(2), t("1***"))],
            ..PlacementOptions::default()
        });
        let outcome = placer.place(&inst, Objective::TotalRules).unwrap();
        let p = outcome.placement.expect("satisfiable");
        for &s in p.switches_of(EntryPortId(0), RuleId(1)) {
            assert!(s.0 >= 2, "drop placed upstream of monitor: {s}");
        }
    }
}

//! Objective functions for the placement ILP (§IV-A4 of the paper).

use std::collections::BTreeMap;

use flowplace_topo::{EntryPortId, SwitchId};

use crate::Instance;

/// What the ILP minimizes.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Objective {
    /// Total number of rules placed in the network (the paper's primary
    /// objective — maximizes slack for future rules).
    #[default]
    TotalRules,
    /// `Σ v·loc(s, P_i)`: weight each placement by its hop distance from
    /// the ingress, pushing DROP rules upstream to minimize the traffic
    /// that dropped packets consume before dying.
    DistanceWeighted,
    /// Per-switch weights (e.g. to spare specific switches); a placement
    /// on switch `s` costs `weights[s]`, defaulting to 1.0 when absent.
    WeightedSwitches(BTreeMap<SwitchId, f64>),
}

impl Objective {
    /// The objective coefficient of placing one rule of ingress `i` on
    /// switch `s`.
    pub fn coefficient(&self, instance: &Instance, ingress: EntryPortId, s: SwitchId) -> f64 {
        match self {
            Objective::TotalRules => 1.0,
            Objective::DistanceWeighted => {
                // `loc` is computable for every candidate switch (it lies
                // on some path of the ingress); +1 keeps the coefficient
                // positive so unnecessary placements still cost.
                let loc = instance.routes().loc(ingress, s).unwrap_or(0);
                1.0 + loc as f64
            }
            Objective::WeightedSwitches(w) => w.get(&s).copied().unwrap_or(1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowplace_acl::{Action, Policy, Ternary};
    use flowplace_routing::{Route, RouteSet};
    use flowplace_topo::Topology;

    fn instance() -> Instance {
        let topo = Topology::linear(3);
        let mut routes = RouteSet::new();
        routes.push(Route::new(
            EntryPortId(0),
            EntryPortId(1),
            vec![SwitchId(0), SwitchId(1), SwitchId(2)],
        ));
        let policy =
            Policy::from_ordered(vec![(Ternary::parse("1*").unwrap(), Action::Drop)]).unwrap();
        Instance::new(topo, routes, vec![(EntryPortId(0), policy)]).unwrap()
    }

    #[test]
    fn total_rules_is_unit() {
        let inst = instance();
        let o = Objective::TotalRules;
        assert_eq!(o.coefficient(&inst, EntryPortId(0), SwitchId(2)), 1.0);
    }

    #[test]
    fn distance_weight_grows_downstream() {
        let inst = instance();
        let o = Objective::DistanceWeighted;
        assert_eq!(o.coefficient(&inst, EntryPortId(0), SwitchId(0)), 1.0);
        assert_eq!(o.coefficient(&inst, EntryPortId(0), SwitchId(1)), 2.0);
        assert_eq!(o.coefficient(&inst, EntryPortId(0), SwitchId(2)), 3.0);
    }

    #[test]
    fn weighted_switches_default_one() {
        let inst = instance();
        let o = Objective::WeightedSwitches([(SwitchId(1), 5.0)].into());
        assert_eq!(o.coefficient(&inst, EntryPortId(0), SwitchId(1)), 5.0);
        assert_eq!(o.coefficient(&inst, EntryPortId(0), SwitchId(0)), 1.0);
    }
}

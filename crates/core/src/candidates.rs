//! Candidate placement locations for every rule.

use std::collections::{BTreeMap, BTreeSet};

use flowplace_acl::RuleId;
use flowplace_topo::{EntryPortId, SwitchId};

use crate::depgraph::DependencyGraph;
use crate::slicing;
use crate::Instance;

/// For each `(ingress, rule)`, the switches it may be placed on.
///
/// DROP rules are candidates on every switch of every route they are
/// sliced into; PERMIT rules on every switch where some dependent DROP is
/// a candidate (Equation 1 only ever forces a PERMIT where its DROP
/// lands). PERMIT rules with no dependent DROP never need placement — the
/// default switch action is already PERMIT.
pub type CandidateMap = BTreeMap<(EntryPortId, RuleId), BTreeSet<SwitchId>>;

/// Builds the candidate map for an instance, honoring path slicing.
pub fn build_candidates(instance: &Instance) -> CandidateMap {
    let graphs: BTreeMap<EntryPortId, DependencyGraph> = instance
        .policies()
        .map(|(ingress, policy)| (ingress, DependencyGraph::build(policy)))
        .collect();
    build_candidates_with_graphs(instance, &graphs)
}

/// Like [`build_candidates`], but reuses dependency graphs built
/// elsewhere (the parallel pipeline builds them per-ingress across
/// threads, then feeds them here).
///
/// # Panics
///
/// Panics if `graphs` is missing an ingress that `instance` has a policy
/// for.
pub fn build_candidates_with_graphs(
    instance: &Instance,
    graphs: &BTreeMap<EntryPortId, DependencyGraph>,
) -> CandidateMap {
    let mut map: CandidateMap = BTreeMap::new();
    for (ingress, _policy) in instance.policies() {
        let graph = graphs
            .get(&ingress)
            .expect("dependency graph missing for ingress");
        for (rule, switches) in candidates_for_ingress(instance, ingress, graph) {
            map.insert((ingress, rule), switches);
        }
    }
    map
}

/// Candidate switches for the rules of one ingress policy — the
/// per-ingress unit of work the parallel pipeline distributes. Output is
/// keyed by rule id only; the caller re-keys under `(ingress, rule)`.
pub(crate) fn candidates_for_ingress(
    instance: &Instance,
    ingress: EntryPortId,
    graph: &DependencyGraph,
) -> BTreeMap<RuleId, BTreeSet<SwitchId>> {
    let policy = instance
        .policy(ingress)
        .expect("ingress must carry a policy");
    let mut map: BTreeMap<RuleId, BTreeSet<SwitchId>> = BTreeMap::new();
    // DROP rules: switches of every route the rule is sliced into.
    for rid in instance.routes().paths_from(ingress) {
        let route = instance.routes().route(rid);
        for w in slicing::sliced_drop_rules(policy, route) {
            map.entry(w)
                .or_default()
                .extend(route.switches.iter().copied());
        }
    }
    // PERMIT rules: union of their dependents' candidate switches.
    let drops: Vec<RuleId> = policy.drop_rules().collect();
    for w in drops {
        let Some(w_switches) = map.get(&w).cloned() else {
            continue; // drop rule sliced out of every route
        };
        for &u in graph.permits_required_by(w) {
            map.entry(u).or_default().extend(&w_switches);
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowplace_acl::{Action, Policy, Ternary};
    use flowplace_routing::{Route, RouteSet};
    use flowplace_topo::Topology;

    fn t(s: &str) -> Ternary {
        Ternary::parse(s).unwrap()
    }

    #[test]
    fn drops_on_route_switches_permits_follow() {
        let topo = Topology::linear(3);
        let mut routes = RouteSet::new();
        routes.push(Route::new(
            EntryPortId(0),
            EntryPortId(1),
            vec![SwitchId(0), SwitchId(1), SwitchId(2)],
        ));
        let policy = Policy::from_ordered(vec![
            (t("11**"), Action::Permit),
            (t("1***"), Action::Drop),
            (t("00**"), Action::Permit), // no dependent drop: no candidates
        ])
        .unwrap();
        let inst = Instance::new(topo, routes, vec![(EntryPortId(0), policy)]).unwrap();
        let cand = build_candidates(&inst);
        let all: BTreeSet<SwitchId> = [SwitchId(0), SwitchId(1), SwitchId(2)].into();
        assert_eq!(cand[&(EntryPortId(0), RuleId(1))], all);
        assert_eq!(cand[&(EntryPortId(0), RuleId(0))], all);
        assert!(!cand.contains_key(&(EntryPortId(0), RuleId(2))));
    }

    #[test]
    fn slicing_restricts_candidates() {
        let topo = Topology::linear(3);
        let mut routes = RouteSet::new();
        routes.push(
            Route::new(
                EntryPortId(0),
                EntryPortId(1),
                vec![SwitchId(0), SwitchId(1)],
            )
            .with_flow(t("**01")),
        );
        let policy = Policy::from_ordered(vec![
            (t("1*01"), Action::Drop), // overlaps flow
            (t("1*10"), Action::Drop), // sliced out
        ])
        .unwrap();
        let inst = Instance::new(topo, routes, vec![(EntryPortId(0), policy)]).unwrap();
        let cand = build_candidates(&inst);
        assert!(cand.contains_key(&(EntryPortId(0), RuleId(0))));
        assert!(!cand.contains_key(&(EntryPortId(0), RuleId(1))));
    }

    #[test]
    fn permit_union_over_multiple_paths() {
        // Drop covered on two disjoint paths: its permit must be a
        // candidate on both.
        let topo = Topology::star(3);
        let mut routes = RouteSet::new();
        routes.push(Route::new(
            EntryPortId(0),
            EntryPortId(1),
            vec![SwitchId(1), SwitchId(0), SwitchId(2)],
        ));
        routes.push(Route::new(
            EntryPortId(0),
            EntryPortId(2),
            vec![SwitchId(1), SwitchId(0), SwitchId(3)],
        ));
        let policy =
            Policy::from_ordered(vec![(t("11**"), Action::Permit), (t("1***"), Action::Drop)])
                .unwrap();
        let inst = Instance::new(topo, routes, vec![(EntryPortId(0), policy)]).unwrap();
        let cand = build_candidates(&inst);
        let permits = &cand[&(EntryPortId(0), RuleId(0))];
        assert!(permits.contains(&SwitchId(2)));
        assert!(permits.contains(&SwitchId(3)));
    }
}

//! Ingress-policy identification via VLAN-style tags (§IV-A5).
//!
//! Switches hold rules from many ingress policies; a packet must match
//! only the rules of the policy attached to the ingress where it entered
//! the network. The paper's mechanism: the ingress tags each packet (e.g.
//! in the VLAN field) and the tag participates in every rule's match, so
//! the per-policy rule spaces are disjoint inside a shared switch. Merged
//! rules match the *set* of their member tags.

use std::collections::BTreeMap;
use std::fmt;

use flowplace_topo::EntryPortId;

use crate::Instance;

/// A VLAN tag value (12-bit; 0 and 4095 are reserved by 802.1Q).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct VlanTag(pub u16);

/// Highest usable VLAN id.
pub const MAX_VLAN: u16 = 4094;

impl fmt::Display for VlanTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vlan:{}", self.0)
    }
}

/// Error from [`allocate_tags`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TagError {
    /// More policies than usable VLAN values.
    OutOfTags {
        /// Policies needing tags.
        needed: usize,
    },
}

impl fmt::Display for TagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TagError::OutOfTags { needed } => {
                write!(
                    f,
                    "{needed} policies exceed the {MAX_VLAN} usable VLAN tags"
                )
            }
        }
    }
}

impl std::error::Error for TagError {}

/// Assigns one VLAN tag per ingress policy (1, 2, 3, … in ingress order).
///
/// # Errors
///
/// Returns [`TagError::OutOfTags`] when the instance has more than
/// [`MAX_VLAN`] policies.
pub fn allocate_tags(instance: &Instance) -> Result<BTreeMap<EntryPortId, VlanTag>, TagError> {
    let needed = instance.policy_count();
    if needed > MAX_VLAN as usize {
        return Err(TagError::OutOfTags { needed });
    }
    Ok(instance
        .policies()
        .enumerate()
        .map(|(i, (l, _))| (l, VlanTag(i as u16 + 1)))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowplace_acl::{Action, Policy, Ternary};
    use flowplace_routing::RouteSet;
    use flowplace_topo::Topology;

    #[test]
    fn sequential_tags() {
        let topo = Topology::star(3);
        let pol =
            || Policy::from_ordered(vec![(Ternary::parse("1*").unwrap(), Action::Drop)]).unwrap();
        let inst = Instance::new(
            topo,
            RouteSet::new(),
            vec![(EntryPortId(0), pol()), (EntryPortId(2), pol())],
        )
        .unwrap();
        let tags = allocate_tags(&inst).unwrap();
        assert_eq!(tags[&EntryPortId(0)], VlanTag(1));
        assert_eq!(tags[&EntryPortId(2)], VlanTag(2));
    }

    #[test]
    fn display_forms() {
        assert_eq!(VlanTag(7).to_string(), "vlan:7");
        let e = TagError::OutOfTags { needed: 9000 };
        assert!(e.to_string().contains("9000"));
    }
}

//! Incremental deployment (§IV-E of the paper).
//!
//! Solving the full ILP takes seconds to minutes — fine for the initial
//! configuration, too slow for routine updates. The paper's strategy,
//! implemented here:
//!
//! * **Small scale** (a rule added to one policy): the ingress-first
//!   greedy heuristic against spare capacity — [`add_rule_greedy`].
//! * **Medium scale** (tenant policies added, routes changed): construct
//!   a *restricted sub-problem* over only the affected policies, with
//!   every other placement frozen and switch capacities reduced to their
//!   spare — [`install_policies`] and [`reroute_policy`]. The sub-problem
//!   is solved by the ILP or (faster, feasibility-only) PB-SAT engine.
//!   Restriction is conservative: the sub-problem can be infeasible even
//!   when a from-scratch solve is not; the caller can always fall back.
//! * **Large scale**: re-run [`RulePlacer::place`] from scratch.

use std::time::{Duration, Instant};

use flowplace_acl::{Policy, Rule, RuleId};
use flowplace_routing::{Route, RouteSet};
use flowplace_topo::EntryPortId;

use crate::greedy;
use crate::placement::{Placement, PlacementOptions, PlacementOutcome, RulePlacer, SolveStatus};
use crate::warm::WarmCache;
use crate::{Instance, InstanceError, Objective};

/// Result of an incremental operation.
#[derive(Clone, Debug)]
pub struct IncrementalOutcome {
    /// The updated instance (topology unchanged; routes/policies updated).
    pub instance: Instance,
    /// The updated placement, when the operation succeeded.
    pub placement: Option<Placement>,
    /// Status of the restricted sub-solve.
    pub status: SolveStatus,
    /// Wall-clock time of the incremental operation.
    pub elapsed: Duration,
}

/// Error from incremental operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IncrementalError {
    /// The updated inputs do not form a valid instance.
    Instance(InstanceError),
    /// The ingress already has / does not have a policy, as required.
    BadIngress(EntryPortId),
}

impl std::fmt::Display for IncrementalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IncrementalError::Instance(e) => write!(f, "{e}"),
            IncrementalError::BadIngress(l) => write!(f, "ingress {l} not usable here"),
        }
    }
}

impl std::error::Error for IncrementalError {}

impl From<InstanceError> for IncrementalError {
    fn from(e: InstanceError) -> Self {
        IncrementalError::Instance(e)
    }
}

/// Per-switch capacity left over by `placement` (the paper's Experiment 5
/// setup: the spare capacity becomes the capacity of the sub-problem).
pub fn spare_capacities(instance: &Instance, placement: &Placement) -> Vec<usize> {
    let load = placement.per_switch_load(instance);
    instance
        .topology()
        .capacities()
        .into_iter()
        .zip(load)
        .map(|(c, l)| c.saturating_sub(l))
        .collect()
}

/// Builds the restricted sub-instance: same topology with capacities set
/// to the spare left by `placement` (zero for `excluded` switches),
/// carrying only `policies` and `routes`.
fn sub_instance(
    instance: &Instance,
    placement: &Placement,
    policies: Vec<(EntryPortId, Policy)>,
    routes: RouteSet,
    excluded: &[flowplace_topo::SwitchId],
) -> Result<Instance, InstanceError> {
    let spare = spare_capacities(instance, placement);
    let mut topo = instance.topology().clone();
    for (i, c) in spare.into_iter().enumerate() {
        topo.set_capacity(flowplace_topo::SwitchId(i), c);
    }
    for &s in excluded {
        topo.set_capacity(s, 0);
    }
    Instance::new(topo, routes, policies)
}

/// Solves a restricted sub-instance, through the warm cache when one is
/// supplied (sub-instances benefit from the structural caches: an
/// ingress's candidates depend only on its policy and routes, which the
/// full solve already cached) and on the ordinary cold path otherwise.
fn restricted_solve(
    sub: &Instance,
    options: &PlacementOptions,
    objective: Objective,
    cache: Option<&WarmCache>,
) -> PlacementOutcome {
    match cache {
        Some(c) => crate::par::solve_with_cache(sub, objective, options, Some(c)).outcome,
        None => RulePlacer::new(options.clone())
            .place(sub, objective)
            .expect("placement is infallible"),
    }
}

/// Installs new ingress policies (with their routes) against the spare
/// capacity, leaving every existing placement untouched (§IV-E "Ingress
/// Policy Installation" / Experiment 5 part 1).
///
/// # Errors
///
/// [`IncrementalError::BadIngress`] if an addition targets an ingress
/// that already has a policy; instance-validation failures otherwise.
/// A `SolveStatus::Infeasible` outcome is *not* an error — it reports
/// that the restricted problem has no solution (a from-scratch solve
/// might).
pub fn install_policies(
    instance: &Instance,
    placement: &Placement,
    additions: Vec<(EntryPortId, Policy, Vec<Route>)>,
    options: &PlacementOptions,
    objective: Objective,
) -> Result<IncrementalOutcome, IncrementalError> {
    install_policies_cached(instance, placement, additions, options, objective, None)
}

/// [`install_policies`] with an optional warm cache (see [`crate::warm`]).
pub fn install_policies_cached(
    instance: &Instance,
    placement: &Placement,
    additions: Vec<(EntryPortId, Policy, Vec<Route>)>,
    options: &PlacementOptions,
    objective: Objective,
    cache: Option<&WarmCache>,
) -> Result<IncrementalOutcome, IncrementalError> {
    let start = Instant::now();
    for (l, _, _) in &additions {
        if instance.policy(*l).is_some() {
            return Err(IncrementalError::BadIngress(*l));
        }
    }
    let mut new_routes = RouteSet::new();
    let mut new_policies = Vec::new();
    for (l, q, rs) in additions {
        new_policies.push((l, q));
        new_routes.extend(rs);
    }
    let sub = sub_instance(
        instance,
        placement,
        new_policies.clone(),
        new_routes.clone(),
        &[],
    )?;
    let outcome = restricted_solve(&sub, options, objective, cache);

    // Merge updated inputs into a full instance.
    let mut all_routes = instance.routes().clone();
    all_routes.extend(new_routes.iter().cloned());
    let mut all_policies: Vec<(EntryPortId, Policy)> =
        instance.policies().map(|(l, q)| (l, q.clone())).collect();
    all_policies.extend(new_policies);
    let merged_instance = Instance::new(instance.topology().clone(), all_routes, all_policies)?;

    let placement = outcome.placement.map(|sub_placement| {
        let mut full = placement.clone();
        full.absorb(sub_placement);
        full
    });
    Ok(IncrementalOutcome {
        instance: merged_instance,
        placement,
        status: outcome.status,
        elapsed: start.elapsed(),
    })
}

/// Re-places a single policy after its routes changed (§IV-E "Routing
/// Policy Change" / Experiment 5 part 2): the old placement of `ingress`
/// is discarded, all other placements stay frozen, and the policy is
/// re-solved against the spare capacity on its new routes.
///
/// # Errors
///
/// [`IncrementalError::BadIngress`] if `ingress` has no policy;
/// instance-validation failures otherwise.
pub fn reroute_policy(
    instance: &Instance,
    placement: &Placement,
    ingress: EntryPortId,
    new_routes: Vec<Route>,
    options: &PlacementOptions,
    objective: Objective,
) -> Result<IncrementalOutcome, IncrementalError> {
    reroute_policy_cached(
        instance, placement, ingress, new_routes, options, objective, None,
    )
}

/// [`reroute_policy`] with an optional warm cache (see [`crate::warm`]).
#[allow(clippy::too_many_arguments)]
pub fn reroute_policy_cached(
    instance: &Instance,
    placement: &Placement,
    ingress: EntryPortId,
    new_routes: Vec<Route>,
    options: &PlacementOptions,
    objective: Objective,
    cache: Option<&WarmCache>,
) -> Result<IncrementalOutcome, IncrementalError> {
    let start = Instant::now();
    let Some(policy) = instance.policy(ingress).cloned() else {
        return Err(IncrementalError::BadIngress(ingress));
    };
    // Freeze everything except this ingress.
    let mut frozen = placement.clone();
    frozen.remove_ingress(ingress);

    let sub_routes: RouteSet = new_routes.iter().cloned().collect();
    let sub = sub_instance(instance, &frozen, vec![(ingress, policy)], sub_routes, &[])?;
    let outcome = restricted_solve(&sub, options, objective, cache);

    // Updated full route set: drop this ingress's old routes, add new.
    let mut all_routes = RouteSet::new();
    for r in instance.routes().iter() {
        if r.ingress != ingress {
            all_routes.push(r.clone());
        }
    }
    all_routes.extend(new_routes);
    let merged_instance = instance.with_routes(all_routes)?;

    let placement = outcome.placement.map(|sub_placement| {
        let mut full = frozen;
        full.absorb(sub_placement);
        full
    });
    Ok(IncrementalOutcome {
        instance: merged_instance,
        placement,
        status: outcome.status,
        elapsed: start.elapsed(),
    })
}

/// Re-places the policies of a set of ingresses on their *existing*
/// routes, with `excluded` switches barred from the sub-problem — the
/// §IV-E restricted re-solve a fault-tolerant controller runs when a
/// switch is quarantined or crashes: the dead switch contributes zero
/// capacity, every other ingress's placement stays frozen, and the
/// affected policies are re-solved against what spare remains.
///
/// Routes are not changed; a route through an excluded switch simply
/// cannot host rules there, so coverage must land on its surviving hops.
///
/// # Errors
///
/// [`IncrementalError::BadIngress`] if any ingress has no policy;
/// instance-validation failures otherwise. A `SolveStatus::Infeasible`
/// outcome is *not* an error — the caller escalates (full re-solve, then
/// fail-closed safe mode).
pub fn replace_ingresses(
    instance: &Instance,
    placement: &Placement,
    ingresses: &[EntryPortId],
    excluded: &[flowplace_topo::SwitchId],
    options: &PlacementOptions,
    objective: Objective,
) -> Result<IncrementalOutcome, IncrementalError> {
    replace_ingresses_cached(
        instance, placement, ingresses, excluded, options, objective, None,
    )
}

/// [`replace_ingresses`] with an optional warm cache (see
/// [`crate::warm`]).
#[allow(clippy::too_many_arguments)]
pub fn replace_ingresses_cached(
    instance: &Instance,
    placement: &Placement,
    ingresses: &[EntryPortId],
    excluded: &[flowplace_topo::SwitchId],
    options: &PlacementOptions,
    objective: Objective,
    cache: Option<&WarmCache>,
) -> Result<IncrementalOutcome, IncrementalError> {
    let start = Instant::now();
    let mut policies: Vec<(EntryPortId, Policy)> = Vec::new();
    for &l in ingresses {
        let Some(q) = instance.policy(l) else {
            return Err(IncrementalError::BadIngress(l));
        };
        policies.push((l, q.clone()));
    }
    // Freeze everything except the affected ingresses.
    let mut frozen = placement.clone();
    for &l in ingresses {
        frozen.remove_ingress(l);
    }
    let sub_routes: RouteSet = instance
        .routes()
        .iter()
        .filter(|r| ingresses.contains(&r.ingress))
        .cloned()
        .collect();
    let sub = sub_instance(instance, &frozen, policies, sub_routes, excluded)?;
    let outcome = restricted_solve(&sub, options, objective, cache);
    let placement = outcome.placement.map(|sub_placement| {
        let mut full = frozen;
        full.absorb(sub_placement);
        full
    });
    Ok(IncrementalOutcome {
        instance: instance.clone(),
        placement,
        status: outcome.status,
        elapsed: start.elapsed(),
    })
}

/// Adds one rule to an existing policy and places it with the ingress-
/// first greedy heuristic against spare capacity (§IV-E small-scale
/// update). Existing placements are untouched; the new rule's PERMIT
/// shields are co-placed where needed.
///
/// Returns `SolveStatus::Infeasible` (with `placement: None`) when the
/// greedy heuristic cannot fit the rule — the caller should escalate to
/// [`reroute_policy`]-style sub-solving or a full re-solve.
///
/// # Errors
///
/// [`IncrementalError::BadIngress`] if `ingress` has no policy;
/// policy/instance validation failures otherwise.
pub fn add_rule_greedy(
    instance: &Instance,
    placement: &Placement,
    ingress: EntryPortId,
    rule: Rule,
) -> Result<IncrementalOutcome, IncrementalError> {
    let start = Instant::now();
    let Some(policy) = instance.policy(ingress) else {
        return Err(IncrementalError::BadIngress(ingress));
    };
    let new_policy = policy
        .with_rule(rule)
        .map_err(|_| IncrementalError::BadIngress(ingress))?;
    // Index of the new rule in the updated priority order.
    let new_id = new_policy
        .iter()
        .find(|(_, r)| **r == rule)
        .map(|(id, _)| id)
        .expect("rule was just inserted");

    let mut policies: Vec<(EntryPortId, Policy)> =
        instance.policies().map(|(l, q)| (l, q.clone())).collect();
    for (l, q) in &mut policies {
        if *l == ingress {
            *q = new_policy.clone();
        }
    }
    let updated = Instance::new(
        instance.topology().clone(),
        instance.routes().clone(),
        policies,
    )?;

    // Re-index this ingress's placement entries: rule ids at or above the
    // insertion point shift by one.
    let mut shifted = Placement::new();
    for (&(l, r), switches) in placement.iter() {
        let nr = if l == ingress && r.0 >= new_id.0 {
            RuleId(r.0 + 1)
        } else {
            r
        };
        for &s in switches {
            shifted.place(l, nr, s);
        }
    }
    for g in placement.merge_groups() {
        let mut g = g.clone();
        for (l, r) in &mut g.members {
            if *l == ingress && r.0 >= new_id.0 {
                *r = RuleId(r.0 + 1);
            }
        }
        shifted.record_merge(g);
    }

    let mut remaining = spare_capacities(&updated, &shifted);
    let mut result = shifted.clone();
    let status = if rule.action().is_drop() {
        match greedy::place_policy(&updated, ingress, &mut remaining, &mut result, Some(new_id)) {
            Some(()) => SolveStatus::Feasible,
            None => SolveStatus::Infeasible,
        }
    } else {
        // A new PERMIT rule must shield every already-placed overlapping
        // lower-priority DROP; co-place it on those switches.
        let graph = crate::depgraph::DependencyGraph::build(&new_policy);
        let mut needed: Vec<flowplace_topo::SwitchId> = Vec::new();
        for (w, r) in new_policy.iter() {
            if r.action().is_drop() && graph.permits_required_by(w).contains(&new_id) {
                needed.extend(result.switches_of(ingress, w).iter().copied());
            }
        }
        needed.sort_unstable();
        needed.dedup();
        let mut ok = true;
        for s in needed {
            if result.is_placed(ingress, new_id, s) {
                continue;
            }
            if remaining[s.0] == 0 {
                ok = false;
                break;
            }
            remaining[s.0] -= 1;
            result.place(ingress, new_id, s);
        }
        if ok {
            SolveStatus::Feasible
        } else {
            SolveStatus::Infeasible
        }
    };

    let placement = if status == SolveStatus::Feasible {
        Some(result)
    } else {
        None
    };
    Ok(IncrementalOutcome {
        instance: updated,
        placement,
        status,
        elapsed: start.elapsed(),
    })
}

/// Removes one rule from a policy and from the deployed placement
/// (§IV-E: "rule deletion is relatively easy"). Existing placements of
/// other rules are untouched; freed capacity becomes spare. Merge groups
/// containing the rule are dissolved (remaining members keep their own
/// entries, which never exceeds capacity since the shared entry already
/// accounted one slot and members were placed individually in the
/// placement map).
///
/// # Errors
///
/// [`IncrementalError::BadIngress`] if `ingress` has no policy or `rule`
/// is out of range.
pub fn remove_rule(
    instance: &Instance,
    placement: &Placement,
    ingress: EntryPortId,
    rule: RuleId,
) -> Result<IncrementalOutcome, IncrementalError> {
    let start = Instant::now();
    let Some(policy) = instance.policy(ingress) else {
        return Err(IncrementalError::BadIngress(ingress));
    };
    if rule.0 >= policy.len() {
        return Err(IncrementalError::BadIngress(ingress));
    }
    let new_policy = policy.without_rule(rule);
    let mut policies: Vec<(EntryPortId, Policy)> =
        instance.policies().map(|(l, q)| (l, q.clone())).collect();
    for (l, q) in &mut policies {
        if *l == ingress {
            *q = new_policy.clone();
        }
    }
    let updated = Instance::new(
        instance.topology().clone(),
        instance.routes().clone(),
        policies,
    )?;

    // Shift this ingress's rule ids above the removal point down by one
    // and drop the removed rule's entries.
    let mut shifted = Placement::new();
    for (&(l, r), switches) in placement.iter() {
        if l == ingress && r == rule {
            continue;
        }
        let nr = if l == ingress && r.0 > rule.0 {
            RuleId(r.0 - 1)
        } else {
            r
        };
        for &s in switches {
            shifted.place(l, nr, s);
        }
    }
    for g in placement.merge_groups() {
        if g.members.iter().any(|&(l, r)| l == ingress && r == rule) {
            continue; // dissolve groups containing the removed rule
        }
        let mut g = g.clone();
        for (l, r) in &mut g.members {
            if *l == ingress && r.0 > rule.0 {
                *r = RuleId(r.0 - 1);
            }
        }
        shifted.record_merge(g);
    }
    Ok(IncrementalOutcome {
        instance: updated,
        placement: Some(shifted),
        status: SolveStatus::Feasible,
        elapsed: start.elapsed(),
    })
}

/// Replaces one rule of a policy — modeled, as the paper suggests, as a
/// deletion followed by an insertion placed by the greedy heuristic.
///
/// # Errors
///
/// Same as [`remove_rule`] / [`add_rule_greedy`].
pub fn modify_rule(
    instance: &Instance,
    placement: &Placement,
    ingress: EntryPortId,
    rule: RuleId,
    replacement: Rule,
) -> Result<IncrementalOutcome, IncrementalError> {
    let start = Instant::now();
    let removed = remove_rule(instance, placement, ingress, rule)?;
    let mid_placement = removed.placement.expect("removal always succeeds");
    let mut added = add_rule_greedy(&removed.instance, &mid_placement, ingress, replacement)?;
    added.elapsed = start.elapsed();
    Ok(added)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_placement;
    use flowplace_acl::{Action, Ternary};
    use flowplace_topo::{SwitchId, Topology};

    fn t(s: &str) -> Ternary {
        Ternary::parse(s).unwrap()
    }

    /// Star topology: two leaf ingresses, hub, one egress leaf.
    fn base() -> (Instance, Placement) {
        let mut topo = Topology::star(3);
        topo.set_uniform_capacity(6);
        let mut routes = RouteSet::new();
        routes.push(Route::new(
            EntryPortId(0),
            EntryPortId(2),
            vec![SwitchId(1), SwitchId(0), SwitchId(3)],
        ));
        let q0 = Policy::from_ordered(vec![(t("11**"), Action::Permit), (t("1***"), Action::Drop)])
            .unwrap();
        let inst = Instance::new(topo, routes, vec![(EntryPortId(0), q0)]).unwrap();
        let placement = RulePlacer::new(PlacementOptions::default())
            .place(&inst, Objective::TotalRules)
            .unwrap()
            .placement
            .unwrap();
        (inst, placement)
    }

    #[test]
    fn spare_capacity_accounts_for_load() {
        let (inst, p) = base();
        let spare = spare_capacities(&inst, &p);
        let total_spare: usize = spare.iter().sum();
        assert_eq!(total_spare, 4 * 6 - p.total_rules());
    }

    #[test]
    fn install_policy_on_new_ingress() {
        let (inst, p) = base();
        let q1 = Policy::from_ordered(vec![(t("0***"), Action::Drop)]).unwrap();
        let route = Route::new(
            EntryPortId(1),
            EntryPortId(2),
            vec![SwitchId(2), SwitchId(0), SwitchId(3)],
        );
        let out = install_policies(
            &inst,
            &p,
            vec![(EntryPortId(1), q1, vec![route])],
            &PlacementOptions::default(),
            Objective::TotalRules,
        )
        .unwrap();
        assert_eq!(out.status, SolveStatus::Optimal);
        let full = out.placement.unwrap();
        verify_placement(&out.instance, &full, 64, 1).expect("combined placement correct");
        assert!(full.total_rules() > p.total_rules());
    }

    #[test]
    fn install_rejects_existing_ingress() {
        let (inst, p) = base();
        let q = Policy::from_ordered(vec![(t("0***"), Action::Drop)]).unwrap();
        let e = install_policies(
            &inst,
            &p,
            vec![(EntryPortId(0), q, vec![])],
            &PlacementOptions::default(),
            Objective::TotalRules,
        )
        .unwrap_err();
        assert_eq!(e, IncrementalError::BadIngress(EntryPortId(0)));
    }

    #[test]
    fn install_infeasible_when_no_spare() {
        let (mut inst, _) = base();
        // Shrink capacities to zero spare.
        let mut topo = inst.topology().clone();
        topo.set_uniform_capacity(0);
        inst = Instance::new(
            topo,
            inst.routes().clone(),
            inst.policies().map(|(l, q)| (l, q.clone())).collect(),
        )
        .unwrap();
        let q1 = Policy::from_ordered(vec![(t("0***"), Action::Drop)]).unwrap();
        let route = Route::new(
            EntryPortId(1),
            EntryPortId(2),
            vec![SwitchId(2), SwitchId(0), SwitchId(3)],
        );
        let out = install_policies(
            &inst,
            &Placement::new(),
            vec![(EntryPortId(1), q1, vec![route])],
            &PlacementOptions::default(),
            Objective::TotalRules,
        )
        .unwrap();
        assert_eq!(out.status, SolveStatus::Infeasible);
        assert!(out.placement.is_none());
    }

    #[test]
    fn reroute_policy_moves_rules() {
        let (inst, p) = base();
        // New route through the other leaf (switch 2).
        let new_route = Route::new(
            EntryPortId(0),
            EntryPortId(1),
            vec![SwitchId(1), SwitchId(0), SwitchId(2)],
        );
        let out = reroute_policy(
            &inst,
            &p,
            EntryPortId(0),
            vec![new_route],
            &PlacementOptions::default(),
            Objective::TotalRules,
        )
        .unwrap();
        assert_eq!(out.status, SolveStatus::Optimal);
        let full = out.placement.unwrap();
        verify_placement(&out.instance, &full, 64, 2).expect("rerouted placement correct");
    }

    #[test]
    fn replace_ingresses_avoids_excluded_switch() {
        let (inst, p) = base();
        // The deployed placement put ingress 0's rules somewhere on its
        // route s1-s0-s3; exclude whichever switches it used and re-place.
        let used: Vec<SwitchId> = (0..4)
            .map(SwitchId)
            .filter(|&s| {
                p.iter()
                    .any(|((l, _), sw)| *l == EntryPortId(0) && sw.contains(&s))
            })
            .collect();
        assert!(!used.is_empty());
        let out = replace_ingresses(
            &inst,
            &p,
            &[EntryPortId(0)],
            &used,
            &PlacementOptions::default(),
            Objective::TotalRules,
        )
        .unwrap();
        assert_eq!(out.status, SolveStatus::Optimal);
        let q = out.placement.unwrap();
        for ((_, _), switches) in q.iter() {
            for s in switches {
                assert!(!used.contains(s), "rule still on excluded {s}");
            }
        }
        verify_placement(&out.instance, &q, 64, 11).expect("re-placed placement correct");
    }

    #[test]
    fn replace_ingresses_infeasible_when_everything_excluded() {
        let (inst, p) = base();
        let all: Vec<SwitchId> = (0..4).map(SwitchId).collect();
        let out = replace_ingresses(
            &inst,
            &p,
            &[EntryPortId(0)],
            &all,
            &PlacementOptions::default(),
            Objective::TotalRules,
        )
        .unwrap();
        assert_eq!(out.status, SolveStatus::Infeasible);
        assert!(out.placement.is_none());
        assert!(replace_ingresses(
            &inst,
            &p,
            &[EntryPortId(3)],
            &[],
            &PlacementOptions::default(),
            Objective::TotalRules,
        )
        .is_err());
    }

    #[test]
    fn add_drop_rule_greedily() {
        let (inst, p) = base();
        let out = add_rule_greedy(
            &inst,
            &p,
            EntryPortId(0),
            Rule::new(t("00**"), Action::Drop, 0),
        )
        .unwrap();
        assert_eq!(out.status, SolveStatus::Feasible);
        let full = out.placement.unwrap();
        verify_placement(&out.instance, &full, 64, 3).expect("rule added correctly");
    }

    #[test]
    fn add_permit_rule_shields_existing_drops() {
        let (inst, p) = base();
        // New top-priority PERMIT overlapping the existing DROP 1***.
        let top = inst.policy(EntryPortId(0)).unwrap().rules()[0].priority() + 1;
        let out = add_rule_greedy(
            &inst,
            &p,
            EntryPortId(0),
            Rule::new(t("10**"), Action::Permit, top),
        )
        .unwrap();
        assert_eq!(out.status, SolveStatus::Feasible);
        let full = out.placement.unwrap();
        verify_placement(&out.instance, &full, 64, 4).expect("permit shields correctly");
    }

    #[test]
    fn remove_rule_frees_capacity_and_stays_correct() {
        let (inst, p) = base();
        let before = p.total_rules();
        // Remove the DROP (rule 1): its PERMIT shield (rule 0) becomes
        // removable by a later redundancy pass, but placement-wise only
        // the drop's entries disappear now.
        let out = remove_rule(&inst, &p, EntryPortId(0), RuleId(1)).unwrap();
        let q = out.placement.unwrap();
        assert!(q.total_rules() < before);
        verify_placement(&out.instance, &q, 64, 7).expect("still correct");
        assert_eq!(out.instance.policy(EntryPortId(0)).unwrap().len(), 1);
    }

    #[test]
    fn remove_rule_bad_ids_rejected() {
        let (inst, p) = base();
        assert!(remove_rule(&inst, &p, EntryPortId(3), RuleId(0)).is_err());
        assert!(remove_rule(&inst, &p, EntryPortId(0), RuleId(9)).is_err());
    }

    #[test]
    fn modify_rule_swaps_semantics() {
        let (inst, p) = base();
        // Narrow the DROP from 1*** to 10**.
        let prio = inst
            .policy(EntryPortId(0))
            .unwrap()
            .rule(RuleId(1))
            .priority();
        let out = modify_rule(
            &inst,
            &p,
            EntryPortId(0),
            RuleId(1),
            Rule::new(t("10**"), Action::Drop, prio),
        )
        .unwrap();
        assert_eq!(out.status, SolveStatus::Feasible);
        let q = out.placement.unwrap();
        verify_placement(&out.instance, &q, 64, 8).expect("modified policy deployed");
        // 11** packets are now permitted end to end.
        let tables = crate::tables::emit_tables(&out.instance, &q).unwrap();
        let route = out.instance.routes().route(flowplace_routing::RouteId(0));
        let pkt = flowplace_acl::Packet::from_bits(0b1100, 4);
        assert_eq!(
            crate::verify::evaluate_route(&tables, route, &pkt),
            Action::Permit
        );
    }

    #[test]
    fn add_rule_infeasible_with_no_capacity() {
        let (inst, p) = base();
        // Exhaust capacity.
        let mut topo = inst.topology().clone();
        let load = p.per_switch_load(&inst);
        for (i, l) in load.iter().enumerate() {
            topo.set_capacity(SwitchId(i), *l);
        }
        let inst = Instance::new(
            topo,
            inst.routes().clone(),
            inst.policies().map(|(l, q)| (l, q.clone())).collect(),
        )
        .unwrap();
        let out = add_rule_greedy(
            &inst,
            &p,
            EntryPortId(0),
            Rule::new(t("00**"), Action::Drop, 0),
        )
        .unwrap();
        assert_eq!(out.status, SolveStatus::Infeasible);
    }
}

//! Ingress-first greedy placement heuristic (§IV-E, small-scale updates).
//!
//! "If a new rule is added to the policy, we can try to place the rules as
//! close to the ingress as possible. Such a simple heuristic may be enough
//! to obtain a satisfying solution." The same heuristic over the whole
//! instance doubles as a fast warm-start incumbent for the ILP and as a
//! non-optimizing baseline in the benchmarks.
//!
//! For every DROP rule on every path (honoring path slicing), walk the
//! path from the ingress and install the rule — together with whatever
//! higher-priority PERMIT shields (its dependency set) are still missing —
//! at the first switch with enough spare capacity. The heuristic is
//! complete only in the sense that success yields a correct placement;
//! failure does not prove infeasibility (that is the ILP's job).

use std::collections::BTreeMap;

use flowplace_acl::RuleId;
use flowplace_topo::EntryPortId;

use crate::depgraph::DependencyGraph;
use crate::placement::Placement;
use crate::slicing;
use crate::Instance;

/// Greedily places all policies of `instance`. Returns `None` if some
/// rule could not be placed on some path within capacity.
pub fn greedy_place(instance: &Instance) -> Option<Placement> {
    let mut remaining: Vec<usize> = instance.topology().capacities();
    let mut placement = Placement::new();
    for (ingress, _) in instance.policies() {
        place_policy(instance, ingress, &mut remaining, &mut placement, None)?;
    }
    Some(placement)
}

/// Greedily places a single policy against per-switch spare capacity,
/// extending `placement`. When `only_rule` is given, only that rule (plus
/// missing dependencies) is placed — the §IV-E single-rule update.
/// Returns `None` on failure (`placement` may then be partially extended).
pub fn place_policy(
    instance: &Instance,
    ingress: EntryPortId,
    remaining: &mut [usize],
    placement: &mut Placement,
    only_rule: Option<RuleId>,
) -> Option<()> {
    let policy = instance.policy(ingress)?;
    let graph = DependencyGraph::build(policy);
    for rid in instance.routes().paths_from(ingress) {
        let route = instance.routes().route(rid).clone();
        for w in slicing::sliced_drop_rules(policy, &route) {
            if let Some(only) = only_rule {
                if w != only {
                    continue;
                }
            }
            // Already covered on this path?
            if route
                .switches
                .iter()
                .any(|s| placement.is_placed(ingress, w, *s))
            {
                continue;
            }
            // Find the first switch that can take the drop plus its
            // missing permit shields.
            let mut done = false;
            for &s in &route.switches {
                let mut needed: Vec<RuleId> = Vec::new();
                if !placement.is_placed(ingress, w, s) {
                    needed.push(w);
                }
                for &u in graph.permits_required_by(w) {
                    if !placement.is_placed(ingress, u, s) {
                        needed.push(u);
                    }
                }
                if needed.len() <= remaining[s.0] {
                    remaining[s.0] -= needed.len();
                    for r in needed {
                        placement.place(ingress, r, s);
                    }
                    done = true;
                    break;
                }
            }
            if !done {
                return None;
            }
        }
    }
    Some(())
}

/// Per-rule placement counts by ingress, for diagnostics.
pub fn rules_per_ingress(placement: &Placement) -> BTreeMap<EntryPortId, usize> {
    let mut out: BTreeMap<EntryPortId, usize> = BTreeMap::new();
    for ((l, _), switches) in placement.iter() {
        *out.entry(*l).or_default() += switches.len();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowplace_acl::{Action, Policy, Ternary};
    use flowplace_routing::{Route, RouteSet};
    use flowplace_topo::{SwitchId, Topology};

    fn t(s: &str) -> Ternary {
        Ternary::parse(s).unwrap()
    }

    fn chain_instance(capacity: usize) -> Instance {
        let mut topo = Topology::linear(3);
        topo.set_uniform_capacity(capacity);
        let mut routes = RouteSet::new();
        routes.push(Route::new(
            flowplace_topo::EntryPortId(0),
            flowplace_topo::EntryPortId(1),
            vec![SwitchId(0), SwitchId(1), SwitchId(2)],
        ));
        let policy = Policy::from_ordered(vec![
            (t("11**"), Action::Permit),
            (t("1***"), Action::Drop),
            (t("01**"), Action::Drop),
        ])
        .unwrap();
        Instance::new(topo, routes, vec![(EntryPortId(0), policy)]).unwrap()
    }

    #[test]
    fn places_at_ingress_when_room() {
        let inst = chain_instance(10);
        let p = greedy_place(&inst).expect("fits");
        // All three rules (drop 1 + its permit shield + drop 2) at s0.
        for r in 0..3 {
            let s = p.switches_of(EntryPortId(0), RuleId(r));
            assert_eq!(s.iter().copied().collect::<Vec<_>>(), vec![SwitchId(0)]);
        }
    }

    #[test]
    fn spills_downstream_when_tight() {
        let inst = chain_instance(2);
        let p = greedy_place(&inst).expect("fits across switches");
        // Pair (permit, drop) at s0; second drop spills to s1.
        assert!(p.is_placed(EntryPortId(0), RuleId(0), SwitchId(0)));
        assert!(p.is_placed(EntryPortId(0), RuleId(1), SwitchId(0)));
        assert!(p.is_placed(EntryPortId(0), RuleId(2), SwitchId(1)));
    }

    #[test]
    fn fails_when_capacity_too_small() {
        // Capacity 1 everywhere: the (permit, drop) pair can never fit.
        let inst = chain_instance(1);
        assert!(greedy_place(&inst).is_none());
    }

    #[test]
    fn shares_rules_across_paths() {
        // Two paths sharing a prefix: coverage on the shared switch
        // should not double-place.
        let mut b = flowplace_topo::TopologyBuilder::new();
        let s0 = b.add_switch("s0", 10);
        let s1 = b.add_switch("s1", 10);
        let s2 = b.add_switch("s2", 10);
        b.add_link(s0, s1).unwrap();
        b.add_link(s0, s2).unwrap();
        let l0 = b.add_entry_port("l0", s0).unwrap();
        let l1 = b.add_entry_port("l1", s1).unwrap();
        let l2 = b.add_entry_port("l2", s2).unwrap();
        let topo = b.build();
        let mut routes = RouteSet::new();
        routes.push(Route::new(l0, l1, vec![s0, s1]));
        routes.push(Route::new(l0, l2, vec![s0, s2]));
        let policy = Policy::from_ordered(vec![(t("1***"), Action::Drop)]).unwrap();
        let inst = Instance::new(topo, routes, vec![(l0, policy)]).unwrap();
        let p = greedy_place(&inst).unwrap();
        assert_eq!(p.total_rules(), 1, "one shared entry at s0 covers both");
    }

    #[test]
    fn single_rule_update_mode() {
        let inst = chain_instance(10);
        let mut remaining = inst.topology().capacities();
        let mut placement = Placement::new();
        place_policy(
            &inst,
            EntryPortId(0),
            &mut remaining,
            &mut placement,
            Some(RuleId(2)),
        )
        .expect("fits");
        // Only the requested drop is placed (its shields don't apply).
        assert_eq!(placement.total_rules(), 1);
        assert!(placement.is_placed(EntryPortId(0), RuleId(2), SwitchId(0)));
    }

    #[test]
    fn per_ingress_counts() {
        let inst = chain_instance(10);
        let p = greedy_place(&inst).unwrap();
        let counts = rules_per_ingress(&p);
        assert_eq!(counts[&EntryPortId(0)], 3);
    }
}

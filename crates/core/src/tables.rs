//! Per-switch rule table emission.
//!
//! Turns a [`Placement`] into concrete prioritized switch tables. Each
//! entry matches a *tag set* (which ingress policies it applies to — one
//! ingress for ordinary rules, several for merged rules) plus the rule's
//! ternary header match. Within a switch:
//!
//! * rules of one policy keep their policy's relative priority order;
//! * rules of different policies may interleave freely (tags make their
//!   match spaces disjoint, §IV-A5);
//! * merged entries must satisfy *every* member policy's order — possible
//!   because [`crate::merge`] broke circular priority dependencies before
//!   encoding.
//!
//! The final order is a deterministic topological sort of those
//! constraints; discovering a cycle here would indicate an encoder bug
//! and is reported as an error rather than a panic.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use flowplace_acl::{Action, RuleId, Ternary};
use flowplace_topo::{EntryPortId, SwitchId};

use crate::placement::Placement;
use crate::Instance;

/// One TCAM entry of an emitted switch table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TableEntry {
    /// The ingress policies this entry applies to (≥ 2 for merged rules).
    pub tags: BTreeSet<EntryPortId>,
    /// The header match field.
    pub match_field: Ternary,
    /// PERMIT or DROP.
    pub action: Action,
    /// Table priority (larger wins), assigned by the emitter.
    pub priority: u32,
    /// The policy rules this entry realizes, one per tag.
    pub contributors: Vec<(EntryPortId, RuleId)>,
}

/// The emitted ACL table of one switch, sorted by descending priority.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SwitchTable {
    entries: Vec<TableEntry>,
}

impl SwitchTable {
    /// Builds a table directly from entries, sorting them into descending
    /// priority order (ties broken by tags/match so the result is
    /// deterministic). This is the bridge for auditors that reconstruct
    /// tables from *actual* switch state — e.g. a fault-tolerant
    /// controller handing the dataplane's surviving TCAM contents to
    /// [`crate::verify::verify_tables`] — rather than emitting them from
    /// a placement.
    pub fn from_entries(mut entries: Vec<TableEntry>) -> Self {
        entries.sort_by(|a, b| {
            b.priority
                .cmp(&a.priority)
                .then_with(|| a.tags.cmp(&b.tags))
                .then_with(|| a.match_field.cmp(&b.match_field))
                .then_with(|| a.action.cmp(&b.action))
        });
        SwitchTable { entries }
    }

    /// Entries in descending priority order.
    pub fn entries(&self) -> &[TableEntry] {
        &self.entries
    }

    /// Number of TCAM entries consumed.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// First-match lookup for a packet entering at `ingress`: the action
    /// of the highest-priority entry whose tag set contains `ingress` and
    /// whose match field matches, if any.
    pub fn lookup(&self, ingress: EntryPortId, packet: &flowplace_acl::Packet) -> Option<Action> {
        self.entries
            .iter()
            .find(|e| e.tags.contains(&ingress) && e.match_field.matches(packet))
            .map(|e| e.action)
    }
}

impl fmt::Display for SwitchTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.entries {
            let tags: Vec<String> = e.tags.iter().map(|t| t.to_string()).collect();
            writeln!(
                f,
                "[{}] tags={{{}}} {} {}",
                e.priority,
                tags.join(","),
                e.match_field,
                e.action
            )?;
        }
        Ok(())
    }
}

/// Error from [`emit_tables`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// The priority constraints on a switch are cyclic (merge
    /// cycle-breaking should make this impossible).
    CircularPriority(SwitchId),
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::CircularPriority(s) => {
                write!(f, "circular priority constraints on {s}")
            }
        }
    }
}

impl std::error::Error for TableError {}

/// Emits one table per switch (indexed by `SwitchId`).
///
/// # Errors
///
/// Returns [`TableError::CircularPriority`] if the per-policy order
/// constraints cannot be linearized — which [`crate::merge`]'s
/// cycle-breaking is designed to prevent.
pub fn emit_tables(
    instance: &Instance,
    placement: &Placement,
) -> Result<Vec<SwitchTable>, TableError> {
    let n = instance.topology().switch_count();
    let mut tables = vec![SwitchTable::default(); n];

    // Group raw entries per switch.
    struct Draft {
        tags: BTreeSet<EntryPortId>,
        match_field: Ternary,
        action: Action,
        contributors: Vec<(EntryPortId, RuleId)>,
    }
    let mut drafts: Vec<Vec<Draft>> = (0..n).map(|_| Vec::new()).collect();

    // Merged entries first; remember which (ingress, rule, switch) they
    // absorb.
    let mut absorbed: BTreeSet<(EntryPortId, RuleId, SwitchId)> = BTreeSet::new();
    for g in placement.merge_groups() {
        for &(l, r) in &g.members {
            absorbed.insert((l, r, g.switch));
        }
        drafts[g.switch.0].push(Draft {
            tags: g.members.iter().map(|(l, _)| *l).collect(),
            match_field: g.match_field,
            action: g.action,
            contributors: g.members.clone(),
        });
    }
    // Ordinary entries.
    for (&(ingress, rule), switches) in placement.iter() {
        let r = instance
            .policy(ingress)
            .expect("placement refers to existing policy")
            .rule(rule);
        for &s in switches {
            if absorbed.contains(&(ingress, rule, s)) {
                continue;
            }
            drafts[s.0].push(Draft {
                tags: [ingress].into(),
                match_field: *r.match_field(),
                action: r.action(),
                contributors: vec![(ingress, rule)],
            });
        }
    }

    // Order each switch's entries.
    for (si, mut ds) in drafts.into_iter().enumerate() {
        if ds.is_empty() {
            continue;
        }
        // Constraint edges: for each ingress, chain its entries in
        // descending policy priority.
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); ds.len()];
        let mut indeg = vec![0usize; ds.len()];
        let mut per_ingress: BTreeMap<EntryPortId, Vec<(u32, usize)>> = BTreeMap::new();
        for (ei, d) in ds.iter().enumerate() {
            for &(l, r) in &d.contributors {
                let prio = instance
                    .policy(l)
                    .expect("contributor policy exists")
                    .rule(r)
                    .priority();
                per_ingress.entry(l).or_default().push((prio, ei));
            }
        }
        for (_, mut list) in per_ingress {
            list.sort_by_key(|&(prio, _)| std::cmp::Reverse(prio)); // descending priority
            for w in list.windows(2) {
                adj[w[0].1].push(w[1].1);
                indeg[w[1].1] += 1;
            }
        }
        // Deterministic Kahn (lowest index first).
        let mut order: Vec<usize> = Vec::with_capacity(ds.len());
        let mut ready: BTreeSet<usize> = indeg
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == 0)
            .map(|(i, _)| i)
            .collect();
        while let Some(&e) = ready.iter().next() {
            ready.remove(&e);
            order.push(e);
            for &next in &adj[e] {
                indeg[next] -= 1;
                if indeg[next] == 0 {
                    ready.insert(next);
                }
            }
        }
        if order.len() != ds.len() {
            return Err(TableError::CircularPriority(SwitchId(si)));
        }
        let total = order.len() as u32;
        let mut entries: Vec<TableEntry> = Vec::with_capacity(ds.len());
        for (pos, &ei) in order.iter().enumerate() {
            let d = std::mem::replace(
                &mut ds[ei],
                Draft {
                    tags: BTreeSet::new(),
                    match_field: Ternary::any(1),
                    action: Action::Permit,
                    contributors: Vec::new(),
                },
            );
            entries.push(TableEntry {
                tags: d.tags,
                match_field: d.match_field,
                action: d.action,
                priority: total - pos as u32,
                contributors: d.contributors,
            });
        }
        tables[si] = SwitchTable { entries };
    }
    Ok(tables)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowplace_acl::{Packet, Policy};
    use flowplace_routing::{Route, RouteSet};
    use flowplace_topo::Topology;

    fn t(s: &str) -> Ternary {
        Ternary::parse(s).unwrap()
    }

    fn one_policy_instance() -> Instance {
        let mut topo = Topology::linear(2);
        topo.set_uniform_capacity(10);
        let mut routes = RouteSet::new();
        routes.push(Route::new(
            EntryPortId(0),
            EntryPortId(1),
            vec![SwitchId(0), SwitchId(1)],
        ));
        let policy =
            Policy::from_ordered(vec![(t("11**"), Action::Permit), (t("1***"), Action::Drop)])
                .unwrap();
        Instance::new(topo, routes, vec![(EntryPortId(0), policy)]).unwrap()
    }

    #[test]
    fn preserves_policy_priority_order() {
        let inst = one_policy_instance();
        let mut p = Placement::new();
        p.place(EntryPortId(0), RuleId(0), SwitchId(0));
        p.place(EntryPortId(0), RuleId(1), SwitchId(0));
        let tables = emit_tables(&inst, &p).unwrap();
        let table = &tables[0];
        assert_eq!(table.len(), 2);
        // The permit (rule 0) must outrank the drop (rule 1).
        assert_eq!(table.entries()[0].match_field, t("11**"));
        assert!(table.entries()[0].priority > table.entries()[1].priority);
        // Lookup honors first-match.
        assert_eq!(
            table.lookup(EntryPortId(0), &Packet::from_bits(0b1100, 4)),
            Some(Action::Permit)
        );
        assert_eq!(
            table.lookup(EntryPortId(0), &Packet::from_bits(0b1000, 4)),
            Some(Action::Drop)
        );
        assert_eq!(
            table.lookup(EntryPortId(0), &Packet::from_bits(0b0000, 4)),
            None
        );
    }

    #[test]
    fn lookup_respects_tags() {
        let inst = one_policy_instance();
        let mut p = Placement::new();
        p.place(EntryPortId(0), RuleId(1), SwitchId(0));
        let tables = emit_tables(&inst, &p).unwrap();
        // A packet from a different ingress never matches.
        assert_eq!(
            tables[0].lookup(EntryPortId(1), &Packet::from_bits(0b1000, 4)),
            None
        );
    }

    #[test]
    fn merged_entry_has_union_tags() {
        use crate::merge::MergeGroup;
        let mut topo = Topology::star(2);
        topo.set_uniform_capacity(10);
        let mut routes = RouteSet::new();
        routes.push(Route::new(
            EntryPortId(0),
            EntryPortId(1),
            vec![SwitchId(1), SwitchId(0), SwitchId(2)],
        ));
        routes.push(Route::new(
            EntryPortId(1),
            EntryPortId(0),
            vec![SwitchId(2), SwitchId(0), SwitchId(1)],
        ));
        let q = Policy::from_ordered(vec![(t("1111"), Action::Drop)]).unwrap();
        let inst = Instance::new(
            topo,
            routes,
            vec![(EntryPortId(0), q.clone()), (EntryPortId(1), q)],
        )
        .unwrap();
        let mut p = Placement::new();
        p.place(EntryPortId(0), RuleId(0), SwitchId(0));
        p.place(EntryPortId(1), RuleId(0), SwitchId(0));
        p.record_merge(MergeGroup {
            switch: SwitchId(0),
            match_field: t("1111"),
            action: Action::Drop,
            members: vec![(EntryPortId(0), RuleId(0)), (EntryPortId(1), RuleId(0))],
        });
        let tables = emit_tables(&inst, &p).unwrap();
        assert_eq!(tables[0].len(), 1, "merged rules share one entry");
        let entry = &tables[0].entries()[0];
        assert_eq!(entry.tags.len(), 2);
        // Both ingresses hit the shared entry.
        let pkt = Packet::from_bits(0b1111, 4);
        assert_eq!(tables[0].lookup(EntryPortId(0), &pkt), Some(Action::Drop));
        assert_eq!(tables[0].lookup(EntryPortId(1), &pkt), Some(Action::Drop));
    }

    #[test]
    fn interleaves_policies_without_constraint() {
        // Two policies on the same switch: any order works; emission must
        // produce all entries with distinct priorities.
        let mut topo = Topology::linear(1);
        topo.set_uniform_capacity(10);
        let mut routes = RouteSet::new();
        routes.push(Route::new(
            EntryPortId(0),
            EntryPortId(1),
            vec![SwitchId(0)],
        ));
        routes.push(Route::new(
            EntryPortId(1),
            EntryPortId(0),
            vec![SwitchId(0)],
        ));
        let q0 = Policy::from_ordered(vec![(t("1***"), Action::Drop)]).unwrap();
        let q1 = Policy::from_ordered(vec![(t("0***"), Action::Drop)]).unwrap();
        let inst = Instance::new(
            topo,
            routes,
            vec![(EntryPortId(0), q0), (EntryPortId(1), q1)],
        )
        .unwrap();
        let mut p = Placement::new();
        p.place(EntryPortId(0), RuleId(0), SwitchId(0));
        p.place(EntryPortId(1), RuleId(0), SwitchId(0));
        let tables = emit_tables(&inst, &p).unwrap();
        assert_eq!(tables[0].len(), 2);
        let prios: BTreeSet<u32> = tables[0].entries().iter().map(|e| e.priority).collect();
        assert_eq!(prios.len(), 2);
    }

    #[test]
    fn conflicting_merge_groups_report_cycle() {
        use crate::merge::MergeGroup;
        // Hand-build two merge groups with contradictory priority votes
        // (bypassing find_merge_groups, which would have broken the
        // cycle) to exercise the CircularPriority error path.
        let mut topo = Topology::linear(1);
        topo.set_uniform_capacity(10);
        let mut routes = RouteSet::new();
        routes.push(Route::new(
            EntryPortId(0),
            EntryPortId(1),
            vec![SwitchId(0)],
        ));
        routes.push(Route::new(
            EntryPortId(1),
            EntryPortId(0),
            vec![SwitchId(0)],
        ));
        // Policy A: permit (high), drop (low); policy B: reversed.
        let qa = Policy::from_ordered(vec![(t("10**"), Action::Permit), (t("1***"), Action::Drop)])
            .unwrap();
        let qb = Policy::from_ordered(vec![(t("1***"), Action::Drop), (t("10**"), Action::Permit)])
            .unwrap();
        let inst = Instance::new(
            topo,
            routes,
            vec![(EntryPortId(0), qa), (EntryPortId(1), qb)],
        )
        .unwrap();
        let mut p = Placement::new();
        // A: permit is rule 0, drop is rule 1; B: drop is 0, permit is 1.
        p.place(EntryPortId(0), RuleId(0), SwitchId(0));
        p.place(EntryPortId(0), RuleId(1), SwitchId(0));
        p.place(EntryPortId(1), RuleId(0), SwitchId(0));
        p.place(EntryPortId(1), RuleId(1), SwitchId(0));
        p.record_merge(MergeGroup {
            switch: SwitchId(0),
            match_field: t("10**"),
            action: Action::Permit,
            members: vec![(EntryPortId(0), RuleId(0)), (EntryPortId(1), RuleId(1))],
        });
        p.record_merge(MergeGroup {
            switch: SwitchId(0),
            match_field: t("1***"),
            action: Action::Drop,
            members: vec![(EntryPortId(0), RuleId(1)), (EntryPortId(1), RuleId(0))],
        });
        let err = emit_tables(&inst, &p).unwrap_err();
        assert_eq!(err, TableError::CircularPriority(SwitchId(0)));
        assert!(err.to_string().contains("circular"));
    }

    #[test]
    fn table_display_lists_entries() {
        let inst = one_policy_instance();
        let mut p = Placement::new();
        p.place(EntryPortId(0), RuleId(0), SwitchId(0));
        let tables = emit_tables(&inst, &p).unwrap();
        let text = tables[0].to_string();
        assert!(text.contains("11**"));
        assert!(text.contains("PERMIT"));
        assert!(text.contains("tags={l0}"));
    }

    #[test]
    fn empty_placement_empty_tables() {
        let inst = one_policy_instance();
        let tables = emit_tables(&inst, &Placement::new()).unwrap();
        assert!(tables.iter().all(SwitchTable::is_empty));
    }
}

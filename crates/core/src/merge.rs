//! Rule merging across ingress policies (§IV-B of the paper).
//!
//! Network-wide blacklist rules appear verbatim in many ingress policies.
//! When several policies could place the *same* rule (identical match
//! field and action) on the *same* switch, a single shared TCAM entry
//! tagged with the union of the policies suffices. The ILP models this
//! with a merge variable `v^m` that is 1 iff every member is placed
//! (Equations 4–5), discounting the duplicates from the capacity
//! constraint and the objective.
//!
//! # Circular dependencies
//!
//! A shared entry must sit at one position in the switch's priority order,
//! consistent with *every* member policy. If policy A orders rule `x`
//! above rule `y` while policy C orders them the other way (the paper's
//! Figure 5), merging both rules for all three policies is impossible.
//! The paper breaks the cycle by giving C a dummy copy of `y` below `x`
//! and merging that (the dominated copy never matches); the net effect is
//! that C keeps its own unmerged `y` and is excluded from `y`'s merge
//! group. [`find_merge_groups`] performs exactly that exclusion;
//! [`add_dummy_rules`] exposes the paper's literal transformation for
//! auditing.

use std::collections::BTreeMap;
use std::fmt;

use flowplace_fasthash::FnvHashMap;

use flowplace_acl::{Action, Policy, Rule, RuleId, Ternary};
use flowplace_topo::{EntryPortId, SwitchId};

use crate::candidates::CandidateMap;
use crate::Instance;

/// A set of identical rules from different policies that may share one
/// TCAM entry on one switch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MergeGroup {
    /// The switch the shared entry would live on.
    pub switch: SwitchId,
    /// The shared match field.
    pub match_field: Ternary,
    /// The shared action.
    pub action: Action,
    /// `(ingress, rule)` members, at most one per policy, ≥ 2 entries.
    pub members: Vec<(EntryPortId, RuleId)>,
}

impl fmt::Display for MergeGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "merge@{}: {} {} x{}",
            self.switch,
            self.match_field,
            self.action,
            self.members.len()
        )
    }
}

/// Finds all merge groups of an instance, already free of circular
/// priority dependencies (conflicting members are excluded, see the
/// module docs).
///
/// A rule participates at a switch only if that switch is among its
/// placement candidates. Policies contributing several identical copies
/// of a rule contribute only the highest-priority copy.
pub fn find_merge_groups(instance: &Instance, candidates: &CandidateMap) -> Vec<MergeGroup> {
    // Bucket candidate rules by (switch, match, action). The bucket map
    // is insert-hot and probed per candidate×switch, so it is unordered
    // (FNV); group emission order is semantic, so the buckets are sorted
    // by key before iteration (the DESIGN.md §16 hasher policy).
    type BucketKey = (SwitchId, Ternary, Action);
    let mut buckets: FnvHashMap<BucketKey, Vec<(EntryPortId, RuleId)>> = FnvHashMap::default();
    for (&(ingress, rule_id), switches) in candidates {
        let rule = instance
            .policy(ingress)
            .expect("candidate refers to existing policy")
            .rule(rule_id);
        for &s in switches {
            buckets
                .entry((s, *rule.match_field(), rule.action()))
                .or_default()
                .push((ingress, rule_id));
        }
    }
    let mut bucketed: Vec<(BucketKey, Vec<(EntryPortId, RuleId)>)> = buckets.into_iter().collect();
    bucketed.sort_unstable_by_key(|e| e.0);
    let mut groups: Vec<MergeGroup> = Vec::new();
    for ((switch, match_field, action), mut members) in bucketed {
        // One member per policy: keep the highest-priority copy.
        members.sort();
        members.dedup_by_key(|(l, _)| *l);
        if members.len() >= 2 {
            groups.push(MergeGroup {
                switch,
                match_field,
                action,
                members,
            });
        }
    }
    break_circular_dependencies(instance, groups)
}

/// Removes members from merge groups until the cross-policy priority
/// relation between groups on each switch is acyclic.
///
/// For each pair of groups on a switch, member policies "vote" on their
/// relative order (by the priorities of their own copies). Pairwise
/// conflicts are resolved for the majority; dissenting policies are
/// excluded from the group whose rule they rank higher (the dummy-rule
/// equivalence). Remaining longer cycles are broken by excluding one
/// member along a back edge until a topological order exists.
fn break_circular_dependencies(
    instance: &Instance,
    mut groups: Vec<MergeGroup>,
) -> Vec<MergeGroup> {
    // Work per switch.
    let mut by_switch: BTreeMap<SwitchId, Vec<usize>> = BTreeMap::new();
    for (gi, g) in groups.iter().enumerate() {
        by_switch.entry(g.switch).or_default().push(gi);
    }

    for (_switch, idxs) in by_switch {
        // Pairwise conflict resolution by majority.
        for a_pos in 0..idxs.len() {
            for b_pos in a_pos + 1..idxs.len() {
                let (ga, gb) = (idxs[a_pos], idxs[b_pos]);
                let (a_over_b, b_over_a) = votes(instance, &groups[ga], &groups[gb]);
                if a_over_b.is_empty() || b_over_a.is_empty() {
                    continue; // unanimous or unrelated
                }
                // Minority side loses its members; ties favor a-over-b.
                let (losers, loser_ranks_higher) = if a_over_b.len() >= b_over_a.len() {
                    (b_over_a, gb) // these policies rank b higher: drop from b
                } else {
                    (a_over_b, ga)
                };
                groups[loser_ranks_higher]
                    .members
                    .retain(|(l, _)| !losers.contains(l));
            }
        }

        // Break residual longer cycles: repeatedly topo-sort; when stuck,
        // drop one member from some group still in the cyclic core.
        loop {
            let live: Vec<usize> = idxs
                .iter()
                .copied()
                .filter(|&g| groups[g].members.len() >= 2)
                .collect();
            let mut indeg: BTreeMap<usize, usize> = live.iter().map(|&g| (g, 0)).collect();
            let mut edges: Vec<(usize, usize)> = Vec::new();
            for &ga in &live {
                for &gb in &live {
                    if ga >= gb {
                        continue;
                    }
                    let (a_over_b, b_over_a) = votes(instance, &groups[ga], &groups[gb]);
                    debug_assert!(a_over_b.is_empty() || b_over_a.is_empty());
                    if !a_over_b.is_empty() {
                        edges.push((ga, gb));
                        *indeg.get_mut(&gb).expect("live node") += 1;
                    } else if !b_over_a.is_empty() {
                        edges.push((gb, ga));
                        *indeg.get_mut(&ga).expect("live node") += 1;
                    }
                }
            }
            // Kahn's algorithm.
            let mut queue: Vec<usize> = indeg
                .iter()
                .filter(|(_, &d)| d == 0)
                .map(|(&g, _)| g)
                .collect();
            let mut seen = 0;
            let mut indeg_work = indeg.clone();
            while let Some(g) = queue.pop() {
                seen += 1;
                for &(a, b) in &edges {
                    if a == g {
                        let d = indeg_work.get_mut(&b).expect("live node");
                        *d -= 1;
                        if *d == 0 {
                            queue.push(b);
                        }
                    }
                }
            }
            if seen == live.len() {
                break; // acyclic
            }
            // Some group in the cyclic core: drop its lowest member.
            let stuck = *indeg_work
                .iter()
                .filter(|(_, &d)| d > 0)
                .map(|(g, _)| g)
                .next()
                .expect("cycle implies a stuck node");
            groups[stuck].members.pop();
        }
    }

    groups.retain(|g| g.members.len() >= 2);
    groups
}

/// For two groups on one switch, the policies voting `a` above `b` and
/// `b` above `a`. Every policy that is a member of both groups votes with
/// the priority order of its own copies.
///
/// Voting on *all* shared pairs (not only overlapping opposite-action
/// pairs) is deliberately conservative: it guarantees that any ordering a
/// policy forces transitively through its interior rules is already
/// captured by a direct group-to-group edge, so the acyclicity we
/// establish here extends to the full per-switch table ordering used by
/// [`crate::tables`].
fn votes(
    instance: &Instance,
    a: &MergeGroup,
    b: &MergeGroup,
) -> (Vec<EntryPortId>, Vec<EntryPortId>) {
    let mut a_over_b = Vec::new();
    let mut b_over_a = Vec::new();
    for &(l, ra) in &a.members {
        let Some(&(_, rb)) = b.members.iter().find(|(lb, _)| *lb == l) else {
            continue;
        };
        let policy = instance.policy(l).expect("member policy exists");
        if policy.rule(ra).priority() > policy.rule(rb).priority() {
            a_over_b.push(l);
        } else {
            b_over_a.push(l);
        }
    }
    (a_over_b, b_over_a)
}

/// The paper's literal Figure 5 transformation: for each `(ingress,
/// rule)` pair excluded from merging by a priority conflict, append a
/// dummy copy of the rule at a priority just below the conflicting
/// higher-priority rule. The dummy is dominated by the original (it can
/// never be the first match), so policy semantics are unchanged, and the
/// dummy *is* mergeable.
///
/// Returns the transformed policy. Exposed for auditing and tests; the
/// optimizer itself uses the equivalent exclusion rule in
/// [`find_merge_groups`].
///
/// # Panics
///
/// Panics if `rule` is out of range for `policy`.
pub fn add_dummy_rules(policy: &Policy, rule: RuleId) -> Policy {
    let original = *policy.rule(rule);
    // Renumber priorities to open a slot at the very bottom.
    let mut rules: Vec<Rule> = policy
        .rules()
        .iter()
        .map(|r| r.with_priority(r.priority() + 1))
        .collect();
    let min_priority = rules.iter().map(|r| r.priority()).min().unwrap_or(1);
    rules.push(Rule::new(
        *original.match_field(),
        original.action(),
        min_priority - 1,
    ));
    Policy::from_rules(rules).expect("shifted priorities remain strict")
}

/// Per-shard accounting of realized merge groups (Eq. 4–5 applied at
/// the coordination layer of a sharded controller): every group is
/// billed to exactly one *owner* shard — the smallest shard id among
/// its members — so summing bucket savings over shards reproduces the
/// global merge saving with no double counting. Buckets are emitted in
/// shard-id order, which is the deterministic coordination order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardBucket {
    /// The owning shard (bucket index).
    pub shard: u32,
    /// Groups owned by this shard.
    pub groups: usize,
    /// TCAM entries saved by those groups (`Σ members − 1`).
    pub entries_saved: usize,
    /// Owned groups whose members span more than one shard — the
    /// shared-rule coupling the coordination step must account globally
    /// rather than per shard.
    pub cross_shard_groups: usize,
    /// Entries saved by the cross-shard subset.
    pub cross_shard_entries_saved: usize,
}

/// Buckets realized merge groups by owner shard, in shard-id order.
///
/// `shard_of` maps an ingress to its shard and must return values below
/// `shards`. The owner of a group is the minimum shard over its
/// members, so cross-shard shared entries are billed deterministically
/// to the lowest shard — the same rule the capacity arbiter uses when
/// attributing a merged entry's single TCAM slot.
///
/// # Panics
///
/// Panics if `shard_of` returns an id `≥ shards`.
pub fn shard_buckets(
    groups: &[MergeGroup],
    shards: u32,
    mut shard_of: impl FnMut(EntryPortId) -> u32,
) -> Vec<ShardBucket> {
    let mut buckets: Vec<ShardBucket> = (0..shards)
        .map(|shard| ShardBucket {
            shard,
            ..ShardBucket::default()
        })
        .collect();
    for g in groups {
        let member_shards: Vec<u32> = g.members.iter().map(|&(l, _)| shard_of(l)).collect();
        let owner = *member_shards
            .iter()
            .min()
            .expect("merge groups have ≥ 2 members");
        assert!(
            (owner as usize) < buckets.len(),
            "shard_of returned {owner} for a {shards}-shard bucket set"
        );
        let saved = g.members.len() - 1;
        let bucket = &mut buckets[owner as usize];
        bucket.groups += 1;
        bucket.entries_saved += saved;
        if member_shards.iter().any(|&s| s != owner) {
            bucket.cross_shard_groups += 1;
            bucket.cross_shard_entries_saved += saved;
        }
    }
    buckets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::build_candidates;
    use flowplace_routing::{Route, RouteSet};
    use flowplace_topo::Topology;

    fn t(s: &str) -> Ternary {
        Ternary::parse(s).unwrap()
    }

    fn shared_rule_instance() -> Instance {
        // Two ingresses routing through a common middle switch; both
        // policies contain the identical blacklist DROP.
        let topo = Topology::star(3); // hub s0, leaves s1..s3
        let mut routes = RouteSet::new();
        routes.push(Route::new(
            EntryPortId(0),
            EntryPortId(2),
            vec![SwitchId(1), SwitchId(0), SwitchId(3)],
        ));
        routes.push(Route::new(
            EntryPortId(1),
            EntryPortId(2),
            vec![SwitchId(2), SwitchId(0), SwitchId(3)],
        ));
        let q0 = Policy::from_ordered(vec![
            (t("1111"), Action::Drop), // shared blacklist
            (t("00**"), Action::Drop),
        ])
        .unwrap();
        let q1 = Policy::from_ordered(vec![
            (t("1111"), Action::Drop), // shared blacklist
            (t("01**"), Action::Drop),
        ])
        .unwrap();
        Instance::new(
            topo,
            routes,
            vec![(EntryPortId(0), q0), (EntryPortId(1), q1)],
        )
        .unwrap()
    }

    #[test]
    fn identical_rules_grouped_on_shared_switches() {
        let inst = shared_rule_instance();
        let cand = build_candidates(&inst);
        let groups = find_merge_groups(&inst, &cand);
        // The blacklist rule is shared on the two switches both routes
        // traverse: s0 (hub) and s3 (egress leaf).
        let switches: Vec<SwitchId> = groups.iter().map(|g| g.switch).collect();
        assert_eq!(switches, vec![SwitchId(0), SwitchId(3)]);
        for g in &groups {
            assert_eq!(g.match_field, t("1111"));
            assert_eq!(g.members.len(), 2);
        }
    }

    #[test]
    fn different_actions_not_grouped() {
        let topo = Topology::linear(1);
        let mut routes = RouteSet::new();
        routes.push(Route::new(
            EntryPortId(0),
            EntryPortId(1),
            vec![SwitchId(0)],
        ));
        routes.push(Route::new(
            EntryPortId(1),
            EntryPortId(0),
            vec![SwitchId(0)],
        ));
        let q0 = Policy::from_ordered(vec![(t("11**"), Action::Permit), (t("1***"), Action::Drop)])
            .unwrap();
        // Same match 11** but DROP here.
        let q1 = Policy::from_ordered(vec![(t("11**"), Action::Drop)]).unwrap();
        let inst = Instance::new(
            topo,
            routes,
            vec![(EntryPortId(0), q0), (EntryPortId(1), q1)],
        )
        .unwrap();
        let cand = build_candidates(&inst);
        let groups = find_merge_groups(&inst, &cand);
        assert!(groups.is_empty(), "permit and drop copies must not merge");
    }

    #[test]
    fn figure5_circular_dependency_broken() {
        // Three ingress policies through one switch; r1 (PERMIT) and r2
        // (DROP) overlap. A and B order r1 > r2; C orders r2 > r1.
        let topo = Topology::star(4);
        let mut routes = RouteSet::new();
        for i in 0..3 {
            routes.push(Route::new(
                EntryPortId(i),
                EntryPortId(3),
                vec![SwitchId(i + 1), SwitchId(0), SwitchId(4)],
            ));
        }
        // r1: src 10.../16-style narrow permit; r2: wider drop. 8-bit toy:
        let r1 = (t("10**11**"), Action::Permit);
        let r2 = (t("1***1***"), Action::Drop);
        let qa = Policy::from_ordered(vec![r1, r2]).unwrap();
        let qb = Policy::from_ordered(vec![r1, r2]).unwrap();
        let qc = Policy::from_ordered(vec![r2, r1]).unwrap(); // reversed!
        let inst = Instance::new(
            topo,
            routes,
            vec![
                (EntryPortId(0), qa),
                (EntryPortId(1), qb),
                (EntryPortId(2), qc),
            ],
        )
        .unwrap();
        let cand = build_candidates(&inst);
        let groups = find_merge_groups(&inst, &cand);
        // On each shared switch, C must be excluded from one of the two
        // groups; the remaining relation must be acyclic.
        for g in &groups {
            assert!(g.members.len() >= 2);
        }
        // C (EntryPortId(2)) appears in at most one group per switch.
        let mut per_switch: BTreeMap<SwitchId, usize> = BTreeMap::new();
        for g in &groups {
            if g.members.iter().any(|(l, _)| *l == EntryPortId(2)) {
                *per_switch.entry(g.switch).or_default() += 1;
            }
        }
        for (_, n) in per_switch {
            assert!(n <= 1, "conflicting policy must be excluded from one group");
        }
        // A and B still merge both rules somewhere.
        assert!(groups
            .iter()
            .any(|g| g.action == Action::Permit && g.members.len() >= 2));
        assert!(groups
            .iter()
            .any(|g| g.action == Action::Drop && g.members.len() >= 2));
    }

    #[test]
    fn dummy_rule_transformation_preserves_semantics() {
        let p = Policy::from_ordered(vec![(t("1***"), Action::Drop), (t("11**"), Action::Permit)])
            .unwrap();
        let q = add_dummy_rules(&p, RuleId(0));
        assert_eq!(q.len(), 3);
        assert!(p.equivalent_by_enumeration(&q));
        // The dummy is the lowest-priority rule and copies rule 0.
        let last = q.rules().last().unwrap();
        assert_eq!(last.match_field(), &t("1***"));
        assert_eq!(last.action(), Action::Drop);
    }

    #[test]
    fn groups_deduplicate_copies_within_one_policy() {
        // One policy containing the same rule twice (at different
        // priorities) must contribute a single member.
        let topo = Topology::linear(1);
        let mut routes = RouteSet::new();
        routes.push(Route::new(
            EntryPortId(0),
            EntryPortId(1),
            vec![SwitchId(0)],
        ));
        routes.push(Route::new(
            EntryPortId(1),
            EntryPortId(0),
            vec![SwitchId(0)],
        ));
        let q0 = Policy::from_ordered(vec![
            (t("11**"), Action::Drop),
            (t("0***"), Action::Drop),
            (t("11**"), Action::Drop), // duplicate copy
        ])
        .unwrap();
        let q1 = Policy::from_ordered(vec![(t("11**"), Action::Drop)]).unwrap();
        let inst = Instance::new(
            topo,
            routes,
            vec![(EntryPortId(0), q0), (EntryPortId(1), q1)],
        )
        .unwrap();
        let cand = build_candidates(&inst);
        let groups = find_merge_groups(&inst, &cand);
        let g = groups
            .iter()
            .find(|g| g.match_field == t("11**"))
            .expect("group exists");
        assert_eq!(g.members.len(), 2);
        let policies: Vec<EntryPortId> = g.members.iter().map(|(l, _)| *l).collect();
        assert_eq!(policies, vec![EntryPortId(0), EntryPortId(1)]);
    }

    fn group(switch: usize, members: &[(usize, usize)]) -> MergeGroup {
        MergeGroup {
            switch: SwitchId(switch),
            match_field: t("11**"),
            action: Action::Drop,
            members: members
                .iter()
                .map(|&(l, r)| (EntryPortId(l), RuleId(r)))
                .collect(),
        }
    }

    #[test]
    fn shard_buckets_bill_each_group_once_to_min_shard() {
        // Shard by ingress parity: l0,l2 -> shard 0; l1,l3 -> shard 1.
        let groups = vec![
            group(0, &[(0, 0), (2, 0)]),         // intra shard 0
            group(1, &[(1, 0), (3, 1)]),         // intra shard 1
            group(2, &[(0, 1), (1, 1)]),         // cross, owner 0
            group(2, &[(1, 2), (2, 2), (3, 0)]), // cross, owner 0 (l2)
        ];
        let buckets = shard_buckets(&groups, 2, |l| (l.0 % 2) as u32);
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0].shard, 0);
        assert_eq!(buckets[1].shard, 1);
        assert_eq!(buckets[0].groups, 3);
        assert_eq!(buckets[1].groups, 1);
        assert_eq!(buckets[0].cross_shard_groups, 2);
        assert_eq!(buckets[1].cross_shard_groups, 0);
        // Conservation: bucketed savings reproduce the global saving.
        let global: usize = groups.iter().map(|g| g.members.len() - 1).sum();
        let bucketed: usize = buckets.iter().map(|b| b.entries_saved).sum();
        assert_eq!(global, bucketed);
        assert_eq!(buckets[0].cross_shard_entries_saved, 3);
    }

    #[test]
    fn shard_buckets_empty_groups_yield_zeroed_buckets() {
        let buckets = shard_buckets(&[], 4, |_| 0);
        assert_eq!(buckets.len(), 4);
        assert!(buckets
            .iter()
            .enumerate()
            .all(|(i, b)| b.shard == i as u32 && b.groups == 0 && b.entries_saved == 0));
    }
}

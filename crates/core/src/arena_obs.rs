//! Cube-arena allocation statistics as observability gauges.
//!
//! Bridges [`flowplace_acl::ArenaStats`] — the reuse counters of a
//! [`flowplace_acl::CubeArena`] — into `flowplace-obs` gauges so epoch
//! dumps carry the allocator profile of the cube algebra. All three
//! gauges are derived from deterministic integer counters of an
//! explicitly-held arena, so dumps stay byte-reproducible; do **not**
//! record the *thread-local* arena's stats from parallel stages, where
//! the per-thread split of work is not deterministic.

use flowplace_acl::ArenaStats;
use flowplace_obs::Obs;

/// Records `stats` as `arena.allocations` / `arena.reuse_hits` /
/// `arena.peak_bytes` gauges labelled with `scope` (e.g. `redundancy`,
/// `micro`). Gauges are *set*, not added: each call publishes the
/// arena's cumulative counters as-of-now.
pub fn record_arena_gauges(obs: &Obs, scope: &str, stats: ArenaStats) {
    let labels: &[(&str, &str)] = &[("scope", scope)];
    obs.metrics
        .gauge_set_with("arena.allocations", labels, stats.allocations as i64);
    obs.metrics
        .gauge_set_with("arena.reuse_hits", labels, stats.reuse_hits as i64);
    obs.metrics
        .gauge_set_with("arena.peak_bytes", labels, stats.peak_bytes as i64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauges_are_recorded_with_scope_label() {
        let obs = Obs::new();
        let stats = ArenaStats {
            allocations: 3,
            reuse_hits: 40,
            peak_bytes: 1024,
        };
        record_arena_gauges(&obs, "redundancy", stats);
        let json = obs.metrics_json();
        assert!(json.contains("arena.allocations"));
        assert!(json.contains("arena.reuse_hits"));
        assert!(json.contains("arena.peak_bytes"));
        assert!(json.contains("redundancy"));
        // Same stats → identical dump bytes.
        let obs2 = Obs::new();
        record_arena_gauges(&obs2, "redundancy", stats);
        assert_eq!(json, obs2.metrics_json());
    }
}

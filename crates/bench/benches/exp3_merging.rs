//! Table II: merging on/off at a representative capacity and shared-rule
//! count.

use flowplace_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};

use flowplace_bench::experiments::{default_options, EXP3_CAPACITIES, QUICK_TIME_LIMIT};
use flowplace_bench::{build_instance, ScenarioConfig};
use flowplace_core::{Objective, RulePlacer};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("exp3_merging");
    group.sample_size(10);
    for merging in [false, true] {
        for shared in [2usize, 6] {
            let cfg = ScenarioConfig {
                k: 4,
                ingresses: 8,
                paths_per_ingress: 2,
                rules_per_policy: 10,
                shared_rules: shared,
                capacity: EXP3_CAPACITIES[1],
                seed: 11,
            };
            let instance = build_instance(&cfg);
            let mut options = default_options(QUICK_TIME_LIMIT);
            options.merging = merging;
            let placer = RulePlacer::new(options);
            let name = if merging { "merge" } else { "plain" };
            group.bench_with_input(BenchmarkId::new(name, shared), &instance, |b, inst| {
                b.iter(|| {
                    placer
                        .place(inst, Objective::TotalRules)
                        .expect("placement is infallible")
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

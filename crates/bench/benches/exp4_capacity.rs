//! Figure 11: solve time across the capacity phase transition
//! (over-constrained / hard band / under-constrained).

use flowplace_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};

use flowplace_bench::experiments::{default_options, QUICK_TIME_LIMIT};
use flowplace_bench::{build_instance, ScenarioConfig};
use flowplace_core::{Objective, RulePlacer};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("exp4_capacity");
    group.sample_size(10);
    for capacity in [20usize, 60, 200] {
        let cfg = ScenarioConfig {
            k: 4,
            ingresses: 8,
            paths_per_ingress: 2,
            rules_per_policy: 40,
            shared_rules: 0,
            capacity,
            seed: 5,
        };
        let instance = build_instance(&cfg);
        let placer = RulePlacer::new(default_options(QUICK_TIME_LIMIT));
        group.bench_with_input(
            BenchmarkId::from_parameter(capacity),
            &instance,
            |b, inst| {
                b.iter(|| {
                    placer
                        .place(inst, Objective::TotalRules)
                        .expect("placement is infallible")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Experiment 5: incremental deployment latency — installing a tenant
//! policy and rerouting one against spare capacity, vs the full solve.

use flowplace_bench::harness::{criterion_group, criterion_main, Criterion};
use flowplace_rng::StdRng;

use flowplace_bench::experiments::{default_options, QUICK_TIME_LIMIT};
use flowplace_bench::{build_instance, ScenarioConfig};
use flowplace_classbench::{Generator, Profile};
use flowplace_core::{incremental, Objective, RulePlacer};
use flowplace_routing::shortest;
use flowplace_topo::EntryPortId;

fn bench(c: &mut Criterion) {
    let cfg = ScenarioConfig {
        k: 4,
        ingresses: 8,
        paths_per_ingress: 2,
        rules_per_policy: 20,
        shared_rules: 0,
        capacity: 120,
        seed: 13,
    };
    let instance = build_instance(&cfg);
    let options = default_options(QUICK_TIME_LIMIT);
    let placer = RulePlacer::new(options.clone());
    let placement = placer
        .place(&instance, Objective::TotalRules)
        .expect("placement is infallible")
        .placement
        .expect("base is feasible");
    let generator = Generator::new(Profile::Firewall, 16).with_seed(77);

    let mut group = c.benchmark_group("exp5_incremental");
    group.sample_size(10);

    group.bench_function("full_solve", |b| {
        b.iter(|| {
            placer
                .place(&instance, Objective::TotalRules)
                .expect("placement is infallible")
        })
    });

    group.bench_function("install_policy", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(99);
            let ingress = EntryPortId(cfg.ingresses);
            let route =
                shortest::shortest_path(instance.topology(), ingress, EntryPortId(15), &mut rng)
                    .expect("connected");
            incremental::install_policies(
                &instance,
                &placement,
                vec![(ingress, generator.policy(20, 1000), vec![route])],
                &options,
                Objective::TotalRules,
            )
            .expect("fresh ingress")
        })
    });

    group.bench_function("reroute_policy", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(123);
            let ingress = EntryPortId(0);
            let mut new_routes = Vec::new();
            for egress in [EntryPortId(12), EntryPortId(9)] {
                if let Some(r) =
                    shortest::shortest_path(instance.topology(), ingress, egress, &mut rng)
                {
                    new_routes.push(r);
                }
            }
            incremental::reroute_policy(
                &instance,
                &placement,
                ingress,
                new_routes,
                &options,
                Objective::TotalRules,
            )
            .expect("policy exists")
        })
    });

    group.bench_function("add_rule_greedy", |b| {
        b.iter(|| {
            incremental::add_rule_greedy(
                &instance,
                &placement,
                EntryPortId(0),
                flowplace_acl::Rule::new(
                    flowplace_acl::Ternary::parse("1111111100000000").unwrap(),
                    flowplace_acl::Action::Drop,
                    0,
                ),
            )
            .expect("policy exists")
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Ablation benches: dependency-row encodings (A1), ILP vs PB-SAT for
//! feasibility (A2), merge-linking forms, and greedy warm start on/off.

use flowplace_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};

use flowplace_bench::experiments::{default_options, QUICK_TIME_LIMIT};
use flowplace_bench::{build_instance, ScenarioConfig};
use flowplace_core::encode_sat::SatEncoding;
use flowplace_core::{DependencyEncoding, MergeLinking, Objective, RulePlacer};

fn cfg(n: usize, shared: usize, capacity: usize) -> ScenarioConfig {
    ScenarioConfig {
        k: 4,
        ingresses: 8,
        paths_per_ingress: 2,
        rules_per_policy: n,
        shared_rules: shared,
        capacity,
        seed: 23,
    }
}

fn dependency_encodings(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_dep_encoding");
    group.sample_size(10);
    let instance = build_instance(&cfg(30, 0, 60));
    for (name, dep) in [
        ("pairwise", DependencyEncoding::Pairwise),
        ("aggregated", DependencyEncoding::Aggregated),
        ("lazy", DependencyEncoding::Lazy),
    ] {
        let mut options = default_options(QUICK_TIME_LIMIT);
        options.dependency = dep;
        let placer = RulePlacer::new(options);
        group.bench_with_input(BenchmarkId::from_parameter(name), &instance, |b, inst| {
            b.iter(|| {
                placer
                    .place(inst, Objective::TotalRules)
                    .expect("placement is infallible")
            })
        });
    }
    group.finish();
}

fn sat_vs_ilp(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_sat_vs_ilp");
    group.sample_size(10);
    let instance = build_instance(&cfg(40, 0, 60));
    let placer = RulePlacer::new(default_options(QUICK_TIME_LIMIT));
    group.bench_function("ilp_optimize", |b| {
        b.iter(|| {
            placer
                .place(&instance, Objective::TotalRules)
                .expect("placement is infallible")
        })
    });
    group.bench_function("pbsat_feasible", |b| {
        b.iter(|| {
            let mut enc = SatEncoding::build(&instance, false);
            enc.solve()
        })
    });
    group.finish();
}

fn merge_linking(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_merge_linking");
    group.sample_size(10);
    let instance = build_instance(&cfg(10, 4, 34));
    for (name, linking) in [
        ("per_member", MergeLinking::PerMember),
        ("aggregated_eq5", MergeLinking::Aggregated),
    ] {
        let mut options = default_options(QUICK_TIME_LIMIT);
        options.merging = true;
        options.merge_linking = linking;
        let placer = RulePlacer::new(options);
        group.bench_with_input(BenchmarkId::from_parameter(name), &instance, |b, inst| {
            b.iter(|| {
                placer
                    .place(inst, Objective::TotalRules)
                    .expect("placement is infallible")
            })
        });
    }
    group.finish();
}

fn warm_start(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_warm_start");
    group.sample_size(10);
    let instance = build_instance(&cfg(40, 0, 60));
    for (name, warm) in [("greedy_warm", true), ("cold", false)] {
        let mut options = default_options(QUICK_TIME_LIMIT);
        options.greedy_warm_start = warm;
        let placer = RulePlacer::new(options);
        group.bench_with_input(BenchmarkId::from_parameter(name), &instance, |b, inst| {
            b.iter(|| {
                placer
                    .place(inst, Objective::TotalRules)
                    .expect("placement is infallible")
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    dependency_encodings,
    sat_vs_ilp,
    merge_linking,
    warm_start
);
criterion_main!(benches);

//! Figures 7/8/9: solve time vs rules per policy (representative points).
//!
//! The full sweep (all three network sizes, n = 20..110, three seeds)
//! lives in the `repro` binary; Criterion measures a few representative
//! points per network size so `cargo bench` stays minutes, not hours.

use flowplace_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};

use flowplace_bench::experiments::{default_options, EXP1_NETWORKS, QUICK_TIME_LIMIT};
use flowplace_bench::{build_instance, ScenarioConfig};
use flowplace_core::{Objective, RulePlacer};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("exp1_rules");
    group.sample_size(10);
    for &(k, ingresses, ppi, c_small, c_large) in &EXP1_NETWORKS {
        for (cap_name, capacity) in [("Csmall", c_small), ("Clarge", c_large)] {
            for n in [20usize, 40] {
                let cfg = ScenarioConfig {
                    k,
                    ingresses,
                    paths_per_ingress: ppi,
                    rules_per_policy: n,
                    shared_rules: 0,
                    capacity,
                    seed: 7,
                };
                let instance = build_instance(&cfg);
                let placer = RulePlacer::new(default_options(QUICK_TIME_LIMIT));
                group.bench_with_input(
                    BenchmarkId::new(format!("k{k}_{cap_name}"), n),
                    &instance,
                    |b, inst| {
                        b.iter(|| {
                            placer
                                .place(inst, Objective::TotalRules)
                                .expect("placement is infallible")
                        })
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Figure 10: solve time vs number of paths (representative points).

use flowplace_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};

use flowplace_bench::experiments::{default_options, QUICK_TIME_LIMIT};
use flowplace_bench::{build_instance, ScenarioConfig};
use flowplace_core::{Objective, RulePlacer};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("exp2_paths");
    group.sample_size(10);
    for capacity in [60usize, 150] {
        for ppi in [1usize, 2, 4] {
            let cfg = ScenarioConfig {
                k: 4,
                ingresses: 8,
                paths_per_ingress: ppi,
                rules_per_policy: 40,
                shared_rules: 0,
                capacity,
                seed: 3,
            };
            let instance = build_instance(&cfg);
            let placer = RulePlacer::new(default_options(QUICK_TIME_LIMIT));
            group.bench_with_input(
                BenchmarkId::new(format!("C{capacity}"), cfg.total_paths()),
                &instance,
                |b, inst| {
                    b.iter(|| {
                        placer
                            .place(inst, Objective::TotalRules)
                            .expect("placement is infallible")
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Microbenches of the substrate crates: ternary algebra, cube-list
//! difference, redundancy removal, LP simplex, branch & bound, and CDCL
//! search. These track the building blocks the placement solves stand on.

use flowplace_bench::harness::{criterion_group, criterion_main, Criterion};
use flowplace_rng::{Rng, StdRng};

use flowplace_acl::{redundancy, CubeList, Ternary};
use flowplace_classbench::{Generator, Profile};
use flowplace_milp::{solve_lp, solve_mip, Cmp, MipOptions, Model, Sense};
use flowplace_pbsat::{Lit, Solver};

fn ternary_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_ternary");
    let gen = Generator::new(Profile::Firewall, 32).with_seed(1);
    let policy = gen.policy(200, 0);
    let rules: Vec<Ternary> = policy.rules().iter().map(|r| *r.match_field()).collect();
    group.bench_function("pairwise_intersects_200", |b| {
        b.iter(|| {
            let mut count = 0usize;
            for (i, a) in rules.iter().enumerate() {
                for b in &rules[i + 1..] {
                    if a.intersects(b) {
                        count += 1;
                    }
                }
            }
            count
        })
    });
    group.bench_function("cubelist_subtract_chain", |b| {
        b.iter(|| {
            let mut space = CubeList::from_cube(Ternary::any(32));
            for r in rules.iter().take(40) {
                space.subtract(r);
            }
            space.cubes().len()
        })
    });
    group.bench_function("redundancy_removal_80", |b| {
        let p = gen.policy(80, 1);
        b.iter(|| redundancy::remove_redundant(&p).policy.len())
    });
    group.finish();
}

fn lp_and_mip(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_milp");
    group.sample_size(10);
    // A random covering LP/MIP of placement-like shape.
    let mut rng = StdRng::seed_from_u64(4);
    let mut model = Model::new(Sense::Minimize);
    let vars: Vec<_> = (0..300)
        .map(|i| model.add_binary(format!("x{i}")))
        .collect();
    for v in &vars {
        model.set_objective(*v, 1.0 + rng.gen::<f64>().round());
    }
    for r in 0..150 {
        let terms: Vec<_> = (0..6)
            .map(|_| (vars[rng.gen_range(0..vars.len())], 1.0))
            .collect();
        model.add_constraint(format!("c{r}"), terms, Cmp::Ge, 1.0);
    }
    model.add_constraint(
        "cap",
        vars.iter().map(|&v| (v, 1.0)).collect(),
        Cmp::Le,
        200.0,
    );
    group.bench_function("lp_relaxation_300x151", |b| b.iter(|| solve_lp(&model)));
    group.bench_function("bnb_300x151", |b| {
        b.iter(|| solve_mip(&model, &MipOptions::default()))
    });
    group.finish();
}

fn cdcl(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_pbsat");
    group.sample_size(10);
    group.bench_function("pigeonhole_7_into_6", |b| {
        b.iter(|| {
            let mut s = Solver::new();
            let p: Vec<Vec<Lit>> = (0..7)
                .map(|_| (0..6).map(|_| Lit::positive(s.new_var())).collect())
                .collect();
            for row in &p {
                s.add_clause(row);
            }
            for h in 0..6 {
                let col: Vec<Lit> = p.iter().map(|row| row[h]).collect();
                s.add_at_most_k(&col, 1);
            }
            s.solve()
        })
    });
    group.bench_function("random_3sat_120v_480c", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(8);
            let mut s = Solver::new();
            let vars: Vec<_> = (0..120).map(|_| s.new_var()).collect();
            for _ in 0..480 {
                let lits: Vec<Lit> = (0..3)
                    .map(|_| {
                        let v = vars[rng.gen_range(0..vars.len())];
                        if rng.gen() {
                            Lit::positive(v)
                        } else {
                            Lit::negative(v)
                        }
                    })
                    .collect();
                s.add_clause(&lits);
            }
            s.solve()
        })
    });
    group.finish();
}

criterion_group!(benches, ternary_ops, lp_and_mip, cdcl);
criterion_main!(benches);

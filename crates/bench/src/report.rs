//! CSV and ASCII rendering of experiment results.

use std::fmt::Write as _;

use flowplace_core::SolveStatus;

use crate::experiments::{IncRow, MergeRow, SharingRow, SolveRow};

fn status_str(s: SolveStatus) -> &'static str {
    match s {
        SolveStatus::Optimal => "optimal",
        SolveStatus::Feasible => "feasible",
        SolveStatus::Infeasible => "infeasible",
        SolveStatus::Unknown => "timeout",
    }
}

/// CSV for [`SolveRow`] sweeps (Figures 7–11 and the ablations).
pub fn solve_rows_csv(rows: &[SolveRow]) -> String {
    let mut out = String::from("label,n,paths,capacity,seed,status,ms,objective,vars,rows,nodes\n");
    for r in rows {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{:.3},{},{},{},{}",
            r.label,
            r.n,
            r.paths,
            r.capacity,
            r.seed,
            status_str(r.status),
            r.elapsed.as_secs_f64() * 1000.0,
            r.objective.map(|o| o.to_string()).unwrap_or_default(),
            r.vars,
            r.rows,
            r.nodes
        );
    }
    out
}

/// ASCII summary of a [`SolveRow`] sweep: one line per (label, x) with
/// mean runtime over seeds — the textual form of the paper's log-scale
/// runtime plots.
pub fn solve_rows_table(rows: &[SolveRow], x_axis: &str) -> String {
    let mut out = format!(
        "{:<16} {:>6} {:>12} {:>12} {:>10}\n",
        "series", x_axis, "mean ms", "objective", "status"
    );
    // Group by (label, x) preserving insertion order.
    let mut keys: Vec<(String, usize)> = Vec::new();
    for r in rows {
        let x = x_of(r, x_axis);
        if !keys.contains(&(r.label.clone(), x)) {
            keys.push((r.label.clone(), x));
        }
    }
    for (label, x) in keys {
        let group: Vec<&SolveRow> = rows
            .iter()
            .filter(|r| r.label == label && x_of(r, x_axis) == x)
            .collect();
        let mean_ms = group
            .iter()
            .map(|r| r.elapsed.as_secs_f64() * 1000.0)
            .sum::<f64>()
            / group.len() as f64;
        let obj = group.iter().filter_map(|r| r.objective).next();
        let status = summarize_statuses(&group);
        let _ = writeln!(
            out,
            "{:<16} {:>6} {:>12.2} {:>12} {:>10}",
            label,
            x,
            mean_ms,
            obj.map(|o| format!("{o:.0}")).unwrap_or_else(|| "-".into()),
            status
        );
    }
    out
}

fn x_of(r: &SolveRow, x_axis: &str) -> usize {
    match x_axis {
        "paths" => r.paths,
        "capacity" => r.capacity,
        _ => r.n,
    }
}

fn summarize_statuses(group: &[&SolveRow]) -> String {
    let mut statuses: Vec<&str> = group.iter().map(|r| status_str(r.status)).collect();
    statuses.sort_unstable();
    statuses.dedup();
    statuses.join("/")
}

/// CSV for Table II.
pub fn merge_rows_csv(rows: &[MergeRow]) -> String {
    let mut out = String::from("shared,capacity,merging,status,total_rules,overhead_pct,ms\n");
    for r in rows {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{:.3}",
            r.shared,
            r.capacity,
            r.merging,
            status_str(r.status),
            r.total_rules.map(|t| t.to_string()).unwrap_or_default(),
            r.overhead
                .map(|o| format!("{:.1}", o * 100.0))
                .unwrap_or_default(),
            r.elapsed.as_secs_f64() * 1000.0
        );
    }
    out
}

/// ASCII rendering of Table II in the paper's layout: one row per
/// mergeable-rule count, column pairs `C` / `C-MR` holding
/// `total_rules overhead%` or `Inf`.
pub fn merge_rows_table(rows: &[MergeRow]) -> String {
    let mut capacities: Vec<usize> = rows.iter().map(|r| r.capacity).collect();
    capacities.sort_unstable();
    capacities.dedup();
    let mut shared_counts: Vec<usize> = rows.iter().map(|r| r.shared).collect();
    shared_counts.sort_unstable();
    shared_counts.dedup();

    let mut out = format!("{:<5}", "#MR");
    for c in &capacities {
        let _ = write!(out, " | {:>12} | {:>12}", format!("{c}"), format!("{c}-MR"));
    }
    out.push('\n');
    for &s in &shared_counts {
        let _ = write!(out, "{s:<5}");
        for &c in &capacities {
            for merging in [false, true] {
                let cell = rows
                    .iter()
                    .find(|r| r.shared == s && r.capacity == c && r.merging == merging);
                let text = match cell {
                    Some(r) => match (r.status, r.total_rules, r.overhead) {
                        (SolveStatus::Infeasible, _, _) => "Inf".to_string(),
                        (SolveStatus::Unknown, _, _) => "t/o".to_string(),
                        (_, Some(t), Some(o)) => {
                            format!("{t} {:+.0}%", o * 100.0)
                        }
                        _ => "-".to_string(),
                    },
                    None => "-".to_string(),
                };
                let _ = write!(out, " | {text:>12}");
            }
        }
        out.push('\n');
    }
    out
}

/// CSV for Experiment 5.
pub fn inc_rows_csv(rows: &[IncRow]) -> String {
    let mut out = String::from("op,scale,status,ms,full_solve_ms,speedup\n");
    for r in rows {
        let ms = r.elapsed.as_secs_f64() * 1000.0;
        let full = r.full_solve.as_secs_f64() * 1000.0;
        let _ = writeln!(
            out,
            "{},{},{},{:.3},{:.3},{:.1}",
            r.op,
            r.scale,
            status_str(r.status),
            ms,
            full,
            if ms > 0.0 { full / ms } else { f64::INFINITY }
        );
    }
    out
}

/// ASCII rendering of Experiment 5.
pub fn inc_rows_table(rows: &[IncRow]) -> String {
    let mut out = format!(
        "{:<10} {:>6} {:>12} {:>14} {:>10}\n",
        "operation", "scale", "inc ms", "full-solve ms", "status"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<10} {:>6} {:>12.2} {:>14.2} {:>10}",
            r.op,
            r.scale,
            r.elapsed.as_secs_f64() * 1000.0,
            r.full_solve.as_secs_f64() * 1000.0,
            status_str(r.status)
        );
    }
    out
}

/// ASCII rendering of the sharing measurement.
pub fn sharing_rows_table(rows: &[SharingRow]) -> String {
    let mut out = format!(
        "{:<6} {:>4} {:>10} {:>10} {:>10}\n",
        "paths", "n", "placed B", "naive p*r", "B/(p*r)"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<6} {:>4} {:>10} {:>10} {:>9.1}%",
            r.paths,
            r.n,
            r.placed,
            r.naive,
            100.0 * r.placed as f64 / r.naive as f64
        );
    }
    out
}

/// CSV for the sharing measurement.
pub fn sharing_rows_csv(rows: &[SharingRow]) -> String {
    let mut out = String::from("paths,n,placed,naive,ratio\n");
    for r in rows {
        let _ = writeln!(
            out,
            "{},{},{},{},{:.4}",
            r.paths,
            r.n,
            r.placed,
            r.naive,
            r.placed as f64 / r.naive as f64
        );
    }
    out
}

// ---------------------------------------------------------------------
// BENCH_pipeline.json schema validation
// ---------------------------------------------------------------------
//
// The workspace is dependency-free, so the validator carries its own
// minimal JSON reader: enough of RFC 8259 to parse the documents the
// pipeline benchmark emits (objects, arrays, strings with the escapes we
// produce, numbers, booleans, null). It is a checker, not a general
// library — unknown escapes and non-UTF-8 input are rejected.

/// Parsed JSON value (internal to the schema validator).
#[derive(Clone, Debug, PartialEq)]
enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// String literal.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn parse(text: &'a str) -> Result<Json, String> {
        let mut p = JsonParser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            pairs.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self.bytes.get(self.pos).ok_or("unterminated string")?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self.bytes.get(self.pos).ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "non-ASCII \\u escape".to_string())?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            out.push(char::from_u32(cp).ok_or("surrogate \\u escape unsupported")?);
                        }
                        _ => return Err(format!("unknown escape '\\{}'", esc as char)),
                    }
                }
                _ => {
                    // Consume the full UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or("truncated UTF-8 sequence")?;
                    let s = std::str::from_utf8(chunk).map_err(|_| "invalid UTF-8".to_string())?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number at byte {start}"))
    }
}

/// The schema tag [`validate_pipeline_json`] requires (re-exported from
/// [`crate::pipeline::SCHEMA`] so the two cannot drift).
pub const PIPELINE_SCHEMA: &str = crate::pipeline::SCHEMA;

const PIPELINE_ROW_NUM_FIELDS: &[&str] = &[
    "rules",
    "threads",
    "serial_ms",
    "parallel_ms",
    "stage_depgraphs_ms",
    "stage_candidates_ms",
    "stage_solve_ms",
    "speedup",
];

const PIPELINE_STATUSES: &[&str] = &["optimal", "feasible", "infeasible", "timeout"];

/// Validates a `BENCH_pipeline.json` document against the
/// `flowplace.bench.pipeline.v1` schema: the tag itself, the run
/// parameters, and every row's fields, types, and value ranges. Returns
/// a human-readable reason on the first violation. CI runs this on the
/// smoke-mode artifact so schema drift fails the build rather than the
/// downstream consumers.
pub fn validate_pipeline_json(text: &str) -> Result<(), String> {
    let doc = JsonParser::parse(text)?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing string field \"schema\"")?;
    if schema != PIPELINE_SCHEMA {
        return Err(format!(
            "schema mismatch: got {schema:?}, want {PIPELINE_SCHEMA:?}"
        ));
    }
    for field in ["threads", "samples", "time_limit_ms"] {
        let v = doc
            .get(field)
            .and_then(Json::as_num)
            .ok_or_else(|| format!("missing numeric field {field:?}"))?;
        if v <= 0.0 {
            return Err(format!("field {field:?} must be positive, got {v}"));
        }
    }
    let rows = match doc.get("rows") {
        Some(Json::Arr(rows)) => rows,
        _ => return Err("missing array field \"rows\"".into()),
    };
    if rows.is_empty() {
        return Err("\"rows\" must be non-empty".into());
    }
    for (i, row) in rows.iter().enumerate() {
        let ctx = |msg: String| format!("rows[{i}]: {msg}");
        for field in ["scenario", "engine"] {
            row.get(field)
                .and_then(Json::as_str)
                .filter(|s| !s.is_empty())
                .ok_or_else(|| ctx(format!("missing non-empty string {field:?}")))?;
        }
        for field in ["serial_status", "parallel_status"] {
            let s = row
                .get(field)
                .and_then(Json::as_str)
                .ok_or_else(|| ctx(format!("missing string {field:?}")))?;
            if !PIPELINE_STATUSES.contains(&s) {
                return Err(ctx(format!("{field:?} has unknown status {s:?}")));
            }
        }
        for field in PIPELINE_ROW_NUM_FIELDS {
            let v = row
                .get(field)
                .and_then(Json::as_num)
                .ok_or_else(|| ctx(format!("missing numeric field {field:?}")))?;
            if !v.is_finite() || v < 0.0 {
                return Err(ctx(format!("{field:?} must be finite and >= 0, got {v}")));
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// BENCH_incremental.json schema validation
// ---------------------------------------------------------------------

/// The schema tag [`validate_incremental_json`] requires (re-exported
/// from [`crate::incremental::SCHEMA`] so the two cannot drift).
pub const INCREMENTAL_SCHEMA: &str = crate::incremental::SCHEMA;

const INCREMENTAL_ROW_NUM_FIELDS: &[&str] = &[
    "rules",
    "epochs",
    "rounds",
    "cold_ms",
    "warm_ms",
    "speedup",
    "memo_hits",
    "memo_misses",
    "depgraphs_reused",
    "candidates_reused",
];

/// Validates a `BENCH_incremental.json` document against the
/// `flowplace.bench.incremental.v1` schema: the tag itself, the run
/// parameters, the headline geometric-mean speedup, and every row's
/// fields, types, and value ranges — including the `identical` flags
/// that certify the warm path matched the cold path byte for byte.
/// Returns a human-readable reason on the first violation.
pub fn validate_incremental_json(text: &str) -> Result<(), String> {
    let doc = JsonParser::parse(text)?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing string field \"schema\"")?;
    if schema != INCREMENTAL_SCHEMA {
        return Err(format!(
            "schema mismatch: got {schema:?}, want {INCREMENTAL_SCHEMA:?}"
        ));
    }
    for field in ["rounds", "geomean_speedup"] {
        let v = doc
            .get(field)
            .and_then(Json::as_num)
            .ok_or_else(|| format!("missing numeric field {field:?}"))?;
        if v <= 0.0 {
            return Err(format!("field {field:?} must be positive, got {v}"));
        }
    }
    match doc.get("identical") {
        Some(Json::Bool(_)) => {}
        _ => return Err("missing boolean field \"identical\"".into()),
    }
    let rows = match doc.get("rows") {
        Some(Json::Arr(rows)) => rows,
        _ => return Err("missing array field \"rows\"".into()),
    };
    if rows.is_empty() {
        return Err("\"rows\" must be non-empty".into());
    }
    for (i, row) in rows.iter().enumerate() {
        let ctx = |msg: String| format!("rows[{i}]: {msg}");
        row.get("scenario")
            .and_then(Json::as_str)
            .filter(|s| !s.is_empty())
            .ok_or_else(|| ctx("missing non-empty string \"scenario\"".into()))?;
        match row.get("identical") {
            Some(Json::Bool(_)) => {}
            _ => return Err(ctx("missing boolean field \"identical\"".into())),
        }
        for field in INCREMENTAL_ROW_NUM_FIELDS {
            let v = row
                .get(field)
                .and_then(Json::as_num)
                .ok_or_else(|| ctx(format!("missing numeric field {field:?}")))?;
            if !v.is_finite() || v < 0.0 {
                return Err(ctx(format!("{field:?} must be finite and >= 0, got {v}")));
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// BENCH_cache.json schema validation
// ---------------------------------------------------------------------

/// The schema tag [`validate_cache_json`] requires (re-exported from
/// [`crate::cache::SCHEMA`] so the two cannot drift).
pub const CACHE_SCHEMA: &str = crate::cache::SCHEMA;

const CACHE_ROW_NUM_FIELDS: &[&str] = &[
    "rules",
    "cache_capacity",
    "capacity_pct",
    "flows",
    "lookups",
    "hits",
    "misses",
    "hit_rate",
    "inserts",
    "evictions",
    "resolves",
    "miss_batches",
    "miss_latency_ms",
    "dep_violations",
];

/// Validates a `BENCH_cache.json` document against the
/// `flowplace.bench.cache.v1` schema: the tag itself, the stream
/// parameters, and every row's fields, types, and value ranges. The
/// dependency-safety contract is part of the schema: `dep_violations`
/// must be zero at the top level and in every row, and `hit_rate` must
/// lie in `[0, 1]`. Returns a human-readable reason on the first
/// violation.
pub fn validate_cache_json(text: &str) -> Result<(), String> {
    let doc = JsonParser::parse(text)?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing string field \"schema\"")?;
    if schema != CACHE_SCHEMA {
        return Err(format!(
            "schema mismatch: got {schema:?}, want {CACHE_SCHEMA:?}"
        ));
    }
    for field in ["rate", "duration_ms", "zipf"] {
        let v = doc
            .get(field)
            .and_then(Json::as_num)
            .ok_or_else(|| format!("missing numeric field {field:?}"))?;
        if v <= 0.0 {
            return Err(format!("field {field:?} must be positive, got {v}"));
        }
    }
    let total_violations = doc
        .get("dep_violations")
        .and_then(Json::as_num)
        .ok_or("missing numeric field \"dep_violations\"")?;
    if total_violations != 0.0 {
        return Err(format!(
            "dependency-safety contract broken: dep_violations = {total_violations}"
        ));
    }
    let rows = match doc.get("rows") {
        Some(Json::Arr(rows)) => rows,
        _ => return Err("missing array field \"rows\"".into()),
    };
    if rows.is_empty() {
        return Err("\"rows\" must be non-empty".into());
    }
    for (i, row) in rows.iter().enumerate() {
        let ctx = |msg: String| format!("rows[{i}]: {msg}");
        for field in ["scenario", "policy"] {
            row.get(field)
                .and_then(Json::as_str)
                .filter(|s| !s.is_empty())
                .ok_or_else(|| ctx(format!("missing non-empty string {field:?}")))?;
        }
        for field in CACHE_ROW_NUM_FIELDS {
            let v = row
                .get(field)
                .and_then(Json::as_num)
                .ok_or_else(|| ctx(format!("missing numeric field {field:?}")))?;
            if !v.is_finite() || v < 0.0 {
                return Err(ctx(format!("{field:?} must be finite and >= 0, got {v}")));
            }
        }
        let hit_rate = row.get("hit_rate").and_then(Json::as_num).unwrap_or(0.0);
        if hit_rate > 1.0 {
            return Err(ctx(format!("\"hit_rate\" must be <= 1, got {hit_rate}")));
        }
        let violations = row
            .get("dep_violations")
            .and_then(Json::as_num)
            .unwrap_or(0.0);
        if violations != 0.0 {
            return Err(ctx(format!(
                "dependency-safety contract broken: dep_violations = {violations}"
            )));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// BENCH_delegation.json schema validation
// ---------------------------------------------------------------------

/// The schema tag [`validate_delegation_json`] requires (re-exported
/// from [`crate::delegation::SCHEMA`] so the two cannot drift).
pub const DELEGATION_SCHEMA: &str = crate::delegation::SCHEMA;

const DELEGATION_ROW_NUM_FIELDS: &[&str] = &[
    "rules",
    "pressure_pct",
    "victims",
    "revoked_switches",
    "dropall_baseline",
    "dropall_delegated",
    "avoided",
    "avoidance_rate",
    "delegations",
    "delegated_entries",
    "stub_entries",
    "overhead_pct",
    "failclosed_violations",
];

/// Validates a `BENCH_delegation.json` document against the
/// `flowplace.bench.delegation.v1` schema: the tag itself, the
/// aggregate drop-all counts, and every row's fields, types, and value
/// ranges. The robustness contract is part of the schema:
/// `failclosed_violations` must be zero at the top level and in every
/// row, no row may fail *more* closed with the rung enabled than
/// without, `avoidance_rate` must lie in `[0, 1]`, and in aggregate
/// the rung must strictly reduce drop-all events whenever the baseline
/// produced any. Returns a human-readable reason on the first
/// violation.
pub fn validate_delegation_json(text: &str) -> Result<(), String> {
    let doc = JsonParser::parse(text)?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing string field \"schema\"")?;
    if schema != DELEGATION_SCHEMA {
        return Err(format!(
            "schema mismatch: got {schema:?}, want {DELEGATION_SCHEMA:?}"
        ));
    }
    let mut totals = [0.0f64; 2];
    for (slot, field) in ["dropall_baseline", "dropall_delegated"].iter().enumerate() {
        let v = doc
            .get(field)
            .and_then(Json::as_num)
            .ok_or_else(|| format!("missing numeric field {field:?}"))?;
        if !v.is_finite() || v < 0.0 {
            return Err(format!("field {field:?} must be finite and >= 0, got {v}"));
        }
        totals[slot] = v;
    }
    let total_violations = doc
        .get("failclosed_violations")
        .and_then(Json::as_num)
        .ok_or("missing numeric field \"failclosed_violations\"")?;
    if total_violations != 0.0 {
        return Err(format!(
            "fail-closed contract broken: failclosed_violations = {total_violations}"
        ));
    }
    if totals[0] > 0.0 && totals[1] >= totals[0] {
        return Err(format!(
            "delegation must strictly reduce drop-all events: baseline {} vs delegated {}",
            totals[0], totals[1]
        ));
    }
    let rows = match doc.get("rows") {
        Some(Json::Arr(rows)) => rows,
        _ => return Err("missing array field \"rows\"".into()),
    };
    if rows.is_empty() {
        return Err("\"rows\" must be non-empty".into());
    }
    for (i, row) in rows.iter().enumerate() {
        let ctx = |msg: String| format!("rows[{i}]: {msg}");
        row.get("scenario")
            .and_then(Json::as_str)
            .filter(|s| !s.is_empty())
            .ok_or_else(|| ctx("missing non-empty string \"scenario\"".into()))?;
        for field in DELEGATION_ROW_NUM_FIELDS {
            let v = row
                .get(field)
                .and_then(Json::as_num)
                .ok_or_else(|| ctx(format!("missing numeric field {field:?}")))?;
            if !v.is_finite() || v < 0.0 {
                return Err(ctx(format!("{field:?} must be finite and >= 0, got {v}")));
            }
        }
        let baseline = row
            .get("dropall_baseline")
            .and_then(Json::as_num)
            .unwrap_or(0.0);
        let delegated = row
            .get("dropall_delegated")
            .and_then(Json::as_num)
            .unwrap_or(0.0);
        if delegated > baseline {
            return Err(ctx(format!(
                "the rung must never fail more closed: baseline {baseline} vs delegated {delegated}"
            )));
        }
        let rate = row
            .get("avoidance_rate")
            .and_then(Json::as_num)
            .unwrap_or(0.0);
        if rate > 1.0 {
            return Err(ctx(format!("\"avoidance_rate\" must be <= 1, got {rate}")));
        }
        let violations = row
            .get("failclosed_violations")
            .and_then(Json::as_num)
            .unwrap_or(0.0);
        if violations != 0.0 {
            return Err(ctx(format!(
                "fail-closed contract broken: failclosed_violations = {violations}"
            )));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// BENCH_sat.json schema validation
// ---------------------------------------------------------------------

/// The schema tag [`validate_sat_json`] requires (re-exported from
/// [`crate::sat::SCHEMA`] so the two cannot drift).
pub const SAT_SCHEMA: &str = crate::sat::SCHEMA;

const SAT_ROW_NUM_FIELDS: &[&str] = &[
    "rules",
    "baseline_ms",
    "modern_ms",
    "speedup",
    "baseline_conflicts",
    "conflicts",
    "restarts",
    "blocked_restarts",
    "db_reductions",
    "learnt",
    "learnt_deleted",
    "mean_lbd",
];

const SAT_STATUSES: &[&str] = &["optimal", "feasible", "infeasible", "timeout"];

/// Validates a `BENCH_sat.json` document against the
/// `flowplace.bench.sat.v1` schema: the tag, the run parameters, and
/// every row's fields, types, and ranges — **including** the `identical`
/// flags, which must all be `true`: the modern CDCL configuration must
/// decode the exact placement the baseline configuration decodes on
/// every scenario, or the document is rejected. Per-scenario counter
/// values (restarts, reductions) are range-checked but deliberately not
/// required to be nonzero — the CI smoke runs only the smallest
/// scenario, where the adaptive machinery may legitimately never
/// trigger. The proof the machinery *works* is the mandatory `stress`
/// block (a pigeonhole solve under the modern configuration): its
/// verdict must be `"unsat"` and its `restarts` and `db_reductions`
/// counters must both be ≥ 1.
pub fn validate_sat_json(text: &str) -> Result<(), String> {
    let doc = JsonParser::parse(text)?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing string field \"schema\"")?;
    if schema != SAT_SCHEMA {
        return Err(format!(
            "schema mismatch: got {schema:?}, want {SAT_SCHEMA:?}"
        ));
    }
    let samples = doc
        .get("samples")
        .and_then(Json::as_num)
        .ok_or("missing numeric field \"samples\"")?;
    if samples <= 0.0 {
        return Err(format!("field \"samples\" must be positive, got {samples}"));
    }
    match doc.get("identical") {
        Some(Json::Bool(true)) => {}
        Some(Json::Bool(false)) => {
            return Err("placement identity broken: top-level \"identical\" is false".into())
        }
        _ => return Err("missing boolean field \"identical\"".into()),
    }
    let stress = doc.get("stress").ok_or("missing object field \"stress\"")?;
    let verdict = stress
        .get("verdict")
        .and_then(Json::as_str)
        .ok_or("stress: missing string \"verdict\"")?;
    if verdict != "unsat" {
        return Err(format!(
            "stress: pigeonhole verdict must be \"unsat\", got {verdict:?}"
        ));
    }
    for field in [
        "pigeons",
        "holes",
        "solve_ms",
        "conflicts",
        "restarts",
        "blocked_restarts",
        "db_reductions",
        "learnt",
        "learnt_deleted",
        "mean_lbd",
    ] {
        let v = stress
            .get(field)
            .and_then(Json::as_num)
            .ok_or_else(|| format!("stress: missing numeric field {field:?}"))?;
        if !v.is_finite() || v < 0.0 {
            return Err(format!(
                "stress: {field:?} must be finite and >= 0, got {v}"
            ));
        }
        if (field == "restarts" || field == "db_reductions") && v < 1.0 {
            return Err(format!(
                "stress: {field:?} must be >= 1 (the modern CDCL machinery must demonstrably fire), got {v}"
            ));
        }
    }
    let rows = match doc.get("rows") {
        Some(Json::Arr(rows)) => rows,
        _ => return Err("missing array field \"rows\"".into()),
    };
    if rows.is_empty() {
        return Err("\"rows\" must be non-empty".into());
    }
    for (i, row) in rows.iter().enumerate() {
        let ctx = |msg: String| format!("rows[{i}]: {msg}");
        row.get("scenario")
            .and_then(Json::as_str)
            .filter(|s| !s.is_empty())
            .ok_or_else(|| ctx("missing non-empty string \"scenario\"".into()))?;
        let status = row
            .get("status")
            .and_then(Json::as_str)
            .ok_or_else(|| ctx("missing string \"status\"".into()))?;
        if !SAT_STATUSES.contains(&status) {
            return Err(ctx(format!("\"status\" has unknown status {status:?}")));
        }
        match row.get("identical") {
            Some(Json::Bool(true)) => {}
            Some(Json::Bool(false)) => {
                return Err(ctx(
                    "placement identity broken: baseline and modern arms diverged".into(),
                ))
            }
            _ => return Err(ctx("missing boolean field \"identical\"".into())),
        }
        for field in SAT_ROW_NUM_FIELDS {
            let v = row
                .get(field)
                .and_then(Json::as_num)
                .ok_or_else(|| ctx(format!("missing numeric field {field:?}")))?;
            if !v.is_finite() || v < 0.0 {
                return Err(ctx(format!("{field:?} must be finite and >= 0, got {v}")));
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// BENCH_micro.json schema validation
// ---------------------------------------------------------------------

/// The schema tag [`validate_micro_json`] requires (re-exported from
/// [`crate::micro::SCHEMA`] so the two cannot drift).
pub const MICRO_SCHEMA: &str = crate::micro::SCHEMA;

const MICRO_ROW_NUM_FIELDS: &[&str] = &["before", "after", "ratio"];

/// Validates a `BENCH_micro.json` document against the
/// `flowplace.bench.micro.v1` schema: the tag itself, the run
/// parameters, the arena counters, and every row's fields, types, and
/// value ranges. Two contracts are part of the schema:
///
/// * every bench of [`crate::micro::REQUIRED_BENCHES`] must be present;
/// * the deterministic `redundancy_alloc` row must show a real
///   allocation reduction (`after < before`, and the arena must have
///   served more requests from the pool than from the allocator).
///
/// Returns a human-readable reason on the first violation.
pub fn validate_micro_json(text: &str) -> Result<(), String> {
    let doc = JsonParser::parse(text)?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing string field \"schema\"")?;
    if schema != MICRO_SCHEMA {
        return Err(format!(
            "schema mismatch: got {schema:?}, want {MICRO_SCHEMA:?}"
        ));
    }
    let samples = doc
        .get("samples")
        .and_then(Json::as_num)
        .ok_or("missing numeric field \"samples\"")?;
    if samples < 1.0 {
        return Err(format!("field \"samples\" must be >= 1, got {samples}"));
    }
    let mode = doc
        .get("mode")
        .and_then(Json::as_str)
        .ok_or("missing string field \"mode\"")?;
    if mode != "smoke" && mode != "full" {
        return Err(format!(
            "field \"mode\" must be \"smoke\" or \"full\", got {mode:?}"
        ));
    }
    let arena = doc.get("arena").ok_or("missing object field \"arena\"")?;
    let arena_num = |field: &str| -> Result<f64, String> {
        let v = arena
            .get(field)
            .and_then(Json::as_num)
            .ok_or_else(|| format!("arena: missing numeric field {field:?}"))?;
        if !v.is_finite() || v < 0.0 {
            return Err(format!("arena: {field:?} must be finite and >= 0, got {v}"));
        }
        Ok(v)
    };
    let allocations = arena_num("allocations")?;
    let reuse_hits = arena_num("reuse_hits")?;
    arena_num("peak_bytes")?;
    if reuse_hits <= allocations {
        return Err(format!(
            "arena reuse contract broken: reuse_hits ({reuse_hits}) must exceed allocations ({allocations})"
        ));
    }
    let rows = match doc.get("rows") {
        Some(Json::Arr(rows)) => rows,
        _ => return Err("missing array field \"rows\"".into()),
    };
    if rows.is_empty() {
        return Err("\"rows\" must be non-empty".into());
    }
    let mut seen: Vec<String> = Vec::new();
    for (i, row) in rows.iter().enumerate() {
        let ctx = |msg: String| format!("rows[{i}]: {msg}");
        let bench = row
            .get("bench")
            .and_then(Json::as_str)
            .filter(|s| !s.is_empty())
            .ok_or_else(|| ctx("missing non-empty string \"bench\"".into()))?;
        seen.push(bench.to_string());
        row.get("unit")
            .and_then(Json::as_str)
            .filter(|s| !s.is_empty())
            .ok_or_else(|| ctx("missing non-empty string \"unit\"".into()))?;
        for field in MICRO_ROW_NUM_FIELDS {
            let v = row
                .get(field)
                .and_then(Json::as_num)
                .ok_or_else(|| ctx(format!("missing numeric field {field:?}")))?;
            if !v.is_finite() || v <= 0.0 {
                return Err(ctx(format!("{field:?} must be finite and > 0, got {v}")));
            }
        }
        if bench == "redundancy_alloc" {
            let before = row.get("before").and_then(Json::as_num).unwrap_or(0.0);
            let after = row.get("after").and_then(Json::as_num).unwrap_or(0.0);
            if after >= before {
                return Err(ctx(format!(
                    "allocation-reduction contract broken: after ({after}) must be < before ({before})"
                )));
            }
        }
    }
    for required in crate::micro::REQUIRED_BENCHES {
        if !seen.iter().any(|b| b == required) {
            return Err(format!("missing required bench row {required:?}"));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// BENCH_shard.json schema validation
// ---------------------------------------------------------------------

/// The schema tag [`validate_shard_json`] requires (re-exported from
/// [`crate::shard::SCHEMA`] so the two cannot drift).
pub const SHARD_SCHEMA: &str = crate::shard::SCHEMA;

const SHARD_ROW_NUM_FIELDS: &[&str] = &[
    "rules",
    "tenants",
    "shards",
    "events",
    "epochs",
    "elapsed_ms",
    "events_per_sec",
    "p99_epoch_us",
    "routes_skipped",
    "routes_full",
    "overgrants",
];

/// Validates a `BENCH_shard.json` document against the
/// `flowplace.bench.shard.v1` schema: the tag, the `mode`, and every
/// row's fields, types, and ranges — **including** two hard gates.
/// First, every row's `identical` flag must be `true`: the sharded
/// controller must replay byte-identically to the unsharded one on
/// every (scenario, shards) cell, or the document is rejected (same
/// for any nonzero `overgrants` count — the arbiter never grants a
/// switch beyond its capacity on a consistent run). Second, on full
/// (non-smoke) documents the `clb-4k` scenario must carry both a
/// `shards = 1` and a `shards = 4` row, and the 4-shard event
/// throughput must be at least **2×** the 1-shard throughput — the
/// scoped-verification payoff the shard runtime exists for. Smoke
/// documents (`"mode": "smoke"`) skip only the throughput gate.
pub fn validate_shard_json(text: &str) -> Result<(), String> {
    let doc = JsonParser::parse(text)?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing string field \"schema\"")?;
    if schema != SHARD_SCHEMA {
        return Err(format!(
            "schema mismatch: got {schema:?}, want {SHARD_SCHEMA:?}"
        ));
    }
    let mode = doc
        .get("mode")
        .and_then(Json::as_str)
        .ok_or("missing string field \"mode\"")?;
    if mode != "smoke" && mode != "full" {
        return Err(format!(
            "field \"mode\" must be \"smoke\" or \"full\", got {mode:?}"
        ));
    }
    match doc.get("identical") {
        Some(Json::Bool(true)) => {}
        Some(Json::Bool(false)) => {
            return Err("determinism contract broken: top-level \"identical\" is false".into())
        }
        _ => return Err("missing boolean field \"identical\"".into()),
    }
    let overgrants = doc
        .get("overgrants")
        .and_then(Json::as_num)
        .ok_or("missing numeric field \"overgrants\"")?;
    if overgrants != 0.0 {
        return Err(format!(
            "capacity contract broken: overgrants = {overgrants}"
        ));
    }
    let rows = match doc.get("rows") {
        Some(Json::Arr(rows)) => rows,
        _ => return Err("missing array field \"rows\"".into()),
    };
    if rows.is_empty() {
        return Err("\"rows\" must be non-empty".into());
    }
    let mut eps_4k = [None::<f64>; 2]; // [shards=1, shards=4]
    for (i, row) in rows.iter().enumerate() {
        let ctx = |msg: String| format!("rows[{i}]: {msg}");
        let scenario = row
            .get("scenario")
            .and_then(Json::as_str)
            .filter(|s| !s.is_empty())
            .ok_or_else(|| ctx("missing non-empty string \"scenario\"".into()))?;
        for field in SHARD_ROW_NUM_FIELDS {
            let v = row
                .get(field)
                .and_then(Json::as_num)
                .ok_or_else(|| ctx(format!("missing numeric field {field:?}")))?;
            if !v.is_finite() || v < 0.0 {
                return Err(ctx(format!("{field:?} must be finite and >= 0, got {v}")));
            }
        }
        match row.get("identical") {
            Some(Json::Bool(true)) => {}
            Some(Json::Bool(false)) => {
                return Err(ctx(
                    "determinism contract broken: \"identical\" is false".into()
                ))
            }
            _ => return Err(ctx("missing boolean field \"identical\"".into())),
        }
        let row_overgrants = row.get("overgrants").and_then(Json::as_num).unwrap_or(0.0);
        if row_overgrants != 0.0 {
            return Err(ctx(format!(
                "capacity contract broken: overgrants = {row_overgrants}"
            )));
        }
        let shards = row.get("shards").and_then(Json::as_num).unwrap_or(0.0);
        if shards < 1.0 {
            return Err(ctx(format!("\"shards\" must be >= 1, got {shards}")));
        }
        if scenario == "clb-4k" {
            let eps = row
                .get("events_per_sec")
                .and_then(Json::as_num)
                .unwrap_or(0.0);
            if shards == 1.0 {
                eps_4k[0] = Some(eps);
            } else if shards == 4.0 {
                eps_4k[1] = Some(eps);
            }
        }
    }
    if mode == "full" {
        let one = eps_4k[0].ok_or("full document missing the clb-4k shards=1 row")?;
        let four = eps_4k[1].ok_or("full document missing the clb-4k shards=4 row")?;
        if one <= 0.0 || four < 2.0 * one {
            return Err(format!(
                "scaling contract broken: clb-4k throughput at 4 shards ({four:.0} events/s) \
                 must be >= 2x the 1-shard throughput ({one:.0} events/s)"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn row(label: &str, n: usize, status: SolveStatus) -> SolveRow {
        SolveRow {
            label: label.into(),
            n,
            paths: 16,
            capacity: 60,
            seed: 0,
            status,
            elapsed: Duration::from_millis(12),
            objective: Some(100.0),
            vars: 10,
            rows: 20,
            nodes: 3,
        }
    }

    #[test]
    fn csv_headers_and_rows() {
        let rows = vec![row("a", 20, SolveStatus::Optimal)];
        let csv = solve_rows_csv(&rows);
        assert!(csv.starts_with("label,n,"));
        assert!(csv.contains("a,20,16,60,0,optimal,12.000,100,10,20,3"));
    }

    #[test]
    fn table_groups_by_label_and_x() {
        let rows = vec![
            row("a", 20, SolveStatus::Optimal),
            row("a", 20, SolveStatus::Optimal),
            row("a", 30, SolveStatus::Infeasible),
        ];
        let t = solve_rows_table(&rows, "n");
        assert!(t.contains("optimal"));
        assert!(t.contains("infeasible"));
        assert_eq!(t.lines().count(), 3); // header + 2 groups
    }

    #[test]
    fn merge_table_layout() {
        let rows = vec![
            MergeRow {
                shared: 1,
                capacity: 30,
                merging: false,
                status: SolveStatus::Infeasible,
                total_rules: None,
                overhead: None,
                elapsed: Duration::from_millis(5),
            },
            MergeRow {
                shared: 1,
                capacity: 30,
                merging: true,
                status: SolveStatus::Optimal,
                total_rules: Some(300),
                overhead: Some(0.12),
                elapsed: Duration::from_millis(9),
            },
        ];
        let t = merge_rows_table(&rows);
        assert!(t.contains("30-MR"));
        assert!(t.contains("Inf"));
        assert!(t.contains("300 +12%"));
        let csv = merge_rows_csv(&rows);
        assert!(csv.contains("1,30,true,optimal,300,12.0"));
    }

    #[test]
    fn sharing_table_percentages() {
        let rows = vec![SharingRow {
            paths: 16,
            n: 25,
            placed: 80,
            naive: 400,
        }];
        let t = sharing_rows_table(&rows);
        assert!(t.contains("20.0%"));
    }

    fn valid_pipeline_doc() -> String {
        format!(
            r#"{{
  "schema": "{PIPELINE_SCHEMA}",
  "threads": 4,
  "samples": 3,
  "time_limit_ms": 10000.0,
  "rows": [
    {{
      "scenario": "classbench-256",
      "rules": 256,
      "threads": 4,
      "serial_ms": 95.1,
      "serial_status": "optimal",
      "parallel_ms": 5.2,
      "parallel_status": "optimal",
      "engine": "portfolio:sat",
      "stage_depgraphs_ms": 0.2,
      "stage_candidates_ms": 0.5,
      "stage_solve_ms": 4.0,
      "speedup": 18.3
    }}
  ]
}}
"#
        )
    }

    #[test]
    fn pipeline_validator_accepts_valid_document() {
        validate_pipeline_json(&valid_pipeline_doc()).expect("valid document accepted");
    }

    #[test]
    fn pipeline_validator_rejects_wrong_schema_tag() {
        let doc = valid_pipeline_doc().replace(".v1", ".v0");
        let err = validate_pipeline_json(&doc).unwrap_err();
        assert!(err.contains("schema mismatch"), "{err}");
    }

    #[test]
    fn pipeline_validator_rejects_missing_row_field() {
        let doc = valid_pipeline_doc().replace("\"speedup\": 18.3", "\"speedup2\": 18.3");
        let err = validate_pipeline_json(&doc).unwrap_err();
        assert!(err.contains("speedup"), "{err}");
    }

    #[test]
    fn pipeline_validator_rejects_unknown_status() {
        let doc = valid_pipeline_doc().replace("\"optimal\"", "\"excellent\"");
        let err = validate_pipeline_json(&doc).unwrap_err();
        assert!(err.contains("unknown status"), "{err}");
    }

    #[test]
    fn pipeline_validator_rejects_empty_rows_and_garbage() {
        assert!(validate_pipeline_json("{}").is_err());
        assert!(validate_pipeline_json("not json").is_err());
        let doc = format!(
            r#"{{"schema": "{PIPELINE_SCHEMA}", "threads": 4, "samples": 1, "time_limit_ms": 1, "rows": []}}"#
        );
        let err = validate_pipeline_json(&doc).unwrap_err();
        assert!(err.contains("non-empty"), "{err}");
    }

    fn valid_incremental_doc() -> String {
        format!(
            r#"{{
  "schema": "{INCREMENTAL_SCHEMA}",
  "rounds": 6,
  "geomean_speedup": 5.2,
  "identical": true,
  "rows": [
    {{
      "scenario": "classbench-1k",
      "rules": 1024,
      "epochs": 30,
      "rounds": 6,
      "cold_ms": 1800.0,
      "warm_ms": 310.0,
      "speedup": 5.8,
      "memo_hits": 5,
      "memo_misses": 1,
      "depgraphs_reused": 90,
      "candidates_reused": 90,
      "identical": true
    }}
  ]
}}
"#
        )
    }

    #[test]
    fn incremental_validator_accepts_valid_document() {
        validate_incremental_json(&valid_incremental_doc()).expect("valid document accepted");
    }

    #[test]
    fn incremental_validator_rejects_wrong_schema_tag() {
        let doc = valid_incremental_doc().replace(".v1", ".v0");
        let err = validate_incremental_json(&doc).unwrap_err();
        assert!(err.contains("schema mismatch"), "{err}");
    }

    #[test]
    fn incremental_validator_rejects_missing_identity_flag() {
        let doc = valid_incremental_doc().replace("\"identical\": true", "\"ident\": true");
        let err = validate_incremental_json(&doc).unwrap_err();
        assert!(err.contains("identical"), "{err}");
    }

    #[test]
    fn incremental_validator_rejects_missing_row_field() {
        let doc = valid_incremental_doc().replace("\"speedup\": 5.8", "\"speedup2\": 5.8");
        let err = validate_incremental_json(&doc).unwrap_err();
        assert!(err.contains("speedup"), "{err}");
    }

    #[test]
    fn incremental_validator_rejects_empty_rows() {
        let doc = format!(
            r#"{{"schema": "{INCREMENTAL_SCHEMA}", "rounds": 6, "geomean_speedup": 3.0, "identical": true, "rows": []}}"#
        );
        let err = validate_incremental_json(&doc).unwrap_err();
        assert!(err.contains("non-empty"), "{err}");
    }

    fn valid_cache_doc() -> String {
        format!(
            r#"{{
  "schema": "{CACHE_SCHEMA}",
  "rate": 20000,
  "duration_ms": 250,
  "zipf": 1.1,
  "dep_violations": 0,
  "rows": [
    {{
      "scenario": "classbench-256",
      "policy": "lru",
      "rules": 256,
      "cache_capacity": 25,
      "capacity_pct": 25.0,
      "flows": 5000,
      "lookups": 9000,
      "hits": 7000,
      "misses": 800,
      "hit_rate": 0.7778,
      "inserts": 120,
      "evictions": 40,
      "resolves": 90,
      "miss_batches": 100,
      "miss_latency_ms": 800,
      "dep_violations": 0
    }}
  ]
}}
"#
        )
    }

    #[test]
    fn cache_validator_accepts_valid_document() {
        validate_cache_json(&valid_cache_doc()).expect("valid document accepted");
    }

    #[test]
    fn cache_validator_rejects_wrong_schema_tag() {
        let doc = valid_cache_doc().replace(".v1", ".v0");
        let err = validate_cache_json(&doc).unwrap_err();
        assert!(err.contains("schema mismatch"), "{err}");
    }

    #[test]
    fn cache_validator_rejects_dependency_violations() {
        let doc = valid_cache_doc().replace(
            "\"dep_violations\": 0\n    }",
            "\"dep_violations\": 2\n    }",
        );
        let err = validate_cache_json(&doc).unwrap_err();
        assert!(err.contains("dependency-safety"), "{err}");
    }

    #[test]
    fn cache_validator_rejects_out_of_range_hit_rate() {
        let doc = valid_cache_doc().replace("\"hit_rate\": 0.7778", "\"hit_rate\": 1.5");
        let err = validate_cache_json(&doc).unwrap_err();
        assert!(err.contains("hit_rate"), "{err}");
    }

    #[test]
    fn cache_validator_rejects_missing_row_field() {
        let doc = valid_cache_doc().replace("\"resolves\": 90", "\"resolves2\": 90");
        let err = validate_cache_json(&doc).unwrap_err();
        assert!(err.contains("resolves"), "{err}");
    }

    #[test]
    fn cache_validator_rejects_empty_rows() {
        let doc = format!(
            r#"{{"schema": "{CACHE_SCHEMA}", "rate": 1, "duration_ms": 1, "zipf": 1.1, "dep_violations": 0, "rows": []}}"#
        );
        let err = validate_cache_json(&doc).unwrap_err();
        assert!(err.contains("non-empty"), "{err}");
    }

    fn valid_micro_doc() -> String {
        let rows = crate::micro::REQUIRED_BENCHES
            .iter()
            .map(|bench| {
                let (before, after, ratio) = if *bench == "redundancy_alloc" {
                    (400.0, 25.0, 16.0)
                } else {
                    (10.0, 25.0, 2.5)
                };
                format!(
                    r#"    {{"bench": "{bench}", "unit": "u", "before": {before}, "after": {after}, "ratio": {ratio}}}"#
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        format!(
            r#"{{
  "schema": "{MICRO_SCHEMA}",
  "samples": 5,
  "mode": "full",
  "arena": {{"allocations": 25, "reuse_hits": 375, "peak_bytes": 4096}},
  "rows": [
{rows}
  ]
}}
"#
        )
    }

    #[test]
    fn micro_validator_accepts_valid_document() {
        validate_micro_json(&valid_micro_doc()).expect("valid document accepted");
    }

    #[test]
    fn micro_validator_rejects_wrong_schema_tag() {
        let doc = valid_micro_doc().replace(".v1", ".v0");
        let err = validate_micro_json(&doc).unwrap_err();
        assert!(err.contains("schema mismatch"), "{err}");
    }

    #[test]
    fn micro_validator_rejects_broken_arena_reuse_contract() {
        let doc = valid_micro_doc().replace("\"reuse_hits\": 375", "\"reuse_hits\": 5");
        let err = validate_micro_json(&doc).unwrap_err();
        assert!(err.contains("reuse contract"), "{err}");
    }

    #[test]
    fn micro_validator_rejects_allocation_regression() {
        let doc = valid_micro_doc().replace(
            r#""bench": "redundancy_alloc", "unit": "u", "before": 400, "after": 25"#,
            r#""bench": "redundancy_alloc", "unit": "u", "before": 400, "after": 400"#,
        );
        let err = validate_micro_json(&doc).unwrap_err();
        assert!(err.contains("allocation-reduction contract"), "{err}");
    }

    #[test]
    fn micro_validator_rejects_missing_required_bench() {
        let doc = valid_micro_doc().replace("\"bench\": \"verify_replay\"", "\"bench\": \"other\"");
        let err = validate_micro_json(&doc).unwrap_err();
        assert!(err.contains("verify_replay"), "{err}");
    }

    #[test]
    fn micro_validator_rejects_missing_row_field() {
        let doc = valid_micro_doc().replace("\"ratio\": 2.5}", "\"rat\": 2.5}");
        let err = validate_micro_json(&doc).unwrap_err();
        assert!(err.contains("ratio"), "{err}");
    }

    #[test]
    fn json_parser_handles_escapes_and_nesting() {
        let v = JsonParser::parse(r#"{"a": [1, -2.5e1, "x\nA", true, null]}"#).unwrap();
        let arr = match v.get("a") {
            Some(Json::Arr(items)) => items.clone(),
            other => panic!("expected array, got {other:?}"),
        };
        assert_eq!(arr[0], Json::Num(1.0));
        assert_eq!(arr[1], Json::Num(-25.0));
        assert_eq!(arr[2], Json::Str("x\nA".into()));
        assert_eq!(arr[3], Json::Bool(true));
        assert_eq!(arr[4], Json::Null);
        assert!(JsonParser::parse("{\"a\": 1} extra").is_err());
    }
}

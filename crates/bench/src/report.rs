//! CSV and ASCII rendering of experiment results.

use std::fmt::Write as _;

use flowplace_core::SolveStatus;

use crate::experiments::{IncRow, MergeRow, SharingRow, SolveRow};

fn status_str(s: SolveStatus) -> &'static str {
    match s {
        SolveStatus::Optimal => "optimal",
        SolveStatus::Feasible => "feasible",
        SolveStatus::Infeasible => "infeasible",
        SolveStatus::Unknown => "timeout",
    }
}

/// CSV for [`SolveRow`] sweeps (Figures 7–11 and the ablations).
pub fn solve_rows_csv(rows: &[SolveRow]) -> String {
    let mut out = String::from("label,n,paths,capacity,seed,status,ms,objective,vars,rows,nodes\n");
    for r in rows {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{:.3},{},{},{},{}",
            r.label,
            r.n,
            r.paths,
            r.capacity,
            r.seed,
            status_str(r.status),
            r.elapsed.as_secs_f64() * 1000.0,
            r.objective.map(|o| o.to_string()).unwrap_or_default(),
            r.vars,
            r.rows,
            r.nodes
        );
    }
    out
}

/// ASCII summary of a [`SolveRow`] sweep: one line per (label, x) with
/// mean runtime over seeds — the textual form of the paper's log-scale
/// runtime plots.
pub fn solve_rows_table(rows: &[SolveRow], x_axis: &str) -> String {
    let mut out = format!(
        "{:<16} {:>6} {:>12} {:>12} {:>10}\n",
        "series", x_axis, "mean ms", "objective", "status"
    );
    // Group by (label, x) preserving insertion order.
    let mut keys: Vec<(String, usize)> = Vec::new();
    for r in rows {
        let x = x_of(r, x_axis);
        if !keys.contains(&(r.label.clone(), x)) {
            keys.push((r.label.clone(), x));
        }
    }
    for (label, x) in keys {
        let group: Vec<&SolveRow> = rows
            .iter()
            .filter(|r| r.label == label && x_of(r, x_axis) == x)
            .collect();
        let mean_ms = group
            .iter()
            .map(|r| r.elapsed.as_secs_f64() * 1000.0)
            .sum::<f64>()
            / group.len() as f64;
        let obj = group.iter().filter_map(|r| r.objective).next();
        let status = summarize_statuses(&group);
        let _ = writeln!(
            out,
            "{:<16} {:>6} {:>12.2} {:>12} {:>10}",
            label,
            x,
            mean_ms,
            obj.map(|o| format!("{o:.0}")).unwrap_or_else(|| "-".into()),
            status
        );
    }
    out
}

fn x_of(r: &SolveRow, x_axis: &str) -> usize {
    match x_axis {
        "paths" => r.paths,
        "capacity" => r.capacity,
        _ => r.n,
    }
}

fn summarize_statuses(group: &[&SolveRow]) -> String {
    let mut statuses: Vec<&str> = group.iter().map(|r| status_str(r.status)).collect();
    statuses.sort_unstable();
    statuses.dedup();
    statuses.join("/")
}

/// CSV for Table II.
pub fn merge_rows_csv(rows: &[MergeRow]) -> String {
    let mut out = String::from("shared,capacity,merging,status,total_rules,overhead_pct,ms\n");
    for r in rows {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{:.3}",
            r.shared,
            r.capacity,
            r.merging,
            status_str(r.status),
            r.total_rules.map(|t| t.to_string()).unwrap_or_default(),
            r.overhead
                .map(|o| format!("{:.1}", o * 100.0))
                .unwrap_or_default(),
            r.elapsed.as_secs_f64() * 1000.0
        );
    }
    out
}

/// ASCII rendering of Table II in the paper's layout: one row per
/// mergeable-rule count, column pairs `C` / `C-MR` holding
/// `total_rules overhead%` or `Inf`.
pub fn merge_rows_table(rows: &[MergeRow]) -> String {
    let mut capacities: Vec<usize> = rows.iter().map(|r| r.capacity).collect();
    capacities.sort_unstable();
    capacities.dedup();
    let mut shared_counts: Vec<usize> = rows.iter().map(|r| r.shared).collect();
    shared_counts.sort_unstable();
    shared_counts.dedup();

    let mut out = format!("{:<5}", "#MR");
    for c in &capacities {
        let _ = write!(out, " | {:>12} | {:>12}", format!("{c}"), format!("{c}-MR"));
    }
    out.push('\n');
    for &s in &shared_counts {
        let _ = write!(out, "{s:<5}");
        for &c in &capacities {
            for merging in [false, true] {
                let cell = rows
                    .iter()
                    .find(|r| r.shared == s && r.capacity == c && r.merging == merging);
                let text = match cell {
                    Some(r) => match (r.status, r.total_rules, r.overhead) {
                        (SolveStatus::Infeasible, _, _) => "Inf".to_string(),
                        (SolveStatus::Unknown, _, _) => "t/o".to_string(),
                        (_, Some(t), Some(o)) => {
                            format!("{t} {:+.0}%", o * 100.0)
                        }
                        _ => "-".to_string(),
                    },
                    None => "-".to_string(),
                };
                let _ = write!(out, " | {text:>12}");
            }
        }
        out.push('\n');
    }
    out
}

/// CSV for Experiment 5.
pub fn inc_rows_csv(rows: &[IncRow]) -> String {
    let mut out = String::from("op,scale,status,ms,full_solve_ms,speedup\n");
    for r in rows {
        let ms = r.elapsed.as_secs_f64() * 1000.0;
        let full = r.full_solve.as_secs_f64() * 1000.0;
        let _ = writeln!(
            out,
            "{},{},{},{:.3},{:.3},{:.1}",
            r.op,
            r.scale,
            status_str(r.status),
            ms,
            full,
            if ms > 0.0 { full / ms } else { f64::INFINITY }
        );
    }
    out
}

/// ASCII rendering of Experiment 5.
pub fn inc_rows_table(rows: &[IncRow]) -> String {
    let mut out = format!(
        "{:<10} {:>6} {:>12} {:>14} {:>10}\n",
        "operation", "scale", "inc ms", "full-solve ms", "status"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<10} {:>6} {:>12.2} {:>14.2} {:>10}",
            r.op,
            r.scale,
            r.elapsed.as_secs_f64() * 1000.0,
            r.full_solve.as_secs_f64() * 1000.0,
            status_str(r.status)
        );
    }
    out
}

/// ASCII rendering of the sharing measurement.
pub fn sharing_rows_table(rows: &[SharingRow]) -> String {
    let mut out = format!(
        "{:<6} {:>4} {:>10} {:>10} {:>10}\n",
        "paths", "n", "placed B", "naive p*r", "B/(p*r)"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<6} {:>4} {:>10} {:>10} {:>9.1}%",
            r.paths,
            r.n,
            r.placed,
            r.naive,
            100.0 * r.placed as f64 / r.naive as f64
        );
    }
    out
}

/// CSV for the sharing measurement.
pub fn sharing_rows_csv(rows: &[SharingRow]) -> String {
    let mut out = String::from("paths,n,placed,naive,ratio\n");
    for r in rows {
        let _ = writeln!(
            out,
            "{},{},{},{},{:.4}",
            r.paths,
            r.n,
            r.placed,
            r.naive,
            r.placed as f64 / r.naive as f64
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn row(label: &str, n: usize, status: SolveStatus) -> SolveRow {
        SolveRow {
            label: label.into(),
            n,
            paths: 16,
            capacity: 60,
            seed: 0,
            status,
            elapsed: Duration::from_millis(12),
            objective: Some(100.0),
            vars: 10,
            rows: 20,
            nodes: 3,
        }
    }

    #[test]
    fn csv_headers_and_rows() {
        let rows = vec![row("a", 20, SolveStatus::Optimal)];
        let csv = solve_rows_csv(&rows);
        assert!(csv.starts_with("label,n,"));
        assert!(csv.contains("a,20,16,60,0,optimal,12.000,100,10,20,3"));
    }

    #[test]
    fn table_groups_by_label_and_x() {
        let rows = vec![
            row("a", 20, SolveStatus::Optimal),
            row("a", 20, SolveStatus::Optimal),
            row("a", 30, SolveStatus::Infeasible),
        ];
        let t = solve_rows_table(&rows, "n");
        assert!(t.contains("optimal"));
        assert!(t.contains("infeasible"));
        assert_eq!(t.lines().count(), 3); // header + 2 groups
    }

    #[test]
    fn merge_table_layout() {
        let rows = vec![
            MergeRow {
                shared: 1,
                capacity: 30,
                merging: false,
                status: SolveStatus::Infeasible,
                total_rules: None,
                overhead: None,
                elapsed: Duration::from_millis(5),
            },
            MergeRow {
                shared: 1,
                capacity: 30,
                merging: true,
                status: SolveStatus::Optimal,
                total_rules: Some(300),
                overhead: Some(0.12),
                elapsed: Duration::from_millis(9),
            },
        ];
        let t = merge_rows_table(&rows);
        assert!(t.contains("30-MR"));
        assert!(t.contains("Inf"));
        assert!(t.contains("300 +12%"));
        let csv = merge_rows_csv(&rows);
        assert!(csv.contains("1,30,true,optimal,300,12.0"));
    }

    #[test]
    fn sharing_table_percentages() {
        let rows = vec![SharingRow {
            paths: 16,
            n: 25,
            placed: 80,
            naive: 400,
        }];
        let t = sharing_rows_table(&rows);
        assert!(t.contains("20.0%"));
    }
}

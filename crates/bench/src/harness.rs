//! A self-contained, registry-free bench harness with a Criterion-shaped
//! API.
//!
//! The container building this repo has no access to crates.io, so the
//! bench targets cannot depend on the real `criterion`. This module
//! mirrors the (small) subset of its API the benches use —
//! `benchmark_group` / `sample_size` / `bench_function` /
//! `bench_with_input` / `iter` plus the `criterion_group!` /
//! `criterion_main!` macros — and reports per-benchmark min / mean /
//! median wall-clock times to stdout. It aims for honest comparative
//! numbers, not statistical rigor.

use std::fmt;
use std::io::Write;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

// Re-export the harness macros under this module's path so bench files
// can `use flowplace_bench::harness::{criterion_group, criterion_main}`.
pub use crate::{criterion_group, criterion_main};

/// Two-part benchmark identifier, `function/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id rendered as `function/parameter`.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Creates an id from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Entry point handed to every bench function. Report lines go to the
/// configured sink (stdout by default), never through raw print macros,
/// so library code stays print-free and tests can capture the output.
pub struct Criterion {
    out: Box<dyn Write>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion::new()
    }
}

impl Criterion {
    /// Creates the harness reporting to stdout.
    pub fn new() -> Self {
        Criterion {
            out: Box::new(std::io::stdout()),
        }
    }

    /// Creates the harness reporting to an arbitrary sink.
    pub fn with_output(out: Box<dyn Write>) -> Self {
        Criterion { out }
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let _ = writeln!(self.out, "group {name}");
        BenchmarkGroup {
            parent: self,
            name,
            sample_size: 10,
        }
    }
}

/// A named collection of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark with no explicit input.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), |b| f(b));
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), |b| f(b, input));
        self
    }

    /// Ends the group (drop would do; kept for API parity).
    pub fn finish(self) {}

    fn run(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut samples = Vec::with_capacity(self.sample_size);
        // One untimed warmup sample, then the timed ones.
        for timed in 0..=self.sample_size {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if timed > 0 {
                samples.push(b.elapsed);
            }
        }
        samples.sort();
        let min = samples.first().copied().unwrap_or_default();
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        let _ = writeln!(
            self.parent.out,
            "  {}/{id}: {} samples, min {min:?}, median {median:?}, mean {mean:?}",
            self.name,
            samples.len()
        );
    }
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Times one execution of `f` (the routine under measurement). The
    /// result is passed through [`black_box`] so the optimizer cannot
    /// discard the work.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.elapsed += start.elapsed();
        black_box(out);
    }
}

/// Bundles bench functions into a runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::harness::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generates `main` for a bench target, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            let mut c = $crate::harness::Criterion::new();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_and_report() {
        let mut c = Criterion::new();
        let mut group = c.benchmark_group("harness_selftest");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        // 1 warmup + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
    }

    #[derive(Clone, Default)]
    struct SharedBuf(std::rc::Rc<std::cell::RefCell<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.borrow_mut().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn report_goes_to_the_configured_sink() {
        let buf = SharedBuf::default();
        let mut c = Criterion::with_output(Box::new(buf.clone()));
        let mut group = c.benchmark_group("sink_selftest");
        group.sample_size(1);
        group.bench_function("noop", |b| b.iter(|| 1u32));
        group.finish();
        let text = String::from_utf8(buf.0.borrow().clone()).unwrap();
        assert!(text.contains("group sink_selftest"));
        assert!(text.contains("sink_selftest/noop: 1 samples"));
    }
}

//! The experiment generators (one per table/figure of §V).

use std::time::{Duration, Instant};

use flowplace_core::encode_sat::SatEncoding;
use flowplace_core::{
    incremental, verify, DependencyEncoding, Objective, PlacementOptions, RulePlacer, SolveStatus,
};
use flowplace_milp::MipOptions;
use flowplace_rng::StdRng;

use flowplace_routing::shortest;
use flowplace_topo::EntryPortId;

use crate::scenario::{build_instance, ScenarioConfig};

/// Wall-clock budget per individual solve in full runs.
pub const FULL_TIME_LIMIT: Duration = Duration::from_secs(25);
/// Wall-clock budget per individual solve in quick (CI) runs.
pub const QUICK_TIME_LIMIT: Duration = Duration::from_secs(5);

/// One measured solve.
#[derive(Clone, Debug)]
pub struct SolveRow {
    /// Series label (e.g. `k=4 C=60` or an encoding name).
    pub label: String,
    /// Rules per policy `n`.
    pub n: usize,
    /// Total paths `p`.
    pub paths: usize,
    /// Switch capacity `C`.
    pub capacity: usize,
    /// Instance seed.
    pub seed: u64,
    /// Outcome status.
    pub status: SolveStatus,
    /// Solve wall-clock time.
    pub elapsed: Duration,
    /// Objective (total rules) when solved.
    pub objective: Option<f64>,
    /// Placement variables in the model.
    pub vars: usize,
    /// Constraint rows.
    pub rows: usize,
    /// Branch-and-bound nodes (or SAT conflicts).
    pub nodes: usize,
}

/// Experiment-wide default placer options: lazy dependency rows (the
/// model would otherwise be dominated by Eq. 1 rows) and a greedy warm
/// start, mirroring how one would drive a modern ILP solver.
pub fn default_options(time_limit: Duration) -> PlacementOptions {
    PlacementOptions {
        dependency: DependencyEncoding::Lazy,
        greedy_warm_start: true,
        mip: MipOptions {
            time_limit: Some(time_limit),
            ..MipOptions::default()
        },
        ..PlacementOptions::default()
    }
}

/// Runs one instance and measures it. Feasible outcomes are verified
/// against the golden model when `verify_solutions` is set.
pub fn run_point(
    label: impl Into<String>,
    cfg: &ScenarioConfig,
    options: &PlacementOptions,
    verify_solutions: bool,
) -> SolveRow {
    let instance = build_instance(cfg);
    let outcome = RulePlacer::new(options.clone())
        .place(&instance, Objective::TotalRules)
        .expect("placement is infallible");
    if verify_solutions {
        if let Some(p) = &outcome.placement {
            verify::verify_placement(&instance, p, 8, cfg.seed)
                .expect("solver output must preserve policy semantics");
        }
    }
    SolveRow {
        label: label.into(),
        n: cfg.rules_per_policy + cfg.shared_rules,
        paths: cfg.total_paths(),
        capacity: cfg.capacity,
        seed: cfg.seed,
        status: outcome.status,
        elapsed: outcome.stats.elapsed,
        objective: outcome.objective,
        vars: outcome.stats.variables,
        rows: outcome.stats.constraints,
        nodes: outcome.stats.nodes,
    }
}

/// The three network sizes of Figures 7, 8, 9, scaled from the paper's
/// k ∈ {8, 16, 32} to k ∈ {4, 6, 8}: `(k, ingresses, paths_per_ingress,
/// C_small, C_large)`.
pub const EXP1_NETWORKS: [(usize, usize, usize, usize, usize); 3] =
    [(4, 8, 2, 60, 240), (6, 10, 2, 60, 260), (8, 12, 2, 60, 280)];

/// Figures 7/8/9: execution time vs rules per policy, for three network
/// sizes and a small/large capacity each.
pub fn exp1_rules(quick: bool) -> Vec<SolveRow> {
    let (networks, ns, seeds, tl): (&[_], Vec<usize>, u64, Duration) = if quick {
        (&EXP1_NETWORKS[..1], vec![8, 16], 1, QUICK_TIME_LIMIT)
    } else {
        (
            &EXP1_NETWORKS[..],
            (20..=110).step_by(10).collect(),
            1,
            FULL_TIME_LIMIT,
        )
    };
    let options = default_options(tl);
    let mut rows = Vec::new();
    for &(k, ingresses, ppi, c_small, c_large) in networks {
        for &capacity in &[c_small, c_large] {
            for &n in &ns {
                for seed in 0..seeds {
                    let cfg = ScenarioConfig {
                        k,
                        ingresses: if quick { 4 } else { ingresses },
                        paths_per_ingress: ppi,
                        rules_per_policy: n,
                        shared_rules: 0,
                        capacity,
                        seed: seed * 101 + 7,
                    };
                    rows.push(run_point(
                        format!("k={k} C={capacity}"),
                        &cfg,
                        &options,
                        !quick,
                    ));
                }
            }
        }
    }
    rows
}

/// Figure 10: execution time vs number of paths (k=4 analog of the
/// paper's k=8, r=100), for a tight and a loose capacity.
pub fn exp2_paths(quick: bool) -> Vec<SolveRow> {
    let (ppis, seeds, tl): (Vec<usize>, u64, Duration) = if quick {
        (vec![1, 2], 1, QUICK_TIME_LIMIT)
    } else {
        ((1..=8).collect(), 1, FULL_TIME_LIMIT)
    };
    let options = default_options(tl);
    let mut rows = Vec::new();
    for &capacity in &[50usize, 150] {
        for &ppi in &ppis {
            for seed in 0..seeds {
                let cfg = ScenarioConfig {
                    k: 4,
                    ingresses: if quick { 4 } else { 8 },
                    paths_per_ingress: ppi,
                    rules_per_policy: if quick { 12 } else { 40 },
                    shared_rules: 0,
                    capacity,
                    seed: seed * 67 + 3,
                };
                rows.push(run_point(format!("C={capacity}"), &cfg, &options, !quick));
            }
        }
    }
    rows
}

/// One Table II cell.
#[derive(Clone, Debug)]
pub struct MergeRow {
    /// Number of mergeable (shared blacklist) rules.
    pub shared: usize,
    /// Switch capacity.
    pub capacity: usize,
    /// Whether merging was enabled.
    pub merging: bool,
    /// Outcome status.
    pub status: SolveStatus,
    /// Total rules installed (`B`), when feasible.
    pub total_rules: Option<usize>,
    /// Duplication overhead `(B−A)/A`, when feasible.
    pub overhead: Option<f64>,
    /// Solve time.
    pub elapsed: Duration,
}

/// Table II capacities, scaled from the paper's 65/70/75.
pub const EXP3_CAPACITIES: [usize; 3] = [15, 16, 17];

/// Table II: rule merging — capacity vs duplication overhead, with and
/// without merging, as the number of shared blacklist rules grows.
pub fn exp3_merging(quick: bool) -> Vec<MergeRow> {
    let (shared_counts, tl): (Vec<usize>, Duration) = if quick {
        (vec![2], QUICK_TIME_LIMIT)
    } else {
        ((1..=10).collect(), FULL_TIME_LIMIT)
    };
    let mut rows = Vec::new();
    for &capacity in &EXP3_CAPACITIES {
        for &shared in &shared_counts {
            for merging in [false, true] {
                let cfg = ScenarioConfig {
                    k: 4,
                    ingresses: if quick { 4 } else { 8 },
                    paths_per_ingress: 2,
                    rules_per_policy: if quick { 6 } else { 10 }, // paper: 20, scaled
                    shared_rules: shared,
                    capacity,
                    seed: 11,
                };
                let mut options = default_options(tl);
                options.merging = merging;
                let instance = build_instance(&cfg);
                let outcome = RulePlacer::new(options)
                    .place(&instance, Objective::TotalRules)
                    .expect("placement is infallible");
                let placement = outcome.placement;
                if !quick {
                    if let Some(p) = &placement {
                        verify::verify_placement(&instance, p, 8, 11)
                            .expect("solver output must preserve policy semantics");
                    }
                }
                rows.push(MergeRow {
                    shared,
                    capacity,
                    merging,
                    status: outcome.status,
                    total_rules: placement.as_ref().map(|p| p.total_rules()),
                    overhead: placement
                        .as_ref()
                        .map(|p| p.duplication_overhead(&instance)),
                    elapsed: outcome.stats.elapsed,
                });
            }
        }
    }
    rows
}

/// Figure 11: execution time vs per-switch rule capacity
/// (the under/over-constrained phase transition).
pub fn exp4_capacity(quick: bool) -> Vec<SolveRow> {
    let (capacities, seeds, tl): (Vec<usize>, u64, Duration) = if quick {
        (vec![10, 200], 1, QUICK_TIME_LIMIT)
    } else {
        (
            vec![10, 20, 30, 40, 50, 60, 70, 80, 100, 120, 160, 200, 240],
            1,
            FULL_TIME_LIMIT,
        )
    };
    let options = default_options(tl);
    let mut rows = Vec::new();
    for &capacity in &capacities {
        for seed in 0..seeds {
            let cfg = ScenarioConfig {
                k: 4,
                ingresses: if quick { 4 } else { 8 },
                paths_per_ingress: 2,
                rules_per_policy: if quick { 12 } else { 40 },
                shared_rules: 0,
                capacity,
                seed: seed * 41 + 5,
            };
            rows.push(run_point(format!("C={capacity}"), &cfg, &options, !quick));
        }
    }
    rows
}

/// One incremental-deployment measurement.
#[derive(Clone, Debug)]
pub struct IncRow {
    /// Operation kind (`install` or `reroute`).
    pub op: &'static str,
    /// Scale (policies added / policies rerouted).
    pub scale: usize,
    /// Outcome of the restricted sub-solve.
    pub status: SolveStatus,
    /// Incremental solve time.
    pub elapsed: Duration,
    /// Time of the initial full solve (for comparison).
    pub full_solve: Duration,
}

/// Experiment 5: incremental deployment. Solve a base configuration,
/// compute spare capacity, then (a) install batches of new tenant
/// policies and (b) reroute batches of existing policies, measuring the
/// restricted solves against the full solve.
pub fn exp5_incremental(quick: bool) -> Vec<IncRow> {
    let tl = if quick {
        QUICK_TIME_LIMIT
    } else {
        FULL_TIME_LIMIT
    };
    let options = default_options(tl);
    let base_cfg = ScenarioConfig {
        k: 4,
        ingresses: if quick { 4 } else { 8 },
        paths_per_ingress: 2,
        rules_per_policy: if quick { 8 } else { 35 },
        shared_rules: 0,
        capacity: 160,
        seed: 13,
    };
    let instance = build_instance(&base_cfg);
    let t0 = Instant::now();
    let outcome = RulePlacer::new(options.clone())
        .place(&instance, Objective::TotalRules)
        .expect("placement is infallible");
    let full_solve = t0.elapsed();
    let placement = outcome.placement.expect("base configuration is feasible");

    let generator =
        flowplace_classbench::Generator::new(flowplace_classbench::Profile::Firewall, 16)
            .with_seed(77);
    let mut rows = Vec::new();

    // (a) Install new policies: paper adds 64/128/256 policies of 100
    // rules with one path each; scaled to 2/4/8 of 20 rules.
    let install_scales: &[usize] = if quick { &[2] } else { &[2, 4, 8] };
    for &scale in install_scales {
        let mut rng = StdRng::seed_from_u64(99);
        let mut additions = Vec::new();
        for j in 0..scale {
            let ingress = EntryPortId(base_cfg.ingresses + j);
            let egress = EntryPortId(15 - (j % 4));
            let route = shortest::shortest_path(instance.topology(), ingress, egress, &mut rng)
                .expect("fat-tree is connected");
            let rules = if quick { 8 } else { 35 };
            additions.push((
                ingress,
                generator.policy(rules, 1000 + j as u64),
                vec![route],
            ));
        }
        let out = incremental::install_policies(
            &instance,
            &placement,
            additions,
            &options,
            Objective::TotalRules,
        )
        .expect("ingresses are fresh");
        rows.push(IncRow {
            op: "install",
            scale,
            status: out.status,
            elapsed: out.elapsed,
            full_solve,
        });
    }

    // (b) Reroute existing policies: paper modifies 1/16/32, scaled to
    // 1/2/4.
    let reroute_scales: &[usize] = if quick { &[1] } else { &[1, 2, 4] };
    for &scale in reroute_scales {
        let mut inst = instance.clone();
        let mut plc = placement.clone();
        let mut total = Duration::ZERO;
        let mut status = SolveStatus::Optimal;
        let mut rng = StdRng::seed_from_u64(123);
        for j in 0..scale {
            let ingress = EntryPortId(j);
            let mut new_routes = Vec::new();
            for egress in [EntryPortId(12 + j % 4), EntryPortId(8 + j % 4)] {
                if let Some(r) = shortest::shortest_path(inst.topology(), ingress, egress, &mut rng)
                {
                    new_routes.push(r);
                }
            }
            let out = incremental::reroute_policy(
                &inst,
                &plc,
                ingress,
                new_routes,
                &options,
                Objective::TotalRules,
            )
            .expect("ingress has a policy");
            total += out.elapsed;
            status = out.status;
            if let Some(p) = out.placement {
                inst = out.instance;
                plc = p;
            } else {
                break;
            }
        }
        rows.push(IncRow {
            op: "reroute",
            scale,
            status,
            elapsed: total,
            full_solve,
        });
    }
    rows
}

/// One rule-sharing measurement (§V closing claim: placed rules ≪ p·r).
#[derive(Clone, Debug)]
pub struct SharingRow {
    /// Paths in the instance.
    pub paths: usize,
    /// Rules per policy.
    pub n: usize,
    /// Rules actually installed (`B`).
    pub placed: usize,
    /// The naive all-rules-on-all-paths count (`p × r`).
    pub naive: usize,
}

/// §V sharing claim: the optimizer's total is a small fraction of the
/// `p × r` a placement-per-path scheme (the paper's description of its
/// reference \[1\]) would install.
pub fn exp6_sharing(quick: bool) -> Vec<SharingRow> {
    let ppis: &[usize] = if quick { &[2] } else { &[1, 2, 4, 8] };
    let options = default_options(if quick {
        QUICK_TIME_LIMIT
    } else {
        FULL_TIME_LIMIT
    });
    let mut rows = Vec::new();
    for &ppi in ppis {
        let cfg = ScenarioConfig {
            k: 4,
            ingresses: if quick { 4 } else { 8 },
            paths_per_ingress: ppi,
            rules_per_policy: if quick { 10 } else { 25 },
            shared_rules: 0,
            capacity: 150,
            seed: 19,
        };
        let instance = build_instance(&cfg);
        let outcome = RulePlacer::new(options.clone())
            .place(&instance, Objective::TotalRules)
            .expect("placement is infallible");
        if let Some(p) = outcome.placement {
            rows.push(SharingRow {
                paths: cfg.total_paths(),
                n: cfg.rules_per_policy,
                placed: p.total_rules(),
                naive: cfg.total_paths() * cfg.rules_per_policy,
            });
        }
    }
    rows
}

/// Ablation: the three Equation 1 encodings on one instance family.
pub fn ablate_dependency(quick: bool) -> Vec<SolveRow> {
    let ns: &[usize] = if quick { &[8] } else { &[20, 40, 60] };
    let tl = if quick {
        QUICK_TIME_LIMIT
    } else {
        FULL_TIME_LIMIT
    };
    let mut rows = Vec::new();
    for &n in ns {
        for (name, dep) in [
            ("pairwise", DependencyEncoding::Pairwise),
            ("aggregated", DependencyEncoding::Aggregated),
            ("lazy", DependencyEncoding::Lazy),
        ] {
            let cfg = ScenarioConfig {
                k: 4,
                ingresses: if quick { 4 } else { 8 },
                paths_per_ingress: 2,
                rules_per_policy: n,
                shared_rules: 0,
                capacity: 60,
                seed: 23,
            };
            let mut options = default_options(tl);
            options.dependency = dep;
            rows.push(run_point(name, &cfg, &options, false));
        }
    }
    rows
}

/// Ablation: ILP vs the PB-SAT engine for feasibility-only queries (the
/// paper's §IV-D future work, implemented and measured here).
pub fn ablate_sat_vs_ilp(quick: bool) -> Vec<SolveRow> {
    let ns: &[usize] = if quick { &[8] } else { &[20, 40, 60, 80] };
    let tl = if quick {
        QUICK_TIME_LIMIT
    } else {
        FULL_TIME_LIMIT
    };
    let mut rows = Vec::new();
    for &n in ns {
        let cfg = ScenarioConfig {
            k: 4,
            ingresses: if quick { 4 } else { 8 },
            paths_per_ingress: 2,
            rules_per_policy: n,
            shared_rules: 0,
            capacity: 60,
            seed: 29,
        };
        // ILP (optimizing).
        rows.push(run_point("ilp", &cfg, &default_options(tl), false));
        // PB-SAT (feasibility only), measured directly on the encoding.
        let instance = build_instance(&cfg);
        let t = Instant::now();
        let mut enc = SatEncoding::build(&instance, false);
        let solved = enc.solve();
        rows.push(SolveRow {
            label: "pbsat".into(),
            n,
            paths: cfg.total_paths(),
            capacity: cfg.capacity,
            seed: cfg.seed,
            status: if solved.is_some() {
                SolveStatus::Optimal
            } else {
                SolveStatus::Infeasible
            },
            elapsed: t.elapsed(),
            objective: solved.map(|p| p.total_rules() as f64),
            vars: enc.num_placement_vars(),
            rows: enc.constraint_count(),
            nodes: enc.conflicts() as usize,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_exp1_produces_rows() {
        let rows = exp1_rules(true);
        assert_eq!(rows.len(), 4); // 1 network × 2 capacities × 2 ns
        for r in &rows {
            assert!(r.vars > 0);
        }
    }

    #[test]
    fn quick_exp3_has_both_merge_arms() {
        let rows = exp3_merging(true);
        assert!(rows.iter().any(|r| r.merging));
        assert!(rows.iter().any(|r| !r.merging));
    }

    #[test]
    fn quick_exp5_reports_speedup_data() {
        let rows = exp5_incremental(true);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.full_solve > Duration::ZERO);
        }
    }

    #[test]
    fn quick_exp6_sharing_below_naive() {
        let rows = exp6_sharing(true);
        assert!(!rows.is_empty());
        for r in &rows {
            assert!(r.placed < r.naive, "{} !< {}", r.placed, r.naive);
        }
    }

    #[test]
    fn quick_ablations_cover_all_arms() {
        let dep = ablate_dependency(true);
        assert_eq!(dep.len(), 3);
        let sat = ablate_sat_vs_ilp(true);
        assert_eq!(sat.len(), 2);
    }
}

//! Emits `BENCH_cache.json`: cache hit rate and controller load vs
//! TCAM size.
//!
//! ```text
//! cargo run --release -p flowplace-bench --bin cache_bench -- \
//!     [--out PATH] [--rate N] [--duration MS] [--zipf S] [--smoke]
//! ```
//!
//! `--smoke` runs a short stream on the smallest scenario — CI uses it
//! to validate the JSON schema without paying for the full sweep. The
//! document is validated against `flowplace.bench.cache.v1` before it
//! is written; a schema bug fails the run instead of producing a
//! corrupt artifact. The benchmark itself panics if any sweep point
//! ends with a failing dependency or fail-closed audit, so an unsafe
//! eviction also fails the run.

use std::process::ExitCode;

use flowplace_bench::cache::{self, CacheBenchConfig};
use flowplace_bench::report;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = CacheBenchConfig::default();
    let mut out_path = String::from("BENCH_cache.json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                out_path = take_value(&args, &mut i, "--out");
            }
            "--rate" => {
                cfg.rate = parse_num(&take_value(&args, &mut i, "--rate"), "--rate");
            }
            "--duration" => {
                cfg.duration_ms = parse_num(&take_value(&args, &mut i, "--duration"), "--duration");
            }
            "--zipf" => {
                cfg.zipf = parse_shape(&take_value(&args, &mut i, "--zipf"), "--zipf");
            }
            "--smoke" => {
                cfg.smoke = true;
            }
            other => {
                eprintln!("unknown flag {other:?} (see the module docs for usage)");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    if cfg.rate == 0 || cfg.duration_ms == 0 {
        eprintln!("--rate and --duration must be at least 1");
        return ExitCode::FAILURE;
    }

    eprintln!(
        "cache bench: rate={} duration_ms={} zipf={} smoke={}",
        cfg.rate, cfg.duration_ms, cfg.zipf, cfg.smoke
    );
    let rows = cache::run(&cfg);
    print!("{}", cache::rows_table(&rows));

    let doc = cache::to_json(&cfg, &rows);
    if let Err(reason) = report::validate_cache_json(&doc) {
        eprintln!("emitted document failed schema validation: {reason}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&out_path, &doc) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out_path} ({} rows, schema ok)", rows.len());
    ExitCode::SUCCESS
}

fn take_value(args: &[String], i: &mut usize, flag: &str) -> String {
    *i += 1;
    args.get(*i)
        .unwrap_or_else(|| {
            eprintln!("{flag} requires a value");
            std::process::exit(2);
        })
        .clone()
}

fn parse_num(text: &str, flag: &str) -> u64 {
    text.parse().unwrap_or_else(|_| {
        eprintln!("{flag} requires an unsigned integer, got {text:?}");
        std::process::exit(2);
    })
}

fn parse_shape(text: &str, flag: &str) -> f64 {
    let v: f64 = text.parse().unwrap_or_else(|_| {
        eprintln!("{flag} requires a number, got {text:?}");
        std::process::exit(2);
    });
    if !v.is_finite() || v < 0.0 {
        eprintln!("{flag} must be finite and >= 0, got {text:?}");
        std::process::exit(2);
    }
    v
}

//! Emits `BENCH_micro.json`: hot-path micro benchmarks — arena
//! allocation counts, batch-vs-scalar classification throughput, and
//! verify-replay / epoch latency.
//!
//! ```text
//! cargo run --release -p flowplace-bench --bin micro_bench -- \
//!     [--out PATH] [--samples N] [--smoke]
//! ```
//!
//! `--smoke` runs the smallest scenario with short batches — CI uses it
//! to validate the JSON schema without paying for the full 4k run. The
//! document is validated against `flowplace.bench.micro.v1` before it
//! is written; a schema bug fails the run instead of producing a
//! corrupt artifact. Outside smoke mode the run additionally fails
//! unless the batch kernel shows at least a 2× throughput advantage
//! over the scalar scan — the performance contract the committed
//! artifact carries.

use std::process::ExitCode;

use flowplace_bench::micro::{self, MicroBenchConfig};
use flowplace_bench::report;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = MicroBenchConfig::default();
    let mut out_path = String::from("BENCH_micro.json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                out_path = take_value(&args, &mut i, "--out");
            }
            "--samples" => {
                cfg.samples =
                    parse_num(&take_value(&args, &mut i, "--samples"), "--samples") as usize;
            }
            "--smoke" => {
                cfg.smoke = true;
            }
            other => {
                eprintln!("unknown flag {other:?} (see the module docs for usage)");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    if cfg.samples == 0 {
        eprintln!("--samples must be at least 1");
        return ExitCode::FAILURE;
    }

    eprintln!("micro bench: samples={} smoke={}", cfg.samples, cfg.smoke);
    let report = micro::run(&cfg);
    print!("{}", micro::rows_table(&report));

    if !cfg.smoke {
        let classify = report
            .rows
            .iter()
            .find(|r| r.bench == "classify_throughput")
            .expect("run always emits the classify row");
        if classify.ratio < 2.0 {
            eprintln!(
                "performance contract broken: batch/scalar throughput ratio {:.2} < 2.0",
                classify.ratio
            );
            return ExitCode::FAILURE;
        }
    }

    let doc = micro::to_json(&cfg, &report);
    if let Err(reason) = report::validate_micro_json(&doc) {
        eprintln!("emitted document failed schema validation: {reason}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&out_path, &doc) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out_path} ({} rows, schema ok)", report.rows.len());
    ExitCode::SUCCESS
}

fn take_value(args: &[String], i: &mut usize, flag: &str) -> String {
    *i += 1;
    args.get(*i)
        .unwrap_or_else(|| {
            eprintln!("{flag} requires a value");
            std::process::exit(2);
        })
        .clone()
}

fn parse_num(text: &str, flag: &str) -> u64 {
    text.parse().unwrap_or_else(|_| {
        eprintln!("{flag} requires an unsigned integer, got {text:?}");
        std::process::exit(2);
    })
}
